"""Shared fixtures for the test suite.

All fixtures are deterministic (fixed seeds) so failures reproduce exactly.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
import scipy.sparse as sp

from repro.matrices import load_dataset
from repro.matrices.cache import CACHE_DIR_ENV
from repro.runtime import SimulatedCluster, ZERO_COST
from repro.sparse import CSCMatrix, as_csc


@pytest.fixture(autouse=True, scope="session")
def _isolated_dataset_cache(tmp_path_factory):
    """Keep the dataset disk cache inside the test session's tmp dir.

    The suite must never read from (or populate) the developer's real
    ``~/.cache`` — and the per-session directory still exercises the cache
    path, making repeated ``load_dataset`` fixtures fast.
    """
    previous = os.environ.get(CACHE_DIR_ENV)
    os.environ[CACHE_DIR_ENV] = str(tmp_path_factory.mktemp("dataset-cache"))
    yield
    if previous is None:
        os.environ.pop(CACHE_DIR_ENV, None)
    else:
        os.environ[CACHE_DIR_ENV] = previous


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


def _random_sparse(n_rows, n_cols, density, seed, symmetric=False):
    mat = sp.random(n_rows, n_cols, density=density, random_state=seed, format="csc")
    if symmetric:
        mat = mat + mat.T
    return as_csc(mat)


@pytest.fixture
def small_square() -> CSCMatrix:
    """A 60×60 unsymmetric random sparse matrix."""
    return _random_sparse(60, 60, 0.08, seed=1)


@pytest.fixture
def small_symmetric() -> CSCMatrix:
    """A 80×80 symmetric random sparse matrix."""
    return _random_sparse(80, 80, 0.05, seed=2, symmetric=True)


@pytest.fixture
def small_rect() -> CSCMatrix:
    """A 50×70 rectangular random sparse matrix."""
    return _random_sparse(50, 70, 0.08, seed=3)


@pytest.fixture
def tiny_dense_pair():
    """A pair of tiny matrices with a known dense product."""
    A = np.array(
        [
            [1.0, 0.0, 2.0, 0.0],
            [0.0, 3.0, 0.0, 0.0],
            [0.0, 0.0, 0.0, 4.0],
            [5.0, 0.0, 6.0, 0.0],
        ]
    )
    B = np.array(
        [
            [0.0, 1.0, 0.0, 0.0],
            [2.0, 0.0, 0.0, 3.0],
            [0.0, 0.0, 4.0, 0.0],
            [0.0, 5.0, 0.0, 6.0],
        ]
    )
    return CSCMatrix.from_dense(A), CSCMatrix.from_dense(B), A @ B


@pytest.fixture
def hv15r_tiny() -> CSCMatrix:
    """A very small hv15r-like clustered matrix (fast for algorithm tests)."""
    return load_dataset("hv15r", scale=0.05)


@pytest.fixture
def eukarya_tiny() -> CSCMatrix:
    """A very small eukarya-like shuffled community graph."""
    return load_dataset("eukarya", scale=0.05)


@pytest.fixture
def cluster4() -> SimulatedCluster:
    return SimulatedCluster(4)


@pytest.fixture
def cluster4_free() -> SimulatedCluster:
    """A 4-rank cluster whose cost model charges nothing (pure correctness runs)."""
    return SimulatedCluster(4, cost_model=ZERO_COST)


@pytest.fixture
def cluster9() -> SimulatedCluster:
    return SimulatedCluster(9)


def assert_sparse_equal(actual, expected, *, atol=1e-10, rtol=1e-8, msg=""):
    """Dense comparison helper shared by many tests."""
    a = actual.to_dense() if hasattr(actual, "to_dense") else np.asarray(actual)
    e = expected.to_dense() if hasattr(expected, "to_dense") else np.asarray(expected)
    np.testing.assert_allclose(a, e, atol=atol, rtol=rtol, err_msg=msg)

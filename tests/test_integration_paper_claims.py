"""Integration tests reproducing the paper's qualitative claims end to end.

Each test exercises the full stack (generators → partitioner → distributed
algorithm → ledger) and asserts the *direction* of a result the paper reports.
Absolute numbers differ (simulated machine, scaled-down inputs); orderings and
large ratios are what these tests pin down.
"""

from __future__ import annotations

import numpy as np

from repro.apps.amg import build_restriction, galerkin_product, left_multiplication
from repro.apps.bc import batched_betweenness_centrality
from repro.apps.squaring import run_squaring
from repro.core import (
    SparsityAware1D,
    SplitSpGEMM3D,
    estimate_communication,
    make_algorithm,
)
from repro.matrices import load_dataset
from repro.partition import (
    apply_ordering,
    ordering_from_partition,
    partition_matrix,
)
from repro.runtime import SimulatedCluster
from repro.sparse import local_spgemm


class TestSquaringClaims:
    def test_fig4_hv15r_no_permutation_beats_random_by_large_factor(self):
        """Fig 4/§IV-A-1: on hv15r the original ordering cuts communication
        time by a large factor vs random permutation (16.9× in the paper)."""
        A = load_dataset("hv15r", scale=0.5)
        none_run = run_squaring(A, algorithm="1d", strategy="none", nprocs=16, block_split=32)
        rand_run = run_squaring(A, algorithm="1d", strategy="random", nprocs=16, block_split=32)
        assert none_run.result.comm_time * 3 < rand_run.result.comm_time
        assert none_run.spgemm_time < rand_run.spgemm_time

    def test_fig5_communication_volume_reduction_is_large(self):
        """Fig 5: the right permutation reduces communication volume by ~96%;
        at laptop scale we require at least a 70% reduction."""
        A = load_dataset("hv15r", scale=0.5)
        none_run = run_squaring(A, algorithm="1d", strategy="none", nprocs=16, block_split=32)
        rand_run = run_squaring(A, algorithm="1d", strategy="random", nprocs=16, block_split=32)
        reduction = 1 - none_run.result.communication_volume / max(
            1, rand_run.result.communication_volume
        )
        assert reduction > 0.70

    def test_fig5_eukarya_metis_cuts_volume(self):
        """Fig 5(b): on eukarya, METIS partitioning (not the natural order)
        provides the volume reduction."""
        A = load_dataset("eukarya", scale=0.15)
        none_run = run_squaring(A, algorithm="1d", strategy="none", nprocs=8, seed=0)
        metis_run = run_squaring(A, algorithm="1d", strategy="metis", nprocs=8, seed=0)
        reduction = 1 - metis_run.result.communication_volume / max(
            1, none_run.result.communication_volume
        )
        assert reduction > 0.30

    def test_fig6_block_fetch_reduces_messages(self):
        """Fig 6: blocking the fetches sharply reduces RDMA message counts
        relative to per-column fetching.  The effect is largest when many
        scattered remote columns are needed, so the randomly permuted input
        (the worst case for column locality) is used here."""
        A = load_dataset("hv15r", scale=0.5)
        per_column = run_squaring(
            A, algorithm="1d", strategy="random", nprocs=8, block_split=10**6
        )
        blocked = run_squaring(
            A, algorithm="1d", strategy="random", nprocs=8, block_split=8
        )
        assert blocked.result.rdma_gets < per_column.result.rdma_gets / 4
        # and the volume grows only modestly
        assert (
            blocked.result.communication_volume
            <= 3 * per_column.result.communication_volume
        )

    def test_fig9_1d_beats_2d_and_3d_on_clustered_dataset(self):
        """Fig 9 (hv15r/queen): the sparsity-aware 1D algorithm outperforms the
        2D and 3D baselines on clustered inputs, kernel time only."""
        A = load_dataset("queen", scale=0.5)
        p = 16
        run_1d = run_squaring(A, algorithm="1d", strategy="none", nprocs=p, block_split=16)
        run_2d = run_squaring(A, algorithm="2d", strategy="random", nprocs=p)
        run_3d = run_squaring(A, algorithm="3d", strategy="random", nprocs=p, layers=4)
        assert run_1d.spgemm_time < run_2d.spgemm_time
        assert run_1d.spgemm_time < run_3d.spgemm_time

    def test_fig9_work_is_split_across_processes(self):
        """Fig 9 (laptop-scale caveat): at the paper's sizes the 1D algorithm
        strong-scales; at this reproduction's sizes the α (latency) terms
        dominate past ~16 processes, so the test asserts the part of strong
        scaling that is size-independent — the computation per rank shrinks
        proportionally and the total never blows up."""
        A = load_dataset("hv15r", scale=1.0)
        runs = {
            p: run_squaring(A, algorithm="1d", strategy="none", nprocs=p, block_split=32)
            for p in (4, 16)
        }
        assert runs[16].result.comp_time < runs[4].result.comp_time
        assert runs[16].spgemm_time < 3 * runs[4].spgemm_time

    def test_discussion_cv_mema_criterion_separates_datasets(self):
        """§V-A: CV/memA ≈ 1 for eukarya-like inputs, well under the 30%
        threshold for clustered ones."""
        clustered = load_dataset("queen", scale=0.1)
        scattered = load_dataset("eukarya", scale=0.12)
        cv_clustered = estimate_communication(clustered, nprocs=16).cv_over_mema
        cv_scattered = estimate_communication(scattered, nprocs=16).cv_over_mema
        assert cv_clustered < 0.30
        assert cv_scattered > 0.55


class TestRestrictionClaims:
    def test_table3_restriction_structure(self):
        """Table III: one nonzero per row, far fewer columns than rows."""
        for name in ("queen", "hv15r", "nlpkkt"):
            A = load_dataset(name, scale=0.08)
            rest = build_restriction(A, seed=0)
            assert rest.R.nnz == rest.R.nrows
            assert rest.n_coarse < rest.n_fine

    def test_fig10_rta_natural_order_beats_random(self):
        """Fig 10: on queen, using the original dataset beats random
        permutation for RᵀA."""
        A = load_dataset("queen", scale=0.1)
        rest = build_restriction(A, seed=0)
        from repro.partition import apply_symmetric_permutation, random_symmetric_permutation
        from repro.sparse.ops import transpose

        natural = left_multiplication(rest.R, A, algorithm="1d", nprocs=8)
        perm = random_symmetric_permutation(A.nrows, seed=1)
        A_perm = apply_symmetric_permutation(A, perm)
        R_perm = rest.R.permute(row_perm=perm)  # rows of R follow the fine grid
        permuted = left_multiplication(R_perm, A_perm, algorithm="1d", nprocs=8)
        assert natural.comm_time < permuted.comm_time

    def test_fig11_rta_1d_beats_2d(self):
        """Fig 11: 1D is the fastest variant on the restriction product."""
        A = load_dataset("queen", scale=0.5)
        rest = build_restriction(A, seed=0)
        t_1d = left_multiplication(rest.R, A, algorithm="1d", nprocs=16).elapsed_time
        t_2d = left_multiplication(rest.R, A, algorithm="2d", nprocs=16).elapsed_time
        assert t_1d < t_2d

    def test_fig12_outer_product_beats_1d_on_right_multiplication(self):
        """Fig 12: the outer-product algorithm wins on (RᵀA)·R."""
        A = load_dataset("queen", scale=0.1)
        g_outer = galerkin_product(
            A, left_algorithm="1d", right_algorithm="outer-product", nprocs=16
        )
        g_1d = galerkin_product(
            A, left_algorithm="1d", right_algorithm="1d", nprocs=16
        )
        assert g_outer.right.elapsed_time < g_1d.right.elapsed_time

    def test_galerkin_correctness_on_all_datasets(self):
        for name in ("queen", "nlpkkt"):
            A = load_dataset(name, scale=0.05)
            g = galerkin_product(A, nprocs=4)
            from repro.sparse.ops import transpose

            expected = local_spgemm(
                local_spgemm(transpose(g.restriction.R), A), g.restriction.R
            )
            np.testing.assert_allclose(
                g.coarse.to_dense(), expected.to_dense(), atol=1e-8
            )


class TestBCClaims:
    def test_fig13_metis_reduces_1d_bc_communication_on_eukarya(self):
        """Fig 13 (eukarya): the 1D algorithm needs METIS partitioning on this
        input; with it, the per-iteration fetch volume drops relative to the
        natural ordering.  (The paper's absolute-time win over 2D/3D needs
        paper-scale inputs where volume, not latency, dominates — see
        EXPERIMENTS.md.)"""
        A = load_dataset("eukarya", scale=0.1)
        ordering = ordering_from_partition(partition_matrix(A, 4, seed=0))
        A_metis = apply_ordering(A, ordering)
        sources = list(range(16))

        def total_volume(mat):
            res = batched_betweenness_centrality(
                mat, sources=sources, batch_size=16, algorithm="1d", nprocs=4
            )
            return sum(r.communication_volume for r in res.iterations)

        assert total_volume(A_metis) < total_volume(A)

    def test_fig14_1d_moves_far_less_data_than_2d_3d_on_hv15r(self):
        """Fig 14 (hv15r): the sparsity-aware 1D algorithm's BC iterations move
        several times less data than the 2D/3D baselines, which broadcast
        blocks of A every BFS level regardless of what the frontier needs."""
        A = load_dataset("hv15r", scale=0.5)
        sources = list(range(0, 64, 4))

        def total_volume(algorithm):
            res = batched_betweenness_centrality(
                A, sources=sources, batch_size=16, algorithm=algorithm, nprocs=4
            )
            return sum(r.communication_volume for r in res.iterations)

        vol_1d = total_volume("1d")
        vol_2d = total_volume("2d")
        vol_3d = total_volume("3d")
        assert vol_1d * 2 < vol_2d
        assert vol_1d * 2 < vol_3d

    def test_fig14_all_algorithms_agree_on_scores(self):
        """Whatever the distributed algorithm, the BC scores are identical —
        the comparison in Figs 13-14 is about time, not output."""
        A = load_dataset("hv15r", scale=0.08)
        sources = list(range(8))
        reference = batched_betweenness_centrality(
            A, sources=sources, batch_size=8, algorithm="local"
        ).scores
        for algorithm in ("1d", "3d"):
            scores = batched_betweenness_centrality(
                A, sources=sources, batch_size=8, algorithm=algorithm, nprocs=4
            ).scores
            np.testing.assert_allclose(scores, reference, atol=1e-8)

    def test_fig14_memory_pressure_of_2d_exceeds_1d(self):
        """Fig 14: the 2D algorithm ran out of memory in the backward sweep;
        its modelled peak memory must exceed the 1D algorithm's."""
        A = load_dataset("hv15r", scale=0.2)
        cluster_1d = SimulatedCluster(4)
        SparsityAware1D().multiply(A, A, cluster_1d)
        cluster_2d = SimulatedCluster(4)
        make_algorithm("2d").multiply(A, A, cluster_2d)
        assert (
            cluster_2d.ledger.max_peak_memory() > cluster_1d.ledger.max_peak_memory()
        )

"""Unit tests for the 1D / 2D / 3D distributions and redistribution."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.distribution import (
    DistributedBlocks2D,
    DistributedColumns1D,
    DistributedRows1D,
    LayerSplit3D,
    ProcessGrid2D,
    ProcessGrid3D,
    block_bounds_from_sizes,
    columns_to_rows_1d,
    estimate_redistribution_bytes,
    rows_to_columns_1d,
    square_grid_dims,
    valid_layer_counts,
)
from repro.runtime import SimulatedCluster
from repro.sparse import as_csc

from conftest import assert_sparse_equal


def _random(m, n, density, seed):
    return as_csc(sp.random(m, n, density=density, random_state=seed, format="csc"))


# ----------------------------------------------------------------------
# 1D column distribution
# ----------------------------------------------------------------------
class TestColumns1D:
    def test_roundtrip_even_split(self, small_square):
        d = DistributedColumns1D.from_global(small_square, 4)
        assert_sparse_equal(d.to_global(), small_square)

    def test_roundtrip_uneven_split(self, small_square):
        # 60 columns over 7 processes: first 4 get 9 columns, rest get 8.
        d = DistributedColumns1D.from_global(small_square, 7)
        sizes = [e - s for s, e in d.bounds]
        assert sum(sizes) == small_square.ncols
        assert max(sizes) - min(sizes) <= 1
        assert_sparse_equal(d.to_global(), small_square)

    def test_custom_bounds(self, small_square):
        bounds = block_bounds_from_sizes([10, 30, 20])
        d = DistributedColumns1D.from_global(small_square, 3, bounds=bounds)
        assert d.column_bounds(1) == (10, 40)
        assert d.local(1).ncols == 30
        assert_sparse_equal(d.to_global(), small_square)

    def test_bounds_must_cover_all_columns(self, small_square):
        with pytest.raises(ValueError):
            DistributedColumns1D.from_global(
                small_square, 2, bounds=[(0, 10), (10, 50)]
            )

    def test_bounds_must_be_contiguous(self, small_square):
        with pytest.raises(ValueError):
            DistributedColumns1D.from_global(
                small_square, 2, bounds=[(0, 10), (20, 60)]
            )

    def test_nprocs_must_be_positive(self, small_square):
        with pytest.raises(ValueError):
            DistributedColumns1D.from_global(small_square, 0)

    def test_owner_of_column(self, small_square):
        d = DistributedColumns1D.from_global(small_square, 4)
        for rank in range(4):
            s, e = d.column_bounds(rank)
            assert d.owner_of_column(s) == rank
            assert d.owner_of_column(e - 1) == rank

    def test_owner_of_column_out_of_range(self, small_square):
        d = DistributedColumns1D.from_global(small_square, 4)
        with pytest.raises(IndexError):
            d.owner_of_column(small_square.ncols)

    def test_nnz_conserved(self, small_square):
        d = DistributedColumns1D.from_global(small_square, 5)
        assert d.nnz == small_square.nnz
        assert d.local_nnz_per_rank().sum() == small_square.nnz

    def test_global_column_ids(self, small_square):
        d = DistributedColumns1D.from_global(small_square, 3)
        ids = np.concatenate([d.global_column_ids(r) for r in range(3)])
        np.testing.assert_array_equal(ids, np.arange(small_square.ncols))

    def test_nonzero_column_ids_match_global(self, small_square):
        d = DistributedColumns1D.from_global(small_square, 4)
        np.testing.assert_array_equal(
            np.sort(d.nonzero_column_ids()), small_square.nonzero_columns()
        )

    def test_column_nnz_global(self, small_square):
        d = DistributedColumns1D.from_global(small_square, 4)
        np.testing.assert_array_equal(d.column_nnz_global(), small_square.column_nnz())

    def test_nonzero_rows_mask_per_rank(self, small_square):
        d = DistributedColumns1D.from_global(small_square, 4)
        combined = np.zeros(small_square.nrows, dtype=bool)
        for r in range(4):
            combined |= d.nonzero_rows_mask(r)
        np.testing.assert_array_equal(combined, small_square.nonzero_rows_mask())

    def test_more_procs_than_columns(self):
        tiny = _random(5, 3, 0.5, seed=1)
        d = DistributedColumns1D.from_global(tiny, 5)
        assert_sparse_equal(d.to_global(), tiny)
        assert sum(m.ncols for m in d.locals_) == 3


# ----------------------------------------------------------------------
# 1D row distribution
# ----------------------------------------------------------------------
class TestRows1D:
    def test_roundtrip(self, small_rect):
        d = DistributedRows1D.from_global(small_rect, 4)
        assert_sparse_equal(d.to_global(), small_rect)

    def test_owner_of_row(self, small_rect):
        d = DistributedRows1D.from_global(small_rect, 4)
        for rank in range(4):
            s, e = d.row_bounds(rank)
            assert d.owner_of_row(s) == rank

    def test_local_shapes(self, small_rect):
        d = DistributedRows1D.from_global(small_rect, 3)
        assert sum(m.nrows for m in d.locals_) == small_rect.nrows
        for m in d.locals_:
            assert m.ncols == small_rect.ncols

    def test_custom_bounds_validation(self, small_rect):
        with pytest.raises(ValueError):
            DistributedRows1D.from_global(small_rect, 2, bounds=[(0, 10), (15, 50)])

    def test_nnz_conserved(self, small_rect):
        d = DistributedRows1D.from_global(small_rect, 6)
        assert d.nnz == small_rect.nnz


# ----------------------------------------------------------------------
# 2D block distribution
# ----------------------------------------------------------------------
class TestBlocks2D:
    def test_square_grid_dims(self):
        assert square_grid_dims(16) == (4, 4)
        with pytest.raises(ValueError):
            square_grid_dims(6)

    def test_grid_rank_coords_roundtrip(self):
        grid = ProcessGrid2D.square(9)
        for rank in range(9):
            i, j = grid.coords_of(rank)
            assert grid.rank_of(i, j) == rank

    def test_grid_row_col_ranks(self):
        grid = ProcessGrid2D.square(4)
        assert grid.row_ranks(0) == [0, 1]
        assert grid.col_ranks(1) == [1, 3]

    def test_grid_bad_coords(self):
        grid = ProcessGrid2D.square(4)
        with pytest.raises(IndexError):
            grid.rank_of(2, 0)
        with pytest.raises(IndexError):
            grid.coords_of(4)

    def test_roundtrip(self, small_square):
        d = DistributedBlocks2D.from_global(small_square, ProcessGrid2D.square(4))
        assert_sparse_equal(d.to_global(), small_square)

    def test_roundtrip_rectangular(self, small_rect):
        d = DistributedBlocks2D.from_global(small_rect, ProcessGrid2D(prows=2, pcols=3))
        assert_sparse_equal(d.to_global(), small_rect)

    def test_block_shapes_tile_matrix(self, small_square):
        grid = ProcessGrid2D.square(9)
        d = DistributedBlocks2D.from_global(small_square, grid)
        total_rows = sum(d.block_shape(i, 0)[0] for i in range(3))
        total_cols = sum(d.block_shape(0, j)[1] for j in range(3))
        assert total_rows == small_square.nrows
        assert total_cols == small_square.ncols

    def test_nnz_conserved(self, small_square):
        d = DistributedBlocks2D.from_global(small_square, ProcessGrid2D.square(4))
        assert d.nnz == small_square.nnz
        assert d.nnz_per_rank().sum() == small_square.nnz


# ----------------------------------------------------------------------
# 3D layer split
# ----------------------------------------------------------------------
class Test3D:
    def test_valid_layer_counts(self):
        counts = valid_layer_counts(16)
        assert 1 in counts and 4 in counts and 16 in counts
        assert 3 not in counts  # 16/3 not integer

    def test_grid_from_nprocs(self):
        grid = ProcessGrid3D.from_nprocs(8, 2)
        assert (grid.prows, grid.pcols, grid.layers) == (2, 2, 2)
        assert grid.nprocs == 8

    def test_grid_invalid_layers(self):
        with pytest.raises(ValueError):
            ProcessGrid3D.from_nprocs(8, 3)
        with pytest.raises(ValueError):
            ProcessGrid3D.from_nprocs(8, 4)  # 8/4=2 not a perfect square

    def test_rank_coords_roundtrip(self):
        grid = ProcessGrid3D.from_nprocs(8, 2)
        for rank in range(8):
            i, j, l = grid.coords_of(rank)
            assert grid.rank_of(i, j, l) == rank

    def test_fiber_ranks(self):
        grid = ProcessGrid3D.from_nprocs(8, 2)
        fibers = grid.fiber_ranks(0, 0)
        assert len(fibers) == 2
        assert len(set(fibers)) == 2

    def test_layer_split_covers_inner_dimension(self, small_square):
        grid = ProcessGrid3D.from_nprocs(8, 2)
        split = LayerSplit3D.from_global(small_square, small_square, grid)
        covered = sum(e - s for s, e in split.inner_bounds)
        assert covered == small_square.ncols
        # Layer slices reassemble the operands.
        total_a_nnz = sum(d.nnz for d in split.a_layers)
        total_b_nnz = sum(d.nnz for d in split.b_layers)
        assert total_a_nnz == small_square.nnz
        assert total_b_nnz == small_square.nnz

    def test_layer_split_dimension_mismatch(self, small_square, small_rect):
        grid = ProcessGrid3D.from_nprocs(4, 1)
        with pytest.raises(ValueError):
            LayerSplit3D.from_global(small_rect, small_square, grid)


# ----------------------------------------------------------------------
# Redistribution
# ----------------------------------------------------------------------
class TestRedistribute:
    def test_columns_to_rows_preserves_matrix(self, small_square):
        cols = DistributedColumns1D.from_global(small_square, 4)
        rows = columns_to_rows_1d(cols)
        assert_sparse_equal(rows.to_global(), small_square)

    def test_rows_to_columns_preserves_matrix(self, small_square):
        rows = DistributedRows1D.from_global(small_square, 4)
        cols = rows_to_columns_1d(rows)
        assert_sparse_equal(cols.to_global(), small_square)

    def test_redistribution_charges_cluster(self, small_square):
        cols = DistributedColumns1D.from_global(small_square, 4)
        cluster = SimulatedCluster(4)
        columns_to_rows_1d(cols, cluster=cluster)
        assert cluster.ledger.total_bytes() > 0
        assert "redistribute" in cluster.ledger.phase_order

    def test_redistribution_cluster_size_mismatch(self, small_square):
        cols = DistributedColumns1D.from_global(small_square, 4)
        with pytest.raises(ValueError):
            columns_to_rows_1d(cols, cluster=SimulatedCluster(3))

    def test_estimate_redistribution_bytes(self, small_square):
        assert estimate_redistribution_bytes(small_square, 1) == 0
        est4 = estimate_redistribution_bytes(small_square, 4)
        est16 = estimate_redistribution_bytes(small_square, 16)
        assert 0 < est4 < est16 <= small_square.nnz * 16

"""Property-based tests (hypothesis) on the core data structures and invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import SparsityAware1D, plan_block_fetch
from repro.partition import (
    apply_symmetric_permutation,
    invert_permutation,
    partition_matrix,
    random_symmetric_permutation,
)
from repro.runtime import SimulatedCluster, ZERO_COST
from repro.sparse import (
    CSCMatrix,
    DCSCMatrix,
    add_matrices,
    local_spgemm,
    spgemm_flops,
    to_scipy,
)

# Shared hypothesis settings: the matrices are tiny, but simulated runs are
# not free, so cap example counts to keep the suite fast and deterministic.
FAST = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
@st.composite
def coo_matrix(draw, max_dim=12, max_entries=40, square=False):
    """Random small sparse matrix expressed as COO triplets."""
    nrows = draw(st.integers(min_value=1, max_value=max_dim))
    ncols = nrows if square else draw(st.integers(min_value=1, max_value=max_dim))
    n_entries = draw(st.integers(min_value=0, max_value=max_entries))
    rows = draw(
        st.lists(st.integers(0, nrows - 1), min_size=n_entries, max_size=n_entries)
    )
    cols = draw(
        st.lists(st.integers(0, ncols - 1), min_size=n_entries, max_size=n_entries)
    )
    vals = draw(
        st.lists(
            st.floats(-10, 10, allow_nan=False, allow_infinity=False, width=32),
            min_size=n_entries,
            max_size=n_entries,
        )
    )
    return CSCMatrix.from_coo(nrows, ncols, rows, cols, vals)


@st.composite
def matrix_pair(draw, max_dim=10):
    """A multiplication-compatible pair of random sparse matrices."""
    m = draw(st.integers(1, max_dim))
    k = draw(st.integers(1, max_dim))
    n = draw(st.integers(1, max_dim))
    A = draw(coo_matrix(max_dim=max(m, k)))
    B = draw(coo_matrix(max_dim=max(k, n)))
    # Rebuild with the agreed shapes (reusing entries that fit).
    ra, ca, va = A.to_coo()
    keep_a = (ra < m) & (ca < k)
    rb, cb, vb = B.to_coo()
    keep_b = (rb < k) & (cb < n)
    return (
        CSCMatrix.from_coo(m, k, ra[keep_a], ca[keep_a], va[keep_a]),
        CSCMatrix.from_coo(k, n, rb[keep_b], cb[keep_b], vb[keep_b]),
    )


# ----------------------------------------------------------------------
# Container invariants
# ----------------------------------------------------------------------
class TestContainerProperties:
    @FAST
    @given(coo_matrix())
    def test_csc_dcsc_roundtrip(self, A):
        assert DCSCMatrix.from_csc(A).to_csc().allclose(A)

    @FAST
    @given(coo_matrix())
    def test_transpose_is_involution(self, A):
        assert A.transpose().transpose().allclose(A)

    @FAST
    @given(coo_matrix())
    def test_scipy_roundtrip(self, A):
        from repro.sparse import csc_from_scipy

        assert csc_from_scipy(to_scipy(A)).allclose(A)

    @FAST
    @given(coo_matrix())
    def test_column_nnz_sums_to_nnz(self, A):
        assert int(A.column_nnz().sum()) == A.nnz
        assert int(A.row_nnz().sum()) == A.nnz

    @FAST
    @given(coo_matrix(square=True), st.integers(0, 2**31 - 1))
    def test_symmetric_permutation_preserves_multiset_of_values(self, A, seed):
        perm = random_symmetric_permutation(A.nrows, seed=seed)
        permuted = apply_symmetric_permutation(A, perm)
        np.testing.assert_allclose(
            np.sort(permuted.data), np.sort(A.data), atol=1e-12
        )

    @FAST
    @given(st.integers(1, 200), st.integers(0, 2**31 - 1))
    def test_permutation_inverse_property(self, n, seed):
        perm = random_symmetric_permutation(n, seed=seed)
        inv = invert_permutation(perm)
        np.testing.assert_array_equal(perm[inv], np.arange(n))


# ----------------------------------------------------------------------
# Kernel invariants
# ----------------------------------------------------------------------
class TestKernelProperties:
    @FAST
    @given(matrix_pair())
    def test_local_spgemm_matches_scipy(self, pair):
        A, B = pair
        C = local_spgemm(A, B)
        expected = (to_scipy(A) @ to_scipy(B)).toarray()
        np.testing.assert_allclose(C.to_dense(), expected, atol=1e-8)

    @FAST
    @given(matrix_pair())
    def test_all_kernels_agree(self, pair):
        A, B = pair
        dense = local_spgemm(A, B, kernel="dense").to_dense()
        for kernel in ("heap", "hash", "hybrid"):
            np.testing.assert_allclose(
                local_spgemm(A, B, kernel=kernel).to_dense(), dense, atol=1e-8
            )

    @FAST
    @given(matrix_pair())
    def test_output_nnz_bounded_by_flops(self, pair):
        A, B = pair
        C = local_spgemm(A, B)
        # Stored entries can exceed flops only through explicitly stored zeros
        # in the operands; prune them for the bound.
        assert C.prune_explicit_zeros().nnz <= max(spgemm_flops(A, B), 0) or C.nnz == 0

    @FAST
    @given(coo_matrix(), coo_matrix())
    def test_addition_is_commutative(self, A, B):
        if A.shape != B.shape:
            return
        np.testing.assert_allclose(
            add_matrices([A, B]).to_dense(), add_matrices([B, A]).to_dense(), atol=1e-10
        )

    @FAST
    @given(coo_matrix(square=True))
    def test_distributive_law(self, A):
        """(A + A)·A == A·A + A·A — exercises add + multiply consistency."""
        left = local_spgemm(add_matrices([A, A]), A)
        right = add_matrices([local_spgemm(A, A), local_spgemm(A, A)])
        np.testing.assert_allclose(left.to_dense(), right.to_dense(), atol=1e-8)


# ----------------------------------------------------------------------
# Block-fetch invariants
# ----------------------------------------------------------------------
class TestBlockFetchProperties:
    @FAST
    @given(
        st.integers(1, 200),
        st.integers(1, 64),
        st.floats(0.0, 1.0),
        st.integers(0, 2**31 - 1),
    )
    def test_plan_invariants(self, ncols, K, hit_rate, seed):
        rng = np.random.default_rng(seed)
        universe = 4 * ncols
        remote = np.sort(rng.choice(universe, size=ncols, replace=False))
        hit = rng.random(universe) < hit_rate
        plan = plan_block_fetch(remote, hit, K)
        # 1. Message count bounded by K.
        assert plan.M <= K
        # 2. Every required column is covered.
        assert np.all(np.isin(plan.required_positions, plan.covered_positions))
        # 3. Intervals are disjoint and ordered.
        for (s0, e0), (s1, e1) in zip(plan.intervals, plan.intervals[1:]):
            assert e0 <= s1
        # 4. Covered positions equal the union of the intervals.
        covered = sum(e - s for s, e in plan.intervals)
        assert covered == plan.fetched_columns


# ----------------------------------------------------------------------
# Distributed algorithm invariants
# ----------------------------------------------------------------------
class TestDistributedProperties:
    @FAST
    @given(coo_matrix(square=True, max_dim=16, max_entries=60), st.integers(1, 5))
    def test_1d_squaring_matches_local(self, A, nprocs):
        cluster = SimulatedCluster(nprocs, cost_model=ZERO_COST)
        result = SparsityAware1D(block_split=4).multiply(A, A, cluster)
        expected = local_spgemm(A, A)
        np.testing.assert_allclose(
            result.C.to_dense(), expected.to_dense(), atol=1e-8
        )

    @FAST
    @given(coo_matrix(square=True, max_dim=14, max_entries=50), st.integers(1, 4))
    def test_partition_is_total_and_in_range(self, A, nparts):
        result = partition_matrix(A, nparts, seed=0)
        assert result.parts.shape[0] == A.ncols
        if A.ncols:
            assert result.parts.min() >= 0
            assert result.parts.max() < nparts
        assert result.part_sizes().sum() == A.ncols

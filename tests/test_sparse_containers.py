"""Unit tests for the CSC / DCSC containers and scipy conversion."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.sparse import (
    CSCMatrix,
    DCSCMatrix,
    as_csc,
    as_dcsc,
    csc_from_scipy,
    dcsc_from_scipy,
    to_scipy,
)

from conftest import assert_sparse_equal


# ----------------------------------------------------------------------
# CSCMatrix construction
# ----------------------------------------------------------------------
class TestCSCConstruction:
    def test_empty_matrix_has_no_entries(self):
        m = CSCMatrix.empty(5, 7)
        assert m.shape == (5, 7)
        assert m.nnz == 0
        assert m.nzc() == 0
        assert m.to_dense().shape == (5, 7)
        assert not m.to_dense().any()

    def test_identity(self):
        m = CSCMatrix.identity(4)
        np.testing.assert_allclose(m.to_dense(), np.eye(4))
        assert m.nnz == 4

    def test_from_coo_basic(self):
        m = CSCMatrix.from_coo(3, 3, [0, 1, 2], [0, 1, 2], [1.0, 2.0, 3.0])
        np.testing.assert_allclose(np.diag(m.to_dense()), [1.0, 2.0, 3.0])

    def test_from_coo_sums_duplicates(self):
        m = CSCMatrix.from_coo(2, 2, [0, 0, 1], [0, 0, 1], [1.0, 2.0, 5.0])
        assert m.nnz == 2
        assert m.to_dense()[0, 0] == pytest.approx(3.0)

    def test_from_coo_last_wins_without_dedup_keeps_both(self):
        m = CSCMatrix.from_coo(
            2, 2, [0, 0], [0, 0], [1.0, 2.0], sum_duplicates=False
        )
        # Entries are kept separately but dense accumulation still sums them.
        assert m.nnz == 2
        assert m.to_dense()[0, 0] == pytest.approx(3.0)

    def test_from_coo_empty_input(self):
        m = CSCMatrix.from_coo(4, 5, [], [], [])
        assert m.nnz == 0
        assert m.shape == (4, 5)

    def test_from_dense_roundtrip(self, rng):
        dense = rng.random((6, 8))
        dense[dense < 0.6] = 0.0
        m = CSCMatrix.from_dense(dense)
        np.testing.assert_allclose(m.to_dense(), dense)

    def test_rows_sorted_within_columns(self, small_square):
        for j in range(small_square.ncols):
            rows, _ = small_square.column(j)
            assert np.all(np.diff(rows) > 0)

    def test_invalid_row_index_raises(self):
        with pytest.raises(ValueError):
            CSCMatrix.from_coo(2, 2, [5], [0], [1.0])

    def test_invalid_col_index_raises(self):
        with pytest.raises(ValueError):
            CSCMatrix.from_coo(2, 2, [0], [7], [1.0])

    def test_mismatched_triplets_raise(self):
        with pytest.raises(ValueError):
            CSCMatrix.from_coo(2, 2, [0, 1], [0], [1.0])

    def test_bad_indptr_raises(self):
        with pytest.raises(ValueError):
            CSCMatrix(2, 2, indptr=[0, 1], indices=[0], data=[1.0])

    def test_negative_dims_raise(self):
        with pytest.raises(ValueError):
            CSCMatrix(-1, 2, indptr=[0, 0, 0], indices=[], data=[])


# ----------------------------------------------------------------------
# CSCMatrix properties and access
# ----------------------------------------------------------------------
class TestCSCProperties:
    def test_column_nnz_matches_scipy(self, small_square):
        s = to_scipy(small_square)
        np.testing.assert_array_equal(
            small_square.column_nnz(), np.diff(s.indptr)
        )

    def test_row_nnz_matches_scipy(self, small_square):
        s = to_scipy(small_square).tocsr()
        np.testing.assert_array_equal(small_square.row_nnz(), np.diff(s.indptr))

    def test_nonzero_columns(self):
        m = CSCMatrix.from_coo(4, 4, [0, 1], [0, 2], [1.0, 1.0])
        np.testing.assert_array_equal(m.nonzero_columns(), [0, 2])
        assert m.nzc() == 2

    def test_nonzero_rows_mask(self):
        m = CSCMatrix.from_coo(5, 3, [1, 3], [0, 2], [1.0, 1.0])
        mask = m.nonzero_rows_mask()
        np.testing.assert_array_equal(mask, [False, True, False, True, False])

    def test_memory_bytes_positive(self, small_square):
        assert small_square.memory_bytes() > 0

    def test_column_view(self, tiny_dense_pair):
        A, _, _ = tiny_dense_pair
        rows, vals = A.column(0)
        np.testing.assert_array_equal(rows, [0, 3])
        np.testing.assert_allclose(vals, [1.0, 5.0])

    def test_column_out_of_range(self, small_square):
        with pytest.raises(IndexError):
            small_square.column(small_square.ncols)

    def test_to_coo_roundtrip(self, small_square):
        r, c, v = small_square.to_coo()
        rebuilt = CSCMatrix.from_coo(*small_square.shape, r, c, v)
        assert_sparse_equal(rebuilt, small_square)

    def test_copy_is_independent(self, small_square):
        cp = small_square.copy()
        cp.data[:] = 0
        assert small_square.data.any()

    def test_astype_changes_dtype(self, small_square):
        m32 = small_square.astype(np.float32)
        assert m32.dtype == np.float32


# ----------------------------------------------------------------------
# CSCMatrix structural transforms
# ----------------------------------------------------------------------
class TestCSCTransforms:
    def test_extract_columns_order_preserved(self, small_square):
        cols = [5, 2, 9]
        sub = small_square.extract_columns(cols)
        assert sub.ncols == 3
        dense = small_square.to_dense()
        np.testing.assert_allclose(sub.to_dense(), dense[:, cols])

    def test_extract_columns_out_of_range(self, small_square):
        with pytest.raises(IndexError):
            small_square.extract_columns([small_square.ncols])

    def test_extract_column_range(self, small_square):
        sub = small_square.extract_column_range(10, 25)
        np.testing.assert_allclose(
            sub.to_dense(), small_square.to_dense()[:, 10:25]
        )

    def test_extract_column_range_empty(self, small_square):
        sub = small_square.extract_column_range(5, 5)
        assert sub.ncols == 0
        assert sub.nnz == 0

    def test_extract_column_range_invalid(self, small_square):
        with pytest.raises(IndexError):
            small_square.extract_column_range(10, 5)

    def test_transpose(self, small_rect):
        np.testing.assert_allclose(
            small_rect.transpose().to_dense(), small_rect.to_dense().T
        )

    def test_transpose_involution(self, small_rect):
        assert_sparse_equal(small_rect.transpose().transpose(), small_rect)

    def test_permute_rows_and_cols(self, small_square, rng):
        n = small_square.nrows
        rp = rng.permutation(n)
        cp = rng.permutation(n)
        permuted = small_square.permute(row_perm=rp, col_perm=cp)
        dense = small_square.to_dense()
        np.testing.assert_allclose(permuted.to_dense(), dense[np.ix_(rp, cp)])

    def test_permute_wrong_length_raises(self, small_square):
        with pytest.raises(ValueError):
            small_square.permute(row_perm=np.arange(3))

    def test_prune_explicit_zeros(self):
        m = CSCMatrix.from_coo(2, 2, [0, 1, 1], [0, 1, 0], [0.0, 2.0, 1e-15])
        pruned = m.prune_explicit_zeros(tol=1e-12)
        assert pruned.nnz == 1
        assert pruned.to_dense()[1, 1] == pytest.approx(2.0)

    def test_allclose_detects_difference(self, small_square):
        other = small_square.copy()
        other.data[0] += 1.0
        assert not small_square.allclose(other)
        assert small_square.allclose(small_square.copy())

    def test_allclose_shape_mismatch(self, small_square, small_rect):
        assert not small_square.allclose(small_rect)


# ----------------------------------------------------------------------
# DCSCMatrix
# ----------------------------------------------------------------------
class TestDCSC:
    def test_from_csc_roundtrip(self, small_square):
        d = DCSCMatrix.from_csc(small_square)
        assert_sparse_equal(d.to_csc(), small_square)

    def test_empty(self):
        d = DCSCMatrix.empty(4, 6)
        assert d.nnz == 0
        assert d.nzc == 0
        assert d.shape == (4, 6)

    def test_nzc_counts_only_nonempty_columns(self):
        csc = CSCMatrix.from_coo(5, 10, [0, 1, 2], [0, 0, 7], [1.0, 1.0, 1.0])
        d = DCSCMatrix.from_csc(csc)
        assert d.nzc == 2
        np.testing.assert_array_equal(d.jc, [0, 7])

    def test_memory_smaller_than_csc_for_hypersparse(self):
        # 3 entries in a 10000-column matrix: DCSC should be far smaller.
        csc = CSCMatrix.from_coo(100, 10000, [0, 1, 2], [5, 500, 5000], [1.0, 1.0, 1.0])
        d = DCSCMatrix.from_csc(csc)
        assert d.memory_bytes() < csc.memory_bytes() / 10

    def test_column_lookup_hit_and_miss(self):
        csc = CSCMatrix.from_coo(5, 10, [0, 1], [3, 8], [1.0, 2.0])
        d = DCSCMatrix.from_csc(csc)
        assert d.column_lookup(3) == 0
        assert d.column_lookup(8) == 1
        assert d.column_lookup(4) == -1

    def test_column_access_empty_column(self):
        csc = CSCMatrix.from_coo(5, 10, [0], [3], [1.0])
        d = DCSCMatrix.from_csc(csc)
        rows, vals = d.column(4)
        assert rows.size == 0 and vals.size == 0

    def test_column_access_out_of_range(self, small_square):
        d = DCSCMatrix.from_csc(small_square)
        with pytest.raises(IndexError):
            d.column(small_square.ncols)

    def test_from_coo(self):
        d = DCSCMatrix.from_coo(3, 3, [0, 1], [1, 1], [2.0, 3.0])
        assert d.nzc == 1
        np.testing.assert_allclose(d.to_dense()[:, 1], [2.0, 3.0, 0.0])

    def test_extract_columns(self, small_square):
        d = DCSCMatrix.from_csc(small_square)
        sub = d.extract_columns([4, 0, 10])
        np.testing.assert_allclose(
            sub.to_dense(), small_square.to_dense()[:, [4, 0, 10]]
        )

    def test_nonzero_rows_mask_matches_csc(self, small_square):
        d = DCSCMatrix.from_csc(small_square)
        np.testing.assert_array_equal(
            d.nonzero_rows_mask(), small_square.nonzero_rows_mask()
        )

    def test_copy_independent(self, small_square):
        d = DCSCMatrix.from_csc(small_square)
        cp = d.copy()
        cp.num[:] = 0
        assert d.num.any()

    def test_invalid_cp_raises(self):
        with pytest.raises(ValueError):
            DCSCMatrix(2, 2, jc=[0], cp=[0], ir=[0], num=[1.0])

    def test_jc_must_increase(self):
        with pytest.raises(ValueError):
            DCSCMatrix(2, 4, jc=[1, 1], cp=[0, 1, 2], ir=[0, 0], num=[1.0, 1.0])

    def test_allclose(self, small_square):
        d = DCSCMatrix.from_csc(small_square)
        assert d.allclose(small_square)


# ----------------------------------------------------------------------
# scipy conversion
# ----------------------------------------------------------------------
class TestConversion:
    def test_scipy_roundtrip_csc(self, small_square):
        s = to_scipy(small_square)
        back = csc_from_scipy(s)
        assert_sparse_equal(back, small_square)

    def test_scipy_roundtrip_dcsc(self, small_square):
        d = dcsc_from_scipy(to_scipy(small_square))
        assert_sparse_equal(d.to_csc(), small_square)

    def test_csc_from_scipy_accepts_csr(self, small_square):
        csr = to_scipy(small_square).tocsr()
        assert_sparse_equal(csc_from_scipy(csr), small_square)

    def test_csc_from_scipy_accepts_dense(self, rng):
        dense = rng.random((5, 5))
        dense[dense < 0.5] = 0
        assert_sparse_equal(csc_from_scipy(dense), dense)

    def test_as_csc_identity_for_csc(self, small_square):
        assert as_csc(small_square) is small_square

    def test_as_dcsc_identity_for_dcsc(self, small_square):
        d = as_dcsc(small_square)
        assert as_dcsc(d) is d

    def test_as_csc_from_dcsc(self, small_square):
        d = as_dcsc(small_square)
        assert_sparse_equal(as_csc(d), small_square)

    def test_to_scipy_rejects_other_types(self):
        with pytest.raises(TypeError):
            to_scipy(np.zeros((2, 2)))

    def test_conversion_preserves_dtype(self):
        s = sp.csc_matrix(np.array([[1, 0], [0, 2]], dtype=np.int64))
        m = csc_from_scipy(s)
        assert m.data.dtype == np.int64

"""Tests for the symbolic communication estimator and the CV/memA criterion."""

from __future__ import annotations

import pytest

from repro.core import (
    BYTES_PER_ENTRY,
    SparsityAware1D,
    estimate_communication,
    should_partition,
)
from repro.matrices.generators import banded, community_graph
from repro.partition import (
    apply_ordering,
    ordering_from_partition,
    partition_matrix,
)
from repro.runtime import SimulatedCluster


class TestEstimator:
    def test_estimate_matches_actual_fetch_volume(self):
        """The symbolic estimate must equal the bytes the real algorithm fetches."""
        A = banded(300, 12, symmetric=True, seed=1)
        est = estimate_communication(A, nprocs=4, block_split=64)
        cluster = SimulatedCluster(4)
        result = SparsityAware1D(block_split=64).multiply(A, A, cluster)
        assert est.total_bytes == int(result.info["fetch_bytes"])

    def test_estimate_message_counts_match(self):
        A = banded(300, 12, symmetric=True, seed=2)
        est = estimate_communication(A, nprocs=4, block_split=16)
        cluster = SimulatedCluster(4)
        result = SparsityAware1D(block_split=16).multiply(A, A, cluster)
        # Two windows are read per planned interval (row ids + values).
        assert result.rdma_gets == 2 * est.total_messages

    def test_banded_matrix_needs_little_communication(self):
        A = banded(400, 8, symmetric=True, seed=3)
        est = estimate_communication(A, nprocs=8)
        assert est.cv_over_mema < 0.3

    def test_scattered_matrix_needs_nearly_all_of_a(self):
        A = community_graph(400, 8, 16, mixing=0.05, shuffle=True, seed=4)
        est = estimate_communication(A, nprocs=8)
        assert est.cv_over_mema > 0.5

    def test_partitioning_reduces_the_ratio(self):
        A = community_graph(400, 8, 16, mixing=0.05, shuffle=True, seed=5)
        before = estimate_communication(A, nprocs=8).cv_over_mema
        ordering = ordering_from_partition(partition_matrix(A, 8, seed=0))
        permuted = apply_ordering(A, ordering)
        from repro.distribution import block_bounds_from_sizes

        bounds = block_bounds_from_sizes(ordering.block_sizes)
        after = estimate_communication(
            permuted, nprocs=8, a_bounds=bounds, b_bounds=bounds
        ).cv_over_mema
        assert after < before

    def test_mem_a_bytes(self, small_symmetric):
        est = estimate_communication(small_symmetric, nprocs=4)
        assert est.mem_a_bytes == small_symmetric.nnz * BYTES_PER_ENTRY

    def test_single_process_no_communication(self, small_symmetric):
        est = estimate_communication(small_symmetric, nprocs=1)
        assert est.total_bytes == 0
        assert est.cv_over_mema == 0.0

    def test_dimension_mismatch(self, small_square, small_rect):
        with pytest.raises(ValueError):
            estimate_communication(small_rect, small_square, nprocs=2)

    def test_should_partition_clustered_vs_scattered(self):
        clustered = banded(400, 8, symmetric=True, seed=6)
        scattered = community_graph(400, 8, 16, mixing=0.05, shuffle=True, seed=7)
        decision_clustered, ratio_clustered = should_partition(clustered, nprocs=8)
        decision_scattered, ratio_scattered = should_partition(scattered, nprocs=8)
        assert not decision_clustered
        assert decision_scattered
        assert ratio_clustered < ratio_scattered

    def test_should_partition_threshold(self):
        A = banded(200, 10, symmetric=True, seed=8)
        decision, ratio = should_partition(A, nprocs=4, threshold=0.0)
        assert decision == (ratio >= 0.0)

"""Tests for the matrix generators, dataset suite, statistics and I/O."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import estimate_communication
from repro.matrices import (
    DATASETS,
    bandwidth_profile,
    dataset_names,
    load_dataset,
    matrix_stats,
    read_matrix_market,
    spy_histogram,
    write_matrix_market,
)
from repro.matrices.generators import (
    banded,
    block_diagonal_clustered,
    community_graph,
    erdos_renyi,
    kkt_block,
    restriction_like,
    rmat_graph,
    saddle_point,
)


class TestGenerators:
    def test_erdos_renyi_shape_and_degree(self):
        A = erdos_renyi(500, 8, seed=1)
        assert A.shape == (500, 500)
        avg = A.nnz / 500
        assert 4 < avg < 24  # symmetric doubling + duplicate collisions

    def test_erdos_renyi_symmetric_flag(self):
        A = erdos_renyi(100, 6, symmetric=True, seed=2)
        dense = A.to_dense()
        np.testing.assert_allclose(dense, dense.T)

    def test_erdos_renyi_deterministic(self):
        a = erdos_renyi(100, 5, seed=3)
        b = erdos_renyi(100, 5, seed=3)
        assert a.allclose(b)

    def test_banded_entries_within_band(self):
        bw = 7
        A = banded(200, bw, symmetric=True, seed=4)
        maxdist, _ = bandwidth_profile(A)
        assert maxdist <= bw

    def test_banded_has_full_diagonal(self):
        A = banded(50, 3, seed=5)
        assert (np.abs(np.diag(A.to_dense())) > 0).all()

    def test_block_diagonal_clustered_is_clustered(self):
        A = block_diagonal_clustered(300, 10, seed=6)
        stats = matrix_stats(A)
        assert stats.near_diagonal_fraction > 0.5

    def test_block_diagonal_symmetric_option(self):
        A = block_diagonal_clustered(100, 5, symmetric=True, seed=7)
        dense = A.to_dense()
        np.testing.assert_allclose(dense, dense.T)

    def test_kkt_block_symmetric(self):
        A = kkt_block(200, 40, seed=8)
        dense = A.to_dense()
        np.testing.assert_allclose(dense, dense.T)
        assert A.shape == (240, 240)

    def test_saddle_point_unsymmetric(self):
        A = saddle_point(150, 30, seed=9)
        assert A.shape == (180, 180)
        assert not matrix_stats(A).symmetric

    def test_rmat_power_law_degrees(self):
        A = rmat_graph(9, edge_factor=8, seed=10)
        degrees = A.column_nnz()
        # heavy tail: max degree far above the mean
        assert degrees.max() > 4 * degrees.mean()

    def test_community_graph_shuffle_hides_structure(self):
        hidden = community_graph(300, 6, 12, mixing=0.05, shuffle=True, seed=11)
        exposed = community_graph(300, 6, 12, mixing=0.05, shuffle=False, seed=11)
        est_hidden = estimate_communication(hidden, nprocs=6).cv_over_mema
        est_exposed = estimate_communication(exposed, nprocs=6).cv_over_mema
        assert est_exposed < est_hidden

    def test_restriction_like_one_nnz_per_row(self):
        R = restriction_like(500, 40, seed=12)
        assert R.nnz == 500
        np.testing.assert_array_equal(R.row_nnz(), np.ones(500))

    def test_restriction_like_validation(self):
        with pytest.raises(ValueError):
            restriction_like(10, 20)


class TestSuite:
    def test_dataset_names_cover_table2(self):
        names = dataset_names()
        for expected in ("queen", "stokes", "eukarya", "hv15r", "nlpkkt"):
            assert expected in names

    @pytest.mark.parametrize("name", ["queen", "stokes", "eukarya", "hv15r", "nlpkkt"])
    def test_load_dataset_produces_square_matrix(self, name):
        A = load_dataset(name, scale=0.05)
        assert A.nrows == A.ncols
        assert A.nnz > 0

    def test_load_dataset_scale_controls_size(self):
        small = load_dataset("queen", scale=0.05)
        large = load_dataset("queen", scale=0.2)
        assert large.nrows > small.nrows

    def test_unknown_dataset_raises(self):
        with pytest.raises(ValueError):
            load_dataset("mycielskian42")

    @pytest.mark.parametrize("name", ["queen", "eukarya", "nlpkkt"])
    def test_symmetry_matches_spec(self, name):
        A = load_dataset(name, scale=0.05)
        assert matrix_stats(A).symmetric == DATASETS[name].symmetric

    @pytest.mark.parametrize("name", ["stokes", "hv15r"])
    def test_unsymmetric_datasets(self, name):
        A = load_dataset(name, scale=0.05)
        assert not matrix_stats(A).symmetric

    def test_clustered_vs_scattered_regimes(self):
        """The defining property of the suite: hv15r/queen-like inputs have an
        exploitable ordering, the eukarya-like input does not."""
        clustered = load_dataset("hv15r", scale=0.1)
        scattered = load_dataset("eukarya", scale=0.1)
        cv_clustered = estimate_communication(clustered, nprocs=8).cv_over_mema
        cv_scattered = estimate_communication(scattered, nprocs=8).cv_over_mema
        assert cv_clustered < 0.4
        assert cv_scattered > 0.6

    def test_spec_metadata_matches_paper(self):
        assert DATASETS["hv15r"].paper_nrows == 2_017_169
        assert DATASETS["eukarya"].paper_best_strategy == "metis"
        assert DATASETS["queen"].paper_best_strategy == "none"


class TestStats:
    def test_matrix_stats_fields(self, small_symmetric):
        stats = matrix_stats(small_symmetric, "test")
        assert stats.nrows == small_symmetric.nrows
        assert stats.nnz == small_symmetric.nnz
        assert stats.symmetric
        row = stats.as_row()
        assert row["matrix"] == "test"
        assert row["symmetric"] == "Yes"

    def test_spy_histogram_total_equals_nnz(self, small_square):
        grid = spy_histogram(small_square, bins=8)
        assert grid.sum() == small_square.nnz
        assert grid.shape == (8, 8)

    def test_spy_histogram_banded_mass_on_diagonal(self):
        A = banded(256, 4, symmetric=True, seed=13)
        grid = spy_histogram(A, bins=16)
        diag_mass = np.trace(grid)
        assert diag_mass > 0.8 * grid.sum()

    def test_bandwidth_profile_of_diagonal_matrix(self):
        from repro.sparse import CSCMatrix

        I = CSCMatrix.identity(10)
        assert bandwidth_profile(I) == (0, 0.0)

    def test_empty_matrix_stats(self):
        from repro.sparse import CSCMatrix

        stats = matrix_stats(CSCMatrix.empty(4, 4))
        assert stats.nnz == 0
        assert stats.max_nnz_per_column == 0


class TestIO:
    def test_matrix_market_roundtrip(self, tmp_path, small_square):
        path = tmp_path / "matrix.mtx"
        write_matrix_market(path, small_square)
        back = read_matrix_market(path)
        np.testing.assert_allclose(back.to_dense(), small_square.to_dense(), atol=1e-12)

    def test_matrix_market_roundtrip_dcsc(self, tmp_path, small_square):
        from repro.sparse import as_dcsc

        path = tmp_path / "matrix_dcsc.mtx"
        write_matrix_market(path, as_dcsc(small_square))
        back = read_matrix_market(path)
        np.testing.assert_allclose(back.to_dense(), small_square.to_dense(), atol=1e-12)

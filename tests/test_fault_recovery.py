"""Recovery-to-equality suite: for every named fault point, an
interrupted-then-recovered sweep must leave the store byte-identical to a
clean serial run.

The crash matrix drives a real scheduler in a subprocess with
``REPRO_FAULT_PLAN`` set; the injected ``os._exit`` (exit code 70) is the
in-process analogue of ``kill -9``.  The shared ``REPRO_FAULT_STATE``
counter file ensures a fault that fired before the crash does not fire
again during recovery.  The randomized test replays the journal from
arbitrary truncation prefixes paired with a consistent store prefix.
"""

from __future__ import annotations

import os
import random
import shutil
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

import repro
from repro.experiments import ResultStore, RunConfig, Scheduler, run_grid
from repro.experiments.faults import CRASH_EXIT_CODE
from repro.experiments.journal import Journal
from repro.matrices.transport import SEGMENT_PREFIX

#: the grid every driver run executes (must match _configs below)
_NPROCS = (2, 4, 8, 16)

#: generic scheduler driver: ``run`` submits the grid; ``resume`` adopts
#: interrupted journal jobs first, then submits the same grid (idempotent
#: — attaches / cache-hits — so recovery converges even from a journal
#: prefix that lost the job-submitted record)
DRIVER = textwrap.dedent(
    """
    import sys
    from repro.experiments import RunConfig, Scheduler

    mode, store, journal, workers = (
        sys.argv[1], sys.argv[2], sys.argv[3], int(sys.argv[4])
    )
    configs = [
        RunConfig(dataset="hv15r", nprocs=p, block_split=16, scale=0.05)
        for p in (2, 4, 8, 16)
    ]
    scheduler = Scheduler(
        workers=workers, store=store, journal=journal, retry_backoff=0.0
    )
    try:
        handles = []
        if mode == "resume":
            handles.extend(scheduler.adopt())
        handles.append(scheduler.submit(configs))
        for handle in handles:
            handle.wait(timeout=180)
    finally:
        scheduler.shutdown()
    """
)


def _configs() -> list:
    return [
        RunConfig(dataset="hv15r", nprocs=p, block_split=16, scale=0.05)
        for p in _NPROCS
    ]


@pytest.fixture(scope="module")
def baseline(tmp_path_factory) -> bytes:
    """Store bytes of a clean, serial, uninterrupted run of the grid."""
    store = ResultStore(tmp_path_factory.mktemp("baseline") / "clean.jsonl")
    run_grid(_configs(), workers=0, store=store)
    return store.path.read_bytes()


def _drive(tmp_path: Path, mode: str, *, plan: str = "", workers: int = 2,
           extra_env: dict = None) -> subprocess.CompletedProcess:
    script = tmp_path / "driver.py"
    script.write_text(DRIVER, encoding="utf-8")
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        str(Path(repro.__file__).resolve().parent.parent)
        + os.pathsep + env.get("PYTHONPATH", "")
    )
    env["REPRO_FAULT_PLAN"] = plan
    env["REPRO_FAULT_STATE"] = str(tmp_path / "fault-state.json")
    env.pop("REPRO_TASK_TIMEOUT", None)
    env.pop("REPRO_MAX_RETRIES", None)
    for key, value in (extra_env or {}).items():
        env[key] = value
    return subprocess.run(
        [sys.executable, str(script), mode, str(tmp_path / "store.jsonl"),
         str(tmp_path / "journal"), str(workers)],
        env=env, capture_output=True, text=True, timeout=300,
    )


def _assert_no_orphan_segments() -> None:
    """No transport segment in /dev/shm belongs to a dead process."""
    from repro.matrices.transport import _pid_alive

    shm = Path("/dev/shm")
    if not shm.is_dir():        # pragma: no cover - non-Linux
        return
    leaked = []
    for entry in shm.glob(SEGMENT_PREFIX + "*"):
        pid_part = entry.name[len(SEGMENT_PREFIX):].split("_", 1)[0]
        if not (pid_part.isdigit() and _pid_alive(int(pid_part))):
            leaked.append(entry.name)
    assert not leaked, f"leaked shm segments: {leaked}"


class TestCrashRecoveryMatrix:
    """Inject a crash at each named kill/torn point, restart, and require
    the recovered store to be byte-identical to the clean baseline."""

    @pytest.mark.parametrize("plan", [
        "kill-before-dispatch:2",
        "kill-after-execute-before-persist:2",
        "torn-journal-write:1",     # tears the job-submitted record itself
        "torn-journal-write:4",
    ])
    def test_interrupted_then_recovered_store_is_byte_identical(
        self, tmp_path, baseline, plan
    ):
        crashed = _drive(tmp_path, "run", plan=plan)
        assert crashed.returncode == CRASH_EXIT_CODE, (
            f"expected injected crash, got rc={crashed.returncode}\n"
            f"stderr: {crashed.stderr}"
        )
        store = tmp_path / "store.jsonl"
        if store.exists():
            # Any partial store must be a byte-exact prefix of the baseline
            # (persistence happens in drain order, torn tail aside).
            partial = store.read_bytes()
            clean_prefix = partial[: partial.rfind(b"\n") + 1]
            assert baseline.startswith(clean_prefix)

        resumed = _drive(tmp_path, "resume", plan=plan)
        assert resumed.returncode == 0, (
            f"recovery failed rc={resumed.returncode}\nstderr: {resumed.stderr}"
        )
        assert store.read_bytes() == baseline
        # The journal converged too: nothing left interrupted, and a second
        # adoption would be a no-op.
        assert Journal(tmp_path / "journal").interrupted_jobs() == []
        rerun = _drive(tmp_path, "resume", plan=plan)
        assert rerun.returncode == 0
        assert store.read_bytes() == baseline

    def test_crash_leaves_no_orphan_shm_segments_after_adopt(
        self, tmp_path, baseline
    ):
        crashed = _drive(
            tmp_path, "run", plan="kill-after-execute-before-persist:2",
            extra_env={"REPRO_SHM_TRANSPORT": "1"},
        )
        assert crashed.returncode == CRASH_EXIT_CODE
        resumed = _drive(
            tmp_path, "resume", plan="kill-after-execute-before-persist:2",
            extra_env={"REPRO_SHM_TRANSPORT": "1"},
        )
        assert resumed.returncode == 0, resumed.stderr
        assert (tmp_path / "store.jsonl").read_bytes() == baseline
        _assert_no_orphan_segments()


class TestInRunFaultRecovery:
    """Fault points the scheduler must survive *without* a restart."""

    def test_hung_kernel_is_timed_out_and_sweep_completes(
        self, tmp_path, baseline
    ):
        """One 60s hang against a 2s task timeout: the hung worker is
        killed, the task retried, the run exits cleanly with a byte-
        identical store."""
        proc = _drive(
            tmp_path, "run", plan="hang-in-kernel:1@60",
            extra_env={"REPRO_TASK_TIMEOUT": "2"},
        )
        assert proc.returncode == 0, proc.stderr
        assert (tmp_path / "store.jsonl").read_bytes() == baseline

    def test_publish_failure_degrades_to_disk_cache(self, tmp_path, baseline):
        """An injected shm-publish failure must not fail the job — the
        scheduler degrades to the disk-cache path."""
        proc = _drive(
            tmp_path, "run", plan="publish-failure:1",
            extra_env={"REPRO_SHM_TRANSPORT": "1"},
        )
        assert proc.returncode == 0, proc.stderr
        assert (tmp_path / "store.jsonl").read_bytes() == baseline


class TestRandomizedCrashPoints:
    def test_recovery_from_arbitrary_journal_truncation_prefixes(
        self, tmp_path, baseline
    ):
        """Seeded sweep over journal truncation offsets: every prefix,
        paired with the consistent store prefix (store >= journal, plus
        sometimes the one crash-window row), must recover to the byte-
        identical store."""
        # A complete journalled run provides the full journal to truncate.
        full_dir = tmp_path / "full"
        full_dir.mkdir()
        store = ResultStore(full_dir / "store.jsonl")
        run_grid(_configs(), workers=0, store=store,
                 journal=full_dir / "journal")
        journal_bytes = (full_dir / "journal" / "journal.jsonl").read_bytes()
        store_lines = store.path.read_bytes().splitlines(keepends=True)
        assert store.path.read_bytes() == baseline

        rng = random.Random(0xC0FFEE)
        offsets = sorted(
            {0, len(journal_bytes)}
            | {rng.randrange(1, len(journal_bytes)) for _ in range(8)}
        )
        for i, offset in enumerate(offsets):
            case = tmp_path / f"case-{offset}"
            case.mkdir()
            jdir = case / "journal"
            jdir.mkdir()
            (jdir / "journal.jsonl").write_bytes(journal_bytes[:offset])
            # How much the store knew at the "crash": every journalled
            # result-persisted row, plus sometimes the crash-window row
            # whose store append beat its journal record.
            replayed = Journal(jdir).replay()
            persisted = sum(
                1 for r in replayed if r["type"] == "result-persisted"
            )
            if i % 2 and persisted < len(store_lines):
                persisted += 1          # crash-window extra row
            case_store = case / "store.jsonl"
            case_store.write_bytes(b"".join(store_lines[:persisted]))

            scheduler = Scheduler(workers=0, store=case_store, journal=jdir)
            try:
                handles = scheduler.adopt()
                handles.append(scheduler.submit(_configs()))
                for handle in handles:
                    handle.wait(timeout=120)
            finally:
                scheduler.shutdown()
            assert case_store.read_bytes() == baseline, (
                f"truncation offset {offset} did not recover to the "
                "baseline store"
            )
            assert Journal(jdir).interrupted_jobs() == []

"""Unit tests for the simulated runtime: cost model, stats, windows, collectives."""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime import (
    CATEGORIES,
    CostModel,
    LAPTOP,
    MemoryLimitExceeded,
    PERLMUTTER,
    PhaseLedger,
    RankStats,
    SimulatedCluster,
    WindowError,
    ZERO_COST,
)


# ----------------------------------------------------------------------
# Cost model
# ----------------------------------------------------------------------
class TestCostModel:
    def test_message_cost_includes_latency_and_bandwidth(self):
        m = CostModel(alpha=1e-6, beta=1e-9)
        assert m.message_cost(1000) == pytest.approx(1e-6 + 1000e-9)

    def test_rdma_latency_lower_than_two_sided(self):
        assert PERLMUTTER.alpha_rdma < PERLMUTTER.alpha
        assert PERLMUTTER.message_cost(100, rdma=True) < PERLMUTTER.message_cost(100)

    def test_compute_cost_scales_with_flops(self):
        m = CostModel(gamma=1e-9, threads_per_process=1, serial_fraction=0.0)
        assert m.compute_cost(2000) == pytest.approx(2 * m.compute_cost(1000))

    def test_compute_cost_thread_speedup_bounded_by_amdahl(self):
        m = CostModel(gamma=1e-9, threads_per_process=1, serial_fraction=0.1)
        m16 = m.with_threads(16)
        speedup = m.compute_cost(10**6) / m16.compute_cost(10**6)
        assert 1.0 < speedup < 10.0  # bounded well below 16 by the serial fraction

    def test_with_threads_returns_new_model(self):
        m2 = PERLMUTTER.with_threads(2)
        assert m2.threads_per_process == 2
        assert PERLMUTTER.threads_per_process != 2 or m2 is not PERLMUTTER

    def test_with_memory_capacity(self):
        m = PERLMUTTER.with_memory_capacity(1024)
        assert m.memory_capacity_bytes == 1024

    def test_pack_cost_zero_for_zero_bytes(self):
        assert PERLMUTTER.pack_cost(0) == 0.0

    def test_zero_cost_model_charges_nothing(self):
        assert ZERO_COST.message_cost(10**9) == 0.0
        assert ZERO_COST.compute_cost(10**9) == 0.0

    def test_presets_are_distinct(self):
        assert PERLMUTTER.beta != LAPTOP.beta


# ----------------------------------------------------------------------
# RankStats / PhaseLedger
# ----------------------------------------------------------------------
class TestStats:
    def test_charge_time_accumulates(self):
        st = RankStats(rank=0)
        st.charge_time("comm", 1.0)
        st.charge_time("comm", 0.5)
        assert st.comm_time == pytest.approx(1.5)
        assert st.total_time == pytest.approx(1.5)

    def test_unknown_category_raises(self):
        st = RankStats(rank=0)
        with pytest.raises(KeyError):
            st.charge_time("disk", 1.0)

    def test_as_dict_contains_all_counters(self):
        st = RankStats(rank=1)
        d = st.as_dict()
        for cat in CATEGORIES:
            assert f"time_{cat}" in d
        assert "bytes_received" in d and "rdma_gets" in d

    def test_ledger_phase_creation_and_order(self):
        ledger = PhaseLedger(nprocs=2)
        ledger.phase("b")
        ledger.phase("a")
        ledger.phase("b")
        assert ledger.phase_order == ["b", "a"]

    def test_ledger_elapsed_time_is_sum_of_phase_maxima(self):
        ledger = PhaseLedger(nprocs=2)
        ledger.rank("p1", 0).charge_time("comm", 1.0)
        ledger.rank("p1", 1).charge_time("comm", 3.0)
        ledger.rank("p2", 0).charge_time("comp", 2.0)
        ledger.rank("p2", 1).charge_time("comp", 1.0)
        assert ledger.elapsed_time() == pytest.approx(3.0 + 2.0)

    def test_elapsed_by_category_sums_to_elapsed(self):
        ledger = PhaseLedger(nprocs=2)
        ledger.rank("p", 0).charge_time("comm", 1.0)
        ledger.rank("p", 0).charge_time("comp", 2.0)
        ledger.rank("p", 1).charge_time("comm", 0.5)
        cats = ledger.elapsed_time_by_category()
        assert sum(cats.values()) == pytest.approx(ledger.elapsed_time())

    def test_per_rank_totals_aggregate_phases(self):
        ledger = PhaseLedger(nprocs=1)
        ledger.rank("a", 0).charge_time("comm", 1.0)
        ledger.rank("b", 0).charge_time("comm", 2.0)
        totals = ledger.per_rank_totals()
        assert totals[0].comm_time == pytest.approx(3.0)

    def test_total_counters(self):
        ledger = PhaseLedger(nprocs=2)
        ledger.rank("p", 0).bytes_received += 100
        ledger.rank("p", 1).bytes_received += 50
        ledger.rank("p", 0).rdma_gets += 3
        ledger.rank("p", 1).messages_sent += 2
        assert ledger.total_bytes() == 150
        assert ledger.total_rdma_gets() == 3
        assert ledger.total_messages() == 5

    def test_load_imbalance_balanced(self):
        ledger = PhaseLedger(nprocs=2)
        ledger.rank("p", 0).charge_time("comp", 1.0)
        ledger.rank("p", 1).charge_time("comp", 1.0)
        assert ledger.load_imbalance() == pytest.approx(1.0)

    def test_load_imbalance_skewed(self):
        ledger = PhaseLedger(nprocs=2)
        ledger.rank("p", 0).charge_time("comp", 3.0)
        ledger.rank("p", 1).charge_time("comp", 1.0)
        assert ledger.load_imbalance() == pytest.approx(1.5)

    def test_merge_ledgers(self):
        a = PhaseLedger(nprocs=2)
        b = PhaseLedger(nprocs=2)
        a.rank("x", 0).charge_time("comm", 1.0)
        b.rank("x", 0).charge_time("comm", 2.0)
        a.merge(b)
        assert a.rank("x", 0).comm_time == pytest.approx(3.0)

    def test_merge_size_mismatch_raises(self):
        with pytest.raises(ValueError):
            PhaseLedger(nprocs=2).merge(PhaseLedger(nprocs=3))


# ----------------------------------------------------------------------
# SimulatedCluster
# ----------------------------------------------------------------------
class TestSimulatedCluster:
    def test_invalid_nprocs(self):
        with pytest.raises(ValueError):
            SimulatedCluster(0)

    def test_phase_context_routes_charges(self):
        cl = SimulatedCluster(2)
        with cl.phase("alpha"):
            cl.charge_compute(0, 1000)
        with cl.phase("beta"):
            cl.charge_compute(1, 2000)
        assert cl.ledger.rank("alpha", 0).flops == 1000
        assert cl.ledger.rank("beta", 1).flops == 2000

    def test_nested_phase_restored(self):
        cl = SimulatedCluster(1)
        with cl.phase("outer"):
            with cl.phase("inner"):
                assert cl.current_phase == "inner"
            assert cl.current_phase == "outer"

    def test_stats_out_of_range_rank(self):
        cl = SimulatedCluster(2)
        with pytest.raises(IndexError):
            cl.stats(5)

    def test_charge_compute_adds_time_and_flops(self):
        cl = SimulatedCluster(1)
        cl.charge_compute(0, 10**6)
        st = cl.stats(0)
        assert st.flops == 10**6
        assert st.comp_time > 0

    def test_charge_memory_and_oom(self):
        model = PERLMUTTER.with_memory_capacity(1000)
        cl = SimulatedCluster(1, cost_model=model)
        cl.charge_memory(0, 500)
        with pytest.raises(MemoryLimitExceeded):
            cl.charge_memory(0, 2000)

    def test_measured_context_records_wall_time(self):
        cl = SimulatedCluster(1)
        with cl.measured(0, "comp"):
            sum(range(10000))
        assert cl.stats(0).measured["comp"] > 0

    def test_reset_clears_ledger(self):
        cl = SimulatedCluster(2)
        cl.charge_compute(0, 100)
        cl.reset()
        assert cl.elapsed_time() == 0.0

    def test_summary_keys(self):
        cl = SimulatedCluster(2)
        s = cl.summary()
        for key in ("elapsed_time", "comm_time", "total_bytes", "load_imbalance"):
            assert key in s


# ----------------------------------------------------------------------
# RDMA windows
# ----------------------------------------------------------------------
class TestWindows:
    def _make_window(self, cl):
        exposed = {
            r: {"data": np.arange(10, dtype=np.float64) * (r + 1)} for r in range(cl.nprocs)
        }
        return cl.create_window(exposed), exposed

    def test_get_outside_epoch_raises(self):
        cl = SimulatedCluster(2)
        win, _ = self._make_window(cl)
        with pytest.raises(WindowError):
            win.get(0, 1, "data", 0, 5)

    def test_get_returns_correct_slice(self):
        cl = SimulatedCluster(2)
        win, exposed = self._make_window(cl)
        with win.epoch():
            out = win.get(0, 1, "data", 2, 6)
        np.testing.assert_allclose(out, exposed[1]["data"][2:6])

    def test_get_is_a_copy(self):
        cl = SimulatedCluster(2)
        win, exposed = self._make_window(cl)
        with win.epoch():
            out = win.get(0, 1, "data", 0, 3)
        out[:] = -1
        assert exposed[1]["data"][0] != -1

    def test_get_charges_origin_only(self):
        cl = SimulatedCluster(2)
        win, _ = self._make_window(cl)
        with win.epoch():
            win.get(0, 1, "data", 0, 10)
        origin = cl.stats(0)
        target = cl.stats(1)
        assert origin.rdma_gets == 1
        assert origin.bytes_received == 80
        assert target.bytes_sent == 80
        assert target.rdma_gets == 0
        # Passive target: the target's communication time stays at the epoch
        # close cost only (charged when the epoch exits), not per-get.
        assert origin.comm_time > 0

    def test_local_get_costs_nothing(self):
        cl = SimulatedCluster(2)
        win, _ = self._make_window(cl)
        with win.epoch():
            win.get(1, 1, "data", 0, 10)
        assert cl.stats(1).rdma_gets == 0

    def test_get_bad_range_raises(self):
        cl = SimulatedCluster(2)
        win, _ = self._make_window(cl)
        with win.epoch():
            with pytest.raises(WindowError):
                win.get(0, 1, "data", 5, 50)

    def test_get_bad_key_raises(self):
        cl = SimulatedCluster(2)
        win, _ = self._make_window(cl)
        with win.epoch():
            with pytest.raises(WindowError):
                win.get(0, 1, "nope", 0, 1)

    def test_get_concat(self):
        cl = SimulatedCluster(2)
        win, exposed = self._make_window(cl)
        with win.epoch():
            out = win.get_concat(0, 1, "data", [(0, 2), (5, 7)])
        np.testing.assert_allclose(out, exposed[1]["data"][[0, 1, 5, 6]])
        assert cl.stats(0).rdma_gets == 2

    def test_nested_epoch_rejected(self):
        cl = SimulatedCluster(1)
        win, _ = self._make_window(cl)
        with win.epoch():
            with pytest.raises(WindowError):
                with win.epoch():
                    pass

    def test_gets_issued_counter(self):
        cl = SimulatedCluster(2)
        win, _ = self._make_window(cl)
        with win.epoch():
            win.get(0, 1, "data", 0, 1)
            win.get(1, 0, "data", 0, 1)
        assert win.gets_issued == 2


# ----------------------------------------------------------------------
# Communicator collectives
# ----------------------------------------------------------------------
class TestCommunicator:
    def test_send_charges_both_sides(self):
        cl = SimulatedCluster(2)
        payload = np.zeros(128, dtype=np.float64)
        cl.comm.send(payload, src=0, dst=1)
        assert cl.stats(0).bytes_sent == payload.nbytes
        assert cl.stats(1).bytes_received == payload.nbytes
        assert cl.stats(0).comm_time > 0 and cl.stats(1).comm_time > 0

    def test_send_to_self_is_free(self):
        cl = SimulatedCluster(2)
        cl.comm.send(np.zeros(10), src=1, dst=1)
        assert cl.stats(1).bytes_sent == 0

    def test_bcast_returns_payload_to_all(self):
        cl = SimulatedCluster(4)
        out = cl.comm.bcast(np.arange(3), root=0)
        assert set(out) == {0, 1, 2, 3}

    def test_bcast_root_must_be_member(self):
        cl = SimulatedCluster(4)
        with pytest.raises(ValueError):
            cl.comm.bcast(np.arange(3), root=3, ranks=[0, 1])

    def test_bcast_nonroot_receives_volume(self):
        cl = SimulatedCluster(4)
        payload = np.zeros(1000, dtype=np.float64)
        cl.comm.bcast(payload, root=0)
        for r in range(1, 4):
            assert cl.stats(r).bytes_received == payload.nbytes

    def test_allgather_everyone_gets_everything(self):
        cl = SimulatedCluster(3)
        out = cl.comm.allgather({r: np.full(4, r) for r in range(3)})
        for r in range(3):
            assert len(out[r]) == 3
        assert cl.stats(0).bytes_received > 0

    def test_gather_root_receives(self):
        cl = SimulatedCluster(3)
        collected = cl.comm.gather({r: np.full(2, r) for r in range(3)}, root=0)
        assert len(collected) == 3
        assert cl.stats(0).bytes_received > 0
        assert cl.stats(1).bytes_sent > 0

    def test_alltoallv_routing(self):
        cl = SimulatedCluster(3)
        buffers = {0: {1: np.zeros(8)}, 1: {2: np.zeros(16)}, 2: {}}
        received = cl.comm.alltoallv(buffers)
        assert 0 in received[1]
        assert 1 in received[2]
        assert cl.stats(2).bytes_received == 16 * 8

    def test_alltoallv_self_delivery_free(self):
        cl = SimulatedCluster(2)
        received = cl.comm.alltoallv({0: {0: np.zeros(8)}, 1: {}})
        assert 0 in received[0]
        assert cl.stats(0).bytes_sent == 0

    def test_allreduce_scalar(self):
        cl = SimulatedCluster(4)
        out = cl.comm.allreduce_scalar({r: float(r) for r in range(4)})
        assert all(v == pytest.approx(6.0) for v in out.values())

    def test_barrier_charges_latency(self):
        cl = SimulatedCluster(4)
        cl.comm.barrier()
        assert cl.stats(0).comm_time > 0

    def test_barrier_single_rank_free(self):
        cl = SimulatedCluster(1)
        cl.comm.barrier()
        assert cl.stats(0).comm_time == 0.0

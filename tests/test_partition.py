"""Unit tests for permutations, graph construction, coarsening, refinement and partitioning."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.matrices.generators import community_graph, banded
from repro.partition import (
    AdjacencyGraph,
    ColumnNetHypergraph,
    Ordering,
    apply_ordering,
    apply_symmetric_permutation,
    balance_ratio,
    coarsen_graph,
    coarsen_to_size,
    connectivity_cut,
    degree_vertex_weights,
    greedy_hypergraph_partition,
    greedy_kway_refine,
    heavy_edge_matching,
    identity_ordering,
    invert_permutation,
    is_balanced,
    ordering_from_partition,
    partition_graph,
    partition_matrix,
    partition_weights,
    random_symmetric_permutation,
    rcm_ordering,
    spgemm_vertex_weights,
    squaring_vertex_weights,
)
from repro.sparse import as_csc



def _sym_random(n, density, seed):
    m = sp.random(n, n, density=density, random_state=seed, format="csc")
    return as_csc(m + m.T)


# ----------------------------------------------------------------------
# Random symmetric permutation
# ----------------------------------------------------------------------
class TestRandomPermutation:
    def test_permutation_is_bijection(self):
        perm = random_symmetric_permutation(100, seed=1)
        assert np.array_equal(np.sort(perm), np.arange(100))

    def test_seed_reproducibility(self):
        assert np.array_equal(
            random_symmetric_permutation(50, seed=7),
            random_symmetric_permutation(50, seed=7),
        )

    def test_invert_permutation(self):
        perm = random_symmetric_permutation(30, seed=2)
        inv = invert_permutation(perm)
        np.testing.assert_array_equal(perm[inv], np.arange(30))
        np.testing.assert_array_equal(inv[perm], np.arange(30))

    def test_apply_preserves_nnz_and_spectrum(self, small_symmetric):
        perm = random_symmetric_permutation(small_symmetric.nrows, seed=3)
        permuted = apply_symmetric_permutation(small_symmetric, perm)
        assert permuted.nnz == small_symmetric.nnz
        np.testing.assert_allclose(
            np.sort(np.linalg.eigvalsh(permuted.to_dense())),
            np.sort(np.linalg.eigvalsh(small_symmetric.to_dense())),
            atol=1e-8,
        )

    def test_apply_entry_mapping(self, small_symmetric):
        perm = random_symmetric_permutation(small_symmetric.nrows, seed=4)
        permuted = apply_symmetric_permutation(small_symmetric, perm)
        dense = small_symmetric.to_dense()
        np.testing.assert_allclose(permuted.to_dense(), dense[np.ix_(perm, perm)])

    def test_requires_square(self, small_rect):
        with pytest.raises(ValueError):
            apply_symmetric_permutation(small_rect, np.arange(small_rect.nrows))

    def test_wrong_length_raises(self, small_symmetric):
        with pytest.raises(ValueError):
            apply_symmetric_permutation(small_symmetric, np.arange(3))


# ----------------------------------------------------------------------
# Vertex weights
# ----------------------------------------------------------------------
class TestWeights:
    def test_squaring_weights_are_squared_degrees(self, small_symmetric):
        w = squaring_vertex_weights(small_symmetric)
        col = small_symmetric.column_nnz().astype(np.int64)
        np.testing.assert_array_equal(w, col * col)

    def test_squaring_weights_require_square(self, small_rect):
        with pytest.raises(ValueError):
            squaring_vertex_weights(small_rect)

    def test_spgemm_weights(self, small_square):
        B = small_square.transpose()
        w = spgemm_vertex_weights(small_square, B)
        assert w.shape[0] == small_square.ncols
        assert (w >= 0).all()

    def test_degree_weights(self, small_square):
        np.testing.assert_array_equal(
            degree_vertex_weights(small_square), small_square.column_nnz()
        )

    def test_balance_ratio_perfect(self):
        w = np.ones(8)
        parts = np.array([0, 0, 1, 1, 2, 2, 3, 3])
        assert balance_ratio(w, parts, 4) == pytest.approx(1.0)

    def test_balance_ratio_skewed(self):
        w = np.ones(4)
        parts = np.array([0, 0, 0, 1])
        assert balance_ratio(w, parts, 2) == pytest.approx(1.5)


# ----------------------------------------------------------------------
# Adjacency graph
# ----------------------------------------------------------------------
class TestAdjacencyGraph:
    def test_from_matrix_drops_diagonal(self):
        A = as_csc(np.array([[1.0, 1.0], [1.0, 1.0]]))
        g = AdjacencyGraph.from_matrix(A)
        assert g.nvertices == 2
        assert g.nedges == 1  # only the off-diagonal pair

    def test_symmetrisation_of_unsymmetric_input(self, small_square):
        g = AdjacencyGraph.from_matrix(small_square)
        # adjacency stored twice per undirected edge
        assert g.adjncy.shape[0] == 2 * g.nedges

    def test_vertex_weights_default_ones(self, small_symmetric):
        g = AdjacencyGraph.from_matrix(small_symmetric)
        assert (g.vwgt == 1).all()

    def test_vertex_weights_clamped_positive(self, small_symmetric):
        w = np.zeros(small_symmetric.ncols, dtype=np.int64)
        g = AdjacencyGraph.from_matrix(small_symmetric, vertex_weights=w)
        assert (g.vwgt >= 1).all()

    def test_weights_wrong_length(self, small_symmetric):
        with pytest.raises(ValueError):
            AdjacencyGraph.from_matrix(small_symmetric, vertex_weights=np.ones(3))

    def test_requires_square(self, small_rect):
        with pytest.raises(ValueError):
            AdjacencyGraph.from_matrix(small_rect)

    def test_neighbours_and_degree(self):
        A = as_csc(np.array([[0, 1, 1], [1, 0, 0], [1, 0, 0]], dtype=float))
        g = AdjacencyGraph.from_matrix(A)
        neigh, _ = g.neighbours(0)
        assert set(neigh.tolist()) == {1, 2}
        assert g.degree(0) == 2
        assert g.degree(1) == 1

    def test_edge_cut(self):
        # path graph 0-1-2-3 split in the middle: cut = 1
        A = as_csc(
            np.array(
                [
                    [0, 1, 0, 0],
                    [1, 0, 1, 0],
                    [0, 1, 0, 1],
                    [0, 0, 1, 0],
                ],
                dtype=float,
            )
        )
        g = AdjacencyGraph.from_matrix(A)
        assert g.edge_cut(np.array([0, 0, 1, 1])) == 1
        assert g.edge_cut(np.array([0, 1, 0, 1])) == 3

    def test_edge_cut_wrong_length(self, small_symmetric):
        g = AdjacencyGraph.from_matrix(small_symmetric)
        with pytest.raises(ValueError):
            g.edge_cut(np.zeros(3, dtype=np.int64))


# ----------------------------------------------------------------------
# Coarsening
# ----------------------------------------------------------------------
class TestCoarsening:
    def test_matching_is_symmetric_and_total(self, small_symmetric):
        g = AdjacencyGraph.from_matrix(small_symmetric)
        match = heavy_edge_matching(g, seed=0)
        assert match.shape[0] == g.nvertices
        for v in range(g.nvertices):
            assert match[match[v]] == v

    def test_coarsen_preserves_total_vertex_weight(self, small_symmetric):
        g = AdjacencyGraph.from_matrix(
            small_symmetric, vertex_weights=squaring_vertex_weights(small_symmetric)
        )
        level = coarsen_graph(g, seed=0)
        assert level.coarse_graph.total_vertex_weight() == g.total_vertex_weight()

    def test_coarsen_reduces_vertex_count(self, small_symmetric):
        g = AdjacencyGraph.from_matrix(small_symmetric)
        level = coarsen_graph(g, seed=0)
        assert level.coarse_graph.nvertices < g.nvertices

    def test_fine_to_coarse_mapping_valid(self, small_symmetric):
        g = AdjacencyGraph.from_matrix(small_symmetric)
        level = coarsen_graph(g, seed=0)
        assert level.fine_to_coarse.min() >= 0
        assert level.fine_to_coarse.max() < level.coarse_graph.nvertices

    def test_coarsen_to_size_hierarchy(self):
        A = _sym_random(200, 0.05, seed=5)
        g = AdjacencyGraph.from_matrix(A)
        hierarchy = coarsen_to_size(g, 40, seed=0)
        assert hierarchy
        assert hierarchy[-1].coarse_graph.nvertices <= 0.95 * g.nvertices
        # hierarchy is chained: each level's fine graph is the previous coarse graph
        for prev, nxt in zip(hierarchy, hierarchy[1:]):
            assert nxt.fine_graph is prev.coarse_graph

    def test_coarsen_to_size_already_small(self):
        A = _sym_random(20, 0.2, seed=6)
        g = AdjacencyGraph.from_matrix(A)
        assert coarsen_to_size(g, 50) == []


# ----------------------------------------------------------------------
# Refinement
# ----------------------------------------------------------------------
class TestRefinement:
    def test_refinement_never_increases_cut(self):
        A = _sym_random(120, 0.06, seed=8)
        g = AdjacencyGraph.from_matrix(A)
        rng = np.random.default_rng(0)
        parts = rng.integers(0, 4, size=g.nvertices)
        before = g.edge_cut(parts)
        refined = greedy_kway_refine(g, parts, 4, seed=0)
        assert g.edge_cut(refined) <= before

    def test_refinement_respects_balance(self):
        A = _sym_random(120, 0.06, seed=9)
        g = AdjacencyGraph.from_matrix(A)
        rng = np.random.default_rng(1)
        parts = rng.integers(0, 4, size=g.nvertices)
        refined = greedy_kway_refine(g, parts, 4, imbalance=0.10, seed=0)
        # Start balanced-ish, must stay within the (looser) limit afterwards.
        assert is_balanced(g, refined, 4, imbalance=0.35)

    def test_refinement_does_not_empty_parts(self):
        A = _sym_random(60, 0.1, seed=10)
        g = AdjacencyGraph.from_matrix(A)
        parts = np.arange(g.nvertices) % 3
        refined = greedy_kway_refine(g, parts, 3, seed=0)
        assert set(np.unique(refined)) == {0, 1, 2}

    def test_partition_weights_helper(self):
        A = _sym_random(30, 0.2, seed=11)
        g = AdjacencyGraph.from_matrix(A)
        parts = np.zeros(g.nvertices, dtype=np.int64)
        w = partition_weights(g, parts, 2)
        assert w[0] == g.total_vertex_weight()
        assert w[1] == 0

    def test_wrong_length_raises(self):
        A = _sym_random(30, 0.2, seed=12)
        g = AdjacencyGraph.from_matrix(A)
        with pytest.raises(ValueError):
            greedy_kway_refine(g, np.zeros(5, dtype=np.int64), 2)


# ----------------------------------------------------------------------
# Multilevel partitioner (METIS substitute)
# ----------------------------------------------------------------------
class TestPartitioner:
    def test_partition_assigns_every_vertex(self):
        A = community_graph(300, 6, 12, mixing=0.05, shuffle=True, seed=1)
        result = partition_matrix(A, 6, seed=0)
        assert result.parts.shape[0] == A.ncols
        assert result.parts.min() >= 0 and result.parts.max() < 6

    def test_partition_balance_reasonable(self):
        A = community_graph(300, 6, 12, mixing=0.05, shuffle=True, seed=2)
        result = partition_matrix(A, 6, seed=0)
        assert result.balance < 1.6

    def test_partition_beats_random_on_community_graph(self):
        A = community_graph(400, 8, 14, mixing=0.05, shuffle=True, seed=3)
        from repro.partition.graph import AdjacencyGraph as AG

        g = AG.from_matrix(A)
        rng = np.random.default_rng(0)
        random_parts = rng.integers(0, 8, size=g.nvertices)
        result = partition_matrix(A, 8, seed=0)
        assert result.edge_cut < 0.6 * g.edge_cut(random_parts)

    def test_single_part_is_trivial(self, small_symmetric):
        result = partition_matrix(small_symmetric, 1)
        assert result.edge_cut == 0
        assert (result.parts == 0).all()

    def test_partition_records_seconds(self, small_symmetric):
        result = partition_matrix(small_symmetric, 4)
        assert result.seconds >= 0

    def test_part_sizes_sum_to_n(self, small_symmetric):
        result = partition_matrix(small_symmetric, 4)
        assert result.part_sizes().sum() == small_symmetric.ncols

    def test_invalid_nparts(self, small_symmetric):
        from repro.partition.graph import AdjacencyGraph as AG

        g = AG.from_matrix(small_symmetric)
        with pytest.raises(ValueError):
            partition_graph(g, 0)

    def test_flops_weights_used_by_default(self):
        # A star graph: the hub has a huge flops weight; with flops weights the
        # hub's part should end up with far fewer vertices than the others.
        n = 81
        rows = np.concatenate([np.zeros(n - 1, dtype=np.int64), np.arange(1, n)])
        cols = np.concatenate([np.arange(1, n), np.zeros(n - 1, dtype=np.int64)])
        from repro.sparse import CSCMatrix

        A = CSCMatrix.from_coo(n, n, rows, cols, np.ones(2 * (n - 1)))
        weighted = partition_matrix(A, 4, use_flops_weights=True, seed=0)
        hub_part = weighted.parts[0]
        hub_part_size = int((weighted.parts == hub_part).sum())
        other_sizes = [int((weighted.parts == p).sum()) for p in range(4) if p != hub_part]
        assert hub_part_size <= min(other_sizes)


# ----------------------------------------------------------------------
# Hypergraph model
# ----------------------------------------------------------------------
class TestHypergraph:
    def test_from_matrix_structure(self, small_square):
        hg = ColumnNetHypergraph.from_matrix(small_square)
        assert hg.nvertices == small_square.ncols
        assert hg.nnets == small_square.nrows
        assert hg.net_pins.shape[0] == small_square.nnz

    def test_connectivity_cut_single_part_zero(self, small_symmetric):
        hg = ColumnNetHypergraph.from_matrix(small_symmetric)
        parts = np.zeros(hg.nvertices, dtype=np.int64)
        assert connectivity_cut(hg, parts) == 0

    def test_greedy_partition_balanced(self):
        A = community_graph(200, 4, 10, mixing=0.1, shuffle=False, seed=4)
        hg = ColumnNetHypergraph.from_matrix(A)
        parts = greedy_hypergraph_partition(hg, 4, seed=0)
        sizes = np.bincount(parts, minlength=4)
        assert sizes.min() > 0
        cut = connectivity_cut(hg, parts)
        rng = np.random.default_rng(0)
        random_cut = connectivity_cut(hg, rng.integers(0, 4, size=hg.nvertices))
        assert cut <= random_cut

    def test_single_part(self, small_symmetric):
        hg = ColumnNetHypergraph.from_matrix(small_symmetric)
        parts = greedy_hypergraph_partition(hg, 1)
        assert (parts == 0).all()


# ----------------------------------------------------------------------
# Orderings
# ----------------------------------------------------------------------
class TestOrdering:
    def test_identity_ordering_blocks(self):
        o = identity_ordering(10, 3)
        assert o.block_sizes == [4, 3, 3]
        np.testing.assert_array_equal(o.perm, np.arange(10))

    def test_ordering_from_partition_groups_parts(self):
        A = community_graph(150, 3, 10, mixing=0.05, shuffle=True, seed=5)
        result = partition_matrix(A, 3, seed=0)
        ordering = ordering_from_partition(result)
        assert sum(ordering.block_sizes) == A.ncols
        # After the permutation, each contiguous block holds one part.
        reordered_parts = result.parts[ordering.perm]
        start = 0
        for size in ordering.block_sizes:
            block = reordered_parts[start : start + size]
            assert len(np.unique(block)) <= 1
            start += size

    def test_apply_ordering_preserves_spectrum(self, small_symmetric):
        o = rcm_ordering(small_symmetric, 4)
        permuted = apply_ordering(small_symmetric, o)
        np.testing.assert_allclose(
            np.sort(np.linalg.eigvalsh(permuted.to_dense())),
            np.sort(np.linalg.eigvalsh(small_symmetric.to_dense())),
            atol=1e-8,
        )

    def test_rcm_reduces_bandwidth_of_shuffled_banded_matrix(self):
        from repro.matrices.stats import bandwidth_profile

        A = banded(200, 6, symmetric=True, seed=6)
        perm = random_symmetric_permutation(200, seed=7)
        shuffled = apply_symmetric_permutation(A, perm)
        o = rcm_ordering(shuffled, 4)
        recovered = apply_ordering(shuffled, o)
        _, mean_shuffled = bandwidth_profile(shuffled)
        _, mean_recovered = bandwidth_profile(recovered)
        assert mean_recovered < mean_shuffled

    def test_rcm_perm_is_bijection(self, small_symmetric):
        o = rcm_ordering(small_symmetric, 2)
        np.testing.assert_array_equal(np.sort(o.perm), np.arange(small_symmetric.ncols))

    def test_ordering_nparts(self):
        o = identity_ordering(12, 4)
        assert o.nparts == 4

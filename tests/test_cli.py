"""Tests for the command-line interface (``python -m repro``)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.matrices import write_matrix_market
from repro.matrices.generators import banded


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_square_defaults(self):
        args = build_parser().parse_args(["square"])
        assert args.command == "square"
        assert args.algorithm == "1d"
        assert args.strategy == "none"
        assert args.nprocs == 16

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["square", "--dataset", "unknown42"])

    def test_bc_arguments(self):
        args = build_parser().parse_args(
            ["bc", "--dataset", "eukarya", "--sources", "8", "--batch-size", "4"]
        )
        assert args.sources == 8
        assert args.batch_size == 4


class TestCommands:
    def test_datasets_listing(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("queen", "eukarya", "hv15r"):
            assert name in out

    def test_algorithms_listing(self, capsys):
        assert main(["algorithms"]) == 0
        out = capsys.readouterr().out
        assert "1d-sparsity-aware" in out
        assert "2d-summa" in out

    def test_square_runs(self, capsys):
        code = main(
            ["square", "--dataset", "hv15r", "--scale", "0.1", "--nprocs", "4",
             "--block-split", "16", "--breakdown"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "squaring" in out
        assert "CV/memA" in out
        assert "rank" in out  # breakdown table requested

    def test_estimate_runs(self, capsys):
        assert main(["estimate", "--dataset", "eukarya", "--scale", "0.05", "--nprocs", "4"]) == 0
        out = capsys.readouterr().out
        assert "CV/memA" in out
        assert "partition" in out

    def test_galerkin_runs(self, capsys):
        assert main(["galerkin", "--dataset", "queen", "--scale", "0.05", "--nprocs", "4"]) == 0
        out = capsys.readouterr().out
        assert "RtA" in out and "coarse operator" in out

    def test_bc_runs(self, capsys):
        assert main(
            ["bc", "--dataset", "hv15r", "--scale", "0.05", "--nprocs", "4",
             "--sources", "4", "--batch-size", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "forward search" in out
        assert "top-10" in out

    def test_triangles_runs(self, capsys):
        assert main(
            ["triangles", "--dataset", "eukarya", "--scale", "0.1",
             "--nprocs", "4", "--block-split", "16"]
        ) == 0
        out = capsys.readouterr().out
        assert "triangle counting" in out
        assert "match" in out

    def test_triangles_early_mask(self, capsys):
        assert main(
            ["triangles", "--dataset", "eukarya", "--scale", "0.1",
             "--nprocs", "4", "--mask-mode", "early"]
        ) == 0
        assert "early" in capsys.readouterr().out

    def test_mcl_runs(self, capsys):
        assert main(
            ["mcl", "--dataset", "eukarya", "--scale", "0.1", "--nprocs", "4",
             "--block-split", "16", "--max-iters", "40"]
        ) == 0
        out = capsys.readouterr().out
        assert "MCL" in out
        assert "converged" in out
        assert "clusters" in out

    def test_matrix_market_input(self, tmp_path, capsys):
        path = tmp_path / "input.mtx"
        write_matrix_market(path, banded(60, 4, symmetric=True, seed=1))
        assert main(["square", "--matrix", str(path), "--nprocs", "2"]) == 0
        assert "squaring" in capsys.readouterr().out

    def test_matrix_input_labelled_by_file_stem(self, tmp_path, capsys):
        path = tmp_path / "mycustom.mtx"
        write_matrix_market(path, banded(60, 4, symmetric=True, seed=1))
        assert main(["estimate", "--matrix", str(path), "--nprocs", "2"]) == 0
        out = capsys.readouterr().out
        # The report must name the file, not the default --dataset (hv15r).
        assert "mycustom" in out
        assert "hv15r" not in out

    def test_square_layers_forwarded(self, capsys):
        code = main(
            ["square", "--dataset", "hv15r", "--scale", "0.05", "--nprocs", "8",
             "--algorithm", "3d", "--layers", "2", "--strategy", "random"]
        )
        assert code == 0
        assert "squaring" in capsys.readouterr().out

    def test_sweep_runs_and_persists_jsonl(self, tmp_path, capsys):
        records = tmp_path / "runs.jsonl"
        argv = [
            "sweep", "--datasets", "hv15r", "--algorithms", "1d",
            "--nprocs", "2,4", "--block-splits", "16", "--scale", "0.05",
            "--records", str(records),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "sweep" in out and "2 executed" in out
        lines = records.read_text().strip().splitlines()
        assert len(lines) == 2
        # Second invocation is served entirely from the cache.
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "2 cached, 0 executed" in out
        assert len(records.read_text().strip().splitlines()) == 2

    def test_sweep_rejects_unknown_dataset(self, capsys):
        assert main(["sweep", "--datasets", "nope42"]) == 2

    def test_sweep_rejects_unknown_algorithm_and_strategy(self, capsys):
        # Axis typos must exit cleanly up front, not crash a worker mid-grid.
        assert main(["sweep", "--datasets", "hv15r", "--algorithms", "1d,bogus"]) == 2
        assert main(["sweep", "--datasets", "hv15r", "--strategies", "zodiac"]) == 2

    def test_sweep_rejects_non_positive_axes(self, capsys):
        assert main(["sweep", "--datasets", "hv15r", "--nprocs", "0,4"]) == 2
        assert main(["sweep", "--datasets", "hv15r", "--block-splits", "-1"]) == 2
        assert main(["sweep", "--datasets", "hv15r", "--scale", "0"]) == 2

    def test_sweep_rejects_unknown_workload(self, capsys):
        assert main(["sweep", "--datasets", "hv15r", "--workloads", "tensor"]) == 2
        err = capsys.readouterr().err
        # The message lists the valid set dynamically from the registry, so
        # it can never go stale when a workload is added.
        from repro.experiments import workload_names

        for name in workload_names():
            assert name in err

    def test_sweep_triangles_workload_runs(self, capsys):
        code = main(
            ["sweep", "--workloads", "triangles", "--datasets", "eukarya",
             "--nprocs", "4", "--scale", "0.1", "--block-splits", "16",
             "--mask-mode", "early"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "triangles" in out and "1 executed" in out

    def test_sweep_triangles_early_mask_needs_1d(self, capsys):
        assert main(
            ["sweep", "--workloads", "triangles", "--datasets", "eukarya",
             "--algorithms", "2d", "--mask-mode", "early"]
        ) == 2

    def test_sweep_mcl_workload_runs(self, capsys):
        code = main(
            ["sweep", "--workloads", "mcl", "--datasets", "eukarya",
             "--nprocs", "4", "--scale", "0.1", "--block-splits", "16",
             "--mcl-max-iters", "40"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "mcl" in out and "1 executed" in out

    def test_sweep_mcl_rejects_bad_axes(self, capsys):
        assert main(
            ["sweep", "--workloads", "mcl", "--datasets", "eukarya",
             "--algorithms", "2d"]
        ) == 2
        assert main(
            ["sweep", "--workloads", "mcl", "--datasets", "eukarya",
             "--mcl-inflation", "-1"]
        ) == 2
        assert main(
            ["sweep", "--workloads", "mcl", "--datasets", "eukarya",
             "--mcl-max-iters", "0"]
        ) == 2

    def test_sweep_bc_requires_sources(self, capsys):
        assert main(["sweep", "--datasets", "hv15r", "--workloads", "bc"]) == 2

    def test_sweep_bc_workload_runs(self, capsys):
        code = main(
            ["sweep", "--workloads", "bc", "--datasets", "hv15r", "--nprocs", "4",
             "--scale", "0.05", "--bc-sources", "4", "--bc-batch", "4",
             "--bc-stride", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "bc" in out and "1 executed" in out

    def test_sweep_local_algorithm_only_for_bc(self, capsys):
        # "local" is a bc-only execution mode, not a distributed algorithm.
        assert main(["sweep", "--datasets", "hv15r", "--algorithms", "local"]) == 2
        code = main(
            ["sweep", "--workloads", "bc", "--datasets", "hv15r", "--nprocs", "4",
             "--algorithms", "local", "--scale", "0.05", "--bc-sources", "4",
             "--bc-stride", "2"]
        )
        assert code == 0

    def test_sweep_amg_workload_runs(self, capsys):
        code = main(
            ["sweep", "--workloads", "amg-restriction", "--datasets", "queen",
             "--nprocs", "8", "--scale", "0.05", "--amg-phase", "rta"]
        )
        assert code == 0
        assert "amg-restriction" in capsys.readouterr().out

    def test_bench_emits_trajectory(self, tmp_path, capsys):
        out_path = tmp_path / "BENCH_TEST.json"
        records = tmp_path / "bench.jsonl"
        argv = [
            "bench", "--scale", "0.05", "--records", str(records),
            "--out", str(out_path),
        ]
        assert main(argv) == 0
        assert "trajectory written" in capsys.readouterr().out
        import json

        document = json.loads(out_path.read_text())
        assert document["label"] == "BENCH_TEST"
        assert document["all_conserved"] is True
        assert set(document["workloads"]) == {
            "squaring", "chained-squaring", "amg-restriction", "bc",
            "triangles", "mcl",
        }
        # Re-running serves every config from the record store.
        assert main(argv) == 0
        assert "0 executed" in capsys.readouterr().out

    def test_bench_rejects_unknown_workload(self, capsys):
        assert main(["bench", "--workloads", "quux"]) == 2

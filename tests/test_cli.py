"""Tests for the command-line interface (``python -m repro``)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.matrices import write_matrix_market
from repro.matrices.generators import banded


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_square_defaults(self):
        args = build_parser().parse_args(["square"])
        assert args.command == "square"
        assert args.algorithm == "1d"
        assert args.strategy == "none"
        assert args.nprocs == 16

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["square", "--dataset", "unknown42"])

    def test_bc_arguments(self):
        args = build_parser().parse_args(
            ["bc", "--dataset", "eukarya", "--sources", "8", "--batch-size", "4"]
        )
        assert args.sources == 8
        assert args.batch_size == 4


class TestCommands:
    def test_datasets_listing(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("queen", "eukarya", "hv15r"):
            assert name in out

    def test_algorithms_listing(self, capsys):
        assert main(["algorithms"]) == 0
        out = capsys.readouterr().out
        assert "1d-sparsity-aware" in out
        assert "2d-summa" in out

    def test_square_runs(self, capsys):
        code = main(
            ["square", "--dataset", "hv15r", "--scale", "0.1", "--nprocs", "4",
             "--block-split", "16", "--breakdown"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "squaring" in out
        assert "CV/memA" in out
        assert "rank" in out  # breakdown table requested

    def test_estimate_runs(self, capsys):
        assert main(["estimate", "--dataset", "eukarya", "--scale", "0.05", "--nprocs", "4"]) == 0
        out = capsys.readouterr().out
        assert "CV/memA" in out
        assert "partition" in out

    def test_galerkin_runs(self, capsys):
        assert main(["galerkin", "--dataset", "queen", "--scale", "0.05", "--nprocs", "4"]) == 0
        out = capsys.readouterr().out
        assert "RtA" in out and "coarse operator" in out

    def test_bc_runs(self, capsys):
        assert main(
            ["bc", "--dataset", "hv15r", "--scale", "0.05", "--nprocs", "4",
             "--sources", "4", "--batch-size", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "forward search" in out
        assert "top-10" in out

    def test_matrix_market_input(self, tmp_path, capsys):
        path = tmp_path / "input.mtx"
        write_matrix_market(path, banded(60, 4, symmetric=True, seed=1))
        assert main(["square", "--matrix", str(path), "--nprocs", "2"]) == 0
        assert "squaring" in capsys.readouterr().out

"""Tests for the distributed SpGEMM algorithms (1D sparsity-aware, baselines)."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import (
    ImprovedBlockRow1D,
    NaiveBlockRow1D,
    OuterProduct1D,
    SparseSUMMA2D,
    SparsityAware1D,
    SplitSpGEMM3D,
    available_algorithms,
    make_algorithm,
)
from repro.distribution import block_bounds_from_sizes
from repro.runtime import MemoryLimitExceeded, PERLMUTTER, SimulatedCluster, ZERO_COST
from repro.sparse import as_csc, to_scipy



def _random(m, n, density, seed, symmetric=False):
    mat = sp.random(m, n, density=density, random_state=seed, format="csc")
    if symmetric:
        mat = mat + mat.T
    return as_csc(mat)


ALL_SQUARE_ALGOS = [
    ("1d", 4),
    ("2d", 4),
    ("1d-outer-product", 4),
    ("1d-naive-block-row", 4),
    ("1d-improved-block-row", 4),
    ("2d", 9),
]


# ----------------------------------------------------------------------
# Correctness against scipy for every algorithm
# ----------------------------------------------------------------------
class TestAlgorithmCorrectness:
    @pytest.mark.parametrize("name,nprocs", ALL_SQUARE_ALGOS)
    def test_square_product_matches_scipy(self, name, nprocs):
        A = _random(90, 90, 0.05, seed=1)
        B = _random(90, 90, 0.05, seed=2)
        expected = (to_scipy(A) @ to_scipy(B)).toarray()
        cluster = SimulatedCluster(nprocs)
        result = make_algorithm(name).multiply(A, B, cluster)
        np.testing.assert_allclose(result.C.to_dense(), expected, atol=1e-9)
        assert result.nprocs == nprocs
        assert result.elapsed_time >= 0

    @pytest.mark.parametrize("layers,nprocs", [(2, 8), (4, 16), (1, 4)])
    def test_3d_split_matches_scipy(self, layers, nprocs):
        A = _random(80, 80, 0.05, seed=3)
        B = _random(80, 80, 0.05, seed=4)
        expected = (to_scipy(A) @ to_scipy(B)).toarray()
        cluster = SimulatedCluster(nprocs)
        result = SplitSpGEMM3D(layers=layers).multiply(A, B, cluster)
        np.testing.assert_allclose(result.C.to_dense(), expected, atol=1e-9)

    @pytest.mark.parametrize("name", ["1d", "1d-outer-product", "1d-improved-block-row"])
    def test_rectangular_product(self, name):
        A = _random(70, 50, 0.08, seed=5)
        B = _random(50, 40, 0.08, seed=6)
        expected = (to_scipy(A) @ to_scipy(B)).toarray()
        cluster = SimulatedCluster(4)
        result = make_algorithm(name).multiply(A, B, cluster)
        np.testing.assert_allclose(result.C.to_dense(), expected, atol=1e-9)

    def test_1d_tall_skinny_operand(self):
        # RtA-like shapes: A is wide, B tall-skinny.
        A = _random(30, 120, 0.06, seed=7)
        B = _random(120, 15, 0.10, seed=8)
        expected = (to_scipy(A) @ to_scipy(B)).toarray()
        result = SparsityAware1D().multiply(A, B, SimulatedCluster(5))
        np.testing.assert_allclose(result.C.to_dense(), expected, atol=1e-9)

    def test_1d_with_empty_matrix(self):
        from repro.sparse import CSCMatrix

        A = CSCMatrix.empty(20, 20)
        B = _random(20, 20, 0.1, seed=9)
        result = SparsityAware1D().multiply(A, B, SimulatedCluster(3))
        assert result.C.nnz == 0

    def test_dimension_mismatch_raises(self):
        A = _random(10, 12, 0.2, seed=10)
        B = _random(13, 10, 0.2, seed=11)
        for name in ("1d", "2d", "1d-outer-product"):
            with pytest.raises(ValueError):
                make_algorithm(name).multiply(A, B, SimulatedCluster(4))

    def test_2d_requires_square_process_count(self):
        A = _random(20, 20, 0.2, seed=12)
        with pytest.raises(ValueError):
            SparseSUMMA2D().multiply(A, A, SimulatedCluster(6))

    def test_3d_falls_back_to_valid_layer_count(self):
        # P=6 with layers=2 is impossible (6/2 = 3 is not a perfect square);
        # the algorithm falls back to the nearest valid layer count instead of
        # failing, and still produces the right product.
        A = _random(20, 20, 0.2, seed=13)
        result = SplitSpGEMM3D(layers=2).multiply(A, A, SimulatedCluster(6))
        np.testing.assert_allclose(
            result.C.to_dense(), (to_scipy(A) @ to_scipy(A)).toarray(), atol=1e-9
        )
        assert result.info["layers"] in (1.0, 6.0)


# ----------------------------------------------------------------------
# 1D algorithm internals
# ----------------------------------------------------------------------
class TestSparsityAware1D:
    def test_custom_bounds_from_partition_sizes(self):
        A = _random(60, 60, 0.08, seed=20, symmetric=True)
        bounds = block_bounds_from_sizes([10, 25, 15, 10])
        cluster = SimulatedCluster(4)
        result = SparsityAware1D().multiply(
            A, A, cluster, a_bounds=bounds, b_bounds=bounds
        )
        expected = (to_scipy(A) @ to_scipy(A)).toarray()
        np.testing.assert_allclose(result.C.to_dense(), expected, atol=1e-9)

    def test_block_split_bounds_messages(self):
        A = _random(200, 200, 0.03, seed=21, symmetric=True)
        results = {}
        for K in (2, 8, 1000):
            cluster = SimulatedCluster(4)
            res = SparsityAware1D(block_split=K).multiply(A, A, cluster)
            results[K] = res
            # Two windows (row ids + values): at most 2·K·(P−1) gets per rank.
            assert res.rdma_gets <= 2 * K * 3 * 4
        # Smaller K -> fewer messages but at least as much volume.
        assert results[2].rdma_gets <= results[8].rdma_gets <= results[1000].rdma_gets
        assert results[2].communication_volume >= results[1000].communication_volume

    def test_all_kernels_give_same_product(self):
        A = _random(50, 50, 0.08, seed=22)
        reference = None
        for kernel in ("hybrid", "heap", "hash", "dense"):
            res = SparsityAware1D(kernel=kernel).multiply(A, A, SimulatedCluster(3))
            if reference is None:
                reference = res.C.to_dense()
            else:
                np.testing.assert_allclose(res.C.to_dense(), reference, atol=1e-9)

    def test_no_compaction_still_correct(self):
        A = _random(60, 60, 0.07, seed=23)
        res = SparsityAware1D(compact=False).multiply(A, A, SimulatedCluster(4))
        expected = (to_scipy(A) @ to_scipy(A)).toarray()
        np.testing.assert_allclose(res.C.to_dense(), expected, atol=1e-9)

    def test_info_fields_present(self):
        A = _random(40, 40, 0.1, seed=24)
        res = SparsityAware1D().multiply(A, A, SimulatedCluster(4))
        for key in ("block_split", "rdma_gets", "cv_over_memA", "output_nnz"):
            assert key in res.info

    def test_output_is_communication_free(self):
        """C is already 1D distributed: no bytes move after the multiply phase."""
        A = _random(50, 50, 0.08, seed=25)
        cluster = SimulatedCluster(4)
        SparsityAware1D().multiply(A, A, cluster)
        multiply_phase = cluster.ledger.phases["multiply"]
        assert all(st.bytes_received == 0 for st in multiply_phase)

    def test_single_process_does_no_communication(self):
        A = _random(40, 40, 0.1, seed=26)
        cluster = SimulatedCluster(1)
        res = SparsityAware1D().multiply(A, A, cluster)
        assert res.communication_volume == 0
        assert res.rdma_gets == 0

    def test_phases_recorded_in_order(self):
        A = _random(30, 30, 0.1, seed=27)
        cluster = SimulatedCluster(2)
        SparsityAware1D().multiply(A, A, cluster)
        order = cluster.ledger.phase_order
        assert order.index("setup") < order.index("fetch") < order.index("multiply")

    def test_zero_cost_model_gives_zero_time(self):
        A = _random(30, 30, 0.1, seed=28)
        cluster = SimulatedCluster(4, cost_model=ZERO_COST)
        res = SparsityAware1D().multiply(A, A, cluster)
        assert res.elapsed_time == 0.0
        # ... but the volume counters still reflect the data that moved.
        assert res.communication_volume > 0


# ----------------------------------------------------------------------
# Baseline-specific behaviour
# ----------------------------------------------------------------------
class TestBaselines:
    def test_naive_block_row_volume_scales_with_p(self):
        A = _random(80, 80, 0.05, seed=30, symmetric=True)
        vol = {}
        for P in (2, 4, 8):
            cluster = SimulatedCluster(P)
            res = NaiveBlockRow1D().multiply(A, A, cluster)
            vol[P] = res.communication_volume
        # Ring exchange: every process receives (P-1)/P of B -> volume grows with P.
        assert vol[2] < vol[4] < vol[8]

    def test_improved_block_row_never_moves_more_than_naive(self):
        A = _random(100, 100, 0.04, seed=31, symmetric=True)
        naive = NaiveBlockRow1D().multiply(A, A, SimulatedCluster(4))
        improved = ImprovedBlockRow1D().multiply(A, A, SimulatedCluster(4))
        assert improved.communication_volume <= naive.communication_volume

    def test_outer_product_redistributes_b(self):
        A = _random(60, 60, 0.06, seed=32)
        cluster = SimulatedCluster(4)
        OuterProduct1D().multiply(A, A, cluster)
        assert "redistribute" in cluster.ledger.phase_order
        assert "merge" in cluster.ledger.phase_order

    def test_2d_oom_detection(self):
        A = _random(120, 120, 0.2, seed=33, symmetric=True)
        tiny_memory = PERLMUTTER.with_memory_capacity(2_000)
        cluster = SimulatedCluster(4, cost_model=tiny_memory)
        with pytest.raises(MemoryLimitExceeded):
            SparseSUMMA2D().multiply(A, A, cluster)

    def test_3d_best_layer_sweep(self):
        A = _random(60, 60, 0.06, seed=34, symmetric=True)
        result, layers = SplitSpGEMM3D.best_layer_sweep(A, A, nprocs=16)
        expected = (to_scipy(A) @ to_scipy(A)).toarray()
        np.testing.assert_allclose(result.C.to_dense(), expected, atol=1e-9)
        assert layers in (2, 4, 8, 16)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_make_algorithm_known_names(self):
        for name in ("1d", "2d", "3d", "outer-product", "1d-improved-block-row"):
            algo = make_algorithm(name)
            assert hasattr(algo, "multiply")

    def test_make_algorithm_kwargs_forwarded(self):
        algo = make_algorithm("1d", block_split=128)
        assert algo.block_split == 128
        algo3d = make_algorithm("3d", layers=4)
        assert algo3d.layers == 4

    def test_make_algorithm_case_insensitive(self):
        assert make_algorithm("1D").name == "1d-sparsity-aware"

    def test_make_algorithm_unknown_raises(self):
        with pytest.raises(ValueError):
            make_algorithm("4d-hypercube")

    def test_available_algorithms_nonempty(self):
        names = available_algorithms()
        assert len(names) >= 6

"""Tests for the squaring application driver and permutation strategies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.squaring import (
    PERMUTATION_STRATEGIES,
    prepare_ordering,
    run_squaring,
)
from repro.matrices import load_dataset
from repro.matrices.generators import banded, community_graph
from repro.sparse import local_spgemm


class TestPrepareOrdering:
    @pytest.mark.parametrize("strategy", PERMUTATION_STRATEGIES)
    def test_every_strategy_returns_valid_permutation(self, strategy):
        A = community_graph(120, 4, 8, shuffle=True, seed=1)
        permuted, ordering, seconds = prepare_ordering(A, strategy, 4, seed=0)
        assert permuted.nnz == A.nnz
        np.testing.assert_array_equal(np.sort(ordering.perm), np.arange(A.ncols))
        assert sum(ordering.block_sizes) == A.ncols
        assert seconds >= 0

    def test_none_strategy_is_identity(self, small_symmetric):
        permuted, ordering, _ = prepare_ordering(small_symmetric, "none", 4)
        assert permuted is small_symmetric
        np.testing.assert_array_equal(ordering.perm, np.arange(small_symmetric.ncols))

    def test_unknown_strategy_raises(self, small_symmetric):
        with pytest.raises(ValueError):
            prepare_ordering(small_symmetric, "sorted-by-zodiac", 4)

    def test_metis_blocks_follow_partition_sizes(self):
        A = community_graph(160, 4, 10, shuffle=True, seed=2)
        _, ordering, _ = prepare_ordering(A, "metis", 4, seed=0)
        assert ordering.name == "metis"
        assert len(ordering.block_sizes) == 4
        assert min(ordering.block_sizes) > 0


class TestRunSquaring:
    def test_result_verified_against_reference(self, hv15r_tiny):
        ref = local_spgemm(hv15r_tiny, hv15r_tiny)
        run = run_squaring(
            hv15r_tiny,
            algorithm="1d",
            strategy="none",
            nprocs=4,
            verify_against=ref,
        )
        assert run.spgemm_time > 0

    def test_random_permutation_result_still_correct(self, hv15r_tiny):
        ref = local_spgemm(hv15r_tiny, hv15r_tiny)
        run_squaring(
            hv15r_tiny,
            algorithm="1d",
            strategy="random",
            nprocs=4,
            verify_against=ref,
        )

    def test_permutation_cost_reported_separately(self, hv15r_tiny):
        run_none = run_squaring(hv15r_tiny, algorithm="1d", strategy="none", nprocs=4)
        run_rand = run_squaring(hv15r_tiny, algorithm="1d", strategy="random", nprocs=4)
        assert run_none.permutation_seconds == 0.0 or run_none.permutation_bytes == 0
        assert run_rand.permutation_bytes > 0
        assert run_rand.total_time_with_permutation > run_rand.spgemm_time

    def test_breakdown_sums_to_elapsed(self, hv15r_tiny):
        run = run_squaring(hv15r_tiny, algorithm="1d", strategy="none", nprocs=4)
        breakdown = run.breakdown()
        assert sum(breakdown.values()) == pytest.approx(run.spgemm_time)

    def test_different_algorithms_supported(self, hv15r_tiny):
        ref = local_spgemm(hv15r_tiny, hv15r_tiny)
        for algorithm, nprocs in [("2d", 4), ("1d-improved-block-row", 4)]:
            run = run_squaring(
                hv15r_tiny,
                algorithm=algorithm,
                strategy="none",
                nprocs=nprocs,
                verify_against=ref,
            )
            assert run.result.C.nnz == ref.nnz

    def test_3d_with_layers(self, hv15r_tiny):
        run = run_squaring(hv15r_tiny, algorithm="3d", strategy="none", nprocs=8, layers=2)
        assert run.result.info["layers"] == 2.0

    def test_cv_over_mema_recorded(self, hv15r_tiny):
        run = run_squaring(hv15r_tiny, algorithm="1d", strategy="none", nprocs=4)
        assert 0.0 <= run.cv_over_mema <= 1.5


class TestPaperBehaviour:
    """Qualitative reproductions of the squaring findings."""

    def test_clustered_input_no_permutation_beats_random(self):
        """Fig 4 (hv15r): random permutation is the worst performer for 1D."""
        A = load_dataset("hv15r", scale=0.15)
        none_run = run_squaring(A, algorithm="1d", strategy="none", nprocs=8)
        random_run = run_squaring(A, algorithm="1d", strategy="random", nprocs=8)
        assert none_run.result.comm_time < random_run.result.comm_time
        assert none_run.result.communication_volume < random_run.result.communication_volume

    def test_scattered_input_metis_beats_none(self):
        """Fig 4 (eukarya): METIS partitioning reduces communication when the
        natural ordering carries no structure."""
        A = load_dataset("eukarya", scale=0.12)
        none_run = run_squaring(A, algorithm="1d", strategy="none", nprocs=8, seed=0)
        metis_run = run_squaring(A, algorithm="1d", strategy="metis", nprocs=8, seed=0)
        assert (
            metis_run.result.communication_volume
            < none_run.result.communication_volume
        )

    def test_banded_matrix_1d_beats_2d_on_communication(self):
        """Fig 9 regime: with clustered inputs the 1D algorithm moves less data
        than 2D SUMMA (which must broadcast blocks regardless of sparsity)."""
        A = banded(320, 10, symmetric=True, seed=3)
        run_1d = run_squaring(A, algorithm="1d", strategy="none", nprocs=16)
        run_2d = run_squaring(A, algorithm="2d", strategy="random", nprocs=16)
        assert (
            run_1d.result.communication_volume < run_2d.result.communication_volume
        )

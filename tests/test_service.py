"""Tests for the ``repro serve`` experiment service and its client."""

from __future__ import annotations

import asyncio
import json
import socket
import threading

import pytest

from repro.cli import main
from repro.core.pipeline import operand_cache
from repro.experiments import (
    ExperimentService,
    ResultStore,
    RunConfig,
    ServiceClient,
    run_grid,
)
from repro.experiments.service import parse_submit_configs


def _grid_payload(process_counts) -> dict:
    return {
        "datasets": ["hv15r"],
        "process_counts": list(process_counts),
        "block_splits": [16],
        "scale": 0.05,
    }


def _configs(process_counts) -> list:
    return [
        RunConfig(dataset="hv15r", nprocs=p, block_split=16, scale=0.05)
        for p in process_counts
    ]


@pytest.fixture
def service(tmp_path):
    """A live service on a unix socket; yields (service, socket, store)."""
    sock = tmp_path / "service.sock"
    store = ResultStore(tmp_path / "records.jsonl")
    svc = ExperimentService(workers=0, store=store, operand_cache_mb=64)
    ready = threading.Event()

    def run() -> None:
        asyncio.run(svc.run(socket_path=sock, ready=lambda _addr: ready.set()))

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert ready.wait(timeout=30), "service did not come up"
    yield svc, sock, store
    try:
        with ServiceClient(socket_path=sock) as client:
            client.shutdown()
    except (ConnectionError, OSError):
        pass  # a test already shut it down
    thread.join(timeout=30)
    assert not thread.is_alive(), "service did not shut down"


class TestProtocol:
    def test_ping(self, service):
        _svc, sock, _store = service
        with ServiceClient(socket_path=sock) as client:
            assert client.ping() == {"ok": True, "pong": True}

    def test_submit_status_results_round_trip(self, service):
        _svc, sock, store = service
        with ServiceClient(socket_path=sock) as client:
            ack = client.submit(grid=_grid_payload([4, 16]))
            assert ack["ok"] and ack["counters"]["unique"] == 2
            reply = client.results(ack["job_id"], wait=True)
            assert reply["ok"] and reply["state"] == "done"
            assert len(reply["records"]) == 2
            status = client.status(ack["job_id"])
            assert status["state"] == "done"
            assert status["counters"]["done"] == 2
        # Records went through the shared store, one row per unique config.
        assert len(store.load_records()) == 2

    def test_streamed_submit_terminates_with_done(self, service):
        _svc, sock, _store = service
        with ServiceClient(socket_path=sock) as client:
            ack = client.submit(grid=_grid_payload([4]), stream=True)
            assert ack["ok"]
            events = list(client.events())
        assert events[-1]["event"] == "done"
        assert all(e["job_id"] == ack["job_id"] for e in events)

    def test_repeat_submit_is_served_from_cache(self, service):
        _svc, sock, _store = service
        with ServiceClient(socket_path=sock) as client:
            first = client.submit_and_wait(grid=_grid_payload([4, 16]))
            ack = client.submit(grid=_grid_payload([4, 16]))
            assert ack["counters"]["cached"] == 2
            assert ack["counters"]["executed"] == 0
            second = client.results(ack["job_id"], wait=True)
        assert [r["config_hash"] for r in first["records"]] == [
            r["config_hash"] for r in second["records"]
        ]

    def test_unknown_job_and_unknown_op(self, service):
        _svc, sock, _store = service
        with ServiceClient(socket_path=sock) as client:
            reply = client.status("job-404")
            assert not reply["ok"] and "unknown job" in reply["error"]
            reply = client.request({"op": "frobnicate"})
            assert not reply["ok"] and "unknown op" in reply["error"]

    def test_malformed_requests_do_not_kill_the_connection(self, service):
        _svc, sock, _store = service
        with ServiceClient(socket_path=sock) as client:
            client._fh.write(b"this is not json\n")
            client._fh.flush()
            reply = client._recv()
            assert not reply["ok"] and "invalid request" in reply["error"]
            # submit without configs or grid
            reply = client.request({"op": "submit"})
            assert not reply["ok"] and "configs" in reply["error"]
            # the connection still works
            assert client.ping()["ok"]

    def test_admission_rejection_is_flagged(self, tmp_path):
        sock = tmp_path / "svc.sock"
        svc = ExperimentService(workers=0, max_inflight_configs=1)
        ready = threading.Event()
        thread = threading.Thread(
            target=lambda: asyncio.run(
                svc.run(socket_path=sock, ready=lambda _a: ready.set())
            ),
            daemon=True,
        )
        thread.start()
        assert ready.wait(timeout=30)
        try:
            with ServiceClient(socket_path=sock) as client:
                reply = client.submit(grid=_grid_payload([4, 16]))
                assert not reply["ok"]
                assert reply["rejected"] is True
                assert "admission control" in reply["error"]
        finally:
            with ServiceClient(socket_path=sock) as client:
                client.shutdown()
            thread.join(timeout=30)

    def test_stats_expose_scheduler_cache_and_store(self, service):
        _svc, sock, _store = service
        with ServiceClient(socket_path=sock) as client:
            client.submit_and_wait(grid=_grid_payload([4, 16]))
            stats = client.stats()
        assert stats["ok"]
        assert stats["scheduler"]["records_persisted"] == 2
        assert stats["store"]["rows"] == 2
        assert stats["operand_cache"]["max_bytes"] == 64 * 1024 * 1024

    def test_tcp_transport(self, tmp_path):
        svc = ExperimentService(workers=0)
        ready = threading.Event()
        address = {}

        def remember(addr: str) -> None:
            address["addr"] = addr
            ready.set()

        thread = threading.Thread(
            target=lambda: asyncio.run(svc.run(port=0, ready=remember)),
            daemon=True,
        )
        thread.start()
        assert ready.wait(timeout=30)
        _kind, host, port = address["addr"].split(":")
        with ServiceClient(host=host, port=int(port)) as client:
            assert client.ping()["ok"]
            client.shutdown()
        thread.join(timeout=30)
        assert not thread.is_alive()


class TestResidentOperands:
    def test_operand_cache_installed_only_while_serving(self, service):
        svc, sock, _store = service
        assert operand_cache() is svc.operand_cache
        with ServiceClient(socket_path=sock) as client:
            client.submit_and_wait(grid=_grid_payload([4, 16]))
            stats = client.stats()["operand_cache"]
        # Two configs share one dataset: the second load was resident.
        assert stats["hits"] >= 1
        assert stats["resident_bytes"] > 0

    def test_cache_uninstalled_after_shutdown(self, tmp_path):
        sock = tmp_path / "svc.sock"
        svc = ExperimentService(workers=0)
        ready = threading.Event()
        thread = threading.Thread(
            target=lambda: asyncio.run(
                svc.run(socket_path=sock, ready=lambda _a: ready.set())
            ),
            daemon=True,
        )
        thread.start()
        assert ready.wait(timeout=30)
        with ServiceClient(socket_path=sock) as client:
            client.shutdown()
        thread.join(timeout=30)
        assert operand_cache() is None

    def test_batch_run_grid_has_no_operand_cache(self):
        """Outside the service the hooks are a strict no-op."""
        assert operand_cache() is None
        run_grid(_configs([4]), workers=0)
        assert operand_cache() is None


class TestConcurrentJobs:
    def test_overlapping_grids_execute_each_unique_config_once(
        self, service, monkeypatch
    ):
        """Two clients submit overlapping grids concurrently; every unique
        hash executes exactly once and both jobs see full results."""
        import repro.experiments.engine as engine_mod

        calls = []
        lock = threading.Lock()
        real = engine_mod.execute_config

        def counting(config, **kwargs):
            with lock:
                calls.append(config.config_hash())
            return real(config, **kwargs)

        monkeypatch.setattr(engine_mod, "execute_config", counting)
        _svc, sock, store = service
        results = {}

        def submit(name: str, process_counts) -> None:
            with ServiceClient(socket_path=sock) as client:
                results[name] = client.submit_and_wait(
                    grid=_grid_payload(process_counts)
                )

        t_a = threading.Thread(target=submit, args=("a", [4, 16, 64]))
        t_b = threading.Thread(target=submit, args=("b", [16, 64, 128]))
        t_a.start()
        t_b.start()
        t_a.join(timeout=120)
        t_b.join(timeout=120)

        assert results["a"]["ok"] and results["b"]["ok"]
        assert len(results["a"]["records"]) == 3
        assert len(results["b"]["records"]) == 3
        # 4 unique configs across both grids; no hash ran twice.
        assert len(calls) == len(set(calls)) == 4
        assert len(store.load_records()) == 4


class TestSubmitParsing:
    def test_configs_and_grid_combine(self):
        message = {
            "configs": [{"dataset": "hv15r", "nprocs": 4}],
            "grid": {"datasets": ["queen"], "process_counts": [8]},
        }
        configs = parse_submit_configs(message)
        assert [c.dataset for c in configs] == ["hv15r", "queen"]

    def test_bad_entries_rejected(self):
        with pytest.raises(ValueError):
            parse_submit_configs({"configs": ["not-an-object"]})
        with pytest.raises(ValueError):
            parse_submit_configs({"grid": "not-an-object"})
        with pytest.raises(ValueError):
            parse_submit_configs({})


class TestCLI:
    def test_sweep_budget_rejection_exits_3(self, capsys):
        """Satellite: admission-control rejection is a clear message and a
        distinct non-zero exit code."""
        code = main([
            "sweep", "--datasets", "hv15r", "--nprocs", "4,16",
            "--block-splits", "16", "--scale", "0.05", "--budget", "1",
        ])
        assert code == 3
        err = capsys.readouterr().err
        assert "sweep rejected" in err
        assert "budget" in err

    def test_sweep_within_budget_succeeds(self, tmp_path, capsys):
        records = tmp_path / "records.jsonl"
        code = main([
            "sweep", "--datasets", "hv15r", "--nprocs", "4",
            "--block-splits", "16", "--scale", "0.05",
            "--records", str(records), "--budget", "1",
        ])
        assert code == 0
        assert records.is_file()

    def test_serve_requires_an_endpoint(self, capsys):
        assert main(["serve"]) == 2
        assert "--socket" in capsys.readouterr().err

    def test_serve_cli_round_trip(self, tmp_path):
        """`python -m repro serve` as a subprocess: submit over the socket,
        shut down, and find the records in the store."""
        import os
        import subprocess
        import sys

        import repro

        sock = tmp_path / "serve.sock"
        store = tmp_path / "records.jsonl"
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            pathlib_root(repro) + os.pathsep + env.get("PYTHONPATH", "")
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--socket", str(sock),
             "--records", str(store)],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env,
        )
        try:
            banner = proc.stdout.readline()
            assert "listening on" in banner
            with ServiceClient(socket_path=sock) as client:
                reply = client.submit_and_wait(grid=_grid_payload([4]))
                assert reply["ok"] and len(reply["records"]) == 1
                client.shutdown()
            assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
        assert len(ResultStore(store).load_records()) == 1

    def test_service_store_matches_batch_run_grid(self, service, tmp_path):
        """A store grown through the service is byte-identical to one
        written by a plain serial run_grid of the same union."""
        _svc, sock, store = service
        with ServiceClient(socket_path=sock) as client:
            client.submit_and_wait(grid=_grid_payload([4, 16]))
            client.submit_and_wait(grid=_grid_payload([16, 64]))
        reference = ResultStore(tmp_path / "reference.jsonl")
        run_grid(_configs([4, 16, 64]), workers=0, store=reference)
        assert store.path.read_bytes() == reference.path.read_bytes()


def pathlib_root(module) -> str:
    """src/ directory of an imported package (for subprocess PYTHONPATH)."""
    import pathlib

    return str(pathlib.Path(module.__file__).resolve().parent.parent)


class TestRecordWireFormat:
    def test_records_round_trip_as_json(self, service):
        from repro.experiments import RunRecord

        _svc, sock, _store = service
        with ServiceClient(socket_path=sock) as client:
            reply = client.submit_and_wait(grid=_grid_payload([4]))
        (row,) = reply["records"]
        record = RunRecord.from_dict(json.loads(json.dumps(row)))
        assert record.config.nprocs == 4
        assert record.conserved


def test_socket_module_guard():
    """ServiceClient needs an endpoint."""
    with pytest.raises(ValueError):
        ServiceClient()


def test_unix_socket_path_is_reusable(tmp_path):
    """Restarting a service on the same socket path works (stale socket
    files are unlinked on bind)."""
    sock = tmp_path / "svc.sock"
    sock.touch()                                 # a stale leftover file
    svc = ExperimentService(workers=0)
    ready = threading.Event()
    thread = threading.Thread(
        target=lambda: asyncio.run(
            svc.run(socket_path=sock, ready=lambda _a: ready.set())
        ),
        daemon=True,
    )
    thread.start()
    assert ready.wait(timeout=30)
    with ServiceClient(socket_path=sock) as client:
        assert client.ping()["ok"]
        client.shutdown()
    thread.join(timeout=30)
    assert not thread.is_alive()


class TestCrashSafeService:
    """Journal adoption through the service layer: a service started on
    the debris of a crashed predecessor finishes its interrupted jobs
    before accepting new ones."""

    @staticmethod
    def _interrupted_state(tmp_path, keep_persisted: int = 2):
        """Build a (store, journal, baseline) triple that looks like a
        service killed mid-sweep: a complete journalled run truncated to
        its first ``keep_persisted`` persisted results."""
        from repro.experiments.journal import JOURNAL_FILENAME, Journal

        prior = tmp_path / "prior"
        prior.mkdir()
        full_store = ResultStore(prior / "records.jsonl")
        run_grid(_configs([2, 4, 8, 16]), workers=0, store=full_store,
                 journal=prior / "journal")
        baseline = full_store.path.read_bytes()

        journal_lines = (
            prior / "journal" / JOURNAL_FILENAME
        ).read_bytes().splitlines(keepends=True)
        cut = persisted = 0
        for i, line in enumerate(journal_lines):
            rec = json.loads(line)["rec"]
            if rec["type"] == "result-persisted":
                persisted += 1
                if persisted == keep_persisted:
                    cut = i + 1
                    break
        assert cut, "journalled run had too few persisted records"

        crashed = tmp_path / "crashed"
        jdir = crashed / "journal"
        jdir.mkdir(parents=True)
        (jdir / JOURNAL_FILENAME).write_bytes(b"".join(journal_lines[:cut]))
        store_path = crashed / "records.jsonl"
        store_lines = baseline.splitlines(keepends=True)
        store_path.write_bytes(b"".join(store_lines[:keep_persisted]))
        assert Journal(jdir).interrupted_jobs(), "state is not interrupted"
        return store_path, jdir, baseline

    @staticmethod
    def _serve(store_path, jdir, sock):
        svc = ExperimentService(
            workers=0, store=ResultStore(store_path), journal=jdir,
            operand_cache_mb=64,
        )
        ready = threading.Event()
        thread = threading.Thread(
            target=lambda: asyncio.run(
                svc.run(socket_path=sock, ready=lambda _a: ready.set())
            ),
            daemon=True,
        )
        thread.start()
        assert ready.wait(timeout=30), "service did not come up"
        return svc, thread

    def test_restarted_service_adopts_and_finishes_interrupted_job(
        self, tmp_path
    ):
        store_path, jdir, baseline = self._interrupted_state(tmp_path)
        sock = tmp_path / "svc.sock"
        svc, thread = self._serve(store_path, jdir, sock)
        try:
            assert svc.adopted_jobs == ["job-1"]
            with ServiceClient(socket_path=sock) as client:
                # The adopted job is queryable under its pre-crash id and
                # runs to completion without a fresh submit.
                reply = client.results("job-1", wait=True)
                assert reply["ok"] and reply["state"] == "done"
                assert len(reply["records"]) == 4
                stats = client.stats()
                assert stats["adopted_jobs"] == ["job-1"]
                assert set(stats["faults"]) == {
                    "retries", "reassigned", "timeouts", "respawns",
                }
        finally:
            with ServiceClient(socket_path=sock) as client:
                client.shutdown()
            thread.join(timeout=30)
        assert store_path.read_bytes() == baseline

    def test_second_restart_adopts_nothing(self, tmp_path):
        from repro.experiments.journal import Journal

        store_path, jdir, baseline = self._interrupted_state(tmp_path)
        sock = tmp_path / "svc.sock"
        svc, thread = self._serve(store_path, jdir, sock)
        try:
            with ServiceClient(socket_path=sock) as client:
                client.results("job-1", wait=True)
        finally:
            with ServiceClient(socket_path=sock) as client:
                client.shutdown()
            thread.join(timeout=30)
        assert Journal(jdir).interrupted_jobs() == []

        svc2, thread2 = self._serve(store_path, jdir, sock)
        try:
            assert svc2.adopted_jobs == []
            with ServiceClient(socket_path=sock) as client:
                assert client.stats()["adopted_jobs"] == []
        finally:
            with ServiceClient(socket_path=sock) as client:
                client.shutdown()
            thread2.join(timeout=30)
        assert store_path.read_bytes() == baseline

    def test_new_submits_on_adopted_service_stay_byte_identical(
        self, tmp_path
    ):
        """Adoption composes with fresh submits: the final store equals a
        clean serial run of the union grid."""
        store_path, jdir, _baseline = self._interrupted_state(tmp_path)
        sock = tmp_path / "svc.sock"
        _svc, thread = self._serve(store_path, jdir, sock)
        try:
            with ServiceClient(socket_path=sock) as client:
                client.results("job-1", wait=True)
                client.submit_and_wait(grid=_grid_payload([32]))
        finally:
            with ServiceClient(socket_path=sock) as client:
                client.shutdown()
            thread.join(timeout=30)
        reference = ResultStore(tmp_path / "reference.jsonl")
        run_grid(_configs([2, 4, 8, 16, 32]), workers=0, store=reference)
        assert store_path.read_bytes() == reference.path.read_bytes()

"""Masked SpGEMM and the resident elementwise operand operations.

Pins the PR-5 tentpole semantics:

* masked multiply equals ``unmasked ⊙ M`` on every driver (the mask is a
  pattern filter applied rank-locally — no communication is charged for it);
* ``mask_mode="early"`` (1D) produces the identical masked product while
  strictly reducing modelled volume when the mask's column support is
  sparser than ``B``'s;
* every elementwise operand op (``ewise_mult``, ``prune``,
  ``scale_columns``, ``inflate``, ``column_sums``) transforms the resident
  pieces correctly and leaves a conserved ledger.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    column_sums,
    ewise_mult,
    inflate,
    make_algorithm,
    prune,
    scale_columns,
)
from repro.core.pipeline import coerce_columns_1d, coerce_rows_1d
from repro.runtime import SimulatedCluster
from repro.sparse import CSCMatrix, local_spgemm
from repro.sparse.ops import elementwise_mask

ALL_DRIVERS = (
    "1d",
    "2d",
    "3d",
    "outer-product",
    "1d-naive-block-row",
    "1d-improved-block-row",
)


def _random_sparse(n: int, density: float, seed: int) -> CSCMatrix:
    rng = np.random.default_rng(seed)
    dense = (rng.random((n, n)) < density) * rng.random((n, n))
    return CSCMatrix.from_dense(dense)


@pytest.fixture(scope="module")
def operands():
    A = _random_sparse(48, 0.12, seed=7)
    M = _random_sparse(48, 0.06, seed=8)
    reference = elementwise_mask(local_spgemm(A, A), M)
    return A, M, reference


class TestMaskedDrivers:
    @pytest.mark.parametrize("driver", ALL_DRIVERS)
    def test_masked_equals_unmasked_hadamard_mask(self, driver, operands):
        A, M, reference = operands
        cluster = SimulatedCluster(4)
        result = make_algorithm(driver).multiply(A, A, cluster, mask=M)
        assert result.C.allclose(reference)
        assert result.ledger.is_conserved()
        assert result.info["masked"] == 1.0
        assert result.info["mask_nnz"] == float(M.nnz)

    @pytest.mark.parametrize("driver", ALL_DRIVERS)
    def test_mask_phase_charges_no_communication(self, driver, operands):
        A, M, _ = operands
        cluster = SimulatedCluster(4)
        make_algorithm(driver).multiply(A, A, cluster, mask=M)
        mask_stats = cluster.ledger.phases["mask"]
        assert sum(st.bytes_sent for st in mask_stats) == 0
        assert sum(st.bytes_received for st in mask_stats) == 0
        assert sum(st.messages_sent + st.rdma_gets for st in mask_stats) == 0
        # ... but the filter work itself is charged as computation.
        assert sum(st.flops for st in mask_stats) > 0

    @pytest.mark.parametrize("driver", ALL_DRIVERS)
    def test_masked_matches_volume_of_unmasked(self, driver, operands):
        """Late masking never changes what moves — only what survives."""
        A, M, _ = operands
        c_masked = SimulatedCluster(4)
        c_plain = SimulatedCluster(4)
        masked = make_algorithm(driver).multiply(A, A, c_masked, mask=M)
        plain = make_algorithm(driver).multiply(A, A, c_plain)
        assert masked.communication_volume == plain.communication_volume
        assert masked.message_count == plain.message_count
        assert masked.output_nnz <= plain.output_nnz

    def test_mask_shape_mismatch_raises(self, operands):
        A, _, _ = operands
        bad = CSCMatrix.empty(A.nrows + 1, A.ncols)
        with pytest.raises(ValueError, match="mask shape"):
            make_algorithm("1d").multiply(A, A, SimulatedCluster(4), mask=bad)

    def test_unknown_mask_mode_raises(self, operands):
        A, M, _ = operands
        with pytest.raises(ValueError, match="unknown mask_mode"):
            make_algorithm("1d").multiply(
                A, A, SimulatedCluster(4), mask=M, mask_mode="sideways"
            )

    @pytest.mark.parametrize("driver", ("2d", "outer-product"))
    def test_early_mode_rejected_off_1d(self, driver, operands):
        A, M, _ = operands
        with pytest.raises(ValueError, match="early"):
            make_algorithm(driver).multiply(
                A, A, SimulatedCluster(4), mask=M, mask_mode="early"
            )


class TestEarlyMasking:
    def _sparse_column_mask(self, n: int, ncols_kept: int) -> CSCMatrix:
        """A mask whose column support is only the first ``ncols_kept`` columns."""
        rng = np.random.default_rng(3)
        dense = np.zeros((n, n))
        dense[:, :ncols_kept] = (rng.random((n, ncols_kept)) < 0.3) * 1.0
        return CSCMatrix.from_dense(dense)

    def test_early_volume_strictly_below_late_on_sparse_masks(self):
        A = _random_sparse(64, 0.15, seed=11)
        M = self._sparse_column_mask(64, ncols_kept=6)
        reference = elementwise_mask(local_spgemm(A, A), M)
        volumes = {}
        for mode in ("late", "early"):
            cluster = SimulatedCluster(4)
            result = make_algorithm("1d", block_split=8).multiply(
                A, A, cluster, mask=M, mask_mode=mode
            )
            assert result.C.allclose(reference), mode
            assert result.ledger.is_conserved(), mode
            volumes[mode] = result.communication_volume
        assert volumes["early"] < volumes["late"]

    def test_early_handles_all_masked_out_ranks(self):
        """Ranks whose mask columns are all empty fetch nothing."""
        A = _random_sparse(40, 0.2, seed=12)
        M = self._sparse_column_mask(40, ncols_kept=5)  # ranks 1-3 empty at P=4
        cluster = SimulatedCluster(4)
        result = make_algorithm("1d", block_split=8).multiply(
            A, A, cluster, mask=M, mask_mode="early"
        )
        reference = elementwise_mask(local_spgemm(A, A), M)
        assert result.C.allclose(reference)

    def test_early_info_flag(self):
        A = _random_sparse(40, 0.2, seed=13)
        M = self._sparse_column_mask(40, ncols_kept=5)
        cluster = SimulatedCluster(4)
        result = make_algorithm("1d").multiply(A, A, cluster, mask=M, mask_mode="early")
        assert result.info["mask_early"] == 1.0


class TestResidentMaskReuse:
    def test_resident_mask_not_redistributed(self):
        """A mask already in the output layout is reused object-identically."""
        A = _random_sparse(40, 0.15, seed=21)
        M = _random_sparse(40, 0.05, seed=22)
        cluster = SimulatedCluster(4)
        algo = make_algorithm("1d")
        op_m = coerce_columns_1d(M, 4)
        prepared = algo.prepare(A, A, cluster, mask=op_m)
        assert prepared.mask.dist is op_m.dist
        result = algo.execute(prepared)
        assert result.C.allclose(elementwise_mask(local_spgemm(A, A), M))


class TestElementwiseOps:
    N = 36
    P = 4

    @pytest.fixture()
    def dense(self):
        rng = np.random.default_rng(31)
        return (rng.random((self.N, self.N)) < 0.15) * rng.random((self.N, self.N))

    @pytest.fixture()
    def op(self, dense):
        return coerce_columns_1d(CSCMatrix.from_dense(dense), self.P)

    @pytest.fixture()
    def cluster(self):
        return SimulatedCluster(self.P)

    def test_ewise_mult(self, dense, op, cluster):
        out = ewise_mult(op, op, cluster)
        assert out.global_matrix().allclose(CSCMatrix.from_dense(dense * dense))
        cluster.assert_conservation()
        assert cluster.ledger.total_bytes() == 0  # purely rank-local

    def test_ewise_mult_charges_both_patterns(self, dense, cluster):
        """The sorted merge walks both operands: nnz(A_i) + nnz(B_i) flops
        per rank, even when one side is nearly empty."""
        sparse = np.zeros_like(dense)
        sparse[0, 0] = 1.0
        op_a = coerce_columns_1d(CSCMatrix.from_dense(sparse), self.P)
        op_b = coerce_columns_1d(CSCMatrix.from_dense(dense), self.P)
        ewise_mult(op_a, op_b, cluster)
        charged = sum(
            st.flops for st in cluster.ledger.phases["ewise-mult"]
        )
        assert charged == op_a.nnz + op_b.nnz

    def test_ewise_mult_requires_matching_bounds(self, dense, op, cluster):
        other = coerce_columns_1d(
            CSCMatrix.from_dense(dense), self.P, bounds=[(0, 6), (6, 12), (12, 24), (24, 36)]
        )
        with pytest.raises(ValueError, match="bounds"):
            ewise_mult(op, other, cluster)

    def test_prune(self, dense, op, cluster):
        out = prune(op, 0.5, cluster)
        expected = dense * (dense > 0.5)
        assert out.global_matrix().allclose(CSCMatrix.from_dense(expected))
        cluster.assert_conservation()

    def test_prune_rejects_negative_threshold(self, op, cluster):
        with pytest.raises(ValueError, match="non-negative"):
            prune(op, -1.0, cluster)

    def test_scale_columns(self, dense, op, cluster):
        scales = np.linspace(0.5, 2.0, self.N)
        out = scale_columns(op, scales, cluster)
        assert out.global_matrix().allclose(CSCMatrix.from_dense(dense * scales))
        cluster.assert_conservation()

    def test_inflate(self, dense, op, cluster):
        out = inflate(op, 2.0, cluster)
        squared = dense**2
        sums = squared.sum(axis=0)
        sums[sums == 0.0] = 1.0
        assert out.global_matrix().allclose(CSCMatrix.from_dense(squared / sums))
        cluster.assert_conservation()

    def test_inflate_power_one_is_pure_normalisation(self, dense, op, cluster):
        out = inflate(op, 1.0, cluster)
        sums = dense.sum(axis=0)
        sums[sums == 0.0] = 1.0
        assert out.global_matrix().allclose(CSCMatrix.from_dense(dense / sums))

    def test_column_sums_allgathers_and_conserves(self, dense, op, cluster):
        sums = column_sums(op, cluster)
        assert np.allclose(sums, dense.sum(axis=0))
        cluster.assert_conservation()
        # The global vector is allgathered — the one communicating op.
        assert cluster.ledger.total_bytes() > 0
        assert cluster.ledger.total_messages() > 0

    def test_column_ops_reject_row_layout(self, dense, cluster):
        rows_op = coerce_rows_1d(CSCMatrix.from_dense(dense), self.P)
        for fn in (
            lambda: inflate(rows_op, 2.0, cluster),
            lambda: scale_columns(rows_op, np.ones(self.N), cluster),
            lambda: column_sums(rows_op, cluster),
        ):
            with pytest.raises(ValueError, match="1D column"):
                fn()

    def test_every_op_is_deterministic(self, dense, op):
        """Same operand, same charges — bit-identical ledgers across runs."""
        def run():
            cluster = SimulatedCluster(self.P)
            out = inflate(prune(ewise_mult(op, op, cluster), 1e-3, cluster), 2.0, cluster)
            column_sums(out, cluster)
            return cluster.ledger

        a, b = run(), run()
        assert a.phase_order == b.phase_order
        for name in a.phase_order:
            for st_a, st_b in zip(a.phases[name], b.phases[name]):
                assert st_a.time == st_b.time
                assert st_a.bytes_sent == st_b.bytes_sent
                assert st_a.bytes_received == st_b.bytes_received
                assert st_a.flops == st_b.flops

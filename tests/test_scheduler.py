"""Tests for the experiment scheduler: jobs, lanes, dedup, admission
control, and the byte-identity / resume contracts it inherits from the
engine it replaced."""

from __future__ import annotations

import threading

import pytest

from repro.experiments import (
    ExperimentGrid,
    JobRejected,
    ResultStore,
    RunConfig,
    Scheduler,
    SweepStats,
    run_grid,
)


def _configs(n: int = 4) -> list:
    """n distinct tiny configs (distinct nprocs on one dataset)."""
    return [
        RunConfig(dataset="hv15r", nprocs=p, block_split=16, scale=0.05)
        for p in (2, 4, 8, 16, 32, 64)[:n]
    ]


class TestDedup:
    def test_duplicate_configs_execute_once(self, tmp_path, monkeypatch):
        """Satellite: a grid naming the same canonical config twice executes
        it once and persists one record."""
        import repro.experiments.engine as engine_mod

        calls = []
        real = engine_mod.execute_config

        def counting(config, **kwargs):
            calls.append(config.config_hash())
            return real(config, **kwargs)

        monkeypatch.setattr(engine_mod, "execute_config", counting)
        a, b = _configs(2)
        store = ResultStore(tmp_path / "records.jsonl")
        result = run_grid([a, b, a, a, b], workers=0, store=store)

        assert len(calls) == len(set(calls)) == 2
        assert result.stats.total == 5
        assert result.stats.executed == 2
        assert result.stats.deduped == 3
        assert len(result.records) == 2          # one per unique hash
        assert len(store.load_records()) == 2    # one row per unique hash

    def test_result_order_is_first_occurrence(self):
        a, b = _configs(2)
        result = run_grid([b, a, b], workers=0)
        assert [r.config.nprocs for r in result.records] == [b.nprocs, a.nprocs]

    def test_inflight_collision_attaches_across_jobs(self, monkeypatch):
        """A hash already executing for job A never re-executes for job B."""
        import repro.experiments.engine as engine_mod

        release = threading.Event()
        calls = []
        real = engine_mod.execute_config

        def gated(config, **kwargs):
            calls.append(config.config_hash())
            release.wait(timeout=30)
            return real(config, **kwargs)

        monkeypatch.setattr(engine_mod, "execute_config", gated)
        a, b = _configs(2)
        with Scheduler(workers=0) as scheduler:
            first = scheduler.submit([a, b])
            # Wait for the serial lane to pick up the first task, then
            # submit an overlapping job while both hashes are in flight.
            deadline = threading.Event()
            while not calls:
                deadline.wait(0.01)
            second = scheduler.submit([a, b])
            assert second.counters.executed == 0
            assert second.counters.deduped == 2
            release.set()
            records_first = first.wait(timeout=60)
            records_second = second.wait(timeout=60)

        assert len(calls) == 2                    # each hash ran exactly once
        assert len(records_first) == len(records_second) == 2
        hashes = lambda records: [r.config_hash for r in records]  # noqa: E731
        assert hashes(records_first) == hashes(records_second)

    def test_completed_hashes_are_cached_across_jobs(self):
        """A long-lived scheduler serves later jobs from memory even
        without a store."""
        with Scheduler(workers=0) as scheduler:
            first = scheduler.submit(_configs(2))
            first.wait(timeout=60)
            second = scheduler.submit(_configs(2))
            records = second.wait(timeout=60)
        assert second.counters.cached == 2
        assert second.counters.executed == 0
        assert len(records) == 2


class TestAdmissionControl:
    def test_budget_rejects_before_side_effects(self, tmp_path):
        store = ResultStore(tmp_path / "records.jsonl")
        with Scheduler(workers=0, store=store) as scheduler:
            with pytest.raises(JobRejected) as exc:
                scheduler.submit(_configs(3), budget=2)
            assert "budget" in exc.value.reason
            assert scheduler.stats()["jobs_submitted"] == 0
        assert not store.exists()                 # nothing persisted

    def test_budget_counts_only_fresh_executions(self, tmp_path):
        store = ResultStore(tmp_path / "records.jsonl")
        run_grid(_configs(2), workers=0, store=store)
        # Cache hits are free: the same grid re-submits under a 0 budget.
        result = run_grid(_configs(2), workers=0, store=store, budget=0)
        assert result.stats.cached == 2

    def test_max_inflight_configs(self):
        with Scheduler(workers=0, max_inflight_configs=2) as scheduler:
            with pytest.raises(JobRejected) as exc:
                scheduler.submit(_configs(3))
            assert "admission control" in exc.value.reason

    def test_max_inflight_jobs(self, monkeypatch):
        import repro.experiments.engine as engine_mod

        release = threading.Event()
        started = threading.Event()
        real = engine_mod.execute_config

        def gated(config, **kwargs):
            started.set()
            release.wait(timeout=30)
            return real(config, **kwargs)

        monkeypatch.setattr(engine_mod, "execute_config", gated)
        a, b = _configs(2)
        with Scheduler(workers=0, max_inflight_jobs=1) as scheduler:
            handle = scheduler.submit([a])
            assert started.wait(timeout=30)
            with pytest.raises(JobRejected) as exc:
                scheduler.submit([b])
            assert "in flight" in exc.value.reason
            release.set()
            handle.wait(timeout=60)
            # Capacity frees up once the first job finishes.
            scheduler.submit([b]).wait(timeout=60)

    def test_run_grid_forwards_admission_control(self):
        with pytest.raises(JobRejected):
            run_grid(_configs(2), workers=0, budget=1)


class TestByteIdentity:
    def test_serial_equals_parallel_with_duplicates(self, tmp_path):
        configs = _configs(3)
        configs = configs + [configs[0]]          # a duplicate in the mix
        serial = ResultStore(tmp_path / "serial.jsonl")
        parallel = ResultStore(tmp_path / "parallel.jsonl")
        run_grid(configs, workers=0, store=serial)
        run_grid(configs, workers=2, store=parallel)
        assert serial.path.read_bytes() == parallel.path.read_bytes()

    def test_interrupted_job_resumes_byte_identical(self, tmp_path, monkeypatch):
        """Satellite: kill a job mid-grid, resubmit, and the final store is
        byte-identical to an uninterrupted run — only the unfinished
        configs execute on resume."""
        import repro.experiments.engine as engine_mod

        configs = _configs(4)
        reference = ResultStore(tmp_path / "reference.jsonl")
        run_grid(configs, workers=0, store=reference)

        interrupted = ResultStore(tmp_path / "interrupted.jsonl")
        calls = {"n": 0}
        real = engine_mod.execute_config

        def flaky(config, **kwargs):
            if calls["n"] == 2:
                raise RuntimeError("simulated kill mid-grid")
            calls["n"] += 1
            return real(config, **kwargs)

        monkeypatch.setattr(engine_mod, "execute_config", flaky)
        with pytest.raises(RuntimeError):
            run_grid(configs, workers=0, store=interrupted)
        assert len(interrupted.load()) == 2       # the clean prefix survived

        monkeypatch.setattr(engine_mod, "execute_config", real)
        calls2 = []

        def counting(config, **kwargs):
            calls2.append(config.config_hash())
            return real(config, **kwargs)

        monkeypatch.setattr(engine_mod, "execute_config", counting)
        result = run_grid(configs, workers=0, store=interrupted)
        assert len(calls2) == 2                   # only the remainder ran
        assert result.stats.cached == 2 and result.stats.executed == 2
        assert interrupted.path.read_bytes() == reference.path.read_bytes()

    def test_scheduler_records_match_run_grid(self, tmp_path):
        """The same grid through an explicit Scheduler and through run_grid
        persists identical bytes."""
        configs = _configs(3)
        via_run_grid = ResultStore(tmp_path / "run_grid.jsonl")
        via_scheduler = ResultStore(tmp_path / "scheduler.jsonl")
        run_grid(configs, workers=0, store=via_run_grid)
        with Scheduler(workers=0, store=via_scheduler) as scheduler:
            scheduler.submit(configs).wait(timeout=60)
        assert (
            via_run_grid.path.read_bytes() == via_scheduler.path.read_bytes()
        )


class TestLanesAndCounters:
    def test_shm_configs_take_the_serial_lane(self, tmp_path):
        """Non-pool-safe backends are counted and routed onto the serial
        lane even when a pool exists."""
        simulated = _configs(2)
        shm = RunConfig(
            dataset="hv15r", nprocs=2, block_split=16, scale=0.05,
            backend="shm",
        )
        store = ResultStore(tmp_path / "records.jsonl")
        result = run_grid(simulated + [shm], workers=2, store=store)
        assert result.stats.executed == 3
        assert result.stats.serial_lane == 1
        assert len(store.load_records()) == 3

    def test_summary_mentions_scheduler_counters(self):
        stats = SweepStats(
            total=6, cached=1, executed=3, workers=2, deduped=2,
            serial_lane=1, wall_seconds=1.0,
        )
        text = stats.summary()
        assert "2 deduped" in text and "1 serial-lane" in text
        # The quiet case stays quiet: no noise when nothing was deduped.
        quiet = SweepStats(total=2, cached=0, executed=2, workers=1)
        assert "deduped" not in quiet.summary()
        assert "serial-lane" not in quiet.summary()

    def test_progress_callback_sees_scheduler_messages(self):
        lines = []
        a, *_ = _configs(1)
        run_grid([a, a], workers=0, progress=lines.append)
        text = "\n".join(lines)
        assert "dedup: 1 duplicate config(s)" in text
        assert "executing 1 configs" in text

    def test_stats_reflect_scheduler_state(self, tmp_path):
        store = ResultStore(tmp_path / "records.jsonl")
        with Scheduler(workers=0, store=store) as scheduler:
            scheduler.submit(_configs(2)).wait(timeout=60)
            stats = scheduler.stats()
        assert stats["jobs_submitted"] == 1
        assert stats["jobs_active"] == 0
        assert stats["configs_completed"] == 2
        assert stats["records_persisted"] == 2


class TestCancellation:
    def test_cancel_skips_queued_tasks(self, monkeypatch):
        import repro.experiments.engine as engine_mod

        release = threading.Event()
        started = threading.Event()
        real = engine_mod.execute_config

        def gated(config, **kwargs):
            started.set()
            release.wait(timeout=30)
            return real(config, **kwargs)

        monkeypatch.setattr(engine_mod, "execute_config", gated)
        with Scheduler(workers=0) as scheduler:
            handle = scheduler.submit(_configs(3))
            assert started.wait(timeout=30)
            handle.cancel()
            release.set()
            handle.finished.wait(timeout=60)
        assert handle.state == "cancelled"
        # The running task finished; the queued ones were skipped.
        assert 1 <= len(handle.records()) < 3

    def test_submit_after_shutdown_is_rejected(self):
        scheduler = Scheduler(workers=0)
        scheduler.shutdown()
        with pytest.raises(JobRejected):
            scheduler.submit(_configs(1))


class TestEvents:
    def test_subscribe_replays_terminal_event(self):
        """A subscriber arriving after the job finished still sees a
        terminal event — streams can never hang on a finished job."""
        with Scheduler(workers=0) as scheduler:
            handle = scheduler.submit(_configs(1))
            handle.wait(timeout=60)
            events = []
            handle.subscribe(events.append)
        kinds = [e["event"] for e in events]
        assert kinds[-1] == "done"
        assert all(e["job_id"] == handle.job_id for e in events)

    def test_progress_events_carry_counters(self):
        events = []
        with Scheduler(workers=0) as scheduler:
            handle = scheduler.submit(_configs(2))
            handle.subscribe(events.append)
            handle.wait(timeout=60)
        terminal = [e for e in events if e["event"] == "done"]
        assert terminal and terminal[-1]["counters"]["done"] == 2


class TestGridSubmission:
    def test_scheduler_accepts_a_grid(self):
        grid = ExperimentGrid(
            datasets=("hv15r",), process_counts=(4, 16), scale=0.05,
            block_splits=(16,),
        )
        with Scheduler(workers=0) as scheduler:
            records = scheduler.submit(grid).wait(timeout=60)
        assert len(records) == 2

"""Kernel-variant contract suite: the ``REPRO_KERNEL`` selector.

Three properties are pinned here:

1. **Selector semantics** — ``auto``/``numpy``/``numba``/``python`` resolve
   as documented, unknown names fail fast, and an explicit ``numba`` request
   on a machine without the package degrades to ``numpy`` with exactly one
   warning per process instead of raising mid-sweep.
2. **Bit-identity of the local kernels** — for randomised CSC inputs
   (including empty rows/columns, cancellation-produced zeros, float32 and
   float64, and masked multiplies) every fast variant reproduces the pure
   python reference *exactly*: same indptr/indices bytes, same data bytes,
   same dtype.  Floats are compared bitwise, not approximately — MCL
   iteration counts and the golden ledgers depend on bitwise values.
3. **Bit-identity of the modelled counters** — all six drivers and the six
   registry workloads produce byte-identical records/ledgers under every
   runnable variant (the golden-ledger idiom from the backend suite: the
   variant changes host wall-clock, never a modelled number).
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import (
    ImprovedBlockRow1D,
    NaiveBlockRow1D,
    OuterProduct1D,
    SparseSUMMA2D,
    SparsityAware1D,
    SplitSpGEMM3D,
)
from repro.experiments import RunConfig
from repro.experiments.engine import execute_config
from repro.runtime import SimulatedCluster
from repro.sparse import (
    KERNEL_VARIANTS,
    CSCMatrix,
    as_csc,
    kernel_variant,
    local_spgemm,
    numba_available,
    requested_kernel_variant,
    resolve_kernel_variant,
    set_kernel_variant,
)
from repro.sparse import kernels as kernels_mod
from repro.sparse import ops
from repro.sparse.merge import add_matrices

#: variants that can actually run in this process (``auto`` always resolves)
RUNNABLE = ("python", "numpy") + (("numba",) if numba_available() else ())
#: the fast variants compared against the ``python`` oracle
FAST = tuple(v for v in RUNNABLE if v != "python")


def _random_csc(m, n, density, seed, dtype=np.float64):
    mat = sp.random(m, n, density=density, random_state=seed, format="csc")
    out = as_csc(mat)
    return CSCMatrix(
        nrows=out.nrows,
        ncols=out.ncols,
        indptr=out.indptr,
        indices=out.indices,
        data=out.data.astype(dtype),
    )


def _assert_bit_identical(got: CSCMatrix, want: CSCMatrix, context: str):
    assert got.nrows == want.nrows and got.ncols == want.ncols, context
    np.testing.assert_array_equal(got.indptr, want.indptr, err_msg=context)
    np.testing.assert_array_equal(got.indices, want.indices, err_msg=context)
    assert got.data.dtype == want.data.dtype, context
    assert got.data.tobytes() == want.data.tobytes(), (
        f"{context}: data bytes differ (max abs diff "
        f"{np.max(np.abs(got.data - want.data)) if got.data.size else 0})"
    )


# ----------------------------------------------------------------------
# 1. Selector semantics
# ----------------------------------------------------------------------
class TestSelector:
    def test_variants_tuple(self):
        assert KERNEL_VARIANTS == ("auto", "numpy", "numba", "python")

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel variant"):
            set_kernel_variant("fortran")
        with pytest.raises(ValueError):
            resolve_kernel_variant("jit")

    def test_auto_resolves_to_an_available_fast_variant(self):
        resolved = resolve_kernel_variant("auto")
        assert resolved == ("numba" if numba_available() else "numpy")

    def test_context_manager_restores_request(self):
        before = requested_kernel_variant()
        with kernel_variant("python") as resolved:
            assert resolved == "python"
            assert requested_kernel_variant() == "python"
        assert requested_kernel_variant() == before

    def test_set_kernel_variant_exports_env(self, monkeypatch):
        # Pool workers resolve from the environment, so the setter must
        # publish the choice there.
        import os

        with kernel_variant("numpy"):
            assert os.environ["REPRO_KERNEL"] == "numpy"

    def test_env_var_drives_resolution(self, monkeypatch):
        monkeypatch.setattr(kernels_mod, "_forced", None)
        monkeypatch.setenv("REPRO_KERNEL", "python")
        assert resolve_kernel_variant() == "python"
        monkeypatch.setenv("REPRO_KERNEL", "")
        assert resolve_kernel_variant() == resolve_kernel_variant("auto")

    @pytest.mark.skipif(numba_available(), reason="numba is installed here")
    def test_missing_numba_degrades_with_single_warning(self, monkeypatch):
        monkeypatch.setattr(kernels_mod, "_warned_missing_numba", False)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert resolve_kernel_variant("numba") == "numpy"
            assert resolve_kernel_variant("numba") == "numpy"
        ours = [w for w in caught if issubclass(w.category, RuntimeWarning)]
        assert len(ours) == 1, "degradation must warn exactly once per process"
        assert "falling back" in str(ours[0].message)

    @pytest.mark.skipif(numba_available(), reason="numba is installed here")
    def test_missing_numba_never_raises(self, monkeypatch):
        monkeypatch.setattr(kernels_mod, "_warned_missing_numba", True)
        with kernel_variant("numba") as resolved:
            assert resolved == "numpy"
            A = _random_csc(20, 20, 0.2, seed=1)
            C = local_spgemm(A, A)
            np.testing.assert_array_equal(
                C.indptr, local_spgemm(A, A, variant="numpy").indptr
            )


# ----------------------------------------------------------------------
# 2. Kernel bit-identity vs the python oracle (randomised + edge cases)
# ----------------------------------------------------------------------
class TestSpGEMMBitIdentity:
    @pytest.mark.parametrize("kernel", ["heap", "hash", "dense", "hybrid"])
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_random_products(self, kernel, dtype):
        for seed in range(4):
            A = _random_csc(60, 45, 0.08, seed=10 + seed, dtype=dtype)
            B = _random_csc(45, 50, 0.08, seed=90 + seed, dtype=dtype)
            want = local_spgemm(A, B, kernel=kernel, variant="python")
            for fast in FAST:
                got = local_spgemm(A, B, kernel=kernel, variant=fast)
                _assert_bit_identical(
                    got, want, f"{kernel}/{fast}/{np.dtype(dtype)}/seed={seed}"
                )

    def test_mixed_dtypes_promote_identically(self):
        A = _random_csc(40, 40, 0.1, seed=3, dtype=np.float32)
        B = _random_csc(40, 40, 0.1, seed=4, dtype=np.float64)
        want = local_spgemm(A, B, variant="python")
        assert want.data.dtype == np.float64
        for fast in FAST:
            _assert_bit_identical(
                local_spgemm(A, B, variant=fast), want, f"mixed-dtype/{fast}"
            )

    def test_empty_rows_and_columns(self):
        # B has fully empty columns, A fully empty rows: the product must
        # keep the empty structure identically in every variant.
        A = CSCMatrix.from_coo(
            6, 5, rows=[0, 0, 3], cols=[0, 2, 2], vals=[1.0, 2.0, 3.0]
        )
        B = CSCMatrix.from_coo(5, 4, rows=[0, 2], cols=[1, 1], vals=[5.0, 7.0])
        want = local_spgemm(A, B, variant="python")
        for fast in FAST:
            _assert_bit_identical(local_spgemm(A, B, variant=fast), want, fast)

    def test_all_zero_products_from_cancellation(self):
        # x + (-x) accumulates to exactly 0.0; kernels keep the explicit
        # zero (no pruning inside the multiply) in segment order.
        A = CSCMatrix.from_coo(
            2, 2, rows=[0, 0], cols=[0, 1], vals=[1.0, 1.0]
        )
        B = CSCMatrix.from_coo(
            2, 1, rows=[0, 1], cols=[0, 0], vals=[0.5, -0.5]
        )
        want = local_spgemm(A, B, variant="python")
        assert want.nnz == 1 and np.all(want.data == 0.0)
        for fast in FAST:
            _assert_bit_identical(local_spgemm(A, B, variant=fast), want, fast)

    @pytest.mark.parametrize("kernel", ["heap", "hash", "dense", "hybrid"])
    def test_empty_operands(self, kernel):
        A = CSCMatrix.empty(10, 0)
        B = CSCMatrix.empty(0, 7)
        want = local_spgemm(A, B, kernel=kernel, variant="python")
        for fast in FAST:
            got = local_spgemm(A, B, kernel=kernel, variant=fast)
            _assert_bit_identical(got, want, f"empty/{kernel}/{fast}")


class TestElementwiseBitIdentity:
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_elementwise_multiply(self, dtype):
        for seed in range(5):
            A = _random_csc(50, 35, 0.12, seed=20 + seed, dtype=dtype)
            B = _random_csc(50, 35, 0.12, seed=70 + seed, dtype=dtype)
            with kernel_variant("python"):
                want = ops.elementwise_multiply(A, B)
            for fast in FAST:
                with kernel_variant(fast):
                    got = ops.elementwise_multiply(A, B)
                _assert_bit_identical(got, want, f"ewise-mult/{fast}/seed={seed}")

    @pytest.mark.parametrize("complement", [False, True])
    def test_elementwise_mask(self, complement):
        for seed in range(5):
            A = _random_csc(40, 40, 0.15, seed=30 + seed)
            M = _random_csc(40, 40, 0.15, seed=60 + seed)
            with kernel_variant("python"):
                want = ops.elementwise_mask(A, M, complement=complement)
            for fast in FAST:
                with kernel_variant(fast):
                    got = ops.elementwise_mask(A, M, complement=complement)
                _assert_bit_identical(
                    got, want, f"mask/complement={complement}/{fast}/seed={seed}"
                )

    def test_masked_multiply_interaction(self):
        # mask(A·B, M) — the triangle-counting composition — must be
        # bit-stable end to end, not just per primitive.
        A = _random_csc(45, 45, 0.1, seed=41)
        M = _random_csc(45, 45, 0.2, seed=42)
        with kernel_variant("python"):
            want = ops.elementwise_mask(local_spgemm(A, A), M)
        for fast in FAST:
            with kernel_variant(fast):
                got = ops.elementwise_mask(local_spgemm(A, A), M)
            _assert_bit_identical(got, want, f"masked-multiply/{fast}")

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_add_matrices(self, dtype):
        for seed in range(5):
            mats = [
                _random_csc(30, 25, 0.1, seed=100 + 7 * seed + j, dtype=dtype)
                for j in range(4)
            ]
            with kernel_variant("python"):
                want = add_matrices(mats)
            for fast in FAST:
                with kernel_variant(fast):
                    got = add_matrices(mats)
                _assert_bit_identical(got, want, f"add/{fast}/seed={seed}")

    def test_add_matrices_cancellation_keeps_explicit_zero(self):
        X = _random_csc(20, 20, 0.2, seed=5)
        negX = CSCMatrix(
            nrows=X.nrows, ncols=X.ncols, indptr=X.indptr,
            indices=X.indices, data=-X.data,
        )
        with kernel_variant("python"):
            want = add_matrices([X, negX])
        assert want.nnz == X.nnz and np.all(want.data == 0.0)
        for fast in FAST:
            with kernel_variant(fast):
                got = add_matrices([X, negX])
            _assert_bit_identical(got, want, f"add-cancel/{fast}")

    def test_empty_operands(self):
        A = CSCMatrix.empty(12, 9)
        B = _random_csc(12, 9, 0.2, seed=6)
        for fast in FAST:
            with kernel_variant(fast):
                assert ops.elementwise_multiply(A, B).nnz == 0
                assert ops.elementwise_mask(B, A).nnz == 0
                _assert_bit_identical(
                    ops.elementwise_mask(B, A, complement=True), B, "mask-empty"
                )

    def test_duplicate_free_inputs_assumed_and_preserved(self):
        # from_coo with duplicate (i,j) entries sums them on construction —
        # the kernels therefore only ever see duplicate-eliminated CSC, and
        # their outputs are duplicate-free too.
        M = CSCMatrix.from_coo(
            4, 4, rows=[1, 1, 2], cols=[0, 0, 3], vals=[1.0, 2.0, 4.0]
        )
        assert M.nnz == 2  # duplicates eliminated at ingest
        for fast in FAST:
            with kernel_variant(fast):
                prod = ops.elementwise_multiply(M, M)
            keys = prod.indices + 4 * np.repeat(
                np.arange(4), np.diff(prod.indptr)
            )
            assert len(np.unique(keys)) == prod.nnz

    def test_prune_explicit_zeros_matches_dense(self):
        A = _random_csc(30, 30, 0.2, seed=7)
        A.data[::3] = 0.0
        pruned = A.prune_explicit_zeros()
        np.testing.assert_array_equal(pruned.to_dense(), A.to_dense())
        assert pruned.nnz == int(np.count_nonzero(A.data))


# ----------------------------------------------------------------------
# 3. Driver and workload bit-identity across variants
# ----------------------------------------------------------------------
DRIVERS = [
    ("1d-sparsity-aware", lambda: SparsityAware1D(block_split=8), 4),
    ("1d-outer-product", lambda: OuterProduct1D(), 4),
    ("1d-naive-block-row", lambda: NaiveBlockRow1D(), 4),
    ("1d-improved-block-row", lambda: ImprovedBlockRow1D(), 4),
    ("2d-summa", lambda: SparseSUMMA2D(), 4),
    ("3d-split", lambda: SplitSpGEMM3D(layers=2), 8),
]


def _driver_fingerprint(factory, nprocs):
    A = _random_csc(64, 64, 0.08, seed=11)
    B = _random_csc(64, 64, 0.08, seed=12)
    cluster = SimulatedCluster(nprocs)
    result = factory().multiply(A, B, cluster)
    C = result.C
    return (
        C.indptr.tobytes(), C.indices.tobytes(), C.data.tobytes(),
        str(C.data.dtype),
        result.elapsed_time, result.comm_time, result.comp_time,
        result.other_time, result.communication_volume,
        result.message_count, result.rdma_gets, result.load_imbalance,
        tuple(sorted(result.info.items())),
    )


class TestDriverBitIdentity:
    @pytest.mark.parametrize("name,factory,nprocs", DRIVERS)
    def test_all_drivers_variant_invariant(self, name, factory, nprocs):
        with kernel_variant("python"):
            want = _driver_fingerprint(factory, nprocs)
        for fast in FAST:
            with kernel_variant(fast):
                got = _driver_fingerprint(factory, nprocs)
            assert got == want, f"{name} drifted under variant {fast!r}"


WORKLOAD_CONFIGS = [
    RunConfig(dataset="hv15r", algorithm="1d", nprocs=4, block_split=16,
              scale=0.1),
    RunConfig(dataset="hv15r", algorithm="1d", nprocs=4, block_split=16,
              scale=0.1, workload="chained-squaring", square_k=2),
    RunConfig(dataset="queen", algorithm="1d", nprocs=4, scale=0.1,
              workload="amg-restriction"),
    RunConfig(dataset="hv15r", algorithm="1d", nprocs=4, scale=0.1,
              workload="bc", bc_sources=8, bc_batch=8, bc_source_stride=4),
    RunConfig(dataset="eukarya", algorithm="1d", nprocs=4, block_split=16,
              scale=0.1, workload="triangles"),
    RunConfig(dataset="eukarya", algorithm="1d", nprocs=4, block_split=16,
              scale=0.1, workload="mcl", mcl_max_iters=40),
]


class TestWorkloadBitIdentity:
    @pytest.mark.parametrize(
        "config", WORKLOAD_CONFIGS, ids=[c.workload for c in WORKLOAD_CONFIGS]
    )
    def test_registry_workloads_variant_invariant(self, config):
        # The strongest form of the invariance claim: the *serialised
        # record* — every modelled counter, series, and extra — is
        # byte-identical under every runnable variant.
        with kernel_variant("python"):
            want = execute_config(config).to_json_line()
        for fast in FAST:
            with kernel_variant(fast):
                got = execute_config(config).to_json_line()
            assert got == want, (
                f"workload {config.workload!r} record drifted under {fast!r}"
            )

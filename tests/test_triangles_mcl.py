"""Triangle-counting and Markov-clustering workloads (PR-5 tentpole apps).

Acceptance criteria pinned here:

* triangle counts are exact against a local scipy reference on **all**
  bundled datasets and all six drivers;
* MCL reaches convergence with every iteration's ledger conserved;
* the new config axes are covered by the hash yet elided at their defaults,
  so every pre-PR5 config hash is unchanged (pinned against literal PR-4
  hashes).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.mcl import build_stochastic_matrix, run_mcl
from repro.apps.triangles import (
    build_lower_triangle,
    reference_triangle_count,
    run_triangles,
)
from repro.experiments import (
    ExperimentGrid,
    RunConfig,
    RunRecord,
    execute_config,
    run_grid,
)
from repro.matrices import dataset_names, load_dataset

SCALE = 0.1


@pytest.fixture(scope="module")
def graph():
    return load_dataset("eukarya", scale=SCALE)


class TestTriangleApp:
    @pytest.mark.parametrize("dataset", dataset_names())
    def test_exact_on_every_bundled_dataset(self, dataset):
        A = load_dataset(dataset, scale=SCALE)
        run = run_triangles(A, algorithm="1d", nprocs=4, dataset=dataset)
        assert run.matches_reference
        assert run.triangles == run.reference
        assert run.result.ledger.is_conserved()

    @pytest.mark.parametrize(
        "driver",
        ("1d", "2d", "3d", "outer-product",
         "1d-naive-block-row", "1d-improved-block-row"),
    )
    def test_exact_on_every_driver(self, driver, graph):
        run = run_triangles(graph, algorithm=driver, nprocs=4)
        assert run.matches_reference

    def test_early_mask_same_count_no_more_volume(self, graph):
        late = run_triangles(graph, algorithm="1d", nprocs=4, mask_mode="late")
        early = run_triangles(graph, algorithm="1d", nprocs=4, mask_mode="early")
        assert early.triangles == late.triangles
        # For triangles mask support == operand support, so early pruning can
        # only remove already-empty columns: never *more* volume.
        assert early.result.communication_volume <= late.result.communication_volume

    def test_lower_triangle_is_strict_and_symmetrised(self, graph):
        L = build_lower_triangle(graph)
        r, c, v = L.to_coo()
        assert np.all(r > c)
        assert np.all(v == 1.0)
        # Dropping orientation reproduces the symmetrised loop-free edge set.
        assert reference_triangle_count(L) == run_triangles(
            graph, algorithm="1d", nprocs=4
        ).triangles

    def test_count_reduction_is_charged(self, graph):
        run = run_triangles(graph, algorithm="1d", nprocs=4)
        assert "count" in run.result.ledger.phases
        count = run.result.ledger.phases["count"]
        assert sum(st.bytes_received for st in count) > 0  # the allreduce

    def test_rectangular_input_rejected(self):
        from repro.sparse import CSCMatrix

        with pytest.raises(ValueError, match="square"):
            run_triangles(CSCMatrix.empty(4, 5), nprocs=2)


class TestMCLApp:
    def test_converges_with_every_iteration_conserved(self, graph):
        run = run_mcl(graph, nprocs=4, max_iterations=40)
        assert run.converged
        assert run.n_iterations <= 40
        assert run.iterations, "empty iteration series"
        assert all(it.conserved for it in run.iterations)
        assert run.ledger.is_conserved()
        # 4 phase entries per executed iteration, in order.
        assert len(run.iterations) == 4 * run.n_iterations
        phases = [it.phase for it in run.iterations[:4]]
        assert phases == ["expand", "inflate", "prune", "converge"]

    def test_series_reconciles_with_topline(self, graph):
        run = run_mcl(graph, nprocs=4, max_iterations=40)
        assert sum(it.volume for it in run.iterations) == run.communication_volume
        assert sum(it.messages for it in run.iterations) == run.message_count
        assert sum(it.time for it in run.iterations) == pytest.approx(
            run.elapsed_time, rel=1e-12
        )

    def test_inflate_entries_keep_the_expansion_pattern(self, graph):
        """Inflation is power + scale — it never drops entries, so each
        inflate entry's nnz equals its iteration's expand nnz, and only
        prune shrinks the iterate."""
        run = run_mcl(graph, nprocs=4, max_iterations=40)
        by_iter = {}
        for it in run.iterations:
            by_iter.setdefault(it.iteration, {})[it.phase] = it
        for phases in by_iter.values():
            assert phases["inflate"].nnz == phases["expand"].nnz
            assert phases["prune"].nnz <= phases["inflate"].nnz
            assert phases["converge"].nnz == phases["prune"].nnz

    def test_final_iterate_is_column_stochastic(self, graph):
        run = run_mcl(graph, nprocs=4, max_iterations=40)
        final = run.final.global_matrix()
        sums = np.zeros(final.ncols)
        col_of_entry = np.repeat(
            np.arange(final.ncols, dtype=np.int64), np.diff(final.indptr)
        )
        np.add.at(sums, col_of_entry, final.data)
        nonzero = sums[sums > 0]
        assert np.allclose(nonzero, 1.0)

    def test_clusters_found_on_community_graph(self, graph):
        """eukarya is a community graph — MCL should find several clusters."""
        run = run_mcl(graph, nprocs=4, max_iterations=40)
        assert 1 < run.n_clusters < graph.nrows

    def test_stochastic_matrix_has_self_loops_and_unit_columns(self, graph):
        M = build_stochastic_matrix(graph)
        dense = M.to_dense()
        assert np.all(np.diag(dense) > 0)
        assert np.allclose(dense.sum(axis=0), 1.0)

    def test_rejects_non_column_algorithms(self, graph):
        with pytest.raises(ValueError, match="1D-column"):
            run_mcl(graph, algorithm="2d", nprocs=4)

    def test_deterministic(self, graph):
        a = run_mcl(graph, nprocs=4, max_iterations=40)
        b = run_mcl(graph, nprocs=4, max_iterations=40)
        assert a.n_iterations == b.n_iterations
        assert a.final_nnz == b.final_nnz
        assert a.communication_volume == b.communication_volume
        assert [it.volume for it in a.iterations] == [it.volume for it in b.iterations]


class TestPR5ConfigAxes:
    def test_pre_pr5_hashes_unchanged(self):
        """Pinned against literal hashes captured from the PR-4 tree.

        If any of these change, every cached record store silently
        invalidates and the BENCH_PR4/BENCH_PR5 overlap comparison breaks.
        """
        pins = [
            (RunConfig(dataset="eukarya", algorithm="1d", strategy="metis",
                       nprocs=16, block_split=32, scale=0.25),
             "029a01b08a1a8790"),
            (RunConfig(dataset="hv15r", algorithm="1d", nprocs=4,
                       block_split=32, scale=0.2),
             "8283f506c91d25eb"),
            (RunConfig(dataset="hv15r", workload="bc", algorithm="1d", nprocs=4,
                       scale=0.2, bc_sources=8, bc_batch=8, bc_source_stride=4,
                       resident=True),
             "0a4c1a1018886f79"),
            (RunConfig(dataset="hv15r", workload="chained-squaring",
                       algorithm="1d", nprocs=4, block_split=32, scale=0.2,
                       square_k=2),
             "d34ce87dab988d34"),
        ]
        for config, expected in pins:
            assert config.config_hash() == expected
            for key in ("mask_mode", "mcl_inflation", "mcl_prune", "mcl_max_iters"):
                assert key not in config.canonical_json()

    def test_explicit_late_mask_mode_shares_the_default_hash(self):
        """mask_mode=None and mask_mode="late" run identically (the executor
        resolves None to "late"), so they must share one cache key."""
        tri = RunConfig(dataset="eukarya", workload="triangles", scale=SCALE)
        late = tri.with_updates(mask_mode="late")
        assert late.config_hash() == tri.config_hash()
        assert "mask_mode" not in late.canonical_json()

    def test_new_axes_discriminate_hashes(self):
        tri = RunConfig(dataset="eukarya", workload="triangles", scale=SCALE)
        assert tri.config_hash() != tri.with_updates(mask_mode="early").config_hash()
        assert '"mask_mode":"early"' in tri.with_updates(mask_mode="early").canonical_json()
        mcl = RunConfig(dataset="eukarya", workload="mcl", scale=SCALE)
        hashes = {
            mcl.config_hash(),
            mcl.with_updates(mcl_inflation=1.5).config_hash(),
            mcl.with_updates(mcl_prune=1e-2).config_hash(),
            mcl.with_updates(mcl_max_iters=5).config_hash(),
        }
        assert len(hashes) == 4

    def test_pr4_record_rows_parse_without_new_fields(self):
        old = RunConfig(dataset="hv15r", scale=SCALE)
        data = old.as_dict()
        for key in ("mask_mode", "mcl_inflation", "mcl_prune", "mcl_max_iters"):
            del data[key]
        parsed = RunConfig.from_dict(data)
        assert parsed == old
        assert parsed.config_hash() == old.config_hash()

    def test_grid_applies_new_axes_per_workload(self):
        grid = ExperimentGrid(
            datasets=("eukarya",),
            workloads=("squaring", "triangles", "mcl"),
            process_counts=(4,),
            scale=SCALE,
            mask_mode="early",
            mcl_inflation=1.5,
            mcl_prune=1e-2,
            mcl_max_iters=10,
        )
        by_workload = {c.workload: c for c in grid.expand()}
        assert by_workload["triangles"].mask_mode == "early"
        assert by_workload["triangles"].mcl_inflation is None
        assert by_workload["mcl"].mcl_inflation == 1.5
        assert by_workload["mcl"].mcl_prune == 1e-2
        assert by_workload["mcl"].mcl_max_iters == 10
        assert by_workload["mcl"].mask_mode is None
        assert by_workload["squaring"].mask_mode is None
        assert by_workload["squaring"].mcl_inflation is None


class TestWorkloadRecords:
    def test_triangles_record_round_trip(self):
        config = RunConfig(
            dataset="eukarya", workload="triangles", algorithm="1d",
            nprocs=4, block_split=16, scale=SCALE,
        )
        record = execute_config(config)
        assert record.workload == "triangles"
        assert record.triangles is not None
        assert record.triangles.reference_match
        assert record.triangles.triangles > 0
        assert record.conserved
        assert record.output_nnz == record.triangles.masked_nnz
        line = record.to_json_line()
        assert RunRecord.from_json_line(line).to_json_line() == line

    def test_triangles_count_invariant_under_strategy(self):
        """Permutation reorients L but never changes the triangle count."""
        base = RunConfig(
            dataset="eukarya", workload="triangles", algorithm="1d",
            nprocs=4, block_split=16, scale=SCALE,
        )
        counts = {
            strategy: execute_config(
                base.with_updates(strategy=strategy)
            ).triangles.triangles
            for strategy in ("none", "random", "metis")
        }
        assert len(set(counts.values())) == 1, counts

    def test_mcl_record_round_trip_and_convergence(self):
        config = RunConfig(
            dataset="eukarya", workload="mcl", algorithm="1d",
            nprocs=4, block_split=16, scale=SCALE, mcl_max_iters=40,
        )
        record = execute_config(config)
        assert record.workload == "mcl"
        assert record.mcl is not None
        assert record.mcl.converged
        assert record.mcl.n_iterations >= 1
        assert record.conserved
        assert len(record.mcl.iterations) == 4 * record.mcl.n_iterations
        assert record.output_nnz == record.mcl.final_nnz
        line = record.to_json_line()
        assert RunRecord.from_json_line(line).to_json_line() == line

    def test_engine_cache_hits_new_workloads(self, tmp_path):
        store = tmp_path / "records.jsonl"
        grid = [
            RunConfig(dataset="eukarya", workload="triangles", algorithm="1d",
                      nprocs=4, block_split=16, scale=SCALE),
            RunConfig(dataset="eukarya", workload="mcl", algorithm="1d",
                      nprocs=4, block_split=16, scale=SCALE, mcl_max_iters=40),
        ]
        first = run_grid(grid, store=str(store))
        assert first.stats.executed == 2
        second = run_grid(grid, store=str(store))
        assert second.stats.executed == 0
        assert second.stats.cached == 2
        assert [r.to_json_line() for r in first] == [r.to_json_line() for r in second]

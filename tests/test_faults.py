"""Tests for the fault plane: deterministic fault injection, the job
journal, store tail recovery, and the scheduler's worker fault policy
(timeouts, bounded retry, reassignment, backlog release on reap)."""

from __future__ import annotations

import json
import os
import signal
import time

import pytest

from repro.core.pipeline import OperandCache
from repro.experiments import ResultStore, RunConfig, Scheduler, run_grid
from repro.experiments.faults import (
    FaultInjected,
    FaultPlan,
    FaultSpec,
    install_fault_plan,
    raise_point,
    reset_fault_plan,
)
from repro.experiments.journal import Journal, JournalCorrupt
from repro.matrices.transport import SEGMENT_PREFIX, cleanup_orphan_segments


def _configs(n: int = 4) -> list:
    return [
        RunConfig(dataset="hv15r", nprocs=p, block_split=16, scale=0.05)
        for p in (2, 4, 8, 16, 32, 64)[:n]
    ]


@pytest.fixture(autouse=True)
def _isolated_fault_plan():
    """No fault plan leaks between tests (or in from the environment)."""
    install_fault_plan(None)
    yield
    reset_fault_plan()


# ----------------------------------------------------------------------
# FaultSpec / FaultPlan
# ----------------------------------------------------------------------

class TestFaultSpec:
    def test_bare_point_fires_on_first_hit(self):
        spec = FaultSpec.parse("publish-failure")
        assert (spec.first, spec.last) == (1, 1)
        assert spec.covers(1) and not spec.covers(2)

    def test_nth_hit(self):
        spec = FaultSpec.parse("kill-before-dispatch:3")
        assert (spec.first, spec.last) == (3, 3)

    def test_hit_range_and_seconds(self):
        spec = FaultSpec.parse("hang-in-kernel:2-4@7.5")
        assert (spec.first, spec.last) == (2, 4)
        assert spec.seconds == 7.5
        assert spec.covers(2) and spec.covers(4) and not spec.covers(5)

    def test_unknown_point_rejected(self):
        with pytest.raises(ValueError, match="unknown fault point"):
            FaultSpec.parse("kill-the-database:1")

    def test_bad_range_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec.parse("hang-in-kernel:4-2")
        with pytest.raises(ValueError):
            FaultSpec.parse("hang-in-kernel:0")

    def test_duplicate_terms_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            FaultPlan.from_string("publish-failure:1,publish-failure:2")


class TestFaultPlanCounters:
    def test_local_counters_fire_deterministically(self):
        plan = FaultPlan.from_string("publish-failure:2")
        assert plan.hit("publish-failure") is None          # hit 1
        assert plan.hit("publish-failure") is not None      # hit 2 fires
        assert plan.hit("publish-failure") is None          # hit 3
        assert plan.hit("unrelated-point") is None
        assert plan.counts() == {"publish-failure": 3}

    def test_state_file_shares_counters_across_instances(self, tmp_path):
        """Two plan instances (standing in for a process and its restarted
        successor) observe one global hit sequence via the state file."""
        state = tmp_path / "faults.json"
        first = FaultPlan.from_string("publish-failure:2", state_file=state)
        second = FaultPlan.from_string("publish-failure:2", state_file=state)
        assert first.hit("publish-failure") is None         # global hit 1
        assert second.hit("publish-failure") is not None    # global hit 2
        assert first.hit("publish-failure") is None         # global hit 3
        assert json.loads(state.read_text()) == {"publish-failure": 3}

    def test_raise_point_raises_fault_injected(self):
        install_fault_plan(FaultPlan.from_string("publish-failure"))
        with pytest.raises(FaultInjected, match="publish-failure"):
            raise_point("publish-failure")

    def test_helpers_are_noops_without_a_plan(self):
        raise_point("publish-failure")      # must not raise


# ----------------------------------------------------------------------
# Journal
# ----------------------------------------------------------------------

class TestJournal:
    def test_append_replay_round_trip(self, tmp_path):
        journal = Journal(tmp_path)
        journal.append("job-submitted", job_id="job-1", configs=[])
        journal.append("task-dispatched", job_id="job-1", hash="abc", attempt=1)
        records = journal.replay()
        assert [r["type"] for r in records] == ["job-submitted", "task-dispatched"]
        assert records[1]["attempt"] == 1

    def test_torn_tail_is_truncated_and_replay_continues(self, tmp_path):
        journal = Journal(tmp_path)
        journal.append("job-submitted", job_id="job-1", configs=[])
        journal.append("job-done", job_id="job-1", state="done")
        clean = journal.path.read_bytes()
        # A crash mid-append: half of a third record, no newline.
        with journal.path.open("ab") as fh:
            fh.write(b'{"crc": 123, "rec": {"type": "job-su')
        records = journal.replay()
        assert len(records) == 2
        assert journal.path.read_bytes() == clean           # physically truncated

    def test_torn_final_line_with_newline_is_truncated(self, tmp_path):
        journal = Journal(tmp_path)
        journal.append("job-submitted", job_id="job-1", configs=[])
        clean = journal.path.read_bytes()
        with journal.path.open("ab") as fh:
            fh.write(b'{"crc": 1, "rec": {"type": "job-done"}}\n')  # bad crc
        assert len(journal.replay()) == 1
        assert journal.path.read_bytes() == clean

    def test_interior_corruption_raises(self, tmp_path):
        journal = Journal(tmp_path)
        journal.append("job-submitted", job_id="job-1", configs=[])
        journal.append("job-done", job_id="job-1", state="done")
        raw = bytearray(journal.path.read_bytes())
        raw[10] ^= 0xFF                 # bit-flip inside the *first* record
        journal.path.write_bytes(bytes(raw))
        with pytest.raises(JournalCorrupt):
            journal.replay()

    def test_recover_folds_job_state(self, tmp_path):
        journal = Journal(tmp_path)
        job = type("J", (), {})()
        job.job_id, job.configs, job.priority, job.budget, job.force = (
            "job-1", [], 0, None, False,
        )
        journal.job_submitted(job)
        journal.task_dispatched("job-1", "aaa", 1)
        journal.task_dispatched("job-1", "aaa", 2)
        journal.result_persisted("job-1", "aaa")
        jobs = journal.recover()
        assert jobs["job-1"].interrupted
        assert jobs["job-1"].persisted == {"aaa"}
        assert jobs["job-1"].attempts == {"aaa": 2}
        journal.job_done("job-1", "done")
        assert journal.interrupted_jobs() == []

    def test_crash_window_records_of_unknown_jobs_are_ignored(self, tmp_path):
        journal = Journal(tmp_path)
        journal.result_persisted("job-9", "zzz")        # no job-submitted
        assert journal.recover() == {}


# ----------------------------------------------------------------------
# Store tail recovery (satellite)
# ----------------------------------------------------------------------

class TestStoreRecover:
    def _store_with_rows(self, tmp_path, n: int = 2) -> ResultStore:
        store = ResultStore(tmp_path / "records.jsonl")
        run_grid(_configs(n), workers=0, store=store)
        return store

    def test_truncated_final_line_is_removed(self, tmp_path):
        store = self._store_with_rows(tmp_path)
        clean = store.path.read_bytes()
        store.path.write_bytes(clean[:-20])             # torn mid-row
        removed = store.recover()
        assert removed > 0
        rows = store.path.read_bytes()
        assert rows == clean[: len(rows)]               # byte-exact prefix
        assert rows.endswith(b"\n")
        assert len(store.load_records()) == 1

    def test_bit_flipped_trailing_row_is_removed(self, tmp_path):
        store = self._store_with_rows(tmp_path)
        raw = bytearray(store.path.read_bytes())
        raw[-10] = 0x00                                 # corrupt the last row
        store.path.write_bytes(bytes(raw))
        assert store.recover() > 0
        assert len(store.load_records()) == 1

    def test_interior_invalid_line_is_preserved(self, tmp_path):
        """Old-schema interior rows keep their skip-on-load semantics; only
        the trailing run of invalid bytes is truncated."""
        store = self._store_with_rows(tmp_path)
        lines = store.path.read_bytes().splitlines(keepends=True)
        doctored = b"not json\n" + b"".join(lines)
        store.path.write_bytes(doctored)
        assert store.recover() == 0
        assert store.path.read_bytes() == doctored
        assert len(store.load_records()) == 2

    def test_clean_store_untouched(self, tmp_path):
        store = self._store_with_rows(tmp_path)
        clean = store.path.read_bytes()
        assert store.recover() == 0
        assert store.path.read_bytes() == clean

    def test_missing_store_is_a_noop(self, tmp_path):
        assert ResultStore(tmp_path / "absent.jsonl").recover() == 0


# ----------------------------------------------------------------------
# Worker fault policy: timeout -> kill -> retry, exactly-once persistence
# ----------------------------------------------------------------------

class TestWorkerFaultPolicy:
    def test_hung_worker_is_timed_out_and_task_retried(self, tmp_path):
        """One injected 60s hang: the worker is killed at the task timeout,
        the task retried on a fresh worker, and the store ends byte-identical
        to a clean serial run — with no duplicate rows."""
        configs = _configs(4)
        clean = ResultStore(tmp_path / "clean.jsonl")
        run_grid(configs, workers=0, store=clean)

        # The state file makes the hang a *global* one-shot: forked workers
        # share the hit counter, so exactly one attempt hangs.
        install_fault_plan(FaultPlan.from_string(
            "hang-in-kernel:1@60", state_file=tmp_path / "faults.json"
        ))
        store = ResultStore(tmp_path / "faulty.jsonl")
        scheduler = Scheduler(
            workers=2, store=store, task_timeout=1.0, max_retries=1,
            retry_backoff=0.0,
        )
        try:
            handle = scheduler.submit(configs)
            records = handle.wait(timeout=120)
            faults = scheduler.fault_stats()
        finally:
            scheduler.shutdown()
        assert len(records) == len(configs)
        assert faults["timeouts"] == 1
        assert faults["respawns"] == 1
        assert faults["retries"] == 1
        assert faults["reassigned"] == 1
        assert store.path.read_bytes() == clean.path.read_bytes()

    def test_retries_exhausted_fails_the_job(self, tmp_path):
        """A task that hangs on every attempt exhausts its retry budget and
        fails the job with the reap error — after exactly
        ``max_retries + 1`` dispatches (the acceptance bound)."""
        install_fault_plan(FaultPlan.from_string(
            "hang-in-kernel:1-99@60", state_file=tmp_path / "faults.json"
        ))
        journal = Journal(tmp_path / "journal")
        scheduler = Scheduler(
            workers=2, store=tmp_path / "records.jsonl", journal=journal,
            task_timeout=0.8, max_retries=1, retry_backoff=0.0,
        )
        try:
            configs = _configs(2)
            handle = scheduler.submit(configs)
            with pytest.raises(RuntimeError, match="timed out|died"):
                handle.wait(timeout=120)
            faults = scheduler.fault_stats()
        finally:
            scheduler.shutdown()
        assert faults["timeouts"] >= 2      # original + retry, per hung hash
        # Exactly-once-more bound: no hash was dispatched more than
        # max_retries + 1 times.
        attempts = {}
        for job in journal.recover().values():
            for h, n in job.attempts.items():
                attempts[h] = max(attempts.get(h, 0), n)
        assert attempts and all(n <= 2 for n in attempts.values())

    def test_dead_worker_task_is_retried_once(self, tmp_path, monkeypatch):
        """A worker SIGKILLed mid-task (no timeout configured) is reaped via
        process death; its task is reassigned and the job completes."""
        import repro.experiments.engine as engine_mod

        flag = tmp_path / "killed-once"
        real = engine_mod._execute_worker

        def die_once(config):
            if not flag.exists():
                flag.write_bytes(b"1")
                os.kill(os.getpid(), signal.SIGKILL)
            return real(config)

        monkeypatch.setattr(engine_mod, "_execute_worker", die_once)
        store = ResultStore(tmp_path / "records.jsonl")
        scheduler = Scheduler(
            workers=2, store=store, max_retries=1, retry_backoff=0.0,
        )
        try:
            handle = scheduler.submit(_configs(4))
            records = handle.wait(timeout=120)
            faults = scheduler.fault_stats()
        finally:
            scheduler.shutdown()
        assert len(records) == 4
        assert faults["respawns"] >= 1
        assert faults["retries"] >= 1
        assert faults["timeouts"] == 0
        rows = store.load_records()
        assert len(rows) == len({r.config_hash for r in rows}) == 4

    def test_reap_drops_dead_workers_residency_snapshot(self, tmp_path):
        """Whatever the dead worker held pinned/resident died with it; the
        parent must stop reporting its stale snapshot."""
        scheduler = Scheduler(workers=2, task_timeout=0.5, max_retries=0)
        try:
            scheduler._ensure_pool()
            worker = scheduler._pool_workers[0]
            scheduler._worker_residency[worker.index] = {"hits": 99}
            worker.process.kill()
            worker.process.join(timeout=5)
            scheduler._reap_dead_workers()
            assert worker.index not in scheduler._worker_residency
            assert scheduler.fault_stats()["respawns"] == 1
            assert worker.process.is_alive()
        finally:
            scheduler.shutdown()


class TestReapReleasesBacklog:
    def test_idle_worker_steals_reaped_backlog_immediately(self, tmp_path):
        """Satellite regression: when a worker is reaped, its affinity
        backlog must become stealable in the same reap pass — an idle
        worker picks a backlog task up immediately, not after the respawned
        worker drains it alone."""
        from repro.experiments.scheduler import _Task

        scheduler = Scheduler(workers=2, max_retries=1, retry_backoff=0.0)
        try:
            scheduler._ensure_pool()
            dead, idle = scheduler._pool_workers
            configs = _configs(3)
            with scheduler._lock:
                tasks = [
                    _Task(c, c.config_hash(), "pool", owner="job-x",
                          priority=0, seq=next(scheduler._seq))
                    for c in configs
                ]
                for t in tasks:
                    scheduler._tasks[t.hash] = t
                busy, backlog_tasks = tasks[0], tasks[1:]
                busy.state = "running"
                busy.attempts = 1
                busy.started_at = time.monotonic()
                dead.busy = busy
                dead.backlog.extend(backlog_tasks)
            dead.process.kill()
            dead.process.join(timeout=5)

            scheduler._reap_dead_workers()

            with scheduler._lock:
                # The idle worker stole from the dead worker's backlog in
                # the same pass that reaped it.
                assert idle.busy in backlog_tasks
                assert scheduler.faults["respawns"] == 1
                assert scheduler.faults["reassigned"] == 1   # the busy task
            for t in tasks:
                t.done.wait(timeout=60)
        finally:
            scheduler.shutdown()


# ----------------------------------------------------------------------
# Operand pins and shm hygiene
# ----------------------------------------------------------------------

class TestOperandPinRelease:
    def test_borrow_pin_released_on_exception(self):
        """A task failing mid-execute must not leave its input pinned
        (a leaked pin would make the operand unevictable forever)."""
        cache = OperandCache(max_bytes=1 << 20)
        key = ("dataset", "hv15r", 0.05)
        cache.put(key, b"x" * 128, nbytes=128)
        with pytest.raises(RuntimeError):
            with cache.borrowing(key):
                assert cache.stats()["pinned"] == 1
                raise RuntimeError("task died")
        assert cache.stats()["pinned"] == 0


class TestOrphanSegments:
    def test_dead_owner_segments_are_unlinked(self, tmp_path):
        dead = tmp_path / f"{SEGMENT_PREFIX}999999999_0"
        alive = tmp_path / f"{SEGMENT_PREFIX}{os.getpid()}_0"
        junk = tmp_path / f"{SEGMENT_PREFIX}corrupt"
        other = tmp_path / "unrelated"
        for p in (dead, alive, junk, other):
            p.write_bytes(b"seg")
        removed = cleanup_orphan_segments(shm_dir=str(tmp_path))
        assert dead.name in removed
        assert junk.name in removed         # unparsable owner = orphan
        assert not dead.exists() and not junk.exists()
        assert alive.exists()               # live owner: untouched
        assert other.exists()               # non-transport files: untouched

    def test_missing_shm_dir_is_a_noop(self, tmp_path):
        assert cleanup_orphan_segments(shm_dir=str(tmp_path / "nope")) == []

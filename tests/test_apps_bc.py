"""Tests for the betweenness-centrality application (batched Brandes on SpGEMM)."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.apps.bc import (
    batched_betweenness_centrality,
    mask_visited,
    source_selection_matrix,
)
from repro.sparse import CSCMatrix, as_csc


def _graph_and_adjacency(n=35, p=0.12, seed=5, directed=False):
    if directed:
        G = nx.gnp_random_graph(n, p, seed=seed, directed=True)
    else:
        G = nx.erdos_renyi_graph(n, p, seed=seed)
    adj = nx.to_scipy_sparse_array(G, format="csc", dtype=float, nodelist=range(n))
    return G, as_csc(adj.tocsc())


class TestFrontierHelpers:
    def test_source_selection_matrix(self):
        F = source_selection_matrix(6, [2, 4, 0])
        assert F.shape == (6, 3)
        dense = F.to_dense()
        assert dense[2, 0] == 1 and dense[4, 1] == 1 and dense[0, 2] == 1
        assert dense.sum() == 3

    def test_source_selection_out_of_range(self):
        with pytest.raises(IndexError):
            source_selection_matrix(4, [5])

    def test_mask_visited_removes_entries(self):
        F = CSCMatrix.from_coo(4, 2, [0, 1, 2], [0, 0, 1], [1.0, 2.0, 3.0])
        visited = np.zeros((4, 2), dtype=bool)
        visited[1, 0] = True
        masked = mask_visited(F, visited)
        assert masked.nnz == 2
        assert masked.to_dense()[1, 0] == 0

    def test_mask_visited_empty_frontier(self):
        F = CSCMatrix.empty(3, 2)
        visited = np.zeros((3, 2), dtype=bool)
        assert mask_visited(F, visited).nnz == 0


class TestBCCorrectness:
    def test_exact_bc_matches_networkx_undirected(self):
        G, A = _graph_and_adjacency(seed=7)
        result = batched_betweenness_centrality(
            A, sources=range(A.nrows), batch_size=12, algorithm="local"
        )
        expected = nx.betweenness_centrality(G, normalized=False)
        np.testing.assert_allclose(
            result.scores, [expected[i] for i in range(A.nrows)], atol=1e-8
        )

    def test_exact_bc_matches_networkx_directed(self):
        G, A = _graph_and_adjacency(seed=11, directed=True)
        result = batched_betweenness_centrality(
            A, sources=range(A.nrows), batch_size=10, algorithm="local", directed=True
        )
        expected = nx.betweenness_centrality(G, normalized=False)
        np.testing.assert_allclose(
            result.scores, [expected[i] for i in range(A.nrows)], atol=1e-8
        )

    def test_path_graph_center_has_highest_score(self):
        G = nx.path_graph(7)
        A = as_csc(nx.to_scipy_sparse_array(G, format="csc", dtype=float))
        result = batched_betweenness_centrality(A, sources=range(7), algorithm="local")
        assert np.argmax(result.scores) == 3

    def test_star_graph_hub_dominates(self):
        G = nx.star_graph(8)
        A = as_csc(nx.to_scipy_sparse_array(G, format="csc", dtype=float))
        result = batched_betweenness_centrality(A, sources=range(9), algorithm="local")
        assert np.argmax(result.scores) == 0
        assert result.scores[1:].max() == pytest.approx(0.0)

    def test_batching_does_not_change_scores(self):
        _, A = _graph_and_adjacency(seed=13)
        full = batched_betweenness_centrality(
            A, sources=range(A.nrows), batch_size=A.nrows, algorithm="local"
        )
        batched = batched_betweenness_centrality(
            A, sources=range(A.nrows), batch_size=7, algorithm="local"
        )
        np.testing.assert_allclose(batched.scores, full.scores, atol=1e-9)

    def test_sampled_sources_give_partial_scores(self):
        _, A = _graph_and_adjacency(seed=17)
        approx = batched_betweenness_centrality(
            A, num_sources=10, batch_size=5, algorithm="local", seed=3
        )
        assert approx.scores.shape == (A.nrows,)
        assert (approx.scores >= 0).all()

    def test_requires_square(self, small_rect):
        with pytest.raises(ValueError):
            batched_betweenness_centrality(small_rect, num_sources=2)

    def test_requires_sources_or_count(self, small_symmetric):
        with pytest.raises(ValueError):
            batched_betweenness_centrality(small_symmetric)


class TestBCDistributed:
    def test_distributed_scores_match_local(self):
        _, A = _graph_and_adjacency(n=30, seed=19)
        local = batched_betweenness_centrality(
            A, sources=range(12), batch_size=6, algorithm="local"
        )
        distributed = batched_betweenness_centrality(
            A, sources=range(12), batch_size=6, algorithm="1d", nprocs=4
        )
        np.testing.assert_allclose(distributed.scores, local.scores, atol=1e-8)

    def test_distributed_records_iteration_telemetry(self):
        _, A = _graph_and_adjacency(n=30, seed=23)
        result = batched_betweenness_centrality(
            A, sources=range(8), batch_size=8, algorithm="1d", nprocs=4
        )
        assert result.iterations
        forward = [r for r in result.iterations if r.phase == "forward"]
        backward = [r for r in result.iterations if r.phase == "backward"]
        assert forward and backward
        assert all(r.modelled_time > 0 for r in forward)
        assert result.total_time == pytest.approx(
            result.forward_time + result.backward_time
        )

    def test_local_mode_has_zero_modelled_time(self):
        _, A = _graph_and_adjacency(n=25, seed=29)
        result = batched_betweenness_centrality(
            A, sources=range(5), algorithm="local"
        )
        assert result.forward_time == 0.0
        assert all(r.communication_volume == 0 for r in result.iterations)

    def test_2d_algorithm_also_correct(self):
        _, A = _graph_and_adjacency(n=24, seed=31)
        local = batched_betweenness_centrality(
            A, sources=range(8), batch_size=8, algorithm="local"
        )
        dist2d = batched_betweenness_centrality(
            A, sources=range(8), batch_size=8, algorithm="2d", nprocs=4
        )
        np.testing.assert_allclose(dist2d.scores, local.scores, atol=1e-8)

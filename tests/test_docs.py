"""The documentation suite stays truthful: links resolve, snippets parse.

Runs in the tier-1 suite *and* as a dedicated CI docs job, so a renamed
file or an edited-but-broken example fails the build instead of rotting.
"""

from __future__ import annotations

import pathlib
import re

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: every markdown file whose links and code snippets are checked
DOC_FILES = sorted(
    [REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")],
    key=lambda p: str(p),
)

#: [text](target) — excluding images and in-page anchors handled below
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_FENCE_RE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def _doc_ids():
    return [str(p.relative_to(REPO_ROOT)) for p in DOC_FILES]


@pytest.mark.parametrize("doc", DOC_FILES, ids=_doc_ids())
def test_docs_exist_and_nonempty(doc):
    assert doc.is_file(), f"missing documentation file {doc}"
    assert doc.read_text(encoding="utf-8").strip(), f"{doc} is empty"


def test_expected_docs_suite_present():
    names = {p.name for p in (REPO_ROOT / "docs").glob("*.md")}
    assert {"architecture.md", "accounting.md", "workloads.md", "figures.md"} <= names


@pytest.mark.parametrize("doc", DOC_FILES, ids=_doc_ids())
def test_intra_repo_markdown_links_resolve(doc):
    text = doc.read_text(encoding="utf-8")
    problems = []
    for target in _LINK_RE.findall(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        path = target.split("#", 1)[0]
        if not path:
            continue
        resolved = (doc.parent / path).resolve()
        if not resolved.exists():
            problems.append(target)
    assert not problems, f"{doc.name}: broken relative links {problems}"


@pytest.mark.parametrize("doc", DOC_FILES, ids=_doc_ids())
def test_python_snippets_are_valid_python(doc):
    text = doc.read_text(encoding="utf-8")
    for i, snippet in enumerate(_FENCE_RE.findall(text)):
        try:
            compile(snippet, f"{doc.name}[snippet {i}]", "exec")
        except SyntaxError as exc:  # pragma: no cover - failure path
            pytest.fail(f"{doc.name} python snippet {i} does not parse: {exc}")


def test_readme_names_the_new_workload_commands():
    """The quickstart keeps runnable lines for the PR-5 workloads."""
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    assert "python -m repro triangles" in readme
    assert "python -m repro mcl" in readme


def test_readme_points_into_the_docs_suite():
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    for doc in ("docs/architecture.md", "docs/accounting.md",
                "docs/workloads.md", "docs/figures.md"):
        assert doc in readme, f"README lost its pointer to {doc}"

"""Tests for the reporting, breakdown and sweep helpers."""

from __future__ import annotations

import numpy as np

from repro.analysis import (
    breakdown_chart,
    breakdown_table,
    config_sweep,
    format_bar_chart,
    format_grid,
    format_table,
    mebibytes,
    mpi_omp_configurations,
    per_rank_breakdown,
    seconds,
    strong_scaling_sweep,
)
from repro.core import SparsityAware1D
from repro.matrices.generators import banded
from repro.runtime import SimulatedCluster


class TestFormatting:
    def test_seconds_scales_units(self):
        assert seconds(2.5).endswith(" s")
        assert seconds(0.002).endswith(" ms")
        assert seconds(2e-6).endswith(" µs")

    def test_mebibytes_scales_units(self):
        assert mebibytes(100) == "100 B"
        assert mebibytes(2048).endswith("KiB")
        assert mebibytes(3 * 1024**2).endswith("MiB")
        assert mebibytes(5 * 1024**3).endswith("GiB")

    def test_format_table_alignment_and_title(self):
        rows = [{"a": 1, "b": "xy"}, {"a": 223, "b": "z"}]
        text = format_table(rows, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="t")

    def test_format_table_column_selection(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        text = format_table(rows, columns=["c", "a"])
        header = text.splitlines()[0]
        assert "c" in header and "b" not in header

    def test_format_bar_chart_lengths_proportional(self):
        text = format_bar_chart(["x", "y"], [1.0, 2.0], width=20)
        line_x, line_y = text.splitlines()
        assert line_y.count("#") == 2 * line_x.count("#")

    def test_format_bar_chart_all_zero(self):
        text = format_bar_chart(["x"], [0.0])
        assert "#" not in text

    def test_format_grid_shapes(self):
        grid = np.array([[0, 1], [5, 0]])
        text = format_grid(grid, title="spy")
        lines = text.splitlines()
        assert lines[0] == "spy"
        assert len(lines) == 3
        assert len(lines[1]) == 2


class TestBreakdown:
    def _result(self):
        A = banded(150, 6, symmetric=True, seed=1)
        cluster = SimulatedCluster(4)
        return SparsityAware1D().multiply(A, A, cluster)

    def test_per_rank_breakdown_has_all_ranks(self):
        result = self._result()
        rows = per_rank_breakdown(result)
        assert [r.rank for r in rows] == [0, 1, 2, 3]
        assert all(r.total >= 0 for r in rows)

    def test_breakdown_accepts_ledger_directly(self):
        result = self._result()
        rows = per_rank_breakdown(result.ledger)
        assert len(rows) == 4

    def test_breakdown_table_renders(self):
        text = breakdown_table(self._result())
        assert "rank" in text and "comm" in text
        assert len(text.splitlines()) == 1 + 2 + 4  # title + header/sep + 4 ranks

    def test_breakdown_chart_renders(self):
        text = breakdown_chart(self._result())
        assert "rank 0" in text and "rank 3" in text


class TestSweeps:
    def test_strong_scaling_sweep_rows(self):
        A = banded(200, 8, symmetric=True, seed=2)
        points = strong_scaling_sweep(
            A, algorithm="1d", strategy="none", process_counts=[2, 4, 8]
        )
        assert [p.nprocs for p in points] == [2, 4, 8]
        for p in points:
            row = p.as_row()
            assert row["P"] == p.nprocs
            assert float(row["time (s)"]) >= 0

    def test_mpi_omp_configurations_product_is_constant(self):
        configs = mpi_omp_configurations(64)
        assert all(c["processes"] * c["threads"] == 64 for c in configs)
        procs = [c["processes"] for c in configs]
        assert 1 in procs and 4 in procs and 16 in procs and 64 in procs
        # Only perfect-square process counts (CombBLAS tradition).
        assert all(int(round(np.sqrt(p))) ** 2 == p for p in procs)

    def test_config_sweep_points(self):
        A = banded(150, 6, symmetric=True, seed=3)
        points = config_sweep(A, total_cores=16, min_processes=4)
        assert points
        for point in points:
            assert point.processes * point.threads == 16
            assert point.cores == 16
            assert point.elapsed_time >= 0
            row = point.as_row()
            # Numeric internals must not leak private keys into tables.
            assert set(row) == {
                "processes", "threads", "cores",
                "time (s)", "comm (s)", "comp (s)", "other (s)",
            }

"""OperandCache budget/eviction semantics (the per-worker resident cache).

Pins the operand plane's cache contract:

* LRU eviction order under a byte budget — the least-recently-*used*
  entry goes first, and a ``get`` refreshes recency;
* a pinned (borrowed) entry is never evicted while an execute is using
  it, even if that means the cache temporarily overshoots its budget;
* the byte estimate driving eviction matches the actual array footprint
  for the container types the engine caches.
"""

from __future__ import annotations

import numpy as np

from repro.core import as_operand
from repro.core.pipeline import OperandCache, estimate_operand_nbytes
from repro.distribution import DistributedColumns1D


class _Blob:
    """A cache value reporting an exact resident size."""

    def __init__(self, nbytes: int):
        self._nbytes = nbytes

    def memory_bytes(self) -> int:
        return self._nbytes


class TestLRUEviction:
    def test_oldest_entry_evicted_first(self):
        cache = OperandCache(max_bytes=300)
        cache.put(("a",), _Blob(100))
        cache.put(("b",), _Blob(100))
        cache.put(("c",), _Blob(100))
        assert len(cache) == 3
        cache.put(("d",), _Blob(100))
        assert cache.get(("a",)) is None  # oldest went first
        assert cache.get(("b",)) is not None
        assert cache.get(("d",)) is not None
        assert cache.evictions == 1
        assert cache.resident_bytes <= cache.max_bytes

    def test_get_refreshes_recency(self):
        cache = OperandCache(max_bytes=300)
        cache.put(("a",), _Blob(100))
        cache.put(("b",), _Blob(100))
        cache.put(("c",), _Blob(100))
        assert cache.get(("a",)) is not None  # a is now most recent
        cache.put(("d",), _Blob(100))
        assert cache.get(("b",)) is None  # b became the LRU victim
        assert cache.get(("a",)) is not None

    def test_put_refreshes_recency_and_rebalances_bytes(self):
        cache = OperandCache(max_bytes=300)
        cache.put(("a",), _Blob(100))
        cache.put(("b",), _Blob(100))
        cache.put(("a",), _Blob(150))  # replace: a is recent and larger
        assert cache.resident_bytes == 250
        cache.put(("c",), _Blob(100))
        assert cache.get(("b",)) is None
        assert cache.get(("a",)) is not None
        assert cache.resident_bytes == 250

    def test_oversized_value_is_rejected_not_cached(self):
        cache = OperandCache(max_bytes=100)
        assert cache.put(("huge",), _Blob(101)) is False
        assert len(cache) == 0
        assert cache.resident_bytes == 0

    def test_eviction_cascades_until_within_budget(self):
        cache = OperandCache(max_bytes=300)
        for name in "abc":
            cache.put((name,), _Blob(100))
        cache.put(("d",), _Blob(150))  # needs two victims
        assert cache.get(("a",)) is None
        assert cache.get(("b",)) is None
        assert cache.get(("c",)) is not None
        assert cache.evictions == 2
        assert cache.resident_bytes <= cache.max_bytes


class TestPinning:
    def test_borrowed_entry_survives_eviction_pressure(self):
        cache = OperandCache(max_bytes=300)
        cache.put(("borrowed",), _Blob(100))
        cache.put(("idle",), _Blob(100))
        with cache.borrowing(("borrowed",)):
            # Inserting past the budget must evict around the pin: the
            # borrowed entry is older than "idle" but stays resident.
            cache.put(("new1",), _Blob(100))
            cache.put(("new2",), _Blob(100))
            assert cache.get(("borrowed",)) is not None
            assert cache.get(("idle",)) is None
        # Once released the entry is ordinary LRU fodder again.
        cache.get(("new1",))
        cache.get(("new2",))
        cache.put(("new3",), _Blob(100))
        assert cache.get(("borrowed",)) is None

    def test_cache_overshoots_rather_than_dropping_pins(self):
        cache = OperandCache(max_bytes=200)
        cache.put(("a",), _Blob(100))
        cache.put(("b",), _Blob(100))
        with cache.borrowing(("a",)), cache.borrowing(("b",)):
            assert cache.put(("c",), _Blob(100)) is True
            # Every other entry is pinned: nothing to evict, budget
            # overshoots until a borrow ends.
            assert cache.resident_bytes == 300
            assert cache.get(("a",)) is not None
            assert cache.get(("b",)) is not None
        assert cache.stats()["pinned"] == 0

    def test_pin_counts_nest(self):
        cache = OperandCache(max_bytes=1000)
        cache.put(("a",), _Blob(10))
        cache.pin(("a",))
        cache.pin(("a",))
        cache.unpin(("a",))
        assert cache.stats()["pinned"] == 1  # still one borrow outstanding
        cache.unpin(("a",))
        assert cache.stats()["pinned"] == 0

    def test_clear_drops_pins(self):
        cache = OperandCache(max_bytes=1000)
        cache.put(("a",), _Blob(10))
        cache.pin(("a",))
        cache.clear()
        assert cache.stats()["pinned"] == 0
        assert len(cache) == 0


class TestByteEstimate:
    def test_matrix_estimate_matches_array_nbytes(self, small_square):
        expected = (
            small_square.indptr.nbytes
            + small_square.indices.nbytes
            + small_square.data.nbytes
        )
        assert estimate_operand_nbytes(small_square) == expected

    def test_distribution_estimate_sums_local_pieces(self, small_square):
        dist = DistributedColumns1D.from_global(small_square, 4)
        operand = as_operand(dist)
        expected = sum(m.memory_bytes() for m in dist.locals_)
        assert estimate_operand_nbytes(dist) == expected
        assert estimate_operand_nbytes(operand) == expected

    def test_estimate_is_never_zero(self):
        assert estimate_operand_nbytes(object()) > 0
        assert estimate_operand_nbytes(np.zeros(0)) > 0

    def test_nnz_fallback_scales_with_size(self):
        class Sized:
            def __init__(self, nnz):
                self.nnz = nnz

        assert estimate_operand_nbytes(Sized(1000)) == 16000
        assert estimate_operand_nbytes(Sized(0)) == 1024  # conservative floor

    def test_put_uses_estimate_when_nbytes_omitted(self, small_square):
        size = estimate_operand_nbytes(small_square)
        cache = OperandCache(max_bytes=size)
        assert cache.put(("m",), small_square) is True
        assert cache.resident_bytes == size
        smaller = OperandCache(max_bytes=size - 1)
        assert smaller.put(("m",), small_square) is False

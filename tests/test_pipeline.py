"""Resident-operand prepare/execute pipeline tests.

Pins the PR's central guarantees:

* ``multiply()`` (the legacy wrapper) is ``execute(prepare(...))`` and every
  modelled number it produces matches a standalone run;
* ``SpGEMMResult`` carries the *distributed* C — the global matrix assembles
  lazily, ``output_nnz`` never assembles, and modelled-only engine runs
  write byte-identical stores whether or not assembly is forced;
* resident reuse: a stationary 1D operand pays window setup once, chained
  squaring ``A^(2^k)`` equals the same levels run independently, BC with
  hoisted setup charges the setup phase exactly once per run, and the AMG
  chain records no intermediate global gather.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    DistributedOperand,
    as_operand,
    coerce_columns_1d,
    make_algorithm,
)
from repro.distribution import DistributedColumns1D
from repro.runtime import PERLMUTTER, SimulatedCluster

ALL_ALGORITHMS = (
    "1d",
    "2d",
    "3d",
    "outer-product",
    "1d-naive-block-row",
    "1d-improved-block-row",
)


def _fresh_result(algorithm, A, nprocs=16):
    cluster = SimulatedCluster(nprocs, cost_model=PERLMUTTER)
    return make_algorithm(algorithm).multiply(A, A, cluster), cluster


class TestDistributedOperand:
    def test_global_operand_roundtrip(self, small_square):
        op = as_operand(small_square)
        assert op.layout == "global"
        assert op.shape == small_square.shape
        assert op.nnz == small_square.nnz
        assert op.global_matrix() is small_square

    def test_columns_coercion_reuses_resident_operand(self, small_square):
        dist = DistributedColumns1D.from_global(small_square, 4)
        op = as_operand(dist)
        assert coerce_columns_1d(op, 4) is op
        # Mismatched process count falls back to redistribution.
        other = coerce_columns_1d(op, 2)
        assert other is not op
        assert other.dist.nprocs == 2

    def test_coercion_with_matching_bounds_reuses(self, small_square):
        bounds = [(0, 10), (10, 60)]
        dist = DistributedColumns1D.from_global(small_square, 2, bounds=bounds)
        op = as_operand(dist)
        assert coerce_columns_1d(op, 2, bounds=bounds) is op
        assert coerce_columns_1d(op, 2, bounds=[(0, 30), (30, 60)]) is not op

    def test_operand_requires_backing(self):
        with pytest.raises(ValueError):
            DistributedOperand(layout="1d-columns")


class TestLazyAssembly:
    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
    def test_result_assembles_lazily_and_nnz_matches(self, small_square, algorithm):
        result, _ = _fresh_result(algorithm, small_square)
        assert result.assembled is False
        nnz_lazy = result.output_nnz          # must not assemble
        assert result.assembled is False
        C = result.C                          # first access assembles
        assert result.assembled is True
        assert nnz_lazy == C.nnz == result.output_nnz
        assert result.C is C                  # cached

    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
    def test_lazy_c_equals_legacy_product(self, small_square, algorithm):
        """The lazily assembled C is the true product (dense reference)."""
        result, _ = _fresh_result(algorithm, small_square)
        dense = small_square.to_dense()
        np.testing.assert_allclose(
            result.C.to_dense(), dense @ dense, rtol=1e-9, atol=1e-11
        )

    def test_eager_assembly_env_forces_assembly(self, small_square, monkeypatch):
        monkeypatch.setenv("REPRO_EAGER_ASSEMBLY", "1")
        result, _ = _fresh_result("1d", small_square)
        assert result.assembled is True


class TestPrepareExecute:
    def test_multiply_equals_prepare_execute(self, small_square):
        algo = make_algorithm("1d", block_split=64)
        c1 = SimulatedCluster(8, cost_model=PERLMUTTER)
        via_wrapper = algo.multiply(small_square, small_square, c1)
        c2 = SimulatedCluster(8, cost_model=PERLMUTTER)
        prepared = algo.prepare(small_square, small_square, c2)
        via_pipeline = algo.execute(prepared)
        assert via_wrapper.elapsed_time == via_pipeline.elapsed_time
        assert via_wrapper.communication_volume == via_pipeline.communication_volume
        assert via_wrapper.message_count == via_pipeline.message_count
        assert via_wrapper.info == via_pipeline.info

    def test_resident_operand_pays_setup_once(self, small_square):
        """Re-executing against the same exposed A charges no second setup."""
        algo = make_algorithm("1d", block_split=64)
        cluster = SimulatedCluster(8, cost_model=PERLMUTTER)
        op_a = algo.prepare_operand(small_square, cluster)
        assert op_a.exposed
        setup_after_prepare = [
            st.total_time for st in cluster.ledger.phases["setup"]
        ]
        with cluster.phase_scope("it0:"):
            algo.execute(algo.prepare(op_a, small_square, cluster))
        with cluster.phase_scope("it1:"):
            algo.execute(algo.prepare(op_a, small_square, cluster))
        # One setup phase in the whole run ledger, untouched by the iterations.
        setup_phases = [p for p in cluster.ledger.phase_order if "setup" in p]
        assert setup_phases == ["setup"]
        assert [
            st.total_time for st in cluster.ledger.phases["setup"]
        ] == setup_after_prepare

    def test_operand_exposed_on_other_cluster_is_rejected(self, small_square):
        """The window charges its owning cluster — cross-cluster reuse would
        silently account the fetch phase to the wrong run, so it must raise."""
        algo = make_algorithm("1d", block_split=64)
        cluster1 = SimulatedCluster(4, cost_model=PERLMUTTER)
        op_a = algo.prepare_operand(small_square, cluster1)
        cluster2 = SimulatedCluster(4, cost_model=PERLMUTTER)
        with pytest.raises(ValueError, match="different cluster"):
            algo.prepare(op_a, small_square, cluster2)

    def test_scoped_execution_slices_its_own_ledger(self, small_square):
        algo = make_algorithm("1d", block_split=64)
        cluster = SimulatedCluster(4, cost_model=PERLMUTTER)
        with cluster.phase_scope("sq0:"):
            r0 = algo.execute(algo.prepare(small_square, small_square, cluster))
        reference = make_algorithm("1d", block_split=64).multiply(
            small_square, small_square, SimulatedCluster(4, cost_model=PERLMUTTER)
        )
        assert r0.ledger.phase_order == reference.ledger.phase_order
        assert r0.elapsed_time == reference.elapsed_time
        assert r0.communication_volume == reference.communication_volume

    def test_dimension_mismatch_still_raises(self, small_square, tall_thin=None):
        algo = make_algorithm("1d")
        cluster = SimulatedCluster(4, cost_model=PERLMUTTER)
        from repro.sparse import CSCMatrix

        bad = CSCMatrix.empty(small_square.ncols + 1, 8)
        with pytest.raises(ValueError, match="inner dimensions"):
            algo.prepare(small_square, bad, cluster)


class TestChainedSquaring:
    def test_chain_equals_independent_squarings(self, small_symmetric):
        """A^4 via resident chaining == two independent A·A squarings of A²."""
        from repro.apps.squaring import run_chained_squaring

        chain = run_chained_squaring(
            small_symmetric, k=2, algorithm="1d", nprocs=4, block_split=32
        )
        cl1 = SimulatedCluster(4, cost_model=PERLMUTTER)
        first = make_algorithm("1d", block_split=32).multiply(
            small_symmetric, small_symmetric, cl1
        )
        A2 = first.C
        cl2 = SimulatedCluster(4, cost_model=PERLMUTTER)
        second = make_algorithm("1d", block_split=32).multiply(A2, A2, cl2)

        for level, reference in zip(chain.results, (first, second)):
            assert level.elapsed_time == reference.elapsed_time
            assert level.communication_volume == reference.communication_volume
            assert level.message_count == reference.message_count
            assert level.rdma_gets == reference.rdma_gets
            assert level.info == reference.info
        # The final product is bit-identical to the independently computed A^4.
        C_chain, C_ref = chain.final.C, second.C
        assert np.array_equal(C_chain.indptr, C_ref.indptr)
        assert np.array_equal(C_chain.indices, C_ref.indices)
        assert np.array_equal(C_chain.data, C_ref.data)
        # Whole-chain time is the sum of the levels.
        assert chain.elapsed_time == first.elapsed_time + second.elapsed_time

    def test_intermediate_levels_never_assemble(self, small_symmetric):
        from repro.apps.squaring import run_chained_squaring

        chain = run_chained_squaring(
            small_symmetric, k=3, algorithm="1d", nprocs=4, block_split=32
        )
        for level in chain.results:
            assert level.assembled is False

    def test_chain_requires_positive_k(self, small_symmetric):
        from repro.apps.squaring import run_chained_squaring

        with pytest.raises(ValueError, match="k >= 1"):
            run_chained_squaring(small_symmetric, k=0)

    def test_chain_conserves(self, small_symmetric):
        from repro.apps.squaring import run_chained_squaring

        chain = run_chained_squaring(
            small_symmetric, k=2, algorithm="1d", nprocs=4, block_split=32
        )
        chain.ledger.assert_conserved()
        for level in chain.results:
            level.ledger.assert_conserved()


class TestResidentBC:
    def test_setup_charged_exactly_once_per_run(self, small_symmetric):
        from repro.apps.bc import batched_betweenness_centrality

        result = batched_betweenness_centrality(
            small_symmetric,
            num_sources=6,
            batch_size=3,           # several batches → many iterations
            algorithm="1d",
            nprocs=4,
            seed=0,
            resident=True,
        )
        setup = [r for r in result.iterations if r.phase == "setup"]
        assert len(setup) == 1
        assert setup[0].modelled_time > 0.0
        # Every iteration ledger (and the setup slice) still conserves.
        assert all(r.conserved for r in result.iterations)

    def test_resident_scores_match_legacy_and_local(self, small_symmetric):
        from repro.apps.bc import batched_betweenness_centrality

        kwargs = dict(num_sources=6, batch_size=6, nprocs=4, seed=0)
        legacy = batched_betweenness_centrality(
            small_symmetric, algorithm="1d", **kwargs
        )
        resident = batched_betweenness_centrality(
            small_symmetric, algorithm="1d", resident=True, **kwargs
        )
        local = batched_betweenness_centrality(
            small_symmetric, algorithm="local", **kwargs
        )
        np.testing.assert_allclose(resident.scores, legacy.scores)
        np.testing.assert_allclose(resident.scores, local.scores)

    def test_resident_charges_less_setup_than_legacy(self, small_symmetric):
        """Hoisting must strictly reduce total modelled time (fewer setups)."""
        from repro.apps.bc import batched_betweenness_centrality

        kwargs = dict(num_sources=6, batch_size=6, algorithm="1d", nprocs=4, seed=0)
        legacy = batched_betweenness_centrality(small_symmetric, **kwargs)
        resident = batched_betweenness_centrality(
            small_symmetric, resident=True, **kwargs
        )
        n_spgemms = len([r for r in legacy.iterations])
        assert n_spgemms > 1
        assert resident.total_time < legacy.total_time
        # Per-iteration fetch volumes are unchanged; only setup accounting moved.
        legacy_iter = [
            r for r in legacy.iterations if r.phase in ("forward", "backward")
        ]
        resident_iter = [
            r for r in resident.iterations if r.phase in ("forward", "backward")
        ]
        assert [r.frontier_nnz for r in legacy_iter] == [
            r.frontier_nnz for r in resident_iter
        ]
        assert [r.rdma_gets for r in legacy_iter] == [
            r.rdma_gets for r in resident_iter
        ]


class TestResidentAMGChain:
    def test_chain_records_no_intermediate_gather(self, small_symmetric):
        from repro.apps.amg import (
            build_restriction,
            left_multiplication,
            right_multiplication,
        )

        restriction = build_restriction(small_symmetric, seed=0)
        left = left_multiplication(
            restriction.R, small_symmetric, algorithm="1d", nprocs=4
        )
        right = right_multiplication(left, restriction.R, nprocs=4)
        # The resident chain never assembled the intermediate RᵀA …
        assert left.assembled is False
        # … and the counters equal the legacy gather-then-scatter path.
        left2 = left_multiplication(
            restriction.R, small_symmetric, algorithm="1d", nprocs=4
        )
        right_legacy = right_multiplication(left2.C, restriction.R, nprocs=4)
        assert right.elapsed_time == right_legacy.elapsed_time
        assert right.communication_volume == right_legacy.communication_volume
        assert right.message_count == right_legacy.message_count
        assert right.output_nnz == right_legacy.output_nnz

    def test_galerkin_product_resident_flag_equivalence(self, small_symmetric):
        from repro.apps.amg import galerkin_product

        resident = galerkin_product(small_symmetric, nprocs=4, resident=True)
        legacy = galerkin_product(small_symmetric, nprocs=4, resident=False)
        assert resident.left.elapsed_time == legacy.left.elapsed_time
        assert resident.right.elapsed_time == legacy.right.elapsed_time
        assert resident.coarse.nnz == legacy.coarse.nnz
        np.testing.assert_allclose(
            resident.coarse.to_dense(), legacy.coarse.to_dense()
        )


class TestEngineSkipsAssembly:
    def test_store_byte_identical_with_and_without_assembly(
        self, tmp_path, monkeypatch
    ):
        """Satellite regression: lazy global-C assembly changes no record.

        One sweep runs normally (no executor ever touches ``result.C``), a
        second runs with ``REPRO_EAGER_ASSEMBLY`` forcing every result to
        assemble at construction; the persisted JSONL stores must be
        byte-identical.
        """
        from repro.experiments import RunConfig, run_grid

        configs = [
            RunConfig(dataset="hv15r", nprocs=4, block_split=16, scale=0.1),
            RunConfig(
                dataset="hv15r", workload="chained-squaring", algorithm="1d",
                nprocs=4, block_split=16, scale=0.1, square_k=2,
            ),
            RunConfig(
                dataset="queen", workload="amg-restriction", algorithm="1d",
                nprocs=4, scale=0.1, amg_phase="rtar",
            ),
            RunConfig(
                dataset="hv15r", workload="bc", algorithm="1d", nprocs=4,
                scale=0.1, bc_sources=4, bc_batch=4, bc_source_stride=4,
                resident=True,
            ),
        ]
        lazy_store = tmp_path / "lazy.jsonl"
        run_grid(configs, store=str(lazy_store))
        monkeypatch.setenv("REPRO_EAGER_ASSEMBLY", "1")
        eager_store = tmp_path / "eager.jsonl"
        run_grid(configs, store=str(eager_store))
        assert lazy_store.read_bytes() == eager_store.read_bytes()

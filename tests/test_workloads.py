"""Tests for the multi-workload experiment engine (AMG restriction + BC).

Covers the PR 3 acceptance surface: JSONL round-trips of the
workload-specific record fields, config-hash discrimination across workload
parameters, cache-hit/resume behaviour per workload, and exact equality of
engine records with the direct application calls the benchmarks used before
the migration.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    ExperimentGrid,
    ResultStore,
    RunConfig,
    RunRecord,
    execute_config,
    rollup_records,
    run_grid,
    workload_names,
)

SCALE = 0.1


def _amg_config(**overrides):
    base = dict(
        dataset="queen",
        workload="amg-restriction",
        algorithm="1d",
        nprocs=8,
        scale=SCALE,
        amg_phase="rtar",
    )
    base.update(overrides)
    return RunConfig(**base)


def _bc_config(**overrides):
    base = dict(
        dataset="hv15r",
        workload="bc",
        algorithm="1d",
        nprocs=4,
        scale=SCALE,
        bc_sources=8,
        bc_batch=8,
        bc_source_stride=4,
    )
    base.update(overrides)
    return RunConfig(**base)


class TestWorkloadRegistry:
    def test_all_workloads_registered(self):
        assert set(workload_names()) == {
            "squaring", "chained-squaring", "amg-restriction", "bc",
            "triangles", "mcl",
        }

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="unknown workload"):
            execute_config(RunConfig(dataset="hv15r", workload="tensor", scale=SCALE))

    def test_unknown_amg_phase_rejected(self):
        with pytest.raises(ValueError, match="amg_phase"):
            execute_config(_amg_config(amg_phase="rt"))

    def test_bc_requires_sources(self):
        with pytest.raises(ValueError, match="bc_sources"):
            execute_config(_bc_config(bc_sources=None, bc_source_stride=None))

    def test_bc_stride_bounds_checked(self):
        with pytest.raises(ValueError, match="exceeds"):
            execute_config(_bc_config(bc_sources=10**6))


class TestHashDiscrimination:
    def test_workload_axis_enters_the_hash(self):
        base = RunConfig(dataset="hv15r", scale=SCALE)
        hashes = {
            base.config_hash(),
            base.with_updates(workload="amg-restriction").config_hash(),
            base.with_updates(workload="bc", bc_sources=8).config_hash(),
        }
        assert len(hashes) == 3

    def test_amg_params_enter_the_hash(self):
        base = _amg_config()
        variants = [
            base.with_updates(amg_phase="rta"),
            base.with_updates(mis_seed=7),
            base.with_updates(right_algorithm="1d"),
        ]
        hashes = {base.config_hash()} | {v.config_hash() for v in variants}
        assert len(hashes) == len(variants) + 1

    def test_bc_params_enter_the_hash(self):
        base = _bc_config()
        variants = [
            base.with_updates(bc_sources=4),
            base.with_updates(bc_batch=4),
            base.with_updates(bc_source_stride=2),
            base.with_updates(bc_directed=True),
        ]
        hashes = {base.config_hash()} | {v.config_hash() for v in variants}
        assert len(hashes) == len(variants) + 1

    def test_grid_workload_axis_expands(self):
        grid = ExperimentGrid(
            datasets=("hv15r",),
            workloads=("squaring", "bc"),
            process_counts=(4,),
            scale=SCALE,
            bc_sources=8,
            bc_source_stride=4,
        )
        configs = grid.expand()
        assert len(configs) == len(grid) == 2
        assert [c.workload for c in configs] == ["squaring", "bc"]
        assert len({c.config_hash() for c in configs}) == 2


class TestResidentAndChainAxes:
    """PR-4 config axes: hash coverage + back-compatible hash elision."""

    def test_new_axes_elide_from_hash_at_default(self):
        """Configs predating the resident/square_k axes keep their hashes.

        Pinned against a literal hash from the committed PR-3
        ``BENCH_PR3.json`` snapshot: if this changes, every cached record
        store and the cross-PR bench comparison silently invalidates.
        """
        config = RunConfig(
            dataset="eukarya", algorithm="1d", strategy="metis",
            nprocs=16, block_split=32, scale=0.25,
        )
        assert config.config_hash() == "029a01b08a1a8790"
        assert "resident" not in config.canonical_json()
        assert "square_k" not in config.canonical_json()

    def test_non_default_values_enter_the_hash(self):
        base = _bc_config()
        assert base.with_updates(resident=True).config_hash() != base.config_hash()
        chain = RunConfig(
            dataset="hv15r", workload="chained-squaring", scale=SCALE, square_k=2
        )
        assert chain.config_hash() != chain.with_updates(square_k=3).config_hash()
        assert '"resident":true' in base.with_updates(resident=True).canonical_json()

    def test_round_trip_preserves_new_fields(self):
        config = _bc_config(resident=True)
        assert RunConfig.from_dict(config.as_dict()) == config
        chain = RunConfig(
            dataset="hv15r", workload="chained-squaring", scale=SCALE, square_k=2
        )
        assert RunConfig.from_dict(chain.as_dict()) == chain

    def test_old_record_rows_parse_without_new_fields(self):
        """A PR-3-era JSONL row (no resident/square_k keys) still loads."""
        old = RunConfig(dataset="hv15r", scale=SCALE)
        data = old.as_dict()
        del data["resident"]
        del data["square_k"]
        parsed = RunConfig.from_dict(data)
        assert parsed == old
        assert parsed.config_hash() == old.config_hash()

    def test_grid_applies_new_axes_per_workload(self):
        """resident/square_k land only on the workloads that read them."""
        grid = ExperimentGrid(
            datasets=("hv15r",),
            workloads=("squaring", "chained-squaring", "bc"),
            process_counts=(4,),
            scale=SCALE,
            square_k=2,
            resident=True,
            bc_sources=8,
            bc_source_stride=4,
        )
        by_workload = {c.workload: c for c in grid.expand()}
        assert by_workload["chained-squaring"].square_k == 2
        assert by_workload["chained-squaring"].resident is False
        assert by_workload["bc"].resident is True
        assert by_workload["bc"].square_k is None
        assert by_workload["squaring"].square_k is None
        assert by_workload["squaring"].resident is False

    def test_mixed_grid_leaves_unaffected_hashes_stable(self):
        """--square-k on a mixed grid must not perturb squaring hashes.

        Otherwise adding chained-squaring to an existing sweep would cache-
        miss (and lose BENCH overlap for) every squaring config in it.
        """
        plain = ExperimentGrid(
            datasets=("hv15r",), workloads=("squaring",),
            process_counts=(4,), scale=SCALE,
        )
        mixed = ExperimentGrid(
            datasets=("hv15r",), workloads=("squaring", "chained-squaring"),
            process_counts=(4,), scale=SCALE, square_k=2, resident=True,
        )
        (plain_squaring,) = plain.expand()
        mixed_squaring = [
            c for c in mixed.expand() if c.workload == "squaring"
        ][0]
        assert mixed_squaring.config_hash() == plain_squaring.config_hash()


class TestChainedSquaringWorkload:
    def test_record_round_trip_and_fields(self):
        config = RunConfig(
            dataset="hv15r", workload="chained-squaring", algorithm="1d",
            nprocs=4, block_split=16, scale=SCALE, square_k=2,
        )
        record = execute_config(config)
        assert record.workload == "chained-squaring"
        assert record.chain is not None
        assert record.chain.k == 2
        assert len(record.chain.levels) == 2
        assert record.chain.final_nnz == record.output_nnz
        # The chain's topline counters are the sums of its levels.
        assert record.communication_volume == sum(
            lvl.volume for lvl in record.chain.levels
        )
        assert record.message_count == sum(
            lvl.messages for lvl in record.chain.levels
        )
        assert record.conserved
        round_tripped = RunRecord.from_json_line(record.to_json_line())
        assert round_tripped.to_json_line() == record.to_json_line()
        assert round_tripped.chain.levels[1].output_nnz == \
            record.chain.levels[1].output_nnz

    def test_requires_square_k(self):
        config = RunConfig(
            dataset="hv15r", workload="chained-squaring", nprocs=4, scale=SCALE
        )
        with pytest.raises(ValueError, match="square_k"):
            execute_config(config)

    def test_matches_direct_chain_call(self):
        from repro.apps.squaring import run_chained_squaring
        from repro.matrices import load_dataset

        config = RunConfig(
            dataset="hv15r", workload="chained-squaring", algorithm="1d",
            nprocs=4, block_split=16, scale=SCALE, square_k=2,
        )
        record = execute_config(config)
        A = load_dataset("hv15r", scale=SCALE)
        direct = run_chained_squaring(
            A, k=2, algorithm="1d", nprocs=4, block_split=16
        )
        assert record.elapsed_time == direct.elapsed_time
        assert record.communication_volume == direct.communication_volume
        assert record.message_count == direct.message_count
        for rec_level, direct_level in zip(record.chain.levels, direct.results):
            assert rec_level.time == direct_level.elapsed_time
            assert rec_level.volume == direct_level.communication_volume

    def test_cache_hit_round_trip(self, tmp_path):
        config = RunConfig(
            dataset="hv15r", workload="chained-squaring", algorithm="1d",
            nprocs=4, block_split=16, scale=SCALE, square_k=2,
        )
        store = tmp_path / "chain.jsonl"
        first = run_grid([config], store=str(store))
        assert first.stats.executed == 1
        second = run_grid([config], store=str(store))
        assert second.stats.cached == 1
        assert second.records[0].to_json_line() == first.records[0].to_json_line()


class TestResidentBCWorkload:
    def test_resident_record_differs_only_in_setup_accounting(self):
        legacy = execute_config(_bc_config())
        resident = execute_config(_bc_config(resident=True))
        assert legacy.config_hash != resident.config_hash
        # The hoisted run charges strictly less modelled time …
        assert resident.elapsed_time < legacy.elapsed_time
        # … records the one-off setup as a dedicated series entry …
        setup = [it for it in resident.bc.iterations if it.phase == "setup"]
        assert len(setup) == 1
        assert not any(it.phase == "setup" for it in legacy.bc.iterations)
        # … and leaves the per-iteration frontier series untouched.
        legacy_series = [
            (it.phase, it.iteration, it.frontier_nnz)
            for it in legacy.bc.iterations
        ]
        resident_series = [
            (it.phase, it.iteration, it.frontier_nnz)
            for it in resident.bc.iterations
            if it.phase != "setup"
        ]
        assert legacy_series == resident_series
        assert resident.conserved and legacy.conserved

    def test_setup_fields_reconcile_and_stay_off_legacy_rows(self):
        legacy = execute_config(_bc_config())
        resident = execute_config(_bc_config(resident=True))
        # Typed record stays self-consistent: setup + forward + backward
        # reconciles with the topline counters.
        assert resident.bc.setup_time > 0.0
        assert resident.bc.setup_time + resident.bc.forward_time + \
            resident.bc.backward_time == pytest.approx(resident.elapsed_time)
        assert resident.bc.setup_volume + resident.bc.forward_volume + \
            resident.bc.backward_volume == resident.communication_volume
        # Legacy JSONL rows carry no setup keys (byte-compatible with PR3).
        import json

        legacy_row = json.loads(legacy.to_json_line())
        assert "setup_time" not in legacy_row["bc"]
        resident_row = json.loads(resident.to_json_line())
        assert resident_row["bc"]["setup_volume"] == resident.bc.setup_volume
        # And the setup fields survive the JSON round trip.
        assert RunRecord.from_json_line(
            resident.to_json_line()
        ).bc.setup_time == resident.bc.setup_time


class TestWorkloadRecords:
    def test_amg_record_round_trip_and_fields(self):
        record = execute_config(_amg_config())
        assert record.workload == "amg-restriction"
        assert record.bc is None
        amg = record.amg
        assert amg is not None
        assert amg.r_nnz == amg.n_fine  # one nonzero per row (Table III)
        assert amg.n_coarse < amg.n_fine
        assert amg.coarsening_factor == pytest.approx(amg.n_fine / amg.n_coarse)
        assert amg.left_volume > 0 and amg.right_volume > 0
        assert record.communication_volume == amg.left_volume + amg.right_volume
        assert record.elapsed_time == pytest.approx(amg.left_time + amg.right_time)
        assert record.output_nnz == amg.coarse_nnz > 0
        assert len(record.per_rank_comm) == record.config.nprocs
        assert record.conserved
        restored = RunRecord.from_json_line(record.to_json_line())
        assert restored == record

    def test_amg_rta_phase_runs_left_only(self):
        record = execute_config(_amg_config(amg_phase="rta"))
        assert record.amg.right_time == 0.0
        assert record.amg.right_volume == 0
        assert record.amg.coarse_nnz == 0
        assert record.communication_volume == record.amg.left_volume
        assert record.output_nnz == record.amg.rta_nnz
        assert "+" not in record.algorithm

    def test_bc_record_round_trip_and_fields(self):
        record = execute_config(_bc_config())
        assert record.workload == "bc"
        assert record.amg is None
        bc = record.bc
        assert bc is not None
        assert bc.sources == 8 and bc.batches == 1
        assert bc.iterations, "expected at least one BFS iteration"
        phases = {it.phase for it in bc.iterations}
        assert phases == {"forward", "backward"}
        assert record.communication_volume == bc.forward_volume + bc.backward_volume
        assert record.communication_volume == sum(it.volume for it in bc.iterations)
        assert record.elapsed_time == pytest.approx(bc.forward_time + bc.backward_time)
        assert record.message_count == sum(it.messages for it in bc.iterations)
        assert record.conserved
        restored = RunRecord.from_json_line(record.to_json_line())
        assert restored == record

    def test_squaring_record_has_no_workload_extras(self):
        record = execute_config(
            RunConfig(dataset="hv15r", nprocs=4, block_split=16, scale=SCALE)
        )
        assert record.workload == "squaring"
        assert record.amg is None and record.bc is None
        assert "amg" not in record.to_dict() and "bc" not in record.to_dict()


class TestEngineEqualsDirectCalls:
    """The migrated benchmarks' acceptance criterion: engine records match
    the pre-migration direct application calls on every volume/message."""

    def test_amg_matches_direct_galerkin_calls(self):
        from repro.apps.amg import build_restriction, left_multiplication, right_multiplication
        from repro.matrices import load_dataset

        config = _amg_config()
        record = execute_config(config)
        A = load_dataset("queen", scale=SCALE)
        rest = build_restriction(A, seed=0)
        left = left_multiplication(
            rest.R, A, algorithm="1d", nprocs=config.nprocs, block_split=config.block_split
        )
        right = right_multiplication(
            left.C, rest.R, algorithm="outer-product", nprocs=config.nprocs
        )
        assert record.amg.left_volume == left.communication_volume
        assert record.amg.left_messages == left.message_count
        assert record.amg.left_time == pytest.approx(left.elapsed_time)
        assert record.amg.right_volume == right.communication_volume
        assert record.amg.right_messages == right.message_count
        assert record.amg.right_time == pytest.approx(right.elapsed_time)
        assert record.amg.rta_nnz == left.C.nnz
        assert record.amg.coarse_nnz == right.C.nnz

    def test_bc_matches_direct_brandes_call(self):
        from repro.apps.bc import batched_betweenness_centrality
        from repro.matrices import load_dataset

        config = _bc_config()
        record = execute_config(config)
        A = load_dataset("hv15r", scale=SCALE)
        direct = batched_betweenness_centrality(
            A, sources=list(range(0, 32, 4)), batch_size=8, algorithm="1d", nprocs=4
        )
        assert [it.volume for it in record.bc.iterations] == [
            r.communication_volume for r in direct.iterations
        ]
        assert [it.messages for it in record.bc.iterations] == [
            r.message_count for r in direct.iterations
        ]
        assert record.elapsed_time == pytest.approx(direct.total_time)
        assert record.communication_volume == direct.total_volume


class TestPerWorkloadCaching:
    def _mixed_configs(self):
        return [
            RunConfig(dataset="hv15r", nprocs=4, block_split=16, scale=SCALE),
            _amg_config(),
            _bc_config(),
        ]

    def test_cache_hit_skips_every_workload(self, tmp_path):
        store = ResultStore(tmp_path / "records.jsonl")
        first = run_grid(self._mixed_configs(), workers=0, store=store)
        assert first.stats.executed == 3
        before = (tmp_path / "records.jsonl").read_bytes()
        second = run_grid(self._mixed_configs(), workers=0, store=store)
        assert second.stats.cached == 3 and second.stats.executed == 0
        assert (tmp_path / "records.jsonl").read_bytes() == before
        assert [r.to_json_line() for r in first.records] == [
            r.to_json_line() for r in second.records
        ]
        assert [r.workload for r in second.records] == ["squaring", "amg-restriction", "bc"]

    def test_partial_store_resumes_per_workload(self, tmp_path):
        configs = self._mixed_configs()
        store = ResultStore(tmp_path / "records.jsonl")
        run_grid(configs[:1], workers=0, store=store)       # squaring only
        result = run_grid(configs, workers=0, store=store)  # amg + bc resume
        assert result.stats.cached == 1 and result.stats.executed == 2
        assert [r.config for r in result.records] == configs

    def test_serial_equals_parallel_for_mixed_workloads(self, tmp_path):
        configs = self._mixed_configs()
        serial = run_grid(configs, workers=0, store=ResultStore(tmp_path / "s.jsonl"))
        parallel = run_grid(configs, workers=2, store=ResultStore(tmp_path / "p.jsonl"))
        assert (tmp_path / "s.jsonl").read_bytes() == (tmp_path / "p.jsonl").read_bytes()
        assert [r.to_json_line() for r in serial.records] == [
            r.to_json_line() for r in parallel.records
        ]


class TestTrajectoryRollup:
    def test_rollup_aggregates_per_workload(self):
        records = [execute_config(c) for c in [
            RunConfig(dataset="hv15r", nprocs=4, block_split=16, scale=SCALE),
            _bc_config(),
        ]]
        document = rollup_records(records, label="test")
        assert document["label"] == "test"
        assert document["total_records"] == 2
        assert document["all_conserved"] is True
        assert set(document["workloads"]) == {"squaring", "bc"}
        assert document["workloads"]["bc"]["configs"] == 1
        bc_row = [r for r in document["records"] if r["workload"] == "bc"][0]
        assert bc_row["bc"]["iterations"] == len(records[1].bc.iterations)
        assert "machine" in document and "python" in document["machine"]

    def test_write_trajectory_round_trips(self, tmp_path):
        import json

        records = [execute_config(_bc_config())]
        path = tmp_path / "BENCH_TEST.json"
        from repro.experiments import write_trajectory

        document = write_trajectory(path, records, label="TEST", wall_seconds=1.5)
        loaded = json.loads(path.read_text())
        assert loaded == json.loads(json.dumps(document))
        assert loaded["wall_seconds"] == 1.5

"""Pluggable execution backends: registry, contract, and shm validation.

The backend abstraction promises that the *same* run executes on the
simulated backend (modelled transfers only) and on the shm backend (real
inter-process transfers through POSIX shared memory) with bit-identical
results and bit-identical modelled counters — the shm communicator moves
payloads physically and then delegates all accounting to the simulated
one.  These tests pin the registry, the config-hash stability rule
(``backend`` elided at its default so every pre-backend hash is unchanged),
collective edge cases under both backends, the measured byte ledger's
conservation, and the shut-down-cluster guard.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import make_algorithm
from repro.experiments import (
    ExperimentGrid,
    MeasuredStats,
    RunConfig,
    RunRecord,
    execute_config,
    run_grid,
)
from repro.matrices.generators import banded, community_graph
from repro.runtime import (
    BACKENDS,
    SimulatedCluster,
    WindowError,
    available_backends,
    create_cluster,
    resolve_backend,
)
from repro.runtime.shm import MeasuredLedger

PAYLOAD = np.arange(125, dtype=np.float64)  # 1000 bytes

DRIVERS = (
    "1d",
    "2d",
    "3d",
    "outer-product",
    "1d-naive-block-row",
    "1d-improved-block-row",
)


class TestRegistry:
    def test_both_backends_registered(self):
        assert available_backends() == ["shm", "simulated"]
        assert set(BACKENDS) == {"shm", "simulated"}

    def test_resolve_unknown_backend_lists_available(self):
        with pytest.raises(ValueError, match="available backends: shm, simulated"):
            resolve_backend("mpi")

    def test_create_cluster_dispatches(self):
        sim = create_cluster(2)
        assert isinstance(sim, SimulatedCluster)
        assert sim.backend_name == "simulated"
        assert sim.measured_ledger is None
        shm = create_cluster(2, backend="shm")
        try:
            assert shm.backend_name == "shm"
            assert isinstance(shm.measured_ledger, MeasuredLedger)
        finally:
            shm.shutdown()

    def test_simulated_cluster_direct_construction_unchanged(self):
        """The pre-backend construction path keeps working verbatim."""
        cl = SimulatedCluster(4, name="legacy")
        cl.comm.bcast(PAYLOAD, root=0)
        assert cl.ledger.is_conserved()


class TestConfigHashStability:
    def test_backend_elided_at_default(self):
        base = RunConfig(dataset="hv15r", algorithm="1d", nprocs=4)
        explicit = RunConfig(dataset="hv15r", algorithm="1d", nprocs=4,
                             backend="simulated")
        assert base.config_hash() == explicit.config_hash()
        assert '"backend"' not in base.canonical_json()

    def test_shm_backend_discriminates(self):
        sim = RunConfig(dataset="hv15r", algorithm="1d", nprocs=4)
        shm = RunConfig(dataset="hv15r", algorithm="1d", nprocs=4, backend="shm")
        assert sim.config_hash() != shm.config_hash()
        assert '"backend":"shm"' in shm.canonical_json()

    def test_grid_backend_axis(self):
        grid = ExperimentGrid(
            datasets=("hv15r",), algorithms=("1d",), process_counts=(4,),
            backends=("simulated", "shm"),
        )
        configs = grid.expand()
        assert len(configs) == len(grid) == 2
        assert sorted(c.backend for c in configs) == ["shm", "simulated"]


def _collective_edge_cases(cl):
    """Exercise the edge cases on a live cluster; returns for assertions."""
    empty = np.zeros(0, dtype=np.float64)
    # Empty payloads through every payload-carrying collective.
    cl.comm.send(empty, src=0, dst=cl.nprocs - 1)
    out = cl.comm.bcast(empty, root=0)
    assert all(v.nbytes == 0 for v in out.values())
    cl.comm.allgather({r: empty for r in range(cl.nprocs)})
    cl.comm.gather({r: empty for r in range(cl.nprocs)}, root=0)
    # Self-send: src == dst moves nothing between processes.
    cl.comm.send(PAYLOAD, src=0, dst=0)
    # Single-rank group collectives.
    cl.comm.bcast(PAYLOAD, root=0, ranks=[0])
    cl.comm.allreduce_scalar({0: 1.0})  # group is the dict's keys: just rank 0
    cl.comm.barrier(ranks=[0])
    # Scalar reduction over the full cluster round-trips float64 exactly.
    reduced = cl.comm.allreduce_scalar({r: float(r) + 0.125 for r in range(cl.nprocs)})
    assert set(reduced.values()) == {sum(float(r) + 0.125 for r in range(cl.nprocs))}
    # Self-get and empty get through an RDMA window epoch.
    data = np.arange(32, dtype=np.float64)
    window = cl.create_window({r: {"x": data} for r in range(cl.nprocs)})
    with window.epoch():
        same = window.get(0, 0, "x", 4, 12)
        np.testing.assert_array_equal(same, data[4:12])
        nothing = window.get(0, cl.nprocs - 1, "x", 7, 7)
        assert nothing.size == 0
        remote = window.get_concat(0, cl.nprocs - 1, "x", [(0, 4), (8, 16)])
        np.testing.assert_array_equal(
            remote, np.concatenate([data[0:4], data[8:16]])
        )


class TestCollectiveEdgeCases:
    @pytest.mark.parametrize("backend", ["simulated", "shm"])
    @pytest.mark.parametrize("nprocs", [1, 2, 5])
    def test_edge_cases_and_conservation(self, backend, nprocs):
        cl = create_cluster(nprocs, backend=backend)
        try:
            _collective_edge_cases(cl)
            assert cl.ledger.is_conserved()
            if backend == "shm":
                assert cl.measured_ledger.is_conserved()
        finally:
            cl.shutdown()

    def test_payloads_round_trip_shm_bitwise(self):
        """Physically moved payloads must come back bit-identical."""
        cl = create_cluster(3, backend="shm")
        try:
            payload = np.arange(1000, dtype=np.float64) * np.pi
            out = cl.comm.bcast(payload, root=1)
            for rank, received in out.items():
                np.testing.assert_array_equal(received, payload)
                if rank != 1:  # non-roots hold a transported copy
                    assert received is not payload
            gathered = cl.comm.allgather({r: payload * (r + 1) for r in range(3)})
            for dst in range(3):
                for src in range(3):
                    np.testing.assert_array_equal(
                        gathered[dst][src], payload * (src + 1)
                    )
        finally:
            cl.shutdown()


class TestMeasuredLedgerConservation:
    """Mirror of test_conservation's collective sweep, on the measured books."""

    @pytest.mark.parametrize("nprocs", [1, 2, 3, 5])
    def test_collectives_conserve_measured_bytes(self, nprocs):
        cl = create_cluster(nprocs, backend="shm")
        try:
            cl.comm.send(PAYLOAD, src=0, dst=cl.nprocs - 1)
            cl.comm.bcast(PAYLOAD, root=0)
            cl.comm.allgather({r: PAYLOAD for r in range(nprocs)})
            cl.comm.gather({r: PAYLOAD for r in range(nprocs)}, root=0)
            buffers = {
                src: {dst: PAYLOAD for dst in range(nprocs) if dst != src}
                for src in range(nprocs)
            }
            cl.comm.alltoallv(buffers)
            cl.comm.allreduce_scalar({r: float(r) for r in range(nprocs)})
            measured = cl.measured_ledger
            assert measured.is_conserved()
            if nprocs > 1:
                assert measured.total_bytes() > 0
                assert measured.total_transfers() > 0
                assert measured.total_bytes() == measured.total_bytes_sent()
            else:
                assert measured.total_bytes() == 0
        finally:
            cl.shutdown()

    def test_size_only_primitives_burn_exactly_modelled_bytes(self):
        """send_many / alltoallv_sizes move filler equal to modelled bytes."""
        cl = create_cluster(4, backend="shm")
        try:
            cl.comm.send_many([0, 2, 3], [1, 3, 0], [64, 128, 8])
            cl.comm.alltoallv_sizes([0, 1], [1, 2], [32, 16])
            assert cl.measured_ledger.total_bytes() == 64 + 128 + 8 + 32 + 16
            assert cl.measured_ledger.is_conserved()
            sent = sum(st.bytes_sent for st in cl.ledger.phases["default"])
            assert sent == cl.measured_ledger.total_bytes()
        finally:
            cl.shutdown()

    def test_measured_phases_follow_modelled_phase_names(self):
        cl = create_cluster(2, backend="shm")
        try:
            with cl.phase("alpha"):
                cl.comm.send(PAYLOAD, src=0, dst=1)
            with cl.phase("beta"):
                cl.comm.bcast(PAYLOAD, root=0)
            assert set(cl.measured_ledger.phases) >= {"alpha", "beta"}
            assert cl.measured_ledger.phases["alpha"].is_conserved()
        finally:
            cl.shutdown()


class TestModelledCountersBackendInvariant:
    @pytest.mark.parametrize("driver", DRIVERS)
    def test_bit_identical_result_and_counters(self, driver):
        A = community_graph(120, 6, 10, mixing=0.1, shuffle=True, seed=7)
        sim = SimulatedCluster(4)
        r_sim = make_algorithm(driver).multiply(A, A, sim)
        shm = create_cluster(4, backend="shm")
        try:
            r_shm = make_algorithm(driver).multiply(A, A, shm)
        finally:
            shm.shutdown()
        for attr in ("indptr", "indices", "data"):
            np.testing.assert_array_equal(
                getattr(r_sim.C, attr), getattr(r_shm.C, attr)
            )
        assert r_sim.elapsed_time == r_shm.elapsed_time
        assert r_sim.communication_volume == r_shm.communication_volume
        assert r_sim.message_count == r_shm.message_count
        assert shm.measured_ledger.is_conserved()


class TestShutdownGuard:
    def test_execute_after_shutdown_raises_window_error(self):
        A = banded(64, 4, symmetric=True, seed=1)
        cl = create_cluster(2, backend="shm")
        algo = make_algorithm("1d")
        op = algo.prepare_operand(A, cl)
        prepared = algo.prepare(op, op, cl)
        cl.shutdown()
        with pytest.raises(WindowError, match="shut-down 'shm' backend cluster"):
            prepared.execute()

    def test_execute_after_simulated_shutdown_raises_too(self):
        A = banded(64, 4, symmetric=True, seed=1)
        cl = create_cluster(2)
        algo = make_algorithm("1d")
        op = algo.prepare_operand(A, cl)
        prepared = algo.prepare(op, op, cl)
        cl.shutdown()
        with pytest.raises(WindowError, match="prepare and execute on a live"):
            prepared.execute()

    def test_shutdown_is_idempotent_and_transport_refuses_reuse(self):
        cl = create_cluster(2, backend="shm")
        cl.shutdown()
        cl.shutdown()  # second call is a no-op
        with pytest.raises(WindowError, match="transport is shut down"):
            cl.comm.send(PAYLOAD, src=0, dst=1)

    def test_context_manager_shuts_down(self):
        with create_cluster(2, backend="shm") as cl:
            cl.comm.bcast(PAYLOAD, root=0)
        assert cl.closed


class TestRecordsAndEngine:
    def _config(self, backend, **extra):
        return RunConfig(dataset="stokes", scale=0.1, algorithm="1d",
                         nprocs=4, block_split=16, backend=backend, **extra)

    def test_measured_record_round_trips_through_json(self):
        record = execute_config(self._config("shm"))
        assert isinstance(record.measured, MeasuredStats)
        assert record.measured.backend == "shm"
        assert record.measured.conserved
        assert record.measured.bytes_sent == record.measured.bytes_received > 0
        assert record.measured.phases, "per-phase measured rows are missing"
        clone = RunRecord.from_dict(record.to_dict())
        assert clone.measured is not None
        assert clone.to_dict() == record.to_dict()

    def test_simulated_record_has_no_measured_block(self):
        record = execute_config(self._config("simulated"))
        assert record.measured is None
        assert "measured" not in record.to_dict()

    def test_mixed_backend_grid_runs_and_agrees(self, tmp_path):
        configs = [self._config("simulated"), self._config("shm")]
        result = run_grid(configs, store=str(tmp_path / "mixed.jsonl"))
        sim, shm = result.records
        assert sim.config.backend == "simulated"
        assert shm.config.backend == "shm"
        assert sim.elapsed_time == shm.elapsed_time
        assert sim.communication_volume == shm.communication_volume
        assert sim.measured is None and shm.measured is not None
        # Distinct hashes → both cached independently; a re-run is all hits.
        again = run_grid(configs, store=str(tmp_path / "mixed.jsonl"))
        assert again.stats.cached == 2 and again.stats.executed == 0

    def test_parallel_grid_keeps_shm_configs_in_parent(self, tmp_path):
        """workers>1 must not hand shm configs to daemonic pool workers."""
        configs = [
            self._config("simulated"),
            self._config("simulated", seed=1),
            self._config("shm"),
        ]
        result = run_grid(configs, workers=2, store=str(tmp_path / "par.jsonl"))
        assert len(result.records) == 3
        by_backend = {r.config.backend: r for r in result.records}
        assert by_backend["shm"].measured is not None
        assert by_backend["shm"].measured.conserved

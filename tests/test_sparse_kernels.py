"""Unit tests for local SpGEMM kernels, flops estimation, merge and ops."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.sparse import (
    CSCMatrix,
    SpGEMMKernelStats,
    add_matrices,
    as_csc,
    kway_merge_columns,
    local_spgemm,
    per_column_flops,
    spgemm_dense_accumulator,
    spgemm_flops,
    spgemm_hash,
    spgemm_heap,
    spgemm_hybrid,
    stack_columns,
    to_scipy,
    estimate_output_nnz_upper_bound,
)
from repro.sparse import ops

from conftest import assert_sparse_equal

KERNEL_FUNCS = {
    "heap": spgemm_heap,
    "hash": spgemm_hash,
    "dense": spgemm_dense_accumulator,
    "hybrid": spgemm_hybrid,
}


def _random(m, n, density, seed, symmetric=False):
    mat = sp.random(m, n, density=density, random_state=seed, format="csc")
    if symmetric:
        mat = mat + mat.T
    return as_csc(mat)


# ----------------------------------------------------------------------
# Kernel correctness
# ----------------------------------------------------------------------
class TestKernelCorrectness:
    @pytest.mark.parametrize("kernel", list(KERNEL_FUNCS))
    def test_tiny_known_product(self, kernel, tiny_dense_pair):
        A, B, expected = tiny_dense_pair
        C = KERNEL_FUNCS[kernel](A, B)
        np.testing.assert_allclose(C.to_dense(), expected, atol=1e-12)

    @pytest.mark.parametrize("kernel", list(KERNEL_FUNCS))
    def test_random_square_matches_scipy(self, kernel):
        A = _random(70, 70, 0.06, seed=10)
        B = _random(70, 70, 0.06, seed=11)
        expected = (to_scipy(A) @ to_scipy(B)).toarray()
        C = KERNEL_FUNCS[kernel](A, B)
        np.testing.assert_allclose(C.to_dense(), expected, atol=1e-10)

    @pytest.mark.parametrize("kernel", list(KERNEL_FUNCS))
    def test_rectangular_matches_scipy(self, kernel):
        A = _random(40, 60, 0.08, seed=20)
        B = _random(60, 30, 0.08, seed=21)
        expected = (to_scipy(A) @ to_scipy(B)).toarray()
        C = KERNEL_FUNCS[kernel](A, B)
        assert C.shape == (40, 30)
        np.testing.assert_allclose(C.to_dense(), expected, atol=1e-10)

    @pytest.mark.parametrize("kernel", list(KERNEL_FUNCS))
    def test_empty_operand_gives_empty_result(self, kernel):
        A = CSCMatrix.empty(10, 8)
        B = _random(8, 6, 0.2, seed=5)
        C = KERNEL_FUNCS[kernel](A, B)
        assert C.shape == (10, 6)
        assert not C.to_dense().any()

    @pytest.mark.parametrize("kernel", list(KERNEL_FUNCS))
    def test_identity_is_neutral(self, kernel):
        A = _random(25, 25, 0.15, seed=7)
        I = CSCMatrix.identity(25)
        assert_sparse_equal(KERNEL_FUNCS[kernel](A, I), A)
        assert_sparse_equal(KERNEL_FUNCS[kernel](I, A), A)

    @pytest.mark.parametrize("kernel", list(KERNEL_FUNCS))
    def test_dimension_mismatch_raises(self, kernel):
        A = _random(5, 6, 0.2, seed=1)
        B = _random(7, 5, 0.2, seed=2)
        with pytest.raises(ValueError):
            KERNEL_FUNCS[kernel](A, B)

    def test_kernels_agree_with_each_other(self):
        A = _random(50, 50, 0.07, seed=30, symmetric=True)
        results = [KERNEL_FUNCS[k](A, A).to_dense() for k in KERNEL_FUNCS]
        for r in results[1:]:
            np.testing.assert_allclose(r, results[0], atol=1e-10)

    def test_local_spgemm_dispatch(self):
        A = _random(20, 20, 0.2, seed=40)
        for kernel in KERNEL_FUNCS:
            assert_sparse_equal(
                local_spgemm(A, A, kernel=kernel), KERNEL_FUNCS[kernel](A, A)
            )

    def test_local_spgemm_unknown_kernel(self):
        A = _random(5, 5, 0.3, seed=1)
        with pytest.raises(ValueError):
            local_spgemm(A, A, kernel="bogus")

    def test_accepts_scipy_inputs(self):
        A = sp.random(15, 15, density=0.2, random_state=3, format="csr")
        C = local_spgemm(A, A)
        np.testing.assert_allclose(C.to_dense(), (A @ A).toarray(), atol=1e-10)

    def test_hybrid_reference_cross_check(self):
        A = _random(30, 30, 0.15, seed=9)
        C = spgemm_hybrid(A, A, reference_columns=10)
        np.testing.assert_allclose(
            C.to_dense(), (to_scipy(A) @ to_scipy(A)).toarray(), atol=1e-10
        )

    def test_numerical_cancellation_preserved(self):
        # (1)(1) + (-1)(1) = 0: the entry may be stored explicitly but the
        # numerical result must be zero.
        A = CSCMatrix.from_coo(2, 2, [0, 0], [0, 1], [1.0, -1.0])
        B = CSCMatrix.from_coo(2, 1, [0, 1], [0, 0], [1.0, 1.0])
        for kernel in KERNEL_FUNCS:
            C = KERNEL_FUNCS[kernel](A, B)
            assert C.to_dense()[0, 0] == pytest.approx(0.0)


# ----------------------------------------------------------------------
# Kernel statistics
# ----------------------------------------------------------------------
class TestKernelStats:
    def test_stats_flops_match_estimate(self):
        A = _random(40, 40, 0.1, seed=50)
        stats = SpGEMMKernelStats()
        local_spgemm(A, A, kernel="hybrid", stats=stats)
        assert stats.flops == spgemm_flops(A, A)

    def test_stats_output_nnz(self):
        A = _random(40, 40, 0.1, seed=51)
        stats = SpGEMMKernelStats()
        C = local_spgemm(A, A, kernel="dense", stats=stats)
        assert stats.output_nnz == C.nnz

    def test_stats_column_routing_sums_to_active_columns(self):
        A = _random(40, 40, 0.1, seed=52)
        stats = SpGEMMKernelStats()
        local_spgemm(A, A, kernel="hybrid", stats=stats)
        active = int(np.count_nonzero(per_column_flops(as_csc(A), as_csc(A)) > 0))
        assert (
            stats.columns_heap + stats.columns_hash + stats.columns_dense == active
        )
        assert active <= as_csc(A).ncols

    def test_stats_column_routing_agrees_across_kernels_on_sparse_input(self):
        """Hybrid and literal kernels must count the same columns as routed.

        Regression test: the literal kernels used to add ``B.ncols`` to their
        counters even for columns doing zero work, so hybrid-vs-literal
        routing stats disagreed on sparse inputs with empty columns.
        """
        # Very sparse input with guaranteed empty columns.
        A = _random(60, 60, 0.02, seed=99)
        totals = {}
        for kernel in ("heap", "hash", "dense", "hybrid"):
            stats = SpGEMMKernelStats()
            local_spgemm(A, A, kernel=kernel, stats=stats)
            totals[kernel] = (
                stats.columns_heap + stats.columns_hash + stats.columns_dense
            )
        assert len(set(totals.values())) == 1, totals
        active = int(np.count_nonzero(per_column_flops(as_csc(A), as_csc(A)) > 0))
        assert totals["hybrid"] == active

    def test_compression_ratio_at_least_one(self):
        A = _random(40, 40, 0.1, seed=53)
        stats = SpGEMMKernelStats()
        local_spgemm(A, A, kernel="hybrid", stats=stats)
        assert stats.compression_ratio >= 1.0

    def test_stats_merge(self):
        a = SpGEMMKernelStats(flops=10, output_nnz=5, columns_heap=1)
        b = SpGEMMKernelStats(flops=20, output_nnz=7, columns_hash=2)
        merged = a.merge(b)
        assert merged.flops == 30
        assert merged.output_nnz == 12
        assert merged.columns_heap == 1 and merged.columns_hash == 2

    def test_empty_product_compression_ratio(self):
        stats = SpGEMMKernelStats()
        assert stats.compression_ratio == 1.0


# ----------------------------------------------------------------------
# Flops estimation
# ----------------------------------------------------------------------
class TestFlops:
    def test_flops_formula_against_bruteforce(self):
        A = _random(30, 25, 0.15, seed=60)
        B = _random(25, 35, 0.15, seed=61)
        # Brute force: for every k, multiply column/row counts.
        a_cols = A.column_nnz()
        b_rows = B.row_nnz()
        assert spgemm_flops(A, B) == int(np.dot(a_cols, b_rows))

    def test_per_column_flops_sum_equals_total(self):
        A = _random(30, 25, 0.15, seed=62)
        B = _random(25, 35, 0.15, seed=63)
        assert int(per_column_flops(A, B).sum()) == spgemm_flops(A, B)

    def test_flops_zero_for_empty(self):
        A = CSCMatrix.empty(10, 10)
        assert spgemm_flops(A, A) == 0

    def test_flops_squaring_symmetric_equals_sum_of_squares(self, small_symmetric):
        col = small_symmetric.column_nnz().astype(np.int64)
        assert spgemm_flops(small_symmetric, small_symmetric) == int((col * col).sum())

    def test_flops_dimension_mismatch(self):
        with pytest.raises(ValueError):
            spgemm_flops(CSCMatrix.empty(3, 4), CSCMatrix.empty(5, 3))

    def test_output_nnz_upper_bound(self):
        A = _random(30, 30, 0.1, seed=64)
        C = local_spgemm(A, A)
        assert C.nnz <= estimate_output_nnz_upper_bound(A, A)


# ----------------------------------------------------------------------
# Merge helpers
# ----------------------------------------------------------------------
class TestMerge:
    def test_add_matrices_two(self):
        A = _random(20, 20, 0.1, seed=70)
        B = _random(20, 20, 0.1, seed=71)
        assert_sparse_equal(add_matrices([A, B]), A.to_dense() + B.to_dense())

    def test_add_matrices_many(self):
        mats = [_random(15, 15, 0.1, seed=72 + i) for i in range(5)]
        expected = sum(m.to_dense() for m in mats)
        assert_sparse_equal(add_matrices(mats), expected)

    def test_add_matrices_single_copy(self):
        A = _random(10, 10, 0.2, seed=80)
        out = add_matrices([A])
        assert out is not A
        assert_sparse_equal(out, A)

    def test_add_matrices_empty_list_raises(self):
        with pytest.raises(ValueError):
            add_matrices([])

    def test_add_matrices_shape_mismatch(self):
        with pytest.raises(ValueError):
            add_matrices([CSCMatrix.empty(2, 2), CSCMatrix.empty(3, 3)])

    def test_stack_columns_roundtrip(self, small_square):
        parts = [
            small_square.extract_column_range(0, 20),
            small_square.extract_column_range(20, 45),
            small_square.extract_column_range(45, 60),
        ]
        assert_sparse_equal(stack_columns(parts), small_square)

    def test_stack_columns_row_mismatch(self):
        with pytest.raises(ValueError):
            stack_columns([CSCMatrix.empty(2, 2), CSCMatrix.empty(3, 2)])

    def test_kway_merge_columns_disjoint(self, small_square):
        left = small_square.extract_columns(range(0, 30))
        right = small_square.extract_columns(range(30, 60))
        merged = kway_merge_columns(
            [(np.arange(0, 30), left), (np.arange(30, 60), right)], 60, 60
        )
        assert_sparse_equal(merged, small_square)

    def test_kway_merge_columns_overlapping_sums(self):
        frag = CSCMatrix.from_coo(3, 1, [0], [0], [2.0])
        merged = kway_merge_columns(
            [(np.array([1]), frag), (np.array([1]), frag)], 3, 3
        )
        assert merged.to_dense()[0, 1] == pytest.approx(4.0)

    def test_kway_merge_bad_fragment(self):
        frag = CSCMatrix.empty(3, 2)
        with pytest.raises(ValueError):
            kway_merge_columns([(np.array([0]), frag)], 3, 4)


# ----------------------------------------------------------------------
# Structural / elementwise ops
# ----------------------------------------------------------------------
class TestOps:
    def test_transpose(self, small_rect):
        assert_sparse_equal(ops.transpose(small_rect), small_rect.to_dense().T)

    def test_extract_rows(self, small_square):
        rows = [3, 1, 10]
        sub = ops.extract_rows(small_square, rows)
        np.testing.assert_allclose(
            sub.to_dense(), small_square.to_dense()[rows, :]
        )

    def test_extract_rows_out_of_range(self, small_square):
        with pytest.raises(IndexError):
            ops.extract_rows(small_square, [small_square.nrows])

    def test_extract_columns(self, small_square):
        cols = [0, 5]
        np.testing.assert_allclose(
            ops.extract_columns(small_square, cols).to_dense(),
            small_square.to_dense()[:, cols],
        )

    def test_elementwise_multiply(self):
        A = _random(20, 20, 0.2, seed=90)
        B = _random(20, 20, 0.2, seed=91)
        expected = A.to_dense() * B.to_dense()
        assert_sparse_equal(ops.elementwise_multiply(A, B), expected)

    def test_elementwise_multiply_shape_mismatch(self):
        with pytest.raises(ValueError):
            ops.elementwise_multiply(CSCMatrix.empty(2, 2), CSCMatrix.empty(2, 3))

    def test_elementwise_mask_keep(self):
        A = _random(20, 20, 0.3, seed=92)
        M = _random(20, 20, 0.3, seed=93)
        masked = ops.elementwise_mask(A, M)
        dense = A.to_dense().copy()
        dense[M.to_dense() == 0] = 0
        assert_sparse_equal(masked, dense)

    def test_elementwise_mask_complement(self):
        A = _random(20, 20, 0.3, seed=94)
        M = _random(20, 20, 0.3, seed=95)
        masked = ops.elementwise_mask(A, M, complement=True)
        dense = A.to_dense().copy()
        dense[M.to_dense() != 0] = 0
        assert_sparse_equal(masked, dense)

    def test_scale_columns(self, small_square, rng):
        scales = rng.random(small_square.ncols)
        assert_sparse_equal(
            ops.scale_columns(small_square, scales),
            small_square.to_dense() * scales[None, :],
        )

    def test_scale_rows(self, small_square, rng):
        scales = rng.random(small_square.nrows)
        assert_sparse_equal(
            ops.scale_rows(small_square, scales),
            small_square.to_dense() * scales[:, None],
        )

    def test_scale_wrong_length(self, small_square):
        with pytest.raises(ValueError):
            ops.scale_columns(small_square, np.ones(3))
        with pytest.raises(ValueError):
            ops.scale_rows(small_square, np.ones(3))

    def test_diagonal(self, small_square):
        np.testing.assert_allclose(
            ops.diagonal(small_square), np.diag(small_square.to_dense())
        )

    def test_symmetrize_pattern(self, small_square):
        sym = ops.symmetrize_pattern(small_square)
        dense = sym.to_dense()
        np.testing.assert_allclose(dense, dense.T)

    def test_symmetrize_requires_square(self, small_rect):
        with pytest.raises(ValueError):
            ops.symmetrize_pattern(small_rect)

    def test_spmv(self, small_square, rng):
        x = rng.random(small_square.ncols)
        np.testing.assert_allclose(
            ops.spmv(small_square, x), small_square.to_dense() @ x, atol=1e-10
        )

    def test_spmv_wrong_length(self, small_square):
        with pytest.raises(ValueError):
            ops.spmv(small_square, np.ones(3))

    def test_spmm_dense(self, small_square, rng):
        X = rng.random((small_square.ncols, 4))
        np.testing.assert_allclose(
            ops.spmm_dense(small_square, X), small_square.to_dense() @ X, atol=1e-10
        )

    def test_column_blocks_cover_all(self):
        blocks = ops.column_blocks(10, 3)
        assert blocks == [(0, 4), (4, 7), (7, 10)]
        assert blocks[0][0] == 0 and blocks[-1][1] == 10

    def test_column_blocks_more_blocks_than_columns(self):
        blocks = ops.column_blocks(2, 5)
        assert len(blocks) == 5
        assert sum(e - s for s, e in blocks) == 2

    def test_column_blocks_invalid(self):
        with pytest.raises(ValueError):
            ops.column_blocks(10, 0)

    def test_row_blocks_same_rule(self):
        assert ops.row_blocks(10, 3) == ops.column_blocks(10, 3)

"""Tests for the AMG application: MIS-2, restriction operators, Galerkin product."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.amg import (
    build_restriction,
    galerkin_product,
    left_multiplication,
    mis2,
    right_multiplication,
    verify_mis2,
)
from repro.matrices import load_dataset
from repro.matrices.generators import banded
from repro.sparse import CSCMatrix, local_spgemm
from repro.sparse.ops import transpose

from conftest import assert_sparse_equal


class TestMIS2:
    def test_mis2_is_valid_on_banded(self):
        A = banded(150, 5, symmetric=True, seed=1)
        members = mis2(A, seed=0)
        assert members.size > 0
        assert verify_mis2(A, members)

    def test_mis2_is_valid_on_random_symmetric(self, small_symmetric):
        members = mis2(small_symmetric, seed=1)
        assert verify_mis2(small_symmetric, members)

    def test_mis2_deterministic_for_seed(self, small_symmetric):
        np.testing.assert_array_equal(
            mis2(small_symmetric, seed=3), mis2(small_symmetric, seed=3)
        )

    def test_mis2_requires_square(self, small_rect):
        with pytest.raises(ValueError):
            mis2(small_rect)

    def test_mis2_much_smaller_than_graph(self):
        A = banded(300, 8, symmetric=True, seed=2)
        members = mis2(A, seed=0)
        assert members.size < A.nrows / 2

    def test_verify_rejects_adjacent_pair(self):
        # Two adjacent vertices can never both be in a distance-2 MIS.
        A = CSCMatrix.from_dense(
            np.array([[0, 1, 0], [1, 0, 1], [0, 1, 0]], dtype=float)
        )
        assert not verify_mis2(A, np.array([0, 1]))

    def test_verify_rejects_non_maximal(self):
        # Empty set is independent but not maximal on a non-empty graph.
        A = CSCMatrix.from_dense(
            np.array([[0, 1], [1, 0]], dtype=float)
        )
        assert not verify_mis2(A, np.array([], dtype=np.int64))


class TestRestriction:
    def test_one_nonzero_per_row(self):
        """Table III: every row of the restriction operator has exactly one entry."""
        A = load_dataset("queen", scale=0.08)
        rest = build_restriction(A, seed=0)
        assert rest.R.nnz == rest.R.nrows
        np.testing.assert_array_equal(rest.R.row_nnz(), np.ones(rest.R.nrows))

    def test_far_fewer_columns_than_rows(self):
        A = load_dataset("queen", scale=0.08)
        rest = build_restriction(A, seed=0)
        assert rest.n_coarse < rest.n_fine / 2

    def test_every_vertex_assigned_to_valid_aggregate(self, small_symmetric):
        rest = build_restriction(small_symmetric, seed=0)
        assert rest.aggregates.min() >= 0
        assert rest.aggregates.max() < rest.n_coarse

    def test_roots_belong_to_their_own_aggregate(self, small_symmetric):
        rest = build_restriction(small_symmetric, seed=0)
        for agg_id, root in enumerate(rest.roots):
            assert rest.aggregates[root] == agg_id

    def test_column_sums_equal_aggregate_sizes(self, small_symmetric):
        rest = build_restriction(small_symmetric, seed=0)
        sizes = np.bincount(rest.aggregates, minlength=rest.n_coarse)
        np.testing.assert_array_equal(rest.R.column_nnz(), sizes)

    def test_isolated_vertices_become_singletons(self):
        # A graph with an isolated vertex: it must still get an aggregate.
        dense = np.zeros((5, 5))
        dense[0, 1] = dense[1, 0] = 1.0
        dense[2, 3] = dense[3, 2] = 1.0
        A = CSCMatrix.from_dense(dense)
        rest = build_restriction(A, seed=0)
        assert rest.R.nnz == 5
        assert rest.aggregates[4] >= 0


def _reference_assign_aggregates(graph, roots):
    """The pre-vectorisation per-vertex FIFO BFS, kept verbatim as the oracle."""
    from collections import deque

    n = graph.nvertices
    aggregates = np.full(n, -1, dtype=np.int64)
    queue = deque()
    for agg_id, root in enumerate(roots):
        aggregates[root] = agg_id
        queue.append(int(root))
    while queue:
        v = queue.popleft()
        neigh, _ = graph.neighbours(v)
        for u in neigh:
            if aggregates[u] < 0:
                aggregates[u] = aggregates[v]
                queue.append(int(u))
    return aggregates


class TestVectorisedAggregation:
    """The frontier-at-a-time numpy BFS must equal the per-vertex reference."""

    def _compare(self, A, seed=0):
        from repro.apps.amg.mis2 import mis2
        from repro.apps.amg.restriction import _assign_aggregates
        from repro.partition.graph import AdjacencyGraph

        graph = AdjacencyGraph.from_matrix(A)
        roots = mis2(A, seed=seed)
        expected = _reference_assign_aggregates(graph, roots)
        actual = _assign_aggregates(graph, roots)
        np.testing.assert_array_equal(actual, expected)

    def test_matches_reference_on_banded(self):
        for seed in range(3):
            self._compare(banded(200, 5, symmetric=True, seed=seed), seed=seed)

    def test_matches_reference_on_dataset(self):
        self._compare(load_dataset("queen", scale=0.1))

    def test_matches_reference_on_random(self, small_symmetric):
        self._compare(small_symmetric)

    def test_isolated_vertices_become_singletons(self):
        """The singleton path: unreachable vertices get fresh aggregate ids."""
        # Block-diagonal graph with two isolated vertices at the end.
        dense = np.zeros((8, 8))
        dense[0, 1] = dense[1, 0] = 1.0
        dense[2, 3] = dense[3, 2] = 1.0
        dense[4, 5] = dense[5, 4] = 1.0
        A = CSCMatrix.from_dense(dense + np.eye(8))
        rest = build_restriction(A, seed=0)
        # Every row of R has exactly one nonzero and every vertex is assigned.
        assert rest.R.nnz == 8
        assert np.all(rest.aggregates >= 0)
        # Vertices 6 and 7 are isolated → singleton aggregates of their own.
        assert rest.aggregates[6] != rest.aggregates[7]
        counts = np.bincount(rest.aggregates)
        assert counts[rest.aggregates[6]] == 1
        assert counts[rest.aggregates[7]] == 1
        assert rest.n_coarse == int(rest.aggregates.max()) + 1
        assert rest.roots.shape[0] == rest.n_coarse

    def test_disconnected_components_match_reference(self):
        dense = np.zeros((30, 30))
        # Three components: a path, a clique, and isolated vertices.
        for i in range(9):
            dense[i, i + 1] = dense[i + 1, i] = 1.0
        dense[12:18, 12:18] = 1.0
        A = CSCMatrix.from_dense(dense)
        self._compare(A)


class TestGalerkin:
    def test_galerkin_matches_reference_triple_product(self):
        A = load_dataset("queen", scale=0.06)
        g = galerkin_product(A, nprocs=4)
        Rt = transpose(g.restriction.R)
        expected = local_spgemm(local_spgemm(Rt, A), g.restriction.R)
        assert_sparse_equal(g.coarse, expected, atol=1e-8)

    def test_coarse_operator_is_square_and_smaller(self):
        A = load_dataset("queen", scale=0.06)
        g = galerkin_product(A, nprocs=4)
        assert g.coarse.nrows == g.coarse.ncols == g.restriction.n_coarse
        assert g.coarse.nrows < A.nrows

    def test_symmetric_input_gives_symmetric_coarse_operator(self):
        A = banded(200, 6, symmetric=True, seed=4)
        g = galerkin_product(A, nprocs=4)
        dense = g.coarse.to_dense()
        np.testing.assert_allclose(dense, dense.T, atol=1e-9)

    def test_left_and_right_ledgers_are_separate(self):
        A = load_dataset("queen", scale=0.06)
        g = galerkin_product(A, nprocs=4)
        assert g.left.elapsed_time >= 0
        assert g.right.elapsed_time >= 0
        assert g.total_time == pytest.approx(g.left.elapsed_time + g.right.elapsed_time)

    def test_left_multiplication_algorithm_choices_agree(self):
        A = banded(150, 6, symmetric=True, seed=5)
        rest = build_restriction(A, seed=0)
        left_1d = left_multiplication(rest.R, A, algorithm="1d", nprocs=4)
        left_2d = left_multiplication(rest.R, A, algorithm="2d", nprocs=4)
        assert_sparse_equal(left_1d.C, left_2d.C, atol=1e-9)

    def test_right_multiplication_outer_product_matches_1d(self):
        A = banded(150, 6, symmetric=True, seed=6)
        rest = build_restriction(A, seed=0)
        rta = left_multiplication(rest.R, A, algorithm="1d", nprocs=4)
        right_op = right_multiplication(rta.C, rest.R, algorithm="outer-product", nprocs=4)
        right_1d = right_multiplication(rta.C, rest.R, algorithm="1d", nprocs=4)
        assert_sparse_equal(right_op.C, right_1d.C, atol=1e-9)

    def test_precomputed_restriction_is_respected(self, small_symmetric):
        rest = build_restriction(small_symmetric, seed=0)
        g = galerkin_product(small_symmetric, restriction=rest, nprocs=2)
        assert g.restriction is rest

"""Tests for the parallel experiment engine, the dataset disk cache, and
the squaring-driver regressions fixed alongside it."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    ExperimentGrid,
    ResultStore,
    RunConfig,
    RunRecord,
    execute_config,
    run_grid,
)
from repro.matrices import dataset_cache_path, load_dataset
from repro.matrices.cache import CACHE_ENV
from repro.runtime import PERLMUTTER


# A small grid that still exercises two algorithms, two process counts and
# two seeds: 8 configs, the minimum the acceptance criteria ask of the
# serial-vs-parallel comparison.
def _small_grid() -> ExperimentGrid:
    return ExperimentGrid(
        datasets=("hv15r",),
        algorithms=("1d", "2d"),
        strategies=("random",),
        process_counts=(4, 16),
        block_splits=(16,),
        seeds=(0, 1),
        scale=0.05,
    )


class TestRunConfig:
    def test_hash_is_stable(self):
        a = RunConfig(dataset="hv15r", nprocs=4)
        b = RunConfig(dataset="hv15r", nprocs=4)
        assert a.config_hash() == b.config_hash()
        assert len(a.config_hash()) == 16

    def test_hash_changes_with_every_axis(self):
        base = RunConfig(dataset="hv15r")
        variants = [
            base.with_updates(dataset="queen"),
            base.with_updates(algorithm="2d"),
            base.with_updates(strategy="random"),
            base.with_updates(nprocs=4),
            base.with_updates(block_split=64),
            base.with_updates(seed=7),
            base.with_updates(scale=0.25),
            base.with_updates(layers=2),
            base.with_updates(threads=4),
            base.with_updates(cost_model="laptop"),
            base.with_updates(workload="amg-restriction"),
            base.with_updates(amg_phase="rta"),
            base.with_updates(mis_seed=3),
            base.with_updates(right_algorithm="1d"),
            base.with_updates(workload="bc", bc_sources=8),
            base.with_updates(workload="bc", bc_sources=8, bc_batch=4),
            base.with_updates(workload="bc", bc_sources=8, bc_source_stride=2),
            base.with_updates(workload="bc", bc_sources=8, bc_directed=True),
        ]
        hashes = {base.config_hash()} | {v.config_hash() for v in variants}
        assert len(hashes) == len(variants) + 1

    def test_matrix_file_contents_enter_the_hash(self, tmp_path):
        """Regenerating a --matrix file must invalidate its cached records."""
        import time

        path = tmp_path / "input.mtx"
        path.write_text("%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 1.0\n")
        config = RunConfig(dataset="custom", matrix=str(path))
        first = config.config_hash()
        assert first == config.config_hash()  # stable while the file is untouched
        time.sleep(0.01)
        path.write_text("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 1.0\n")
        assert config.config_hash() != first

    def test_dict_round_trip(self):
        config = RunConfig(dataset="queen", algorithm="3d", layers=4, threads=2)
        assert RunConfig.from_dict(config.as_dict()) == config

    def test_grid_expansion_is_deterministic_and_complete(self):
        grid = _small_grid()
        configs = grid.expand()
        assert len(configs) == len(grid) == 8
        assert configs == grid.expand()
        assert len({c.config_hash() for c in configs}) == 8


class TestRunRecord:
    def test_json_round_trip(self):
        record = execute_config(
            RunConfig(dataset="hv15r", nprocs=4, block_split=16, scale=0.05)
        )
        restored = RunRecord.from_json_line(record.to_json_line())
        assert restored == record

    def test_record_fields_populated(self):
        record = execute_config(
            RunConfig(dataset="hv15r", nprocs=4, block_split=16, scale=0.05)
        )
        assert record.algorithm == "1d-sparsity-aware"
        assert record.communication_volume > 0
        assert record.message_count > 0
        assert record.conserved
        assert record.output_nnz > 0
        assert len(record.per_rank_comm) == 4
        assert record.per_rank_total == pytest.approx(
            [c + p + o for c, p, o in zip(
                record.per_rank_comm, record.per_rank_comp, record.per_rank_other
            )]
        )
        assert record.elapsed_time == pytest.approx(
            record.comm_time + record.comp_time + record.other_time
        )


class TestEngine:
    def test_parallel_equals_serial_bit_identical(self, tmp_path):
        grid = _small_grid()
        serial_store = ResultStore(tmp_path / "serial.jsonl")
        parallel_store = ResultStore(tmp_path / "parallel.jsonl")

        serial = run_grid(grid, workers=0, store=serial_store)
        parallel = run_grid(grid, workers=2, store=parallel_store)

        assert serial.stats.executed == 8
        assert parallel.stats.executed == 8
        assert [r.to_json_line() for r in serial.records] == [
            r.to_json_line() for r in parallel.records
        ]
        # The persisted JSONL files are byte-identical too.
        assert (tmp_path / "serial.jsonl").read_bytes() == (
            tmp_path / "parallel.jsonl"
        ).read_bytes()

    def test_identical_grid_and_seeds_identical_jsonl(self, tmp_path):
        grid = _small_grid()
        for name in ("first.jsonl", "second.jsonl"):
            run_grid(grid, workers=0, store=ResultStore(tmp_path / name))
        assert (tmp_path / "first.jsonl").read_bytes() == (
            tmp_path / "second.jsonl"
        ).read_bytes()

    def test_cache_hit_skips_execution(self, tmp_path):
        grid = _small_grid()
        store = ResultStore(tmp_path / "records.jsonl")
        first = run_grid(grid, workers=0, store=store)
        assert first.stats.cached == 0 and first.stats.executed == 8
        before = (tmp_path / "records.jsonl").read_bytes()

        second = run_grid(grid, workers=0, store=store)
        assert second.stats.cached == 8 and second.stats.executed == 0
        # Nothing re-ran, nothing was appended, records identical.
        assert (tmp_path / "records.jsonl").read_bytes() == before
        assert [r.to_json_line() for r in first.records] == [
            r.to_json_line() for r in second.records
        ]

    def test_partial_store_resumes_only_missing(self, tmp_path):
        configs = _small_grid().expand()
        store = ResultStore(tmp_path / "records.jsonl")
        run_grid(configs[:3], workers=0, store=store)

        result = run_grid(configs, workers=0, store=store)
        assert result.stats.cached == 3
        assert result.stats.executed == 5
        # Grid order is preserved even with cached rows interleaved.
        assert [r.config for r in result.records] == configs

    def test_force_reexecutes(self, tmp_path):
        configs = _small_grid().expand()[:2]
        store = ResultStore(tmp_path / "records.jsonl")
        run_grid(configs, workers=0, store=store)
        forced = run_grid(configs, workers=0, store=store, force=True)
        assert forced.stats.executed == 2
        # Duplicate rows exist; the loaded index keeps the newest.
        assert len(store.load_records()) == 4
        assert len(store.load()) == 2

    def test_records_persist_incrementally(self, tmp_path, monkeypatch):
        """An aborted sweep must keep its finished records (resumability)."""
        import repro.experiments.engine as engine_mod

        configs = _small_grid().expand()[:3]
        store = ResultStore(tmp_path / "records.jsonl")
        calls = {"n": 0}
        real_execute = engine_mod.execute_config

        def flaky(config, **kwargs):
            if calls["n"] == 2:
                raise RuntimeError("simulated crash mid-sweep")
            calls["n"] += 1
            return real_execute(config, **kwargs)

        monkeypatch.setattr(engine_mod, "execute_config", flaky)
        with pytest.raises(RuntimeError):
            run_grid(configs, workers=0, store=store)
        # The two records that finished before the crash were persisted …
        assert len(store.load()) == 2
        monkeypatch.setattr(engine_mod, "execute_config", real_execute)
        # … so the re-run only executes the remainder.
        result = run_grid(configs, workers=0, store=store)
        assert result.stats.cached == 2 and result.stats.executed == 1

    def test_unparseable_store_rows_are_misses(self, tmp_path):
        configs = _small_grid().expand()[:2]
        store = ResultStore(tmp_path / "records.jsonl")
        run_grid(configs, workers=0, store=store)
        # Simulate a torn write and a row from an incompatible schema.
        with store.path.open("a") as fh:
            fh.write('{"config_hash": "deadbeef"}\n')   # missing fields
            fh.write('{"config_hash": "tru\n')          # torn line
        result = run_grid(configs, workers=0, store=store)
        assert result.stats.cached == 2 and result.stats.executed == 0

    def test_no_store_executes_everything(self):
        configs = _small_grid().expand()[:2]
        result = run_grid(configs, workers=0)
        assert result.stats.executed == 2
        assert all(isinstance(r, RunRecord) for r in result.records)

    def test_unknown_cost_model_rejected(self):
        with pytest.raises(ValueError):
            execute_config(RunConfig(dataset="hv15r", cost_model="abacus"))

    def test_override_records_carry_no_cache_key(self):
        """matrix=/cost_model= overrides make the config a lie about what
        ran, so the record must never be servable as a cache hit."""
        from repro.matrices.generators import banded

        config = RunConfig(dataset="hv15r", nprocs=4, block_split=16, scale=0.05)
        A = banded(100, 5, symmetric=True, seed=9)
        overridden = execute_config(config, matrix=A)
        assert overridden.config_hash == ""
        assert overridden.config_hash != config.config_hash()
        genuine = execute_config(config)
        assert genuine.config_hash == config.config_hash()


class TestDatasetDiskCache:
    def test_cache_round_trip_is_exact(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_DATASET_CACHE_DIR", str(tmp_path))
        fresh = load_dataset("hv15r", scale=0.05)
        assert dataset_cache_path("hv15r", 0.05, None).is_file()
        cached = load_dataset("hv15r", scale=0.05)
        assert cached.shape == fresh.shape
        np.testing.assert_array_equal(cached.indptr, fresh.indptr)
        np.testing.assert_array_equal(cached.indices, fresh.indices)
        np.testing.assert_array_equal(cached.data, fresh.data)

    def test_env_toggle_disables_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_DATASET_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv(CACHE_ENV, "0")
        load_dataset("hv15r", scale=0.05)
        assert not any(tmp_path.iterdir())

    def test_use_cache_argument_overrides_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_DATASET_CACHE_DIR", str(tmp_path))
        load_dataset("hv15r", scale=0.05, use_cache=False)
        assert not any(tmp_path.iterdir())

    def test_torn_cache_entry_regenerates(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_DATASET_CACHE_DIR", str(tmp_path))
        path = dataset_cache_path("hv15r", 0.05, None)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"not an npz archive")
        matrix = load_dataset("hv15r", scale=0.05)
        assert matrix.nnz > 0


class TestSquaringRegressions:
    """Regression tests for the driver bugs fixed with this engine."""

    def test_outer_product_honours_partition(self):
        from repro.apps.squaring import run_squaring
        from repro.matrices.generators import community_graph
        from repro.sparse import local_spgemm

        A = community_graph(200, 5, 10, shuffle=True, seed=2)
        ref = local_spgemm(A, A)
        none_run = run_squaring(A, algorithm="outer-product", strategy="none", nprocs=4)
        metis_run = run_squaring(
            A, algorithm="outer-product", strategy="metis", nprocs=4, seed=0,
            verify_against=ref,
        )
        # Before the fix the metis partition was silently ignored, so both
        # strategies produced identical communication.
        assert (
            metis_run.result.communication_volume
            != none_run.result.communication_volume
        )

    def test_improved_block_row_honours_partition(self):
        from repro.apps.squaring import run_squaring
        from repro.matrices.generators import community_graph
        from repro.sparse import local_spgemm

        A = community_graph(200, 5, 10, shuffle=True, seed=2)
        ref = local_spgemm(A, A)
        none_run = run_squaring(
            A, algorithm="1d-improved-block-row", strategy="none", nprocs=4
        )
        metis_run = run_squaring(
            A, algorithm="1d-improved-block-row", strategy="metis", nprocs=4, seed=0,
            verify_against=ref,
        )
        assert (
            metis_run.result.communication_volume
            != none_run.result.communication_volume
        )

    def test_block_row_partition_result_correct(self):
        from repro.apps.squaring import run_squaring
        from repro.matrices.generators import community_graph
        from repro.sparse import local_spgemm

        A = community_graph(150, 4, 8, shuffle=True, seed=5)
        ref = local_spgemm(A, A)
        for algorithm in ("1d-naive-block-row", "1d-improved-block-row"):
            run_squaring(
                A, algorithm=algorithm, strategy="metis", nprocs=4, seed=0,
                verify_against=ref,
            )

    def test_permutation_cost_is_modelled_and_deterministic(self):
        from repro.apps.squaring import run_squaring
        from repro.matrices.generators import banded

        A = banded(150, 6, symmetric=True, seed=1)
        first = run_squaring(A, algorithm="1d", strategy="random", nprocs=4, seed=0)
        second = run_squaring(A, algorithm="1d", strategy="random", nprocs=4, seed=0)
        # Deterministic: beta · bytes, no wall-clock mixed in.
        assert first.permutation_seconds == second.permutation_seconds
        assert first.permutation_seconds == pytest.approx(
            PERLMUTTER.beta * first.permutation_bytes
        )
        # Measured wall-clock lives in its own field.
        assert first.permutation_wall_seconds >= 0.0
        assert first.total_time_with_permutation == pytest.approx(
            first.spgemm_time + first.permutation_seconds
        )

    def test_config_sweep_rows_have_no_private_keys(self):
        from repro.analysis import config_sweep
        from repro.matrices.generators import banded

        A = banded(150, 6, symmetric=True, seed=3)
        points = config_sweep(A, total_cores=16, min_processes=4)
        assert points
        for point in points:
            assert point.processes * point.threads == 16
            assert point.elapsed_time >= 0
            row = point.as_row()
            assert not any(key.startswith("_") for key in row)

"""Conservation invariant and batched-accounting tests.

The simulated ledger *is* the experiment: the paper's headline claims are
communication-volume and message-count comparisons, so every byte charged as
sent must be charged as received by some other rank.  These tests pin that
invariant for every collective, for the batched primitives (which must be
byte-for-byte identical to their looped equivalents), and for all the
distributed algorithms end to end.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import (
    ImprovedBlockRow1D,
    NaiveBlockRow1D,
    OuterProduct1D,
    SparseSUMMA2D,
    SparsityAware1D,
    SplitSpGEMM3D,
    estimate_communication,
    plan_block_fetch,
    plan_block_fetch_all,
)
from repro.matrices.generators import banded, community_graph
from repro.runtime import PhaseLedger, SimulatedCluster, binomial_send_counts


def _phase_balance(cluster, phase="default"):
    stats = cluster.ledger.phases.get(phase, [])
    sent = sum(st.bytes_sent for st in stats)
    received = sum(st.bytes_received for st in stats)
    messages = sum(st.messages_sent for st in stats)
    return sent, received, messages


PAYLOAD = np.arange(125, dtype=np.float64)  # 1000 bytes


def _do_send(cl):
    cl.comm.send(PAYLOAD, src=0, dst=cl.nprocs - 1)
    return 1 if cl.nprocs > 1 else 0


def _do_bcast(cl):
    cl.comm.bcast(PAYLOAD, root=1 if cl.nprocs > 1 else 0)
    return cl.nprocs - 1


def _do_allgather(cl):
    cl.comm.allgather({r: PAYLOAD for r in range(cl.nprocs)})
    return cl.nprocs * (cl.nprocs - 1)


def _do_gather(cl):
    cl.comm.gather({r: PAYLOAD for r in range(cl.nprocs)}, root=0)
    return cl.nprocs - 1


def _do_alltoallv(cl):
    buffers = {
        src: {dst: PAYLOAD for dst in range(cl.nprocs) if dst != src}
        for src in range(cl.nprocs)
    }
    cl.comm.alltoallv(buffers)
    return cl.nprocs * (cl.nprocs - 1)


def _do_allreduce(cl):
    cl.comm.allreduce_scalar({r: float(r) for r in range(cl.nprocs)})
    return 2 * (cl.nprocs - 1)


COLLECTIVES = {
    "send": _do_send,
    "bcast": _do_bcast,
    "allgather": _do_allgather,
    "gather": _do_gather,
    "alltoallv": _do_alltoallv,
    "allreduce_scalar": _do_allreduce,
}


class TestCollectiveConservation:
    @pytest.mark.parametrize("name", sorted(COLLECTIVES))
    @pytest.mark.parametrize("nprocs", [1, 2, 3, 5, 8, 16])
    def test_group_bytes_conserved_and_message_count_sane(self, name, nprocs):
        cl = SimulatedCluster(nprocs)
        expected_messages = COLLECTIVES[name](cl)
        sent, received, messages = _phase_balance(cl)
        assert sent == received, f"{name}: sent {sent} != received {received}"
        assert messages == expected_messages
        cl.ledger.assert_conserved()

    @pytest.mark.parametrize("g", [2, 3, 4, 7, 8, 16, 33])
    def test_bcast_moves_exactly_g_minus_1_payloads(self, g):
        """Regression: the root used to be charged ``rounds`` full payloads
        *and* every non-root another send, inflating the 2D/3D baselines."""
        cl = SimulatedCluster(g)
        cl.comm.bcast(PAYLOAD, root=0)
        sent, received, messages = _phase_balance(cl)
        assert sent == (g - 1) * PAYLOAD.nbytes
        assert received == (g - 1) * PAYLOAD.nbytes
        assert messages == g - 1

    def test_bcast_root_not_necessarily_first_in_group(self):
        cl = SimulatedCluster(8)
        ranks = [6, 2, 4, 7]
        cl.comm.bcast(PAYLOAD, root=4, ranks=ranks)
        sent, received, _ = _phase_balance(cl)
        assert sent == received == (len(ranks) - 1) * PAYLOAD.nbytes
        # The root receives nothing; every other member receives once.
        assert cl.stats(4).bytes_received == 0
        for r in (6, 2, 7):
            assert cl.stats(r).bytes_received == PAYLOAD.nbytes

    def test_binomial_send_counts_sum_to_g_minus_1(self):
        for g in (1, 2, 3, 5, 8, 13, 64, 100):
            counts = binomial_send_counts(g)
            assert int(counts.sum()) == g - 1
            rounds = math.ceil(math.log2(g)) if g > 1 else 0
            assert int(counts[0]) == rounds  # the root sends every round

    def test_gather_subtree_volume(self):
        """Binomial gather: each non-root sends its accumulated subtree once."""
        g = 8
        cl = SimulatedCluster(g)
        cl.comm.gather({r: PAYLOAD for r in range(g)}, root=0)
        sent, received, messages = _phase_balance(cl)
        assert messages == g - 1
        # For a power-of-two group with uniform sizes, the per-position
        # subtree sizes are 1,1,2,1,2,2... summing over the non-root
        # positions gives b · Σ depth-weighted subtree sizes == 12·b for g=8.
        assert sent == received == 12 * PAYLOAD.nbytes

    def test_conservation_check_rejects_cooked_books(self):
        ledger = PhaseLedger(nprocs=2)
        ledger.rank("p", 0).bytes_sent += 100
        assert not ledger.is_conserved()
        with pytest.raises(AssertionError, match="conservation"):
            ledger.assert_conserved()
        ledger.rank("p", 1).bytes_received += 100
        ledger.assert_conserved()


class TestBatchedPrimitives:
    def test_bcast_many_matches_looped_bcast(self):
        items = [
            (np.zeros(10), 0, [0, 1, 2, 3]),
            (np.zeros(77), 5, [4, 5, 6]),
            (np.zeros(3), 7, [7]),
        ]
        looped = SimulatedCluster(8)
        for payload, root, ranks in items:
            looped.comm.bcast(payload, root=root, ranks=ranks)
        batched = SimulatedCluster(8)
        results = batched.comm.bcast_many(items)
        assert [set(r) for r in results] == [{0, 1, 2, 3}, {4, 5, 6}, {7}]
        for r in range(8):
            a, b = looped.stats(r), batched.stats(r)
            assert a.bytes_sent == b.bytes_sent
            assert a.bytes_received == b.bytes_received
            assert a.messages_sent == b.messages_sent
            assert a.comm_time == pytest.approx(b.comm_time)
            assert a.other_time == pytest.approx(b.other_time)

    def test_send_many_matches_looped_send(self):
        sends = [(0, 1, 64), (2, 3, 128), (3, 0, 8), (1, 1, 999)]  # incl. self-send
        looped = SimulatedCluster(4)
        for src, dst, size in sends:
            looped.comm.send(np.zeros(size // 8), src=src, dst=dst)
        batched = SimulatedCluster(4)
        batched.comm.send_many(
            [s for s, _, _ in sends],
            [d for _, d, _ in sends],
            [n for _, _, n in sends],
        )
        for r in range(4):
            a, b = looped.stats(r), batched.stats(r)
            assert a.bytes_sent == b.bytes_sent
            assert a.bytes_received == b.bytes_received
            assert a.messages_sent == b.messages_sent
            assert a.comm_time == pytest.approx(b.comm_time)

    def test_alltoallv_sizes_matches_alltoallv(self):
        buffers = {0: {1: np.zeros(8), 2: np.zeros(4)}, 1: {2: np.zeros(16)}, 2: {}}
        through_payloads = SimulatedCluster(3)
        through_payloads.comm.alltoallv(buffers)
        through_sizes = SimulatedCluster(3)
        through_sizes.comm.alltoallv_sizes([0, 0, 1], [1, 2, 2], [64, 32, 128])
        for r in range(3):
            a, b = through_payloads.stats(r), through_sizes.stats(r)
            assert a.bytes_sent == b.bytes_sent
            assert a.bytes_received == b.bytes_received
            assert a.messages_sent == b.messages_sent

    def test_alltoallv_sizes_rejects_self_messages(self):
        cl = SimulatedCluster(2)
        with pytest.raises(AssertionError):
            cl.comm.alltoallv_sizes([0], [0], [8])

    def test_ledger_charge_bulk_aggregates_repeated_ranks(self):
        ledger = PhaseLedger(nprocs=4)
        ledger.charge_bulk(
            "p",
            [1, 1, 3],
            messages=1,
            bytes_sent=[10, 20, 30],
            comm_seconds=[0.5, 0.25, 1.0],
        )
        assert ledger.rank("p", 1).bytes_sent == 30
        assert ledger.rank("p", 1).messages_sent == 2
        assert ledger.rank("p", 1).comm_time == pytest.approx(0.75)
        assert ledger.rank("p", 3).bytes_sent == 30
        assert ledger.rank("p", 0).bytes_sent == 0

    def test_ledger_charge_bulk_rejects_bad_rank(self):
        ledger = PhaseLedger(nprocs=2)
        with pytest.raises(IndexError):
            ledger.charge_bulk("p", [5], bytes_sent=[1])

    def test_plan_block_fetch_all_matches_per_target_planning(self):
        rng = np.random.default_rng(11)
        hit = rng.random(200) < 0.3
        targets = [
            np.sort(rng.choice(200, size=n, replace=False)).astype(np.int64)
            for n in (0, 7, 31, 64)
        ]
        plans = plan_block_fetch_all(targets, hit, K=5)
        assert plans[0] is None
        for cols, plan in zip(targets[1:], plans[1:]):
            ref = plan_block_fetch(cols, hit, K=5)
            assert plan.intervals == ref.intervals
            np.testing.assert_array_equal(plan.required_positions, ref.required_positions)
            np.testing.assert_array_equal(plan.covered_positions, ref.covered_positions)


ALGORITHMS = {
    "1d-sparsity-aware": lambda: SparsityAware1D(block_split=16),
    "2d-summa": SparseSUMMA2D,
    "3d-split": lambda: SplitSpGEMM3D(layers=4),
    "1d-naive-block-row": NaiveBlockRow1D,
    "1d-improved-block-row": ImprovedBlockRow1D,
    "1d-outer-product": OuterProduct1D,
}


class TestAlgorithmLedgerConservation:
    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_every_phase_balances(self, name):
        A = community_graph(240, 8, 12, mixing=0.1, shuffle=True, seed=7)
        cluster = SimulatedCluster(16)
        ALGORITHMS[name]().multiply(A, A, cluster)
        cluster.ledger.assert_conserved()
        report = cluster.ledger.conservation_report()
        assert all(row["imbalance"] == 0 for row in report.values())
        # The run actually moved data (the invariant is not vacuous).
        assert sum(row["bytes_received"] for row in report.values()) > 0


class TestSparsityAware1DBookkeeping:
    def test_compact_false_honoured_on_local_columns(self):
        """The compaction ablation must not compact the ``target == rank``
        path: with ``compact=False`` whole selected blocks are kept, so the
        uncompacted Ã can only be larger."""
        A = banded(200, 10, symmetric=True, seed=3)
        n_compact = (
            SparsityAware1D(block_split=4, compact=True)
            .multiply(A, A, SimulatedCluster(4))
            .C.nnz
        )
        res_loose = SparsityAware1D(block_split=4, compact=False).multiply(
            A, A, SimulatedCluster(4)
        )
        # Same numeric result either way …
        np.testing.assert_allclose(
            res_loose.C.to_dense(),
            SparsityAware1D(block_split=4, compact=True)
            .multiply(A, A, SimulatedCluster(4))
            .C.to_dense(),
        )
        assert res_loose.C.nnz == n_compact

    def test_cv_mema_definition_matches_estimator(self):
        """Executed CV/memA must equal the symbolic prediction byte-for-byte
        (one shared definition: nnz · BYTES_PER_ENTRY)."""
        A = community_graph(300, 10, 10, mixing=0.08, shuffle=True, seed=9)
        est = estimate_communication(A, nprocs=8, block_split=32)
        cluster = SimulatedCluster(8)
        result = SparsityAware1D(block_split=32).multiply(A, A, cluster)
        assert int(result.info["fetch_bytes"]) == est.total_bytes
        assert result.info["cv_over_memA"] == pytest.approx(est.cv_over_mema)
        # And the ledger's fetch phase agrees with both.
        fetch_received = sum(
            st.bytes_received for st in cluster.ledger.phases["fetch"]
        )
        assert fetch_received == est.total_bytes

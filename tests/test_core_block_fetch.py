"""Unit tests for the block-fetch strategy (Algorithm 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import plan_block_fetch, split_into_groups


class TestSplitIntoGroups:
    def test_even_split(self):
        groups = split_into_groups(10, 5)
        assert groups == [(0, 2), (2, 4), (4, 6), (6, 8), (8, 10)]

    def test_uneven_split_front_loads_extra(self):
        groups = split_into_groups(10, 3)
        assert groups == [(0, 4), (4, 7), (7, 10)]

    def test_more_groups_than_columns(self):
        groups = split_into_groups(3, 10)
        assert groups == [(0, 1), (1, 2), (2, 3)]

    def test_zero_columns(self):
        assert split_into_groups(0, 4) == []

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            split_into_groups(5, 0)

    def test_groups_cover_everything_exactly_once(self):
        for n, k in [(17, 4), (100, 7), (5, 5), (1, 3)]:
            groups = split_into_groups(n, k)
            covered = np.concatenate([np.arange(s, e) for s, e in groups])
            np.testing.assert_array_equal(covered, np.arange(n))


class TestPlanBlockFetch:
    def test_paper_example(self):
        """The worked example of Fig. 1: H0 = [1,0,1,1,0,1,0,0], p1 owns cols 4-7.

        p1's nonzero columns are 4..7 split into K=2 groups {4,5} and {6,7};
        H0(4:7) = [0,1,0,0] hits column 5, so only the first group is fetched
        even though column 4 is not needed.
        """
        remote_cols = np.array([4, 5, 6, 7])
        hit = np.array([1, 0, 1, 1, 0, 1, 0, 0], dtype=bool)
        plan = plan_block_fetch(remote_cols, hit, K=2)
        assert plan.M == 1
        assert plan.intervals == [(0, 2)]
        np.testing.assert_array_equal(plan.required_positions, [1])  # column 5
        assert plan.fetched_columns == 2
        assert plan.wasted_columns == 1

    def test_messages_bounded_by_k(self):
        rng = np.random.default_rng(0)
        remote_cols = np.arange(1000)
        hit = rng.random(1000) < 0.5
        for K in (1, 4, 16, 64):
            plan = plan_block_fetch(remote_cols, hit, K=K)
            assert plan.M <= K

    def test_per_column_fetch_when_k_large(self):
        remote_cols = np.array([2, 5, 9])
        hit = np.zeros(10, dtype=bool)
        hit[[5, 9]] = True
        plan = plan_block_fetch(remote_cols, hit, K=1000)
        assert plan.M == 2          # one message per needed column
        assert plan.wasted_columns == 0

    def test_whole_matrix_fetch_when_k_is_one(self):
        remote_cols = np.arange(10)
        hit = np.zeros(10, dtype=bool)
        hit[3] = True
        plan = plan_block_fetch(remote_cols, hit, K=1)
        assert plan.M == 1
        assert plan.fetched_columns == 10
        assert plan.wasted_columns == 9

    def test_no_hits_no_messages(self):
        plan = plan_block_fetch(np.arange(10), np.zeros(10, dtype=bool), K=4)
        assert plan.M == 0
        assert plan.fetched_columns == 0

    def test_all_hits_fetch_everything(self):
        plan = plan_block_fetch(np.arange(12), np.ones(12, dtype=bool), K=4)
        assert plan.M == 4
        assert plan.fetched_columns == 12
        assert plan.wasted_columns == 0

    def test_empty_remote_columns(self):
        plan = plan_block_fetch(np.zeros(0, dtype=np.int64), np.ones(5, dtype=bool), K=4)
        assert plan.M == 0

    def test_covered_always_superset_of_required(self):
        rng = np.random.default_rng(1)
        for trial in range(20):
            ncols = int(rng.integers(1, 60))
            remote = np.sort(rng.choice(200, size=ncols, replace=False))
            hit = rng.random(200) < 0.3
            plan = plan_block_fetch(remote, hit, K=int(rng.integers(1, 10)))
            assert np.all(np.isin(plan.required_positions, plan.covered_positions))

    def test_hit_mask_too_short_raises(self):
        with pytest.raises(ValueError):
            plan_block_fetch(np.array([10]), np.zeros(5, dtype=bool), K=2)

    def test_smaller_k_means_fewer_messages_more_waste(self):
        rng = np.random.default_rng(2)
        remote = np.arange(500)
        hit = rng.random(500) < 0.2
        plan_small_k = plan_block_fetch(remote, hit, K=4)
        plan_large_k = plan_block_fetch(remote, hit, K=400)
        assert plan_small_k.M <= plan_large_k.M
        assert plan_small_k.fetched_columns >= plan_large_k.fetched_columns

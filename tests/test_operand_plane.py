"""Operand-plane integration: shm transport, affinity residency, env plumbing.

Pins the PR's tentpole guarantees end to end:

* a published matrix rehydrates in another process as zero-copy,
  read-only views that are value-identical to the original;
* refs pickle by reference (a few hundred bytes, never the payload);
* the parent owns segment lifecycle — ``close()`` unlinks everything;
* a 2-worker sweep records residency hits, steals work off a hot
  affinity worker, and still writes a store byte-identical to serial;
* ``REPRO_DATASET_CACHE{,_DIR}`` reach pool workers.
"""

from __future__ import annotations

import multiprocessing
import pickle

import numpy as np
import pytest

from repro.experiments import RunConfig, run_grid
from repro.experiments.scheduler import Scheduler
from repro.matrices import DatasetTransport
from repro.matrices.transport import (
    offer_shared_dataset,
    reset_worker_state,
    shared_dataset,
    worker_transport_stats,
)

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


@pytest.fixture(autouse=True)
def _clean_worker_state():
    reset_worker_state()
    yield
    reset_worker_state()


def _grid(datasets=("queen", "stokes"), scale=0.2):
    return [
        RunConfig(
            dataset=dataset,
            algorithm=algorithm,
            strategy=strategy,
            nprocs=16,
            block_split=32,
            scale=scale,
        )
        for dataset in datasets
        for algorithm, strategy in (("1d", "none"), ("2d", "random"), ("3d", "random"))
    ]


class TestTransport:
    def test_materialise_is_value_identical_and_readonly(self, small_square):
        with DatasetTransport() as transport:
            ref = transport.publish(("m", 1.0), small_square)
            matrix = ref.materialise()
            assert matrix.shape == small_square.shape
            assert np.array_equal(matrix.indptr, small_square.indptr)
            assert np.array_equal(matrix.indices, small_square.indices)
            assert np.array_equal(matrix.data, small_square.data)
            # Zero-copy views over the segment, never private copies.
            for view in (matrix.indptr, matrix.indices, matrix.data):
                assert not view.flags.owndata
                assert not view.flags.writeable
            with pytest.raises(ValueError):
                matrix.data[0] = 99.0

    def test_publish_is_idempotent_per_key(self, small_square):
        with DatasetTransport() as transport:
            ref1 = transport.publish(("m", 1.0), small_square)
            ref2 = transport.publish(("m", 1.0), small_square)
            assert ref1 is ref2
            assert transport.stats()["datasets_published"] == 1
            assert len(transport.segment_names()) == 1

    def test_ref_pickles_by_reference(self, small_square):
        with DatasetTransport() as transport:
            ref = transport.publish(("m", 1.0), small_square)
            payload = pickle.dumps(ref)
            assert len(payload) < 1024  # metadata only, no matrix bytes
            clone = pickle.loads(payload)
            assert clone == ref
            matrix = clone.materialise()
            assert np.array_equal(matrix.data, small_square.data)

    def test_close_unlinks_every_segment(self, small_square):
        from multiprocessing import shared_memory

        transport = DatasetTransport()
        transport.publish(("a", 1.0), small_square)
        transport.publish(("b", 1.0), small_square)
        names = transport.segment_names()
        assert len(names) == 2
        # Detach this process's attachments so unlink is truly final.
        reset_worker_state()
        transport.close()
        assert transport.closed
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_worker_registry_offer_and_lookup(self, small_square):
        with DatasetTransport() as transport:
            ref = transport.publish(("queen", 0.5), small_square)
            assert shared_dataset(("queen", 0.5)) is None
            offer_shared_dataset(("queen", 0.5), ref)
            assert shared_dataset(("queen", 0.5)) == ref
            shared_dataset(("queen", 0.5)).materialise()
            stats = worker_transport_stats()
            assert stats["attached_segments"] == 1
            assert stats["materialised"] == 1

    @pytest.mark.skipif(not HAS_FORK, reason="needs the fork start method")
    def test_materialise_roundtrip_through_fork(self, small_square):
        ctx = multiprocessing.get_context("fork")
        with DatasetTransport() as transport:
            ref = transport.publish(("m", 1.0), small_square)
            queue = ctx.SimpleQueue()
            proc = ctx.Process(
                target=_fork_child_check,
                args=(ref, small_square.indptr, small_square.indices,
                      small_square.data, queue),
            )
            proc.start()
            result = queue.get()
            proc.join(timeout=30)
            assert result == "ok", result


def _fork_child_check(ref, indptr, indices, data, queue):
    try:
        matrix = ref.materialise()
        assert np.array_equal(matrix.indptr, indptr)
        assert np.array_equal(matrix.indices, indices)
        assert np.array_equal(matrix.data, data)
        assert not matrix.data.flags.writeable
        queue.put("ok")
    except BaseException as exc:  # pragma: no cover - diagnostic path
        queue.put(f"{type(exc).__name__}: {exc}")


class TestPoolResidency:
    def test_resident_pass_hits_and_store_stays_byte_identical(self, tmp_path):
        configs = _grid()
        serial_store = tmp_path / "serial.jsonl"
        pool_store = tmp_path / "pool.jsonl"
        run_grid(configs, workers=0, store=str(serial_store), force=True)

        scheduler = Scheduler(workers=2, store=str(pool_store))
        try:
            scheduler.submit(configs, force=True).wait()
            scheduler.submit(configs, force=True).wait()  # resident pass
            residency = scheduler.residency_stats()
        finally:
            scheduler.shutdown()
        assert residency["hits"] > 0
        assert residency["datasets_published"] == 2
        assert residency["workers_reporting"] == 2
        serial_bytes = serial_store.read_bytes()
        # Cold pass byte-identical to serial; the forced resident pass
        # appends the exact same records once more.
        assert pool_store.read_bytes() == serial_bytes + serial_bytes

    def test_shutdown_unlinks_transport_segments(self, tmp_path):
        from multiprocessing import shared_memory

        scheduler = Scheduler(workers=2, store=str(tmp_path / "s.jsonl"))
        try:
            scheduler.submit(_grid(datasets=("queen",)), force=True).wait()
            names = (
                scheduler._transport.segment_names()
                if scheduler._transport is not None else []
            )
        finally:
            scheduler.shutdown()
        assert names  # the transport actually published something
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_idle_worker_steals_from_hot_affinity_worker(self):
        # Every config shares one (dataset, scale, nprocs) affinity key,
        # so without stealing one worker would serialise the whole grid.
        scheduler = Scheduler(workers=2)
        try:
            records = scheduler.submit(_grid(datasets=("queen",)), force=True).wait()
            stolen = scheduler.residency_stats()["stolen"]
            reporting = scheduler.residency_stats()["workers_reporting"]
        finally:
            scheduler.shutdown()
        assert len(records) == 3
        assert stolen >= 1
        assert reporting == 2

    def test_transport_disabled_still_byte_identical(self, tmp_path):
        configs = _grid(datasets=("queen",))
        serial_store = tmp_path / "serial.jsonl"
        pool_store = tmp_path / "pool.jsonl"
        run_grid(configs, workers=0, store=str(serial_store), force=True)
        scheduler = Scheduler(workers=2, store=str(pool_store), transport=False)
        try:
            scheduler.submit(configs, force=True).wait()
            residency = scheduler.residency_stats()
        finally:
            scheduler.shutdown()
        assert residency["datasets_published"] == 0
        assert pool_store.read_bytes() == serial_store.read_bytes()

    def test_run_grid_surfaces_residency_counters(self, tmp_path):
        result = run_grid(
            _grid(datasets=("queen",)),
            workers=2,
            store=str(tmp_path / "s.jsonl"),
            force=True,
        )
        stats = result.stats
        assert stats.residency_hits + stats.residency_misses > 0
        summary = result.summary()
        assert "residency" in summary


class TestEnvPropagation:
    def test_dataset_cache_env_reaches_pool_workers(self, tmp_path, monkeypatch):
        cache_dir = tmp_path / "npz-cache"
        monkeypatch.setenv("REPRO_DATASET_CACHE", "1")
        monkeypatch.setenv("REPRO_DATASET_CACHE_DIR", str(cache_dir))
        # Transport off: workers must fall back to load_dataset and find
        # the npz cache the parent's prewarm populated.
        scheduler = Scheduler(workers=2, transport=False)
        try:
            scheduler.submit(_grid(datasets=("queen",)), force=True).wait()
            residency = scheduler.residency_stats()
        finally:
            scheduler.shutdown()
        assert list(cache_dir.glob("*.npz"))
        assert residency["disk_hits"] > 0

"""Setuptools entry point.

A plain ``setup.py`` is kept alongside ``pyproject.toml`` so that
``pip install -e .`` works in fully offline environments where the ``wheel``
package (needed for PEP 517 editable installs) may not be available — pip
falls back to the legacy ``setup.py develop`` path in that case.
"""

from setuptools import setup

setup()

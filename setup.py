"""Setuptools entry point.

A plain ``setup.py`` is kept so that ``pip install -e .`` works in fully
offline environments where the ``wheel`` package (needed for PEP 517
editable installs) may not be available — pip falls back to the legacy
``setup.py develop`` path in that case.

Extras
------
``fast``
    Pulls in :mod:`numba` so ``REPRO_KERNEL=auto`` (the default) can select
    the jitted local-SpGEMM kernels.  Everything works without it — the
    selector degrades to the vectorised numpy kernels, which produce
    bit-identical results (see ``docs/kernels.md``).
"""

from setuptools import find_packages, setup

setup(
    name="repro-spgemm",
    version="0.8.0",
    description=(
        "Reproduction of sparsity-aware distributed-memory SpGEMM: "
        "modelled communication counters, simulated and shm backends, "
        "and a cached experiment engine"
    ),
    packages=find_packages(where="src"),
    package_dir={"": "src"},
    python_requires=">=3.10",
    install_requires=[
        "numpy>=1.24",
        "scipy>=1.10",
    ],
    extras_require={
        # Optional jitted kernels; results are bit-identical with or
        # without it, only host wall-clock changes.
        "fast": ["numba>=0.59"],
    },
)

"""Boundary refinement of a k-way partition (KL/FM style).

After projecting a coarse partition to a finer graph, the partition is
improved by moving boundary vertices to the neighbouring part with the best
*gain* (reduction in edge cut) subject to a balance constraint on the total
vertex weight per part — the greedy k-way refinement used in METIS
(Karypis & Kumar).  A bounded number of passes keeps the cost linear-ish in
the number of boundary vertices.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .graph import AdjacencyGraph

__all__ = ["greedy_kway_refine", "partition_weights", "is_balanced"]

_INDEX_DTYPE = np.int64


def partition_weights(graph: AdjacencyGraph, parts: np.ndarray, nparts: int) -> np.ndarray:
    """Total vertex weight in each part."""
    out = np.zeros(nparts, dtype=np.float64)
    np.add.at(out, parts, graph.vwgt.astype(np.float64))
    return out


def is_balanced(
    graph: AdjacencyGraph, parts: np.ndarray, nparts: int, imbalance: float
) -> bool:
    """True if every part's weight is within ``(1 + imbalance) · mean``."""
    w = partition_weights(graph, parts, nparts)
    limit = (1.0 + imbalance) * graph.total_vertex_weight() / nparts
    return bool(np.all(w <= limit + 1e-9))


def _external_internal_degrees(
    graph: AdjacencyGraph, parts: np.ndarray, nparts: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-vertex (connectivity-to-each-part, own-part-internal-degree).

    Returns a dense ``n × nparts`` connectivity matrix (edge weight from each
    vertex to each part) — acceptable because refinement is run on graphs
    whose size is bounded by the coarsening schedule — plus the internal
    degree extracted from it.
    """
    n = graph.nvertices
    conn = np.zeros((n, nparts), dtype=np.float64)
    src = np.repeat(np.arange(n, dtype=_INDEX_DTYPE), np.diff(graph.xadj))
    np.add.at(conn, (src, parts[graph.adjncy]), graph.adjwgt.astype(np.float64))
    internal = conn[np.arange(n), parts]
    return conn, internal


def greedy_kway_refine(
    graph: AdjacencyGraph,
    parts: np.ndarray,
    nparts: int,
    *,
    imbalance: float = 0.05,
    max_passes: int = 8,
    seed: int = 0,
) -> np.ndarray:
    """Greedy boundary refinement; returns an improved copy of ``parts``.

    Each pass visits boundary vertices in random order and moves a vertex to
    the adjacent part with the largest positive gain provided the move keeps
    the destination part under the balance limit and does not empty the
    source part.  Passes stop early when no move was made.
    """
    parts = np.asarray(parts, dtype=_INDEX_DTYPE).copy()
    if parts.shape[0] != graph.nvertices:
        raise ValueError("parts must have one entry per vertex")
    if graph.nvertices == 0:
        return parts
    rng = np.random.default_rng(seed)
    total_w = graph.total_vertex_weight()
    limit = (1.0 + imbalance) * total_w / nparts
    part_w = partition_weights(graph, parts, nparts)
    part_count = np.bincount(parts, minlength=nparts).astype(np.int64)

    for _ in range(max_passes):
        conn, internal = _external_internal_degrees(graph, parts, nparts)
        # Boundary vertices: any connectivity to a part other than their own.
        external_total = conn.sum(axis=1) - internal
        boundary = np.nonzero(external_total > 0)[0]
        if boundary.size == 0:
            break
        moved = 0
        for v in rng.permutation(boundary):
            v = int(v)
            src = int(parts[v])
            if part_count[src] <= 1:
                continue
            # Best destination by gain = conn[v, dst] - conn[v, src].
            gains = conn[v] - conn[v, src]
            gains[src] = -np.inf
            dst = int(np.argmax(gains))
            gain = gains[dst]
            if gain <= 0:
                continue
            if part_w[dst] + graph.vwgt[v] > limit:
                continue
            # Apply the move and update the incremental state.
            parts[v] = dst
            part_w[src] -= graph.vwgt[v]
            part_w[dst] += graph.vwgt[v]
            part_count[src] -= 1
            part_count[dst] += 1
            neigh, wgt = graph.neighbours(v)
            conn[neigh, src] -= wgt
            conn[neigh, dst] += wgt
            moved += 1
        if moved == 0:
            break
    return parts

"""Orderings and partitioners: random permutation, METIS-like multilevel, hypergraph."""

from .random_perm import (
    apply_symmetric_permutation,
    invert_permutation,
    random_symmetric_permutation,
)
from .weights import (
    balance_ratio,
    degree_vertex_weights,
    spgemm_vertex_weights,
    squaring_vertex_weights,
)
from .graph import AdjacencyGraph
from .coarsen import CoarseningLevel, coarsen_graph, coarsen_to_size, heavy_edge_matching
from .refine import greedy_kway_refine, is_balanced, partition_weights
from .metis_like import PartitionResult, partition_graph, partition_matrix
from .hypergraph import (
    ColumnNetHypergraph,
    connectivity_cut,
    greedy_hypergraph_partition,
)
from .ordering import (
    Ordering,
    apply_ordering,
    identity_ordering,
    ordering_from_partition,
    rcm_ordering,
)

__all__ = [
    "apply_symmetric_permutation",
    "invert_permutation",
    "random_symmetric_permutation",
    "balance_ratio",
    "degree_vertex_weights",
    "spgemm_vertex_weights",
    "squaring_vertex_weights",
    "AdjacencyGraph",
    "CoarseningLevel",
    "coarsen_graph",
    "coarsen_to_size",
    "heavy_edge_matching",
    "greedy_kway_refine",
    "is_balanced",
    "partition_weights",
    "PartitionResult",
    "partition_graph",
    "partition_matrix",
    "ColumnNetHypergraph",
    "connectivity_cut",
    "greedy_hypergraph_partition",
    "Ordering",
    "apply_ordering",
    "identity_ordering",
    "ordering_from_partition",
    "rcm_ordering",
]

"""Random symmetric permutation.

The standard load-balancing preprocessing of sparsity-oblivious 2D/3D
SpGEMM: relabel the vertices uniformly at random, i.e. compute
``P·C·Pᵀ = (P·A·Pᵀ)(P·B·Pᵀ)`` for a random permutation matrix ``P``
(paper §II-B-1).  The paper's point is that this *destroys* the clustering
a sparsity-aware 1D algorithm exploits — random permutation is therefore the
worst choice for Algorithm 1 but (often) the right choice for 2D/3D SUMMA.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..sparse import CSCMatrix, as_csc

__all__ = ["random_symmetric_permutation", "apply_symmetric_permutation", "invert_permutation"]


def random_symmetric_permutation(n: int, seed: Optional[int] = None) -> np.ndarray:
    """Return a random permutation vector ``perm`` of length ``n``.

    ``perm[new_index] = old_index``: the matrix row/column that lands at
    position ``new_index`` after the relabelling.
    """
    rng = np.random.default_rng(seed)
    return rng.permutation(n).astype(np.int64)


def invert_permutation(perm: np.ndarray) -> np.ndarray:
    """Inverse permutation: ``inv[old_index] = new_index``."""
    perm = np.asarray(perm, dtype=np.int64)
    inv = np.empty_like(perm)
    inv[perm] = np.arange(perm.shape[0], dtype=np.int64)
    return inv


def apply_symmetric_permutation(A, perm: np.ndarray) -> CSCMatrix:
    """Apply the same permutation to rows and columns: ``P·A·Pᵀ``.

    ``perm[new] = old`` as produced by :func:`random_symmetric_permutation`
    or by the partition-based orderings in :mod:`repro.partition.ordering`.
    Requires a square matrix (the relabelling view of a graph).
    """
    A = as_csc(A)
    if A.nrows != A.ncols:
        raise ValueError("symmetric permutation requires a square matrix")
    perm = np.asarray(perm, dtype=np.int64)
    if perm.shape[0] != A.nrows:
        raise ValueError("permutation length must equal the matrix dimension")
    return A.permute(row_perm=perm, col_perm=perm)

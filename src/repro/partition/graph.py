"""Lightweight undirected-graph representation used by the partitioner.

The multilevel partitioner works on a CSR-like adjacency structure with
integer vertex weights and integer edge weights, which is exactly the input
format METIS consumes.  Construction from a sparse matrix takes the pattern
of ``A`` (symmetrised if necessary) and drops the diagonal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..sparse import as_csc
from ..sparse.ops import symmetrize_pattern

__all__ = ["AdjacencyGraph"]

_INDEX_DTYPE = np.int64


@dataclass
class AdjacencyGraph:
    """Undirected graph in CSR adjacency form.

    ``xadj``/``adjncy`` follow METIS naming: the neighbours of vertex ``v``
    are ``adjncy[xadj[v]:xadj[v+1]]`` with edge weights ``adjwgt`` aligned to
    ``adjncy``.  ``vwgt`` holds vertex weights.
    """

    xadj: np.ndarray
    adjncy: np.ndarray
    adjwgt: np.ndarray
    vwgt: np.ndarray

    def __post_init__(self) -> None:
        self.xadj = np.asarray(self.xadj, dtype=_INDEX_DTYPE)
        self.adjncy = np.asarray(self.adjncy, dtype=_INDEX_DTYPE)
        self.adjwgt = np.asarray(self.adjwgt, dtype=_INDEX_DTYPE)
        self.vwgt = np.asarray(self.vwgt, dtype=_INDEX_DTYPE)
        if self.xadj.ndim != 1 or self.xadj[0] != 0:
            raise ValueError("xadj must be a 1-D prefix array starting at 0")
        if self.adjncy.shape != self.adjwgt.shape:
            raise ValueError("adjncy and adjwgt must align")
        if self.xadj[-1] != self.adjncy.shape[0]:
            raise ValueError("xadj must end at len(adjncy)")
        if self.vwgt.shape[0] != self.nvertices:
            raise ValueError("vwgt must have one entry per vertex")

    # ------------------------------------------------------------------
    @property
    def nvertices(self) -> int:
        return int(self.xadj.shape[0] - 1)

    @property
    def nedges(self) -> int:
        """Number of undirected edges (each stored twice in adjncy)."""
        return int(self.adjncy.shape[0] // 2)

    def neighbours(self, v: int) -> Tuple[np.ndarray, np.ndarray]:
        lo, hi = self.xadj[v], self.xadj[v + 1]
        return self.adjncy[lo:hi], self.adjwgt[lo:hi]

    def degree(self, v: int) -> int:
        return int(self.xadj[v + 1] - self.xadj[v])

    def total_vertex_weight(self) -> int:
        return int(self.vwgt.sum())

    # ------------------------------------------------------------------
    @classmethod
    def from_matrix(
        cls,
        A,
        *,
        vertex_weights: Optional[np.ndarray] = None,
        symmetrize: bool = True,
    ) -> "AdjacencyGraph":
        """Build the adjacency graph of a square sparse matrix.

        Edge weights are 1 per structural nonzero (values are ignored, as in
        METIS usage for fill-reducing/partitioning orderings); self-loops are
        dropped.  Unsymmetric matrices are symmetrised first.
        """
        A = as_csc(A)
        if A.nrows != A.ncols:
            raise ValueError("graph construction requires a square matrix")
        pattern = symmetrize_pattern(A) if symmetrize else A
        rows, cols, _ = pattern.to_coo()
        off_diag = rows != cols
        rows = rows[off_diag]
        cols = cols[off_diag]
        n = A.nrows
        order = np.lexsort((cols, rows))
        rows = rows[order]
        cols = cols[order]
        # Deduplicate parallel edges.
        if rows.size:
            keep = np.empty(rows.shape[0], dtype=bool)
            keep[0] = True
            keep[1:] = (rows[1:] != rows[:-1]) | (cols[1:] != cols[:-1])
            rows = rows[keep]
            cols = cols[keep]
        xadj = np.zeros(n + 1, dtype=_INDEX_DTYPE)
        counts = np.bincount(rows, minlength=n)
        xadj[1:] = np.cumsum(counts)
        adjncy = cols
        adjwgt = np.ones(cols.shape[0], dtype=_INDEX_DTYPE)
        if vertex_weights is None:
            vwgt = np.ones(n, dtype=_INDEX_DTYPE)
        else:
            vwgt = np.asarray(vertex_weights, dtype=_INDEX_DTYPE)
            if vwgt.shape[0] != n:
                raise ValueError("vertex_weights must have one entry per vertex")
            vwgt = np.maximum(vwgt, 1)  # METIS requires positive weights
        return cls(xadj=xadj, adjncy=adjncy, adjwgt=adjwgt, vwgt=vwgt)

    def edge_cut(self, parts: np.ndarray) -> int:
        """Total weight of edges whose endpoints lie in different parts."""
        parts = np.asarray(parts, dtype=_INDEX_DTYPE)
        if parts.shape[0] != self.nvertices:
            raise ValueError("parts must have one entry per vertex")
        src = np.repeat(np.arange(self.nvertices, dtype=_INDEX_DTYPE), np.diff(self.xadj))
        cut_mask = parts[src] != parts[self.adjncy]
        # Each undirected edge is stored twice, so halve the sum.
        return int(self.adjwgt[cut_mask].sum() // 2)

"""Multilevel k-way graph partitioner (the METIS/ParMETIS substitute).

METIS is not available offline, so this module implements the same
three-phase multilevel scheme METIS describes (Karypis & Kumar 1995/1996):

1. **Coarsening** — heavy-edge matching collapses the graph until it is small
   (:mod:`repro.partition.coarsen`).
2. **Initial partitioning** — greedy region growing on the coarsest graph:
   ``k`` seeds are chosen far apart (BFS-peeling), parts grow by repeatedly
   absorbing the boundary vertex most connected to them while respecting the
   weight budget.
3. **Uncoarsening + refinement** — the partition is projected level by level
   back to the original graph, running greedy KL/FM boundary refinement at
   every level (:mod:`repro.partition.refine`).

Vertex weights (the paper's ``nnz(col)²`` flops estimate) are honoured by all
three phases.  The output is a part id per vertex, the edge cut, and the
achieved balance — matching the information METIS returns.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional

import numpy as np

from .coarsen import coarsen_to_size
from .graph import AdjacencyGraph
from .refine import greedy_kway_refine, partition_weights
from .weights import squaring_vertex_weights
from ..sparse import as_csc

__all__ = ["PartitionResult", "partition_graph", "partition_matrix"]

_INDEX_DTYPE = np.int64


@dataclass
class PartitionResult:
    """Outcome of a k-way partitioning run."""

    #: part id per vertex (0 .. nparts-1)
    parts: np.ndarray
    nparts: int
    #: total weight of cut edges
    edge_cut: int
    #: max/mean per-part weight ratio (1.0 = perfect)
    balance: float
    #: seconds spent partitioning (the paper reports e.g. 3.9 s for eukarya)
    seconds: float = 0.0

    def part_sizes(self) -> np.ndarray:
        return np.bincount(self.parts, minlength=self.nparts).astype(_INDEX_DTYPE)


# ----------------------------------------------------------------------
# Initial partitioning on the coarsest graph
# ----------------------------------------------------------------------

def _bfs_farthest(graph: AdjacencyGraph, start: int) -> int:
    """Vertex farthest (in hops) from ``start`` within its connected component."""
    n = graph.nvertices
    dist = np.full(n, -1, dtype=_INDEX_DTYPE)
    dist[start] = 0
    queue = deque([start])
    last = start
    while queue:
        v = queue.popleft()
        last = v
        neigh, _ = graph.neighbours(v)
        for u in neigh:
            if dist[u] < 0:
                dist[u] = dist[v] + 1
                queue.append(int(u))
    return int(last)


def _greedy_region_growing(
    graph: AdjacencyGraph, nparts: int, seed: int = 0
) -> np.ndarray:
    """Grow ``nparts`` regions from spread-out seeds, respecting weight budgets."""
    n = graph.nvertices
    rng = np.random.default_rng(seed)
    parts = np.full(n, -1, dtype=_INDEX_DTYPE)
    if nparts >= n:
        # Degenerate: one vertex per part (extra parts stay empty).
        parts[:] = np.arange(n, dtype=_INDEX_DTYPE) % max(1, nparts)
        return parts

    target = graph.total_vertex_weight() / nparts
    # Pick seeds: first random, subsequent by BFS-peeling from previous seeds.
    seeds = [int(rng.integers(n))]
    while len(seeds) < nparts:
        far = _bfs_farthest(graph, seeds[-1])
        if far in seeds:
            remaining = np.setdiff1d(np.arange(n), np.array(seeds))
            if remaining.size == 0:
                break
            far = int(rng.choice(remaining))
        seeds.append(far)

    part_w = np.zeros(nparts, dtype=np.float64)
    frontiers: list[deque] = [deque() for _ in range(nparts)]
    for p, s in enumerate(seeds):
        if parts[s] == -1:
            parts[s] = p
            part_w[p] += graph.vwgt[s]
            frontiers[p].append(s)

    # Round-robin growth: each part absorbs unassigned neighbours until its
    # budget is full; leftover vertices are swept up at the end.
    active = True
    while active:
        active = False
        for p in range(nparts):
            if part_w[p] >= target:
                continue
            frontier = frontiers[p]
            grown = False
            while frontier and not grown:
                v = frontier.popleft()
                neigh, _ = graph.neighbours(int(v))
                for u in neigh:
                    if parts[u] == -1:
                        parts[u] = p
                        part_w[p] += graph.vwgt[u]
                        frontier.append(int(u))
                        grown = True
                        active = True
                        if part_w[p] >= target:
                            break
                if grown:
                    frontier.appendleft(v)  # keep expanding from it next round
                    break

    # Assign any unreached vertices (disconnected components) to the lightest part.
    for v in np.nonzero(parts == -1)[0]:
        p = int(np.argmin(part_w))
        parts[v] = p
        part_w[p] += graph.vwgt[v]
    return parts


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------

def partition_graph(
    graph: AdjacencyGraph,
    nparts: int,
    *,
    imbalance: float = 0.05,
    seed: int = 0,
    coarsen_target_per_part: int = 30,
    refine_passes: int = 8,
) -> PartitionResult:
    """Partition an adjacency graph into ``nparts`` weight-balanced parts."""
    import time as _time

    if nparts <= 0:
        raise ValueError("nparts must be positive")
    t0 = _time.perf_counter()
    n = graph.nvertices
    if nparts == 1 or n == 0:
        parts = np.zeros(n, dtype=_INDEX_DTYPE)
        return PartitionResult(
            parts=parts,
            nparts=nparts,
            edge_cut=0,
            balance=1.0,
            seconds=_time.perf_counter() - t0,
        )

    target_size = max(nparts * coarsen_target_per_part, 64)
    hierarchy = coarsen_to_size(graph, target_size, seed=seed)
    coarsest = hierarchy[-1].coarse_graph if hierarchy else graph

    parts = _greedy_region_growing(coarsest, nparts, seed=seed)
    parts = greedy_kway_refine(
        coarsest, parts, nparts, imbalance=imbalance, max_passes=refine_passes, seed=seed
    )

    # Uncoarsen: project and refine at every level, finest last.
    for level in reversed(hierarchy):
        parts = parts[level.fine_to_coarse]
        parts = greedy_kway_refine(
            level.fine_graph,
            parts,
            nparts,
            imbalance=imbalance,
            max_passes=refine_passes,
            seed=seed,
        )

    w = partition_weights(graph, parts, nparts)
    mean_w = w.mean() if nparts else 0.0
    balance = float(w.max() / mean_w) if mean_w > 0 else 1.0
    return PartitionResult(
        parts=parts,
        nparts=nparts,
        edge_cut=graph.edge_cut(parts),
        balance=balance,
        seconds=_time.perf_counter() - t0,
    )


def partition_matrix(
    A,
    nparts: int,
    *,
    vertex_weights: Optional[np.ndarray] = None,
    use_flops_weights: bool = True,
    imbalance: float = 0.05,
    seed: int = 0,
) -> PartitionResult:
    """Partition the graph of a square sparse matrix into ``nparts`` parts.

    By default vertices are weighted with the paper's flops estimate
    (``nnz(col)²``, :func:`repro.partition.weights.squaring_vertex_weights`);
    pass ``use_flops_weights=False`` for unit weights or supply explicit
    ``vertex_weights``.
    """
    A = as_csc(A)
    if vertex_weights is None and use_flops_weights:
        vertex_weights = squaring_vertex_weights(A)
    graph = AdjacencyGraph.from_matrix(A, vertex_weights=vertex_weights)
    return partition_graph(graph, nparts, imbalance=imbalance, seed=seed)

"""Vertex weights for flops-balanced partitioning.

Paper §III-B: "We assign a weight to each vertex for balancing the amount of
sparse flops … The weight value is the square of non-zero elements of the
column" — because, by the outer-product view, the flops of squaring a
symmetric matrix attributable to column/vertex ``k`` is
``nnz(A(:,k)) · nnz(A(k,:)) = nnz(A(:,k))²``.

The same weights are reused as an *approximation* for the restriction
operator and betweenness-centrality products (the paper does exactly this).
The general two-operand weight (``nnz(A(:,k)) · nnz(B(k,:))``) is also
provided for completeness.
"""

from __future__ import annotations

import numpy as np

from ..sparse import as_csc

__all__ = [
    "squaring_vertex_weights",
    "spgemm_vertex_weights",
    "degree_vertex_weights",
    "balance_ratio",
]


def squaring_vertex_weights(A) -> np.ndarray:
    """Per-vertex flops weights for squaring: ``nnz(A(:,k))²`` (int64)."""
    A = as_csc(A)
    if A.nrows != A.ncols:
        raise ValueError("squaring weights require a square matrix")
    col_nnz = A.column_nnz().astype(np.int64)
    return col_nnz * col_nnz


def spgemm_vertex_weights(A, B) -> np.ndarray:
    """Per-inner-index flops weights for ``A·B``: ``nnz(A(:,k)) · nnz(B(k,:))``."""
    A = as_csc(A)
    B = as_csc(B)
    if A.ncols != B.nrows:
        raise ValueError(f"inner dimensions do not match: {A.shape} x {B.shape}")
    return A.column_nnz().astype(np.int64) * B.row_nnz().astype(np.int64)


def degree_vertex_weights(A) -> np.ndarray:
    """Plain degree weights (``nnz`` per column) — the naive alternative to flops weights."""
    return as_csc(A).column_nnz().astype(np.int64)


def balance_ratio(weights: np.ndarray, parts: np.ndarray, nparts: int) -> float:
    """max/mean ratio of per-part total weight (1.0 = perfectly balanced)."""
    weights = np.asarray(weights, dtype=np.float64)
    parts = np.asarray(parts, dtype=np.int64)
    if weights.shape != parts.shape:
        raise ValueError("weights and parts must align")
    totals = np.zeros(nparts, dtype=np.float64)
    np.add.at(totals, parts, weights)
    mean = totals.mean() if nparts else 0.0
    if mean == 0.0:
        return 1.0
    return float(totals.max() / mean)

"""Turning partitions into orderings, plus band-reducing orderings.

The 1D algorithm wants each process's columns to be *contiguous* after the
chosen preprocessing, so a k-way partition is converted into a symmetric
permutation that groups each part's vertices together (part 0 first, then
part 1, …).  The per-part sizes then become the (non-uniform) column-block
bounds of the 1D distribution.

An RCM-like BFS band ordering is also provided as a cheap alternative
clustering strategy for the partitioner-ablation benchmark.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import List

import numpy as np

from ..sparse import CSCMatrix, as_csc
from .graph import AdjacencyGraph
from .metis_like import PartitionResult
from .random_perm import apply_symmetric_permutation

__all__ = [
    "Ordering",
    "ordering_from_partition",
    "identity_ordering",
    "rcm_ordering",
    "apply_ordering",
]

_INDEX_DTYPE = np.int64


@dataclass
class Ordering:
    """A symmetric reordering plus the contiguous part bounds it induces.

    ``perm[new] = old`` (the convention of :func:`apply_symmetric_permutation`);
    ``block_sizes[p]`` is the number of columns owned by part/process ``p``
    after the reordering, so the 1D distribution uses
    ``block_bounds_from_sizes(block_sizes)``.
    """

    perm: np.ndarray
    block_sizes: List[int]
    name: str = "ordering"

    @property
    def nparts(self) -> int:
        return len(self.block_sizes)


def identity_ordering(n: int, nparts: int) -> Ordering:
    """No reordering; equal contiguous blocks (the paper's "no permutation" case)."""
    base = n // nparts
    extra = n % nparts
    sizes = [base + (1 if p < extra else 0) for p in range(nparts)]
    return Ordering(perm=np.arange(n, dtype=_INDEX_DTYPE), block_sizes=sizes, name="none")


def ordering_from_partition(result: PartitionResult) -> Ordering:
    """Group each part's vertices contiguously (stable within a part)."""
    parts = np.asarray(result.parts, dtype=_INDEX_DTYPE)
    perm = np.argsort(parts, kind="stable").astype(_INDEX_DTYPE)
    sizes = np.bincount(parts, minlength=result.nparts).astype(int).tolist()
    return Ordering(perm=perm, block_sizes=sizes, name="metis")


def rcm_ordering(A, nparts: int) -> Ordering:
    """Reverse-Cuthill–McKee-like BFS ordering with equal blocks.

    Orders vertices by BFS levels from a low-degree start vertex (per
    connected component), which clusters banded/structured matrices; part
    sizes are equal since RCM carries no balance information.
    """
    A = as_csc(A)
    graph = AdjacencyGraph.from_matrix(A)
    n = graph.nvertices
    visited = np.zeros(n, dtype=bool)
    order: List[int] = []
    degrees = np.diff(graph.xadj)
    for component_start in np.argsort(degrees, kind="stable"):
        if visited[component_start]:
            continue
        queue = deque([int(component_start)])
        visited[component_start] = True
        while queue:
            v = queue.popleft()
            order.append(v)
            neigh, _ = graph.neighbours(v)
            unvisited = [int(u) for u in neigh if not visited[u]]
            unvisited.sort(key=lambda u: degrees[u])
            for u in unvisited:
                visited[u] = True
                queue.append(u)
    perm = np.asarray(order[::-1], dtype=_INDEX_DTYPE)  # reverse for RCM
    base = n // nparts
    extra = n % nparts
    sizes = [base + (1 if p < extra else 0) for p in range(nparts)]
    return Ordering(perm=perm, block_sizes=sizes, name="rcm")


def apply_ordering(A, ordering: Ordering) -> CSCMatrix:
    """Symmetrically permute ``A`` according to the ordering."""
    return apply_symmetric_permutation(A, ordering.perm)

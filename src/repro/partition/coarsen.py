"""Graph coarsening by heavy-edge matching (the METIS coarsening phase).

Multilevel partitioners repeatedly collapse a maximal matching of the graph:
each matched pair (preferring the heaviest incident edge) becomes one vertex
of the next-coarser graph, with vertex weights summed and parallel edges
merged.  Coarsening stops when the graph is small enough for the initial
partitioner or when matching stops making progress.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from .graph import AdjacencyGraph

__all__ = ["CoarseningLevel", "heavy_edge_matching", "coarsen_graph", "coarsen_to_size"]

_INDEX_DTYPE = np.int64


@dataclass
class CoarseningLevel:
    """One level of the coarsening hierarchy.

    ``fine_to_coarse[v]`` maps a fine vertex to its coarse vertex, so a
    partition of the coarse graph is projected back by simple indexing.
    """

    fine_graph: AdjacencyGraph
    coarse_graph: AdjacencyGraph
    fine_to_coarse: np.ndarray


def heavy_edge_matching(graph: AdjacencyGraph, seed: int = 0) -> np.ndarray:
    """Compute a maximal matching preferring heavy edges.

    Vertices are visited in random order; an unmatched vertex is matched to
    its unmatched neighbour with the heaviest connecting edge (ties broken by
    lower vertex weight to keep coarse weights balanced).  Returns ``match``
    with ``match[v] == u`` and ``match[u] == v`` for matched pairs and
    ``match[v] == v`` for unmatched vertices.
    """
    n = graph.nvertices
    rng = np.random.default_rng(seed)
    visit_order = rng.permutation(n)
    match = np.full(n, -1, dtype=_INDEX_DTYPE)
    for v in visit_order:
        if match[v] != -1:
            continue
        neigh, wgt = graph.neighbours(int(v))
        best_u = -1
        best_w = -1
        for u, w in zip(neigh, wgt):
            if match[u] != -1 or u == v:
                continue
            if w > best_w or (w == best_w and best_u != -1 and graph.vwgt[u] < graph.vwgt[best_u]):
                best_u, best_w = int(u), int(w)
        if best_u >= 0:
            match[v] = best_u
            match[best_u] = v
        else:
            match[v] = v
    # Any vertex never visited as unmatched neighbour stays self-matched.
    unmatched = match == -1
    match[unmatched] = np.nonzero(unmatched)[0]
    return match


def coarsen_graph(graph: AdjacencyGraph, seed: int = 0) -> CoarseningLevel:
    """Collapse a heavy-edge matching into a coarser graph."""
    n = graph.nvertices
    match = heavy_edge_matching(graph, seed=seed)
    # Assign coarse ids: the lower-indexed endpoint of each pair gets the id.
    fine_to_coarse = np.full(n, -1, dtype=_INDEX_DTYPE)
    next_id = 0
    for v in range(n):
        if fine_to_coarse[v] != -1:
            continue
        u = int(match[v])
        fine_to_coarse[v] = next_id
        fine_to_coarse[u] = next_id
        next_id += 1
    n_coarse = next_id

    # Coarse vertex weights.
    coarse_vwgt = np.zeros(n_coarse, dtype=_INDEX_DTYPE)
    np.add.at(coarse_vwgt, fine_to_coarse, graph.vwgt)

    # Coarse edges: project endpoints, drop self-loops, merge duplicates.
    src = np.repeat(np.arange(n, dtype=_INDEX_DTYPE), np.diff(graph.xadj))
    csrc = fine_to_coarse[src]
    cdst = fine_to_coarse[graph.adjncy]
    w = graph.adjwgt
    keep = csrc != cdst
    csrc, cdst, w = csrc[keep], cdst[keep], w[keep]
    if csrc.size:
        order = np.lexsort((cdst, csrc))
        csrc, cdst, w = csrc[order], cdst[order], w[order]
        new_run = np.empty(csrc.shape[0], dtype=bool)
        new_run[0] = True
        new_run[1:] = (csrc[1:] != csrc[:-1]) | (cdst[1:] != cdst[:-1])
        group_ids = np.cumsum(new_run) - 1
        merged_w = np.zeros(int(group_ids[-1]) + 1, dtype=_INDEX_DTYPE)
        np.add.at(merged_w, group_ids, w)
        csrc = csrc[new_run]
        cdst = cdst[new_run]
        w = merged_w
    xadj = np.zeros(n_coarse + 1, dtype=_INDEX_DTYPE)
    if csrc.size:
        counts = np.bincount(csrc, minlength=n_coarse)
    else:
        counts = np.zeros(n_coarse, dtype=_INDEX_DTYPE)
    xadj[1:] = np.cumsum(counts)
    coarse = AdjacencyGraph(xadj=xadj, adjncy=cdst, adjwgt=w, vwgt=coarse_vwgt)
    return CoarseningLevel(fine_graph=graph, coarse_graph=coarse, fine_to_coarse=fine_to_coarse)


def coarsen_to_size(
    graph: AdjacencyGraph,
    target_vertices: int,
    *,
    max_levels: int = 30,
    seed: int = 0,
) -> List[CoarseningLevel]:
    """Repeatedly coarsen until ``target_vertices`` is reached or progress stalls.

    Returns the hierarchy finest-first; an empty list means the input graph
    was already small enough.
    """
    levels: List[CoarseningLevel] = []
    current = graph
    for level in range(max_levels):
        if current.nvertices <= target_vertices:
            break
        step = coarsen_graph(current, seed=seed + level)
        # Stop if coarsening is no longer shrinking the graph meaningfully.
        if step.coarse_graph.nvertices > 0.95 * current.nvertices:
            break
        levels.append(step)
        current = step.coarse_graph
    return levels

"""Column-net hypergraph model and a simple partitioner for 1D SpGEMM.

Paper §II-B-2 cites the hypergraph / bipartite models of Akbudak & Aykanat
for outer-product-parallel SpGEMM.  In the column-net model of a square
matrix ``A``:

* every column ``k`` is a *vertex* (weighted with the flops estimate), and
* every row ``i`` is a *net* (hyperedge) connecting the columns that have a
  nonzero in row ``i``.

The connectivity-minus-one cut metric Σ_nets (λ(net) − 1) is exactly the
number of remote column fetches the sparsity-aware 1D algorithm performs
(each part that touches a net must fetch the net's data once), so minimising
it minimises the algorithm's communication volume.

A full multilevel hypergraph partitioner (PaToH/hMETIS) is out of scope; the
greedy partitioner here assigns columns in descending weight order to the
part where they reduce connectivity most, subject to the balance constraint.
It is exercised by the partitioner-ablation benchmark, not by the headline
reproduction (which uses the METIS-like graph partitioner as the paper does).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..sparse import as_csc
from .weights import squaring_vertex_weights

__all__ = ["ColumnNetHypergraph", "greedy_hypergraph_partition", "connectivity_cut"]

_INDEX_DTYPE = np.int64


@dataclass
class ColumnNetHypergraph:
    """Column-net hypergraph of a sparse matrix (vertices = columns, nets = rows)."""

    nvertices: int
    nnets: int
    #: CSR-like: pins of net i are vertices[net_ptr[i]:net_ptr[i+1]]
    net_ptr: np.ndarray
    net_pins: np.ndarray
    vertex_weights: np.ndarray

    @classmethod
    def from_matrix(
        cls, A, *, vertex_weights: Optional[np.ndarray] = None
    ) -> "ColumnNetHypergraph":
        A = as_csc(A)
        rows, cols, _ = A.to_coo()
        order = np.lexsort((cols, rows))
        rows = rows[order]
        cols = cols[order]
        net_ptr = np.zeros(A.nrows + 1, dtype=_INDEX_DTYPE)
        counts = np.bincount(rows, minlength=A.nrows)
        net_ptr[1:] = np.cumsum(counts)
        if vertex_weights is None:
            if A.nrows == A.ncols:
                vertex_weights = squaring_vertex_weights(A)
            else:
                vertex_weights = A.column_nnz().astype(_INDEX_DTYPE)
        return cls(
            nvertices=A.ncols,
            nnets=A.nrows,
            net_ptr=net_ptr,
            net_pins=cols,
            vertex_weights=np.asarray(vertex_weights, dtype=_INDEX_DTYPE),
        )

    def net(self, i: int) -> np.ndarray:
        return self.net_pins[self.net_ptr[i] : self.net_ptr[i + 1]]


def connectivity_cut(hg: ColumnNetHypergraph, parts: np.ndarray) -> int:
    """Connectivity-minus-one cut: Σ over nets of (number of parts touched − 1)."""
    parts = np.asarray(parts, dtype=_INDEX_DTYPE)
    total = 0
    for i in range(hg.nnets):
        pins = hg.net(i)
        if pins.size == 0:
            continue
        total += int(np.unique(parts[pins]).size) - 1
    return total


def greedy_hypergraph_partition(
    hg: ColumnNetHypergraph,
    nparts: int,
    *,
    imbalance: float = 0.10,
    seed: int = 0,
) -> np.ndarray:
    """Greedy connectivity-aware assignment of columns to parts.

    Columns are processed in descending weight order; each goes to the part
    with the strongest affinity (number of already-assigned co-net pins)
    among parts with remaining weight budget.  Ties go to the lightest part.
    """
    rng = np.random.default_rng(seed)
    n = hg.nvertices
    parts = np.full(n, -1, dtype=_INDEX_DTYPE)
    if nparts <= 1:
        return np.zeros(n, dtype=_INDEX_DTYPE)
    budget = (1.0 + imbalance) * hg.vertex_weights.sum() / nparts
    part_w = np.zeros(nparts, dtype=np.float64)

    # vertex -> nets incidence (transpose of the net list).
    vert_nets: list[list[int]] = [[] for _ in range(n)]
    for i in range(hg.nnets):
        for v in hg.net(i):
            vert_nets[int(v)].append(i)

    order = np.argsort(-hg.vertex_weights, kind="stable")
    # Random tie-breaking among equal weights for robustness.
    order = order[np.argsort(rng.random(n)[order], kind="stable")] if False else order

    affinity = np.zeros(nparts, dtype=np.float64)
    for v in order:
        v = int(v)
        affinity[:] = 0.0
        for net_id in vert_nets[v]:
            pins = hg.net(net_id)
            assigned = parts[pins]
            assigned = assigned[assigned >= 0]
            if assigned.size:
                np.add.at(affinity, assigned, 1.0)
        # Mask out full parts.
        feasible = part_w + hg.vertex_weights[v] <= budget
        if not np.any(feasible):
            p = int(np.argmin(part_w))
        else:
            masked = np.where(feasible, affinity, -np.inf)
            best = np.nonzero(masked == masked.max())[0]
            p = int(best[np.argmin(part_w[best])])
        parts[v] = p
        part_w[p] += hg.vertex_weights[v]
    return parts

"""repro — reproduction of "A Sparsity-Aware Distributed-Memory Algorithm for
Sparse-Sparse Matrix Multiplication" (Hong & Buluç, SC 2024).

The package is organised bottom-up:

``repro.sparse``        local CSC/DCSC containers and SpGEMM kernels
``repro.runtime``       simulated distributed-memory runtime (ranks, RDMA
                        windows, collectives, α–β–γ cost model)
``repro.distribution``  1D / 2D / 3D distributed matrix layouts
``repro.partition``     random permutation, METIS-like multilevel partitioner
``repro.core``          the paper's algorithms: sparsity-aware 1D SpGEMM,
                        block fetch, outer-product 1D, and the 2D/3D baselines
``repro.apps``          squaring, AMG Galerkin product, betweenness centrality
``repro.matrices``      synthetic analogues of the paper's datasets
``repro.experiments``   parallel experiment engine: declarative grids,
                        cached deterministic sweeps persisted as JSONL
``repro.analysis``      breakdowns, sweeps and text reports

Quickstart::

    from repro import make_algorithm, SimulatedCluster, load_dataset

    A = load_dataset("hv15r", scale=0.2)
    cluster = SimulatedCluster(nprocs=16)
    result = make_algorithm("1d").multiply(A, A, cluster)
    print(result.elapsed_time, result.communication_volume)
"""

from .core import (
    SpGEMMResult,
    SparsityAware1D,
    SparseSUMMA2D,
    SplitSpGEMM3D,
    OuterProduct1D,
    make_algorithm,
    available_algorithms,
    estimate_communication,
    should_partition,
)
from .experiments import ExperimentGrid, RunConfig, RunRecord, run_grid
from .matrices import load_dataset, dataset_names
from .runtime import CostModel, LAPTOP, PERLMUTTER, SimulatedCluster
from .sparse import CSCMatrix, DCSCMatrix, as_csc, as_dcsc, local_spgemm

__version__ = "1.0.0"

__all__ = [
    "SpGEMMResult",
    "SparsityAware1D",
    "SparseSUMMA2D",
    "SplitSpGEMM3D",
    "OuterProduct1D",
    "make_algorithm",
    "available_algorithms",
    "estimate_communication",
    "should_partition",
    "ExperimentGrid",
    "RunConfig",
    "RunRecord",
    "run_grid",
    "load_dataset",
    "dataset_names",
    "CostModel",
    "LAPTOP",
    "PERLMUTTER",
    "SimulatedCluster",
    "CSCMatrix",
    "DCSCMatrix",
    "as_csc",
    "as_dcsc",
    "local_spgemm",
    "__version__",
]

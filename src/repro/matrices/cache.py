"""Disk cache for generated datasets.

Every sweep point re-loads its input, and before this cache existed every
load *regenerated* the synthetic matrix from scratch — the dominant cost
of a wide sweep, multiplied across worker processes.  The cache persists
each generated :class:`~repro.sparse.CSCMatrix` as an ``.npz`` file keyed
by ``(dataset name, scale, seed)``, so repeated loads (including from
`multiprocessing` workers) become a single binary file read.

Environment knobs:

* ``REPRO_DATASET_CACHE`` — set to ``0``/``false``/``off`` to disable the
  cache entirely (loads always regenerate, nothing is written).
* ``REPRO_DATASET_CACHE_DIR`` — cache directory (default
  ``~/.cache/repro/datasets``).

Writes are atomic (temp file + ``os.replace``), so concurrent sweep
workers racing to populate the same entry cannot leave a torn file.
"""

from __future__ import annotations

import os
import tempfile
import threading
from pathlib import Path
from typing import Dict, Optional

from ..sparse import CSCMatrix
from .io import read_npz, write_npz

__all__ = [
    "CACHE_ENV",
    "CACHE_DIR_ENV",
    "dataset_cache_enabled",
    "dataset_cache_dir",
    "dataset_cache_path",
    "dataset_cache_stats",
    "load_cached_dataset",
    "note_dataset_cache",
    "reset_dataset_cache_stats",
    "store_cached_dataset",
]

CACHE_ENV = "REPRO_DATASET_CACHE"
CACHE_DIR_ENV = "REPRO_DATASET_CACHE_DIR"

#: part of every cache filename — bump whenever a generator in
#: :mod:`repro.matrices.generators` or a spec in
#: :mod:`repro.matrices.suite` changes shape/values, so existing caches
#: miss instead of silently serving matrices from the old code
GENERATOR_VERSION = 1

_DISABLED_VALUES = {"0", "false", "off", "no"}

# ----------------------------------------------------------------------
# Hit/miss accounting — the cache used to be silent, which made a sweep
# that was quietly regenerating every dataset indistinguishable from one
# riding the cache.  Counters are process-wide and monotonic; sweep
# reporting (the scheduler's residency stats) snapshots deltas.
# ----------------------------------------------------------------------
_STATS_LOCK = threading.Lock()
_STATS: Dict[str, int] = {"disk_hits": 0, "disk_misses": 0}


def note_dataset_cache(hit: bool) -> None:
    """Record one disk-cache lookup outcome (called by ``load_dataset``)."""
    with _STATS_LOCK:
        _STATS["disk_hits" if hit else "disk_misses"] += 1


def dataset_cache_stats() -> Dict[str, int]:
    """This process's cumulative disk-cache hit/miss counters."""
    with _STATS_LOCK:
        return dict(_STATS)


def reset_dataset_cache_stats() -> None:
    """Zero the counters (test isolation only)."""
    with _STATS_LOCK:
        _STATS["disk_hits"] = 0
        _STATS["disk_misses"] = 0


def dataset_cache_enabled() -> bool:
    """Is the disk cache active (``REPRO_DATASET_CACHE`` not disabling it)?"""
    return os.environ.get(CACHE_ENV, "1").strip().lower() not in _DISABLED_VALUES


def dataset_cache_dir() -> Path:
    """Directory the cache lives in (``REPRO_DATASET_CACHE_DIR`` override)."""
    configured = os.environ.get(CACHE_DIR_ENV)
    if configured:
        return Path(configured)
    return Path.home() / ".cache" / "repro" / "datasets"


def dataset_cache_path(name: str, scale: float, seed: Optional[int]) -> Path:
    """Cache file for one ``(name, scale, seed)`` generation request."""
    seed_part = "default" if seed is None else str(int(seed))
    return dataset_cache_dir() / (
        f"{name}-scale{scale!r}-seed{seed_part}-v{GENERATOR_VERSION}.npz"
    )


def load_cached_dataset(name: str, scale: float, seed: Optional[int]) -> Optional[CSCMatrix]:
    """Return the cached matrix, or ``None`` on a miss / unreadable entry."""
    path = dataset_cache_path(name, scale, seed)
    if not path.is_file():
        return None
    try:
        return read_npz(path)
    except Exception:
        # A torn or stale-format entry is a miss, not an error: regenerate.
        return None


def store_cached_dataset(
    name: str, scale: float, seed: Optional[int], matrix: CSCMatrix
) -> None:
    """Atomically persist a generated matrix; failures are non-fatal."""
    path = dataset_cache_path(name, scale, seed)
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        # The suffix must end in ".npz" or np.savez would append its own.
        fd, tmp_name = tempfile.mkstemp(
            prefix=path.stem, suffix=".tmp.npz", dir=str(path.parent)
        )
        os.close(fd)
        try:
            write_npz(tmp_name, matrix)
            os.replace(tmp_name, path)
        finally:
            if os.path.exists(tmp_name):
                os.unlink(tmp_name)
    except OSError:
        # Cache population must never fail a sweep (read-only FS, quota, …).
        pass

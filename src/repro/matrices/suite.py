"""The synthetic dataset suite: laptop-scale analogues of Table II / Table III.

Paper's inputs (Table II) and what each analogue preserves:

================  ==========================  ==================================
Paper matrix      Structural class            Analogue (this module)
================  ==========================  ==================================
queen_4147        3D stiffness matrix;        ``queen_like`` — symmetric banded
                  symmetric, clustered        matrix with moderate bandwidth
stokes            saddle-point (CFD);         ``stokes_like`` — unsymmetric
                  unsymmetric, clustered      2×2 block saddle-point matrix
eukarya           protein-similarity network; ``eukarya_like`` — shuffled
                  symmetric, NO usable        community graph (structure exists
                  natural ordering            but is hidden from the ordering)
hv15r             CFD Navier-Stokes;          ``hv15r_like`` — unsymmetric
                  unsymmetric, strongly       block-diagonal-clustered matrix
                  clustered
nlpkkt200         KKT optimisation system;    ``nlpkkt_like`` — symmetric KKT
                  symmetric, block/banded     block matrix
================  ==========================  ==================================

The restriction operators of Table III (one nonzero per row, far fewer
columns than rows) are generated per dataset by MIS-2 aggregation
(:mod:`repro.apps.amg`) or, for direct harness use, by
:func:`repro.matrices.generators.restriction_like`.

Every generator takes a ``scale`` knob so tests use tiny instances and the
benchmark harness uses larger ones; the default ``scale=1.0`` targets a few
thousand rows / tens of thousands of nonzeros, which keeps the full benchmark
suite in the minutes range in pure Python.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..sparse import CSCMatrix
from . import generators as gen

__all__ = [
    "DatasetSpec",
    "queen_like",
    "stokes_like",
    "eukarya_like",
    "hv15r_like",
    "nlpkkt_like",
    "DATASETS",
    "load_dataset",
    "dataset_cache_status",
    "dataset_names",
]

#: attribute stamped on every ``load_dataset`` handle: how the load was
#: served — ``"hit"`` (disk cache), ``"miss"`` (generated then cached) or
#: ``"off"`` (cache disabled, generated)
_CACHE_STATUS_ATTR = "_repro_dataset_cache_status"


def _tag_cache_status(matrix: CSCMatrix, status: str) -> None:
    try:
        setattr(matrix, _CACHE_STATUS_ATTR, status)
    except (AttributeError, TypeError):  # pragma: no cover - slotted input
        pass


def dataset_cache_status(matrix) -> Optional[str]:
    """How a ``load_dataset`` handle was served (``hit``/``miss``/``off``)."""
    return getattr(matrix, _CACHE_STATUS_ATTR, None)


@dataclass(frozen=True)
class DatasetSpec:
    """Metadata tying a synthetic analogue back to the paper's dataset."""

    name: str
    paper_name: str
    paper_nrows: int
    paper_nnz: int
    symmetric: bool
    #: is the natural ordering already clustered (paper: no permutation best)?
    naturally_clustered: bool
    #: which permutation strategy the paper found best for this input
    paper_best_strategy: str
    generator: Callable[..., CSCMatrix]


def queen_like(scale: float = 1.0, seed: int = 11) -> CSCMatrix:
    """queen_4147 analogue: symmetric, banded/clustered stiffness-like matrix."""
    n = max(200, int(4000 * scale))
    return gen.banded(n, bandwidth=max(8, int(0.01 * n)), fill=0.5, symmetric=True, seed=seed)


def stokes_like(scale: float = 1.0, seed: int = 12) -> CSCMatrix:
    """stokes analogue: unsymmetric saddle-point matrix with clustered blocks."""
    n_velocity = max(300, int(3000 * scale))
    n_pressure = max(60, int(n_velocity // 10))
    return gen.saddle_point(
        n_velocity, n_pressure, bandwidth=max(8, int(0.01 * n_velocity)), seed=seed
    )


def eukarya_like(scale: float = 1.0, seed: int = 13) -> CSCMatrix:
    """eukarya analogue: community graph with randomly shuffled vertex labels.

    The natural ordering has no exploitable locality (CV/memA ≈ 1), but a
    graph partitioner can recover the hidden communities — reproducing the
    paper's finding that eukarya needs METIS partitioning.
    """
    n = max(400, int(3000 * scale))
    ncomm = max(8, int(n / 150))
    return gen.community_graph(
        n, ncommunities=ncomm, avg_degree=24, mixing=0.05, shuffle=True, seed=seed
    )


def hv15r_like(scale: float = 1.0, seed: int = 14) -> CSCMatrix:
    """hv15r analogue: unsymmetric, strongly clustered CFD-like matrix."""
    n = max(300, int(2000 * scale))
    # Fine-grained clusters (≈40 vertices each) so that the clustering is
    # visible at every process count the benchmarks use (up to P=64).
    nblocks = max(16, int(n / 50))
    return gen.block_diagonal_clustered(
        n, nblocks=nblocks, intra_density=0.35, inter_density=0.002, symmetric=False, seed=seed
    )


def nlpkkt_like(scale: float = 1.0, seed: int = 15) -> CSCMatrix:
    """nlpkkt200 analogue: symmetric KKT block system with banded H block."""
    n_primal = max(300, int(3200 * scale))
    n_dual = max(60, n_primal // 5)
    return gen.kkt_block(
        n_primal, n_dual, bandwidth=max(8, int(0.008 * n_primal)), seed=seed
    )


DATASETS: Dict[str, DatasetSpec] = {
    "queen": DatasetSpec(
        name="queen",
        paper_name="queen_4147",
        paper_nrows=4_147_110,
        paper_nnz=330_000_000,
        symmetric=True,
        naturally_clustered=True,
        paper_best_strategy="none",
        generator=queen_like,
    ),
    "stokes": DatasetSpec(
        name="stokes",
        paper_name="stokes",
        paper_nrows=11_449_533,
        paper_nnz=350_000_000,
        symmetric=False,
        naturally_clustered=True,
        paper_best_strategy="none",
        generator=stokes_like,
    ),
    "eukarya": DatasetSpec(
        name="eukarya",
        paper_name="eukarya",
        paper_nrows=3_000_000,
        paper_nnz=360_000_000,
        symmetric=True,
        naturally_clustered=False,
        paper_best_strategy="metis",
        generator=eukarya_like,
    ),
    "hv15r": DatasetSpec(
        name="hv15r",
        paper_name="hv15r",
        paper_nrows=2_017_169,
        paper_nnz=283_000_000,
        symmetric=False,
        naturally_clustered=True,
        paper_best_strategy="none",
        generator=hv15r_like,
    ),
    "nlpkkt": DatasetSpec(
        name="nlpkkt",
        paper_name="nlpkkt200",
        paper_nrows=16_240_000,
        paper_nnz=448_000_000,
        symmetric=True,
        naturally_clustered=True,
        paper_best_strategy="none",
        generator=nlpkkt_like,
    ),
}


def dataset_names() -> List[str]:
    """Names of the five Table II analogues."""
    return list(DATASETS)


def load_dataset(
    name: str,
    *,
    scale: float = 1.0,
    seed: Optional[int] = None,
    use_cache: Optional[bool] = None,
) -> CSCMatrix:
    """Generate the named analogue at the requested scale.

    Generated matrices are persisted to a disk cache keyed by
    ``(name, scale, seed)`` (see :mod:`repro.matrices.cache`), so the
    repeated loads a sweep performs — one per point, per worker process —
    become a binary file read instead of a regeneration.  ``use_cache``
    overrides the ``REPRO_DATASET_CACHE`` environment toggle.
    """
    if name not in DATASETS:
        raise ValueError(f"unknown dataset {name!r}; available: {sorted(DATASETS)}")
    from .cache import (
        dataset_cache_enabled,
        load_cached_dataset,
        note_dataset_cache,
        store_cached_dataset,
    )

    cache_on = dataset_cache_enabled() if use_cache is None else use_cache
    if cache_on:
        cached = load_cached_dataset(name, scale, seed)
        if cached is not None:
            note_dataset_cache(hit=True)
            _tag_cache_status(cached, "hit")
            return cached
    spec = DATASETS[name]
    kwargs = {"scale": scale}
    if seed is not None:
        kwargs["seed"] = seed
    matrix = spec.generator(**kwargs)
    if cache_on:
        note_dataset_cache(hit=False)
        store_cached_dataset(name, scale, seed, matrix)
    _tag_cache_status(matrix, "miss" if cache_on else "off")
    return matrix

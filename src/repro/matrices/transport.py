"""Zero-copy shared-memory dataset transport for pool workers.

A wide sweep loads the *same* input matrix once per task, per worker
process: before this module every pool task either regenerated the
synthetic dataset or re-read (and re-validated, and re-copied) the npz
disk cache.  The transport publishes each loaded
:class:`~repro.sparse.CSCMatrix` into one POSIX shared-memory segment —
its ``indptr``/``indices``/``data`` arrays packed back to back — exactly
once per scheduler lifetime, and hands workers a tiny
:class:`SharedMatrixRef` that **pickles by reference** (segment name +
shapes/dtypes, a few hundred bytes).  Rehydration in the worker maps the
segment and wraps zero-copy, read-only numpy views around it: no bytes of
matrix payload ever cross the task pipe and no worker holds a private
copy of an input.

Lifecycle mirrors :class:`repro.runtime.shm.ShmTransport`, whose segment
machinery this module reuses:

* the **parent** (scheduler) creates the segments and owns close+unlink,
  via an idempotent ``weakref.finalize`` finalizer — a dropped transport
  never leaks ``/dev/shm`` entries;
* **workers** attach on first use and keep the mapping open for the
  process lifetime (a process-wide registry below): under the ``fork``
  start method the attach-time resource-tracker registration is an
  idempotent set-add that must not be undone from the child (see
  :func:`repro.runtime.shm.attach_segment`).

Like every operand-plane layer this is host-side only: a matrix
materialised from shm is value-identical to one loaded from disk, so no
modelled counter and no persisted record can observe the transport.
"""

from __future__ import annotations

import itertools
import os
import threading
import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..runtime.shm import attach_segment
from ..sparse import CSCMatrix
from ..sparse.csc import build_csc_unchecked

__all__ = [
    "DatasetTransport",
    "SharedMatrixRef",
    "SEGMENT_PREFIX",
    "cleanup_orphan_segments",
    "offer_shared_dataset",
    "shared_dataset",
    "worker_transport_stats",
    "reset_worker_state",
]

#: how the engine addresses a published dataset: ``(name, scale)``
DatasetKey = Tuple[str, float]

_INDEX_DTYPE = np.dtype(np.int64)

#: published segments are named ``repro_ds_<owner pid>_<seq>`` so a
#: restarted service can recognise — and reap — segments whose owning
#: process died without unlinking them (``kill -9`` skips the finalizer)
SEGMENT_PREFIX = "repro_ds_"

#: where POSIX shm segments appear as files (Linux); orphan cleanup is a
#: no-op on platforms without it
_SHM_DIR = "/dev/shm"


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


def cleanup_orphan_segments(shm_dir: str = _SHM_DIR) -> List[str]:
    """Unlink transport segments orphaned by a dead owner process.

    A ``kill -9``'d scheduler never runs its finalizer; the resource
    tracker usually mops up, but a killed process *group* takes the
    tracker with it and leaks the segments.  Segment names embed the
    owner's pid, so adoption scans ``/dev/shm`` for ``repro_ds_*`` entries
    whose owner is gone and unlinks them directly (no attach, so the
    current process's resource tracker never learns about them).  Returns
    the names removed.
    """
    removed: List[str] = []
    root = Path(shm_dir)
    if not root.is_dir():
        return removed
    for entry in root.glob(SEGMENT_PREFIX + "*"):
        pid_part = entry.name[len(SEGMENT_PREFIX):].split("_", 1)[0]
        if pid_part.isdigit() and _pid_alive(int(pid_part)):
            continue
        try:
            entry.unlink()
        except OSError:         # raced with the resource tracker
            continue
        removed.append(entry.name)
    return removed


@dataclass(frozen=True)
class SharedMatrixRef:
    """Pickle-by-reference handle to a matrix resident in one shm segment.

    The segment layout is ``indptr | indices | data``, all C-contiguous;
    every field below is plain metadata, so pickling a ref ships a few
    hundred bytes regardless of the matrix size.
    """

    segment: str
    nrows: int
    ncols: int
    nnz: int
    data_dtype: str

    @property
    def indptr_nbytes(self) -> int:
        return (self.ncols + 1) * _INDEX_DTYPE.itemsize

    @property
    def indices_nbytes(self) -> int:
        return self.nnz * _INDEX_DTYPE.itemsize

    @property
    def payload_nbytes(self) -> int:
        return (
            self.indptr_nbytes
            + self.indices_nbytes
            + self.nnz * np.dtype(self.data_dtype).itemsize
        )

    def materialise(self) -> CSCMatrix:
        """Rehydrate the matrix as zero-copy, read-only views over the segment.

        Uses the unchecked constructor: the arrays were validated when the
        parent loaded the matrix, and re-validation would fault on writing
        normalised fields back into the read-only views.
        """
        segment = _attach_for_worker(self.segment)
        buf = segment.buf
        indptr = np.ndarray(
            (self.ncols + 1,), dtype=_INDEX_DTYPE, buffer=buf, offset=0
        )
        indices = np.ndarray(
            (self.nnz,), dtype=_INDEX_DTYPE, buffer=buf,
            offset=self.indptr_nbytes,
        )
        data = np.ndarray(
            (self.nnz,), dtype=np.dtype(self.data_dtype), buffer=buf,
            offset=self.indptr_nbytes + self.indices_nbytes,
        )
        for view in (indptr, indices, data):
            view.flags.writeable = False
        with _WORKER_LOCK:
            _WORKER_STATS["materialised"] += 1
        return build_csc_unchecked(self.nrows, self.ncols, indptr, indices, data)


def _release_segments(state: Dict[str, object]) -> None:
    """Finalizer: close + unlink every published segment (idempotent)."""
    if state.get("closed"):
        return
    state["closed"] = True
    for segment in state.get("segments", {}).values():  # type: ignore[union-attr]
        try:
            segment.close()
            segment.unlink()
        except Exception:
            pass


class DatasetTransport:
    """Parent-side publisher: one shm segment per unique ``(dataset, scale)``.

    ``publish`` is idempotent per key, so the scheduler can publish from
    every job's prewarm without re-copying.  The parent owns the whole
    segment lifecycle — :meth:`close` (or garbage collection, via the
    finalizer) unlinks everything; workers only ever attach.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._refs: Dict[DatasetKey, SharedMatrixRef] = {}
        self._state: Dict[str, object] = {"segments": {}, "closed": False}
        self._finalizer = weakref.finalize(self, _release_segments, self._state)
        self._seq = itertools.count()

    def _create_segment(self, size: int) -> shared_memory.SharedMemory:
        """A fresh segment named ``repro_ds_<pid>_<seq>`` (see
        :func:`cleanup_orphan_segments`), skipping names a recycled pid
        left behind."""
        while True:
            name = f"{SEGMENT_PREFIX}{os.getpid()}_{next(self._seq)}"
            try:
                return shared_memory.SharedMemory(
                    create=True, size=size, name=name
                )
            except FileExistsError:
                continue

    def publish(self, key: DatasetKey, matrix: CSCMatrix) -> SharedMatrixRef:
        """Copy ``matrix`` into a fresh segment (once); return its ref.

        Hosts the ``publish-failure`` fault point: an injected failure
        here must degrade the scheduler to the disk-cache path, never
        fail the job.
        """
        from ..experiments.faults import raise_point

        with self._lock:
            if self._state["closed"]:
                raise RuntimeError("dataset transport is closed")
            ref = self._refs.get(key)
            if ref is not None:
                return ref
            raise_point("publish-failure")
            indptr = np.ascontiguousarray(matrix.indptr, dtype=_INDEX_DTYPE)
            indices = np.ascontiguousarray(matrix.indices, dtype=_INDEX_DTYPE)
            data = np.ascontiguousarray(matrix.data)
            total = indptr.nbytes + indices.nbytes + data.nbytes
            segment = self._create_segment(max(total, 1))
            offset = 0
            for array in (indptr, indices, data):
                target = np.ndarray(
                    array.shape, dtype=array.dtype, buffer=segment.buf,
                    offset=offset,
                )
                target[...] = array
                offset += array.nbytes
            ref = SharedMatrixRef(
                segment=segment.name,
                nrows=matrix.nrows,
                ncols=matrix.ncols,
                nnz=int(indices.shape[0]),
                data_dtype=data.dtype.str,
            )
            self._state["segments"][key] = segment  # type: ignore[index]
            self._refs[key] = ref
            return ref

    def ref(self, key: DatasetKey) -> Optional[SharedMatrixRef]:
        with self._lock:
            return self._refs.get(key)

    def segment_names(self) -> List[str]:
        """Names of the live segments (tests assert these vanish on close)."""
        with self._lock:
            return [ref.segment for ref in self._refs.values()]

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "datasets_published": len(self._refs),
                "shm_bytes": sum(r.payload_nbytes for r in self._refs.values()),
            }

    @property
    def closed(self) -> bool:
        return bool(self._state["closed"])

    def close(self) -> None:
        self._finalizer()

    def __enter__(self) -> "DatasetTransport":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# Worker-side state (process-wide, reset only by tests)
# ----------------------------------------------------------------------

_WORKER_LOCK = threading.Lock()
#: refs offered to this process (task messages carry them), keyed by dataset
_WORKER_REFS: Dict[DatasetKey, SharedMatrixRef] = {}
#: segments this process attached — kept open for the process lifetime so
#: the zero-copy views handed out by ``materialise`` stay valid (the parent
#: owns unlink; closing here would invalidate live views)
_WORKER_SEGMENTS: Dict[str, shared_memory.SharedMemory] = {}
_WORKER_STATS: Dict[str, int] = {"attached_segments": 0, "materialised": 0}


def _attach_for_worker(name: str) -> shared_memory.SharedMemory:
    with _WORKER_LOCK:
        segment = _WORKER_SEGMENTS.get(name)
        if segment is None:
            segment = attach_segment(name)
            _WORKER_SEGMENTS[name] = segment
            _WORKER_STATS["attached_segments"] += 1
        return segment


def offer_shared_dataset(key: DatasetKey, ref: SharedMatrixRef) -> None:
    """Register a ref in this process (the scheduler ships one per task)."""
    with _WORKER_LOCK:
        _WORKER_REFS[key] = ref


def shared_dataset(key: DatasetKey) -> Optional[SharedMatrixRef]:
    """The ref offered for ``key`` in this process, if any."""
    with _WORKER_LOCK:
        return _WORKER_REFS.get(key)


def worker_transport_stats() -> Dict[str, int]:
    """This process's attach/materialise counters (residency reporting)."""
    with _WORKER_LOCK:
        return dict(_WORKER_STATS)


def reset_worker_state() -> None:
    """Drop offered refs and attached segments (test isolation only)."""
    with _WORKER_LOCK:
        _WORKER_REFS.clear()
        for segment in _WORKER_SEGMENTS.values():
            try:
                segment.close()
            except Exception:
                pass
        _WORKER_SEGMENTS.clear()
        _WORKER_STATS["attached_segments"] = 0
        _WORKER_STATS["materialised"] = 0

"""Synthetic matrix generators, the Table II dataset suite, statistics and I/O."""

from . import generators
from .io import read_matrix_market, write_matrix_market
from .stats import MatrixStats, bandwidth_profile, matrix_stats, spy_histogram
from .suite import (
    DATASETS,
    DatasetSpec,
    dataset_names,
    eukarya_like,
    hv15r_like,
    load_dataset,
    nlpkkt_like,
    queen_like,
    stokes_like,
)

__all__ = [
    "generators",
    "read_matrix_market",
    "write_matrix_market",
    "MatrixStats",
    "matrix_stats",
    "spy_histogram",
    "bandwidth_profile",
    "DATASETS",
    "DatasetSpec",
    "dataset_names",
    "load_dataset",
    "queen_like",
    "stokes_like",
    "eukarya_like",
    "hv15r_like",
    "nlpkkt_like",
]

"""Synthetic matrix generators, the Table II dataset suite, statistics and I/O."""

from . import generators
from .cache import (
    dataset_cache_dir,
    dataset_cache_enabled,
    dataset_cache_path,
    dataset_cache_stats,
)
from .io import read_matrix_market, read_npz, write_matrix_market, write_npz
from .stats import MatrixStats, bandwidth_profile, matrix_stats, spy_histogram
from .suite import (
    DATASETS,
    DatasetSpec,
    dataset_cache_status,
    dataset_names,
    eukarya_like,
    hv15r_like,
    load_dataset,
    nlpkkt_like,
    queen_like,
    stokes_like,
)
from .transport import DatasetTransport, SharedMatrixRef

__all__ = [
    "generators",
    "dataset_cache_dir",
    "dataset_cache_enabled",
    "dataset_cache_path",
    "dataset_cache_stats",
    "dataset_cache_status",
    "read_matrix_market",
    "write_matrix_market",
    "read_npz",
    "write_npz",
    "MatrixStats",
    "matrix_stats",
    "spy_histogram",
    "bandwidth_profile",
    "DATASETS",
    "DatasetSpec",
    "DatasetTransport",
    "SharedMatrixRef",
    "dataset_names",
    "load_dataset",
    "queen_like",
    "stokes_like",
    "eukarya_like",
    "hv15r_like",
    "nlpkkt_like",
]

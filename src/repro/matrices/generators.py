"""Synthetic sparse-matrix generators.

The paper benchmarks on five SuiteSparse matrices with 283M–448M nonzeros
(Table II), which are neither shipped with this reproduction nor practical
to multiply in pure Python.  These generators produce *structurally
analogous* matrices at configurable (laptop) scale; the mapping to the
paper's datasets lives in :mod:`repro.matrices.suite`.

The generators cover the structural regimes the paper's analysis depends on:

* **banded / block-banded** (queen, nlpkkt): nonzeros clustered near the
  diagonal → the natural ordering already minimises 1D communication;
* **clustered block structure** (hv15r): dense-ish diagonal blocks from a
  CFD mesh decomposition, mildly unsymmetric;
* **saddle-point / KKT block form** (stokes, nlpkkt): a 2×2 or 3×3 block
  matrix with banded diagonal blocks and sparse coupling blocks;
* **community graphs with no usable ordering** (eukarya): an RMAT/random
  community graph whose natural labelling scatters nonzeros everywhere —
  the case where only graph partitioning helps;
* **Erdős–Rényi** uniform random matrices — the worst case for 1D
  algorithms identified by Ballard et al. and echoed in the paper.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..sparse import CSCMatrix

__all__ = [
    "erdos_renyi",
    "banded",
    "block_diagonal_clustered",
    "kkt_block",
    "saddle_point",
    "rmat_graph",
    "community_graph",
    "restriction_like",
]

_INDEX_DTYPE = np.int64


def _dedupe_coo(
    n_rows: int, n_cols: int, rows: np.ndarray, cols: np.ndarray, vals: np.ndarray
) -> CSCMatrix:
    return CSCMatrix.from_coo(n_rows, n_cols, rows, cols, vals, sum_duplicates=True)


def erdos_renyi(
    n: int,
    avg_degree: float,
    *,
    symmetric: bool = True,
    seed: Optional[int] = None,
) -> CSCMatrix:
    """Erdős–Rényi random matrix with ``avg_degree`` expected nonzeros per column."""
    rng = np.random.default_rng(seed)
    nnz_target = int(n * avg_degree)
    rows = rng.integers(0, n, size=nnz_target, dtype=_INDEX_DTYPE)
    cols = rng.integers(0, n, size=nnz_target, dtype=_INDEX_DTYPE)
    vals = rng.random(nnz_target) + 0.1
    if symmetric:
        rows, cols = np.concatenate([rows, cols]), np.concatenate([cols, rows])
        vals = np.concatenate([vals, vals])
    return _dedupe_coo(n, n, rows, cols, vals)


def banded(
    n: int,
    bandwidth: int,
    *,
    fill: float = 0.4,
    symmetric: bool = True,
    seed: Optional[int] = None,
) -> CSCMatrix:
    """Random matrix whose nonzeros lie within ``bandwidth`` of the diagonal.

    ``fill`` is the expected fraction of in-band positions that are nonzero.
    Models stiffness-matrix-like inputs (queen_4147) where a mesh numbering
    keeps couplings local.
    """
    rng = np.random.default_rng(seed)
    per_col = max(1, int(bandwidth * fill))
    cols = np.repeat(np.arange(n, dtype=_INDEX_DTYPE), per_col)
    offsets = rng.integers(-bandwidth, bandwidth + 1, size=cols.shape[0], dtype=_INDEX_DTYPE)
    rows = np.clip(cols + offsets, 0, n - 1)
    vals = rng.random(cols.shape[0]) + 0.1
    # Always keep the diagonal so the matrix is structurally non-singular-ish.
    diag = np.arange(n, dtype=_INDEX_DTYPE)
    rows = np.concatenate([rows, diag])
    cols = np.concatenate([cols, diag])
    vals = np.concatenate([vals, np.full(n, float(bandwidth))])
    if symmetric:
        rows, cols = np.concatenate([rows, cols]), np.concatenate([cols, rows])
        vals = np.concatenate([vals, vals])
    return _dedupe_coo(n, n, rows, cols, vals)


def block_diagonal_clustered(
    n: int,
    nblocks: int,
    *,
    intra_density: float = 0.05,
    inter_density: float = 0.0005,
    symmetric: bool = False,
    seed: Optional[int] = None,
) -> CSCMatrix:
    """Strongly clustered block structure (the hv15r-like CFD regime).

    ``nblocks`` diagonal blocks are filled with density ``intra_density``;
    a small number of couplings between neighbouring blocks are added with
    density ``inter_density``.
    """
    rng = np.random.default_rng(seed)
    bounds = np.linspace(0, n, nblocks + 1).astype(_INDEX_DTYPE)
    rows_parts = []
    cols_parts = []
    for b in range(nblocks):
        lo, hi = int(bounds[b]), int(bounds[b + 1])
        size = hi - lo
        if size <= 0:
            continue
        count = max(size, int(size * size * intra_density))
        rows_parts.append(rng.integers(lo, hi, size=count, dtype=_INDEX_DTYPE))
        cols_parts.append(rng.integers(lo, hi, size=count, dtype=_INDEX_DTYPE))
        # neighbour coupling to the next block
        if b + 1 < nblocks:
            nlo, nhi = int(bounds[b + 1]), int(bounds[b + 2])
            ncount = max(1, int(size * (nhi - nlo) * inter_density))
            rows_parts.append(rng.integers(lo, hi, size=ncount, dtype=_INDEX_DTYPE))
            cols_parts.append(rng.integers(nlo, nhi, size=ncount, dtype=_INDEX_DTYPE))
    diag = np.arange(n, dtype=_INDEX_DTYPE)
    rows = np.concatenate(rows_parts + [diag])
    cols = np.concatenate(cols_parts + [diag])
    vals = rng.random(rows.shape[0]) + 0.1
    if symmetric:
        rows, cols = np.concatenate([rows, cols]), np.concatenate([cols, rows])
        vals = np.concatenate([vals, vals])
    return _dedupe_coo(n, n, rows, cols, vals)


def kkt_block(
    n_primal: int,
    n_dual: int,
    *,
    bandwidth: int = 40,
    coupling_per_row: int = 3,
    seed: Optional[int] = None,
) -> CSCMatrix:
    """Symmetric KKT / saddle-point system [[H, Jᵀ], [J, 0]] (nlpkkt-like).

    ``H`` is a banded SPD-looking block of size ``n_primal``; ``J`` couples
    each dual variable to a handful of nearby primal variables.
    """
    rng = np.random.default_rng(seed)
    n = n_primal + n_dual
    H = banded(n_primal, bandwidth, symmetric=True, seed=seed)
    h_rows, h_cols, h_vals = H.to_coo()
    # J block: n_dual × n_primal, each row has `coupling_per_row` entries
    # clustered around (row / n_dual) * n_primal to preserve locality.
    j_rows = np.repeat(np.arange(n_dual, dtype=_INDEX_DTYPE), coupling_per_row)
    centers = (j_rows * (n_primal / max(1, n_dual))).astype(_INDEX_DTYPE)
    spread = rng.integers(-bandwidth, bandwidth + 1, size=j_rows.shape[0], dtype=_INDEX_DTYPE)
    j_cols = np.clip(centers + spread, 0, n_primal - 1)
    j_vals = rng.random(j_rows.shape[0]) + 0.1
    rows = np.concatenate([h_rows, j_rows + n_primal, j_cols])
    cols = np.concatenate([h_cols, j_cols, j_rows + n_primal])
    vals = np.concatenate([h_vals, j_vals, j_vals])
    return _dedupe_coo(n, n, rows, cols, vals)


def saddle_point(
    n_velocity: int,
    n_pressure: int,
    *,
    bandwidth: int = 30,
    coupling_per_row: int = 4,
    seed: Optional[int] = None,
) -> CSCMatrix:
    """Unsymmetric Stokes-like saddle-point matrix [[A, B], [C, 0]].

    ``A`` (velocity block) is banded but unsymmetric; the off-diagonal
    coupling blocks ``B`` and ``C`` are *not* transposes of each other, making
    the overall matrix unsymmetric (like the stokes dataset in Table II).
    """
    rng = np.random.default_rng(seed)
    n = n_velocity + n_pressure
    A = banded(n_velocity, bandwidth, symmetric=False, seed=seed)
    a_rows, a_cols, a_vals = A.to_coo()

    def coupling(nr, nc, per_row, rng):
        rows = np.repeat(np.arange(nr, dtype=_INDEX_DTYPE), per_row)
        centers = (rows * (nc / max(1, nr))).astype(_INDEX_DTYPE)
        spread = rng.integers(-bandwidth, bandwidth + 1, size=rows.shape[0], dtype=_INDEX_DTYPE)
        cols = np.clip(centers + spread, 0, nc - 1)
        vals = rng.random(rows.shape[0]) + 0.1
        return rows, cols, vals

    b_rows, b_cols, b_vals = coupling(n_velocity, n_pressure, coupling_per_row, rng)
    c_rows, c_cols, c_vals = coupling(n_pressure, n_velocity, coupling_per_row, rng)
    rows = np.concatenate([a_rows, b_rows, c_rows + n_velocity])
    cols = np.concatenate([a_cols, b_cols + n_velocity, c_cols])
    vals = np.concatenate([a_vals, b_vals, c_vals])
    return _dedupe_coo(n, n, rows, cols, vals)


def rmat_graph(
    scale: int,
    edge_factor: int = 8,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    symmetric: bool = True,
    seed: Optional[int] = None,
) -> CSCMatrix:
    """R-MAT (Graph500-style) power-law graph with ``2**scale`` vertices.

    Heavy-tailed degree distribution and no exploitable vertex ordering —
    the regime where the paper's eukarya dataset lives.
    """
    rng = np.random.default_rng(seed)
    n = 1 << scale
    nedges = n * edge_factor
    rows = np.zeros(nedges, dtype=_INDEX_DTYPE)
    cols = np.zeros(nedges, dtype=_INDEX_DTYPE)
    # Vectorised RMAT: draw one quadrant decision per bit level for all edges
    # (the implicit fourth-quadrant probability is 1 - a - b - c).
    for level in range(scale):
        r = rng.random(nedges)
        # quadrant: 0 -> (0,0), 1 -> (0,1), 2 -> (1,0), 3 -> (1,1)
        quad = np.select(
            [r < a, r < a + b, r < a + b + c], [0, 1, 2], default=3
        )
        bit = 1 << (scale - 1 - level)
        rows += np.where((quad == 2) | (quad == 3), bit, 0)
        cols += np.where((quad == 1) | (quad == 3), bit, 0)
    vals = rng.random(nedges) + 0.1
    if symmetric:
        rows, cols = np.concatenate([rows, cols]), np.concatenate([cols, rows])
        vals = np.concatenate([vals, vals])
    return _dedupe_coo(n, n, rows, cols, vals)


def community_graph(
    n: int,
    ncommunities: int,
    avg_degree: float,
    *,
    mixing: float = 0.3,
    shuffle: bool = True,
    seed: Optional[int] = None,
) -> CSCMatrix:
    """Planted-partition community graph, optionally with shuffled labels.

    With ``shuffle=True`` (default) the vertex ids are randomly permuted, so
    the community structure exists but is *hidden* from the natural ordering
    — a graph partitioner can recover it, mere block-splitting cannot.  This
    is the eukarya-like regime: METIS permutation helps, natural order does
    not.  ``mixing`` is the fraction of edges that cross communities.
    """
    rng = np.random.default_rng(seed)
    communities = rng.integers(0, ncommunities, size=n, dtype=_INDEX_DTYPE)
    # Sort so community blocks are contiguous before optional shuffling.
    communities.sort()
    nedges = int(n * avg_degree / 2)
    src = rng.integers(0, n, size=nedges, dtype=_INDEX_DTYPE)
    # Intra-community edges: pick a partner within the same community block.
    comm_of = communities
    same = rng.random(nedges) >= mixing
    # For intra edges choose a random vertex of the same community via
    # rejection-free trick: offsets within community blocks.
    block_start = np.searchsorted(communities, np.arange(ncommunities))
    block_end = np.searchsorted(communities, np.arange(ncommunities), side="right")
    sizes = np.maximum(block_end - block_start, 1)
    partner_intra = (
        block_start[comm_of[src]]
        + (rng.random(nedges) * sizes[comm_of[src]]).astype(_INDEX_DTYPE)
    )
    partner_inter = rng.integers(0, n, size=nedges, dtype=_INDEX_DTYPE)
    dst = np.where(same, partner_intra, partner_inter)
    vals = rng.random(nedges) + 0.1
    rows = np.concatenate([src, dst])
    cols = np.concatenate([dst, src])
    vals = np.concatenate([vals, vals])
    if shuffle:
        relabel = rng.permutation(n).astype(_INDEX_DTYPE)
        rows = relabel[rows]
        cols = relabel[cols]
    return _dedupe_coo(n, n, rows, cols, vals)


def restriction_like(
    n_fine: int,
    n_coarse: int,
    *,
    clustered: bool = True,
    seed: Optional[int] = None,
) -> CSCMatrix:
    """Aggregation-style restriction operator R: n_fine × n_coarse, one nnz per row.

    Matches Table III's structure ("Each row of the restriction operator
    matrices has exactly one non-zero element").  With ``clustered=True`` the
    aggregates are contiguous ranges of fine vertices (what MIS-2 aggregation
    produces on a well-ordered mesh); otherwise assignments are random.
    """
    rng = np.random.default_rng(seed)
    if n_coarse <= 0 or n_fine <= 0 or n_coarse > n_fine:
        raise ValueError("need 0 < n_coarse <= n_fine")
    rows = np.arange(n_fine, dtype=_INDEX_DTYPE)
    if clustered:
        cols = (rows * n_coarse // n_fine).astype(_INDEX_DTYPE)
    else:
        cols = rng.integers(0, n_coarse, size=n_fine, dtype=_INDEX_DTYPE)
    vals = np.ones(n_fine, dtype=np.float64)
    return CSCMatrix.from_coo(n_fine, n_coarse, rows, cols, vals, sum_duplicates=False)

"""MatrixMarket I/O.

The paper's datasets come from the SuiteSparse collection as MatrixMarket
files.  Users of this library who *do* have those files (hv15r.mtx, …) can
load them with :func:`read_matrix_market` and run the same harness on the
real inputs; round-tripping through :func:`write_matrix_market` is used by
the tests.  scipy's ``mmread``/``mmwrite`` handle the format details.
"""

from __future__ import annotations

import pathlib
from typing import Union

import scipy.io
import scipy.sparse as sp

from ..sparse import CSCMatrix, csc_from_scipy, to_scipy

__all__ = ["read_matrix_market", "write_matrix_market"]

PathLike = Union[str, pathlib.Path]


def read_matrix_market(path: PathLike) -> CSCMatrix:
    """Read a MatrixMarket file into a :class:`CSCMatrix`."""
    mat = scipy.io.mmread(str(path))
    return csc_from_scipy(sp.csc_matrix(mat))


def write_matrix_market(path: PathLike, matrix, *, comment: str = "") -> None:
    """Write a local matrix (CSC/DCSC/scipy) to a MatrixMarket file."""
    scipy.io.mmwrite(str(path), to_scipy(matrix), comment=comment)

"""Matrix I/O: MatrixMarket (interchange) and npz (fast binary cache).

The paper's datasets come from the SuiteSparse collection as MatrixMarket
files.  Users of this library who *do* have those files (hv15r.mtx, …) can
load them with :func:`read_matrix_market` and run the same harness on the
real inputs; round-tripping through :func:`write_matrix_market` is used by
the tests.  scipy's ``mmread``/``mmwrite`` handle the format details.

:func:`write_npz`/:func:`read_npz` persist a :class:`CSCMatrix` as a
numpy ``.npz`` archive of its raw arrays — the storage format of the
dataset disk cache (:mod:`repro.matrices.cache`), orders of magnitude
faster than MatrixMarket text for the repeated loads a sweep performs.
"""

from __future__ import annotations

import pathlib
from typing import Union

import numpy as np
import scipy.io
import scipy.sparse as sp

from ..sparse import CSCMatrix, csc_from_scipy, to_scipy

__all__ = ["read_matrix_market", "write_matrix_market", "read_npz", "write_npz"]

PathLike = Union[str, pathlib.Path]


def read_matrix_market(path: PathLike) -> CSCMatrix:
    """Read a MatrixMarket file into a :class:`CSCMatrix`."""
    mat = scipy.io.mmread(str(path))
    return csc_from_scipy(sp.csc_matrix(mat))


def write_matrix_market(path: PathLike, matrix, *, comment: str = "") -> None:
    """Write a local matrix (CSC/DCSC/scipy) to a MatrixMarket file."""
    scipy.io.mmwrite(str(path), to_scipy(matrix), comment=comment)


def write_npz(path: PathLike, matrix: CSCMatrix) -> None:
    """Persist a :class:`CSCMatrix` as an uncompressed ``.npz`` archive."""
    np.savez(
        str(path),
        shape=np.array(matrix.shape, dtype=np.int64),
        indptr=matrix.indptr,
        indices=matrix.indices,
        data=matrix.data,
    )


def read_npz(path: PathLike) -> CSCMatrix:
    """Load a :class:`CSCMatrix` written by :func:`write_npz`."""
    with np.load(str(path)) as archive:
        nrows, ncols = (int(x) for x in archive["shape"])
        return CSCMatrix(
            nrows=nrows,
            ncols=ncols,
            indptr=archive["indptr"],
            indices=archive["indices"],
            data=archive["data"],
        )

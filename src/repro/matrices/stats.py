"""Matrix statistics: the quantities of Table II / Table III and spy histograms.

The paper's Table II lists rows, columns, nnz and symmetry for each input;
Table III lists the restriction operator dimensions; Figures 2–3 show spy
plots establishing that the nonzeros are "clustered together in some
matrices … not simple enough to categorize as banded or diagonal block
matrices".  This module computes those quantities plus a couple of
clustering diagnostics used to sanity-check that the synthetic analogues are
in the intended regime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from ..sparse import as_csc

__all__ = ["MatrixStats", "matrix_stats", "spy_histogram", "bandwidth_profile"]


@dataclass
class MatrixStats:
    """Summary statistics of one sparse matrix (one Table II / III row)."""

    name: str
    nrows: int
    ncols: int
    nnz: int
    symmetric: bool
    #: number of non-empty columns (DCSC's nzc)
    nzc: int
    avg_nnz_per_column: float
    max_nnz_per_column: int
    #: fraction of nnz within |i-j| <= 5% of n (a clustering indicator)
    near_diagonal_fraction: float

    def as_row(self) -> Dict[str, object]:
        return {
            "matrix": self.name,
            "rows": self.nrows,
            "columns": self.ncols,
            "nnz": self.nnz,
            "symmetric": "Yes" if self.symmetric else "No",
            "nzc": self.nzc,
            "avg nnz/col": round(self.avg_nnz_per_column, 2),
            "max nnz/col": self.max_nnz_per_column,
            "near-diag frac": round(self.near_diagonal_fraction, 3),
        }


def _is_symmetric(A) -> bool:
    A = as_csc(A)
    if A.nrows != A.ncols:
        return False
    return A.allclose(A.transpose())


def matrix_stats(A, name: str = "matrix") -> MatrixStats:
    """Compute the Table II statistics (plus clustering diagnostics) for ``A``."""
    A = as_csc(A)
    col_nnz = A.column_nnz()
    rows, cols, _ = A.to_coo()
    if A.nnz and A.nrows == A.ncols:
        band = max(1, int(0.05 * A.nrows))
        near_diag = float(np.count_nonzero(np.abs(rows - cols) <= band)) / A.nnz
    else:
        near_diag = 0.0
    return MatrixStats(
        name=name,
        nrows=A.nrows,
        ncols=A.ncols,
        nnz=A.nnz,
        symmetric=_is_symmetric(A),
        nzc=A.nzc(),
        avg_nnz_per_column=float(col_nnz.mean()) if A.ncols else 0.0,
        max_nnz_per_column=int(col_nnz.max()) if A.ncols else 0,
        near_diagonal_fraction=near_diag,
    )


def spy_histogram(A, bins: int = 32) -> np.ndarray:
    """A ``bins × bins`` density grid of the nonzero pattern (text-mode spy plot).

    This is the reproduction of Figures 2–3: rather than rendering an image,
    the benchmark prints the grid so the clustering (diagonal mass, block
    structure) is visible in text output.
    """
    A = as_csc(A)
    grid = np.zeros((bins, bins), dtype=np.int64)
    if A.nnz == 0:
        return grid
    rows, cols, _ = A.to_coo()
    r_bin = np.minimum((rows * bins) // max(1, A.nrows), bins - 1)
    c_bin = np.minimum((cols * bins) // max(1, A.ncols), bins - 1)
    np.add.at(grid, (r_bin, c_bin), 1)
    return grid


def bandwidth_profile(A) -> Tuple[int, float]:
    """(maximum, mean) distance of nonzeros from the diagonal."""
    A = as_csc(A)
    if A.nnz == 0 or A.nrows != A.ncols:
        return (0, 0.0)
    rows, cols, _ = A.to_coo()
    dist = np.abs(rows - cols)
    return (int(dist.max()), float(dist.mean()))

"""Resident elementwise operations on :class:`DistributedOperand`.

Iterative SpGEMM consumers — Markov clustering above all — interleave
multiplies with elementwise work: Hadamard products, thresholding, column
scaling, MCL's inflation.  Pre-pipeline code would gather a global matrix,
transform it on the host, and redistribute; these helpers instead transform
the **resident** distributed pieces rank by rank, charging the work to the
cluster ledger, so an iterative workload never assembles a global matrix
between steps.

Accounting conventions (same units as the rest of the runtime):

* every helper runs inside its own named ledger phase and charges **local
  computation only** (``γ`` seconds per touched entry, counted as flops) —
  except :func:`column_sums`, whose global reduction goes through the
  existing :meth:`~repro.runtime.communicator.Communicator.allgather`
  collective and therefore conserves bytes by construction;
* no helper ever moves matrix entries between ranks: layouts are preserved,
  so every phase they create satisfies ``bytes_sent == bytes_received``
  (trivially 0 = 0 for the compute-only ones);
* all helpers are deterministic — the same operand produces bit-identical
  ledgers and results.

Layout support: all layouts with per-rank pieces (1D columns, 1D rows, 2D
blocks) for :func:`ewise_mult` and :func:`prune`; the column-oriented
helpers (:func:`scale_columns`, :func:`inflate`, :func:`column_sums`)
require the 1D **column** layout, where every rank owns whole columns and
column sums are rank-local.
"""

from __future__ import annotations

from typing import Callable, List

import numpy as np

from ..distribution import DistributedBlocks2D, DistributedColumns1D, DistributedRows1D
from ..runtime import SimulatedCluster
from ..sparse import CSCMatrix
from ..sparse.ops import elementwise_multiply
from ..sparse.ops import scale_columns as _scale_columns_local
from .masking import iter_local_pieces
from .pipeline import (
    LAYOUT_BLOCKS_2D,
    LAYOUT_COLUMNS_1D,
    LAYOUT_ROWS_1D,
    DistributedOperand,
)

__all__ = [
    "ewise_mult",
    "prune",
    "scale_columns",
    "inflate",
    "column_sums",
]


def _rebuild(op: DistributedOperand, pieces: List[CSCMatrix]) -> DistributedOperand:
    """Wrap transformed per-rank pieces back into ``op``'s layout."""
    if op.layout in (LAYOUT_COLUMNS_1D, LAYOUT_ROWS_1D):
        dist_cls = (
            DistributedColumns1D if op.layout == LAYOUT_COLUMNS_1D else DistributedRows1D
        )
        return DistributedOperand(
            layout=op.layout,
            dist=dist_cls(
                nrows=op.dist.nrows,
                ncols=op.dist.ncols,
                nprocs=op.dist.nprocs,
                bounds=list(op.dist.bounds),
                locals_=pieces,
            ),
        )
    grid = op.dist.grid
    blocks = {}
    idx = 0
    for i in range(grid.prows):
        for j in range(grid.pcols):
            blocks[(i, j)] = pieces[idx]
            idx += 1
    return DistributedOperand.blocks_2d(
        DistributedBlocks2D(
            nrows=op.dist.nrows,
            ncols=op.dist.ncols,
            grid=grid,
            row_bounds=list(op.dist.row_bounds),
            col_bounds=list(op.dist.col_bounds),
            blocks=blocks,
        )
    )


def _map_locals(
    op: DistributedOperand,
    cluster: SimulatedCluster,
    phase: str,
    transform: Callable[[int, CSCMatrix], CSCMatrix],
    flops: Callable[[int, CSCMatrix], int],
) -> DistributedOperand:
    """Apply ``transform`` to every rank's piece inside one compute-only phase.

    Flops are collected into one per-rank vector and charged in a single
    batched pass (bit-identical to charging each rank in turn — see
    :meth:`SimulatedCluster.charge_compute_bulk`).
    """
    pieces: List[CSCMatrix] = []
    flops_per_rank = np.zeros(cluster.nprocs, dtype=np.int64)
    with cluster.phase(phase):
        for rank, local in iter_local_pieces(op):
            pieces.append(transform(rank, local))
            flops_per_rank[rank] += int(flops(rank, local))
        cluster.charge_compute_bulk(flops_per_rank)
    return _rebuild(op, pieces)


def _require_columns_1d(op: DistributedOperand, what: str) -> None:
    if op.layout != LAYOUT_COLUMNS_1D:
        raise ValueError(
            f"{what} requires a 1D column-distributed operand (each rank owns "
            f"whole columns), got layout {op.layout!r}"
        )


def ewise_mult(
    a: DistributedOperand,
    b: DistributedOperand,
    cluster: SimulatedCluster,
    *,
    phase: str = "ewise-mult",
) -> DistributedOperand:
    """Hadamard product ``A ⊙ B`` of two same-layout resident operands.

    Both operands must share layout *and* block bounds (entries never cross
    ranks); the per-rank sorted-merge intersection is charged as
    ``nnz(A_i) + nnz(B_i)`` flops.  Returns a new operand, same layout.
    """
    if a.layout != b.layout:
        raise ValueError(f"layout mismatch: {a.layout!r} vs {b.layout!r}")
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    b_pieces = dict(iter_local_pieces(b))
    if a.layout in (LAYOUT_COLUMNS_1D, LAYOUT_ROWS_1D):
        if list(a.dist.bounds) != list(b.dist.bounds):
            raise ValueError("ewise_mult operands must share block bounds")
    elif a.layout == LAYOUT_BLOCKS_2D:
        if (
            a.dist.grid != b.dist.grid
            or list(a.dist.row_bounds) != list(b.dist.row_bounds)
            or list(a.dist.col_bounds) != list(b.dist.col_bounds)
        ):
            raise ValueError("ewise_mult operands must share the block grid")
    else:
        raise ValueError(f"operand layout {a.layout!r} is not resident")
    return _map_locals(
        a,
        cluster,
        phase,
        lambda rank, local: elementwise_multiply(local, b_pieces[rank]),
        # The sorted merge walks both patterns — same convention as the
        # masked-multiply filter in repro.core.masking.
        lambda rank, local: local.nnz + b_pieces[rank].nnz,
    )


def prune(
    op: DistributedOperand,
    threshold: float,
    cluster: SimulatedCluster,
    *,
    phase: str = "prune",
) -> DistributedOperand:
    """Drop stored entries with ``|value| <= threshold``, rank-locally.

    MCL's pruning step: after inflation, near-zero transition probabilities
    are removed to keep the iterate sparse.  Charged as one flop per stored
    entry (the magnitude test); no bytes move.
    """
    if threshold < 0:
        raise ValueError(f"prune threshold must be non-negative, got {threshold}")
    return _map_locals(
        op,
        cluster,
        phase,
        lambda rank, local: local.prune_explicit_zeros(tol=threshold),
        lambda rank, local: local.nnz,
    )


def scale_columns(
    op: DistributedOperand,
    scales: np.ndarray,
    cluster: SimulatedCluster,
    *,
    phase: str = "scale-columns",
) -> DistributedOperand:
    """Multiply global column ``j`` by ``scales[j]`` (1D column layout only).

    ``scales`` is a dense global vector of length ``ncols``; each rank
    applies its own slice, so the operation is rank-local.  Charged as one
    flop per stored entry.
    """
    _require_columns_1d(op, "scale_columns")
    scales = np.asarray(scales, dtype=np.float64)
    if scales.shape[0] != op.ncols:
        raise ValueError(
            f"scales length {scales.shape[0]} does not match ncols {op.ncols}"
        )

    def _transform(rank: int, local: CSCMatrix) -> CSCMatrix:
        s, e = op.dist.bounds[rank]
        return _scale_columns_local(local, scales[s:e])

    return _map_locals(op, cluster, phase, _transform, lambda rank, local: local.nnz)


def inflate(
    op: DistributedOperand,
    r: float,
    cluster: SimulatedCluster,
    *,
    phase: str = "inflate",
) -> DistributedOperand:
    """MCL inflation: raise entries to the power ``r``, then column-normalise.

    Requires the 1D column layout (column sums are then rank-local, so the
    whole step charges computation only — ``2·nnz`` flops per rank: one for
    the power, one for the scale).  ``r == 1.0`` is a pure column
    normalisation, which MCL also uses to restore stochasticity after
    pruning.  Entries are assumed non-negative (Markov matrices); columns
    whose sum is zero are left untouched.
    """
    _require_columns_1d(op, "inflate")
    if r <= 0:
        raise ValueError(f"inflation exponent must be positive, got {r}")

    def _transform(rank: int, local: CSCMatrix) -> CSCMatrix:
        data = local.data if r == 1.0 else np.power(local.data, r)
        sums = np.zeros(local.ncols, dtype=np.float64)
        col_of_entry = np.repeat(
            np.arange(local.ncols, dtype=np.int64), np.diff(local.indptr)
        )
        np.add.at(sums, col_of_entry, data)
        safe = np.where(sums != 0.0, sums, 1.0)
        return CSCMatrix(
            nrows=local.nrows,
            ncols=local.ncols,
            indptr=local.indptr.copy(),
            indices=local.indices.copy(),
            data=data / safe[col_of_entry],
        )

    return _map_locals(op, cluster, phase, _transform, lambda rank, local: 2 * local.nnz)


def column_sums(
    op: DistributedOperand,
    cluster: SimulatedCluster,
    *,
    phase: str = "column-sums",
) -> np.ndarray:
    """Global per-column sums, allgathered so every rank holds the vector.

    Each rank sums its own columns locally (one flop per stored entry),
    then the per-rank partial vectors go through the existing
    :meth:`~repro.runtime.communicator.Communicator.allgather` collective —
    the one communicating elementwise helper, conserved by construction.
    Returns the dense global vector of length ``ncols``.
    """
    _require_columns_1d(op, "column_sums")
    out = np.zeros(op.ncols, dtype=np.float64)
    flops_per_rank = np.zeros(cluster.nprocs, dtype=np.int64)
    with cluster.phase(phase):
        per_rank = {}
        for rank, local in iter_local_pieces(op):
            s, e = op.dist.bounds[rank]
            sums = np.zeros(local.ncols, dtype=np.float64)
            col_of_entry = np.repeat(
                np.arange(local.ncols, dtype=np.int64), np.diff(local.indptr)
            )
            np.add.at(sums, col_of_entry, local.data)
            flops_per_rank[rank] += local.nnz
            out[s:e] = sums
            per_rank[rank] = sums
        cluster.charge_compute_bulk(flops_per_rank)
        cluster.comm.allgather(per_rank)
    return out

"""Algorithm 1 — the sparsity-aware 1D SpGEMM algorithm.

``A``, ``B`` and ``C`` are 1D column-distributed; ``B`` and ``C`` are
stationary and only the needed pieces of ``A`` move, fetched with
passive-target RDMA ``Get`` operations:

1. every process exposes two windows over its local ``A_i`` (row ids and
   numeric values, stored column-compressed);
2. the nonzero-column ids of ``A`` (the ``D`` vector) and the per-column
   nnz prefix sums are allgathered, so every process can compute remote
   offsets without talking to the target;
3. each process ``p_i`` marks the nonzero *rows* of its ``B_i`` in a dense
   boolean ``H_i``, intersects with ``D`` to get the required columns
   ``D̃``, and plans at most ``K`` block fetches per remote process
   (Algorithm 2, :mod:`repro.core.block_fetch`);
4. the planned blocks are fetched with ``MPI_Get``; the needed columns are
   compacted into a new local matrix ``Ã`` (better locality than indexing
   into the full ``A``);
5. ``C_i = Ã · B_i`` is computed locally with the hybrid kernel — no
   communication of the output is ever needed because ``C`` is already in
   the desired 1D layout.

Steps 1–2 are :meth:`SparsityAware1D.prepare` (charged once per resident
``A`` operand — repeated multiplies against the same stationary ``A`` reuse
the exposed windows and metadata for free, exactly as a long-lived
``MPI_Win`` would behave); steps 3–5 are :meth:`SparsityAware1D.execute`.
The implementation follows the paper's steps literally, in SPMD style over
the simulated cluster, recording every byte and message in the cluster's
ledger.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..distribution import DistributedColumns1D
from ..runtime import SimulatedCluster
from ..sparse import CSCMatrix, local_spgemm, SpGEMMKernelStats
from ..sparse.flops import per_column_flops
from .base import DistributedSpGEMMAlgorithm, SpGEMMResult
from .block_fetch import BlockFetchPlanner
from .estimator import BYTES_PER_ENTRY
from .masking import (
    apply_mask,
    coerce_mask_columns_1d,
    masked_info,
    validate_mask_mode,
)
from .pipeline import DistributedOperand, PreparedMultiply, coerce_columns_1d

__all__ = ["SparsityAware1D", "sparsity_aware_spgemm_1d"]

_INDEX_DTYPE = np.int64


@dataclass
class SparsityAware1D(DistributedSpGEMMAlgorithm):
    """The paper's sparsity-aware 1D SpGEMM algorithm (Algorithm 1 + 2)."""

    #: Algorithm 2's K — the maximum number of RDMA calls per remote process.
    block_split: int = 2048
    #: local kernel passed to :func:`repro.sparse.local_spgemm`
    kernel: str = "hybrid"
    #: build the compacted Ã (True, the paper's design) or multiply against the
    #: fetched-but-uncompacted columns (False, used by the compaction ablation)
    compact: bool = True

    name: str = field(default="1d-sparsity-aware", init=False)

    # ------------------------------------------------------------------
    def prepare_operand(
        self,
        A,
        cluster: SimulatedCluster,
        *,
        bounds: Optional[Sequence[Tuple[int, int]]] = None,
    ) -> DistributedOperand:
        """Distribute ``A`` by column blocks and expose its windows (setup phase)."""
        op = coerce_columns_1d(A, cluster.nprocs, bounds=bounds)
        self._expose(op, cluster)
        return op

    def prepare(
        self,
        A,
        B,
        cluster: SimulatedCluster,
        *,
        a_bounds: Optional[Sequence[Tuple[int, int]]] = None,
        b_bounds: Optional[Sequence[Tuple[int, int]]] = None,
        distributed_a: Optional[DistributedColumns1D] = None,
        distributed_b: Optional[DistributedColumns1D] = None,
        mask=None,
        mask_mode: str = "late",
    ) -> PreparedMultiply:
        P = cluster.nprocs

        # --------------------------------------------------------------
        # Distribution (assumed pre-existing in the paper; kept out of the
        # timed phases, matching "SpGEMM kernel time" reporting).
        # --------------------------------------------------------------
        op_a = coerce_columns_1d(
            distributed_a if distributed_a is not None else A, P, bounds=a_bounds
        )
        op_b = coerce_columns_1d(
            distributed_b if distributed_b is not None else B, P, bounds=b_bounds
        )
        if op_b.dist.nrows != op_a.dist.ncols:
            raise ValueError(
                f"inner dimensions do not match: {op_a.dist.shape} x {op_b.dist.shape}"
            )
        op_m = None
        if mask is not None:
            # The mask lives in the output layout — C follows B's column
            # bounds — so applying it after the kernel is purely rank-local.
            validate_mask_mode(mask_mode, allow_early=True)
            op_m = coerce_mask_columns_1d(
                mask,
                P,
                shape=(op_a.dist.nrows, op_b.dist.ncols),
                bounds=op_b.dist.bounds,
            )
        self._expose(op_a, cluster)
        return PreparedMultiply(
            algorithm=self,
            cluster=cluster,
            a=op_a,
            b=op_b,
            mask=op_m,
            mask_mode=mask_mode,
        )

    # ------------------------------------------------------------------
    def _expose(self, op_a: DistributedOperand, cluster: SimulatedCluster) -> None:
        """Phase "setup": window creation + allgather of the A metadata
        (nonzero column ids D and per-column nnz) — Algorithm 1 lines 1-2.

        A no-op when the operand is already exposed: a resident ``A`` pays
        this exactly once per run, not once per multiply.
        """
        if op_a.exposed:
            if op_a.window.cluster is not cluster:
                # The window charges its own cluster's ledger on every get;
                # executing on a different cluster would silently account the
                # whole fetch phase to the wrong run.
                raise ValueError(
                    "resident operand was exposed on a different cluster; "
                    "prepare it on the cluster that will execute the multiply"
                )
            return
        dist_a = op_a.dist
        P = cluster.nprocs
        with cluster.phase("setup"):
            exposed: Dict[int, Dict[str, np.ndarray]] = {}
            # Per-rank metadata every process will own a copy of.
            rank_nonzero_cols: List[np.ndarray] = []     # global ids of nonzero cols
            rank_col_prefix: List[np.ndarray] = []       # prefix sum of nnz over those cols
            for rank in range(P):
                local_a = dist_a.local(rank)
                start_col, _ = dist_a.column_bounds(rank)
                nz_local = local_a.nonzero_columns()
                col_nnz = local_a.column_nnz()[nz_local]
                prefix = np.zeros(nz_local.shape[0] + 1, dtype=_INDEX_DTYPE)
                prefix[1:] = np.cumsum(col_nnz)
                rank_nonzero_cols.append(nz_local + start_col)
                rank_col_prefix.append(prefix)
                # The exposed windows hold the *compressed* row-id/value arrays
                # (empty columns occupy no space), so interval offsets follow
                # the prefix array directly.
                exposed[rank] = {
                    "rowids": local_a.indices.astype(_INDEX_DTYPE, copy=True),
                    "values": local_a.data.astype(np.float64, copy=True),
                }
                cluster.charge_other_bytes(rank, local_a.memory_bytes())
            op_a.window = cluster.create_window(exposed)
            op_a.rank_nonzero_cols = rank_nonzero_cols
            op_a.rank_col_prefix = rank_col_prefix
            # Allgather D and the per-column nnz metadata.
            metadata = {
                rank: (rank_nonzero_cols[rank], rank_col_prefix[rank]) for rank in range(P)
            }
            cluster.comm.allgather(metadata)

    # ------------------------------------------------------------------
    def execute(self, prepared: PreparedMultiply) -> SpGEMMResult:
        cluster = prepared.cluster
        op_a, op_b = prepared.a, prepared.b
        dist_a: DistributedColumns1D = op_a.dist
        dist_b: DistributedColumns1D = op_b.dist
        window = op_a.window
        rank_nonzero_cols = op_a.rank_nonzero_cols
        rank_col_prefix = op_a.rank_col_prefix
        P = cluster.nprocs
        k_inner = dist_a.ncols
        scope = cluster.phase_prefix

        # --------------------------------------------------------------
        # Phase "fetch": per-rank block-fetch planning and RDMA Gets
        # (Algorithm 1 lines 3-8 + Algorithm 2).
        # --------------------------------------------------------------
        fetched_for_rank: List[List[Tuple[np.ndarray, np.ndarray, np.ndarray]]] = [
            [] for _ in range(P)
        ]
        total_required_cols = 0
        total_fetched_cols = 0
        mask_early = prepared.mask is not None and prepared.mask_mode == "early"
        # The remote layout is identical for every origin rank, so the
        # Algorithm-2 geometry is hoisted into one planner shared by all P
        # planning passes; each origin then touches only its hot targets.
        planner = BlockFetchPlanner(rank_nonzero_cols, self.block_split)
        # Per-target nnz per nonzero column, shared by every origin rank.
        rank_col_nnz = [np.diff(prefix) for prefix in rank_col_prefix]
        with cluster.phase("fetch"):
            with window.epoch():
                for rank in range(P):
                    local_b = dist_b.local(rank)
                    # H_i: nonzero rows of B_i over the global inner dimension.
                    if mask_early:
                        # Early masking: output columns whose mask column is
                        # empty are all-zero after masking, so only B_i
                        # columns with mask support mark rows in H_i — the
                        # fetch plan shrinks and modelled volume drops.
                        m_local = prepared.mask.dist.local(rank)
                        hit = local_b.extract_columns(
                            m_local.nonzero_columns()
                        ).nonzero_rows_mask()
                    else:
                        hit = local_b.nonzero_rows_mask()
                    compact = planner.plan_compact(hit)
                    total_required_cols += compact.required_total
                    total_fetched_cols += compact.fetched_total
                    for target, plan in compact.iter_hot():
                        remote_cols = rank_nonzero_cols[target]
                        prefix = rank_col_prefix[target]
                        covered = plan.covered_positions
                        if target == rank:
                            # Local columns need no RDMA; the local A_i is at
                            # hand.  The compaction ablation (compact=False)
                            # keeps every column of the selected blocks, just
                            # like the remote path.
                            if self.compact:
                                positions = plan.required_positions
                            else:
                                positions = covered
                            take = remote_cols[positions]
                            local_a = dist_a.local(rank)
                            start_col, _ = dist_a.column_bounds(rank)
                            sub = local_a.extract_columns(take - start_col)
                            r, c, v = sub.to_coo()
                            fetched_for_rank[rank].append((take[c], r, v))
                            continue
                        # Translate column-position intervals into exposed-array
                        # ranges using the remote prefix sums (no communication:
                        # every rank owns the metadata).
                        data_ranges = list(
                            zip(
                                prefix[plan.interval_starts].tolist(),
                                prefix[plan.interval_stops].tolist(),
                            )
                        )
                        rowids, values = window.get_concat_many(
                            rank, target, ("rowids", "values"), data_ranges
                        )
                        # Reconstruct which global column each fetched entry
                        # belongs to, then keep only the required ones for Ã.
                        per_col_nnz = rank_col_nnz[target][covered]
                        col_ids = np.repeat(remote_cols[covered], per_col_nnz)
                        if self.compact:
                            keep = np.repeat(plan.covered_required, per_col_nnz)
                            col_ids, rowids, values = (
                                col_ids[keep],
                                rowids[keep],
                                values[keep],
                            )
                        fetched_for_rank[rank].append((col_ids, rowids, values))

        # --------------------------------------------------------------
        # Phase "multiply": build Ã and compute C_i = Ã · B_i locally
        # (Algorithm 1 lines 8-9).
        # --------------------------------------------------------------
        c_locals: List[CSCMatrix] = []
        kernel_stats = SpGEMMKernelStats()
        other_bytes_per_rank = np.zeros(P, dtype=np.int64)
        flops_per_rank = np.zeros(P, dtype=np.int64)
        with cluster.phase("multiply"):
            for rank in range(P):
                local_b = dist_b.local(rank)
                parts = fetched_for_rank[rank]
                if parts:
                    cols = np.concatenate([p[0] for p in parts])
                    rows = np.concatenate([p[1] for p in parts])
                    vals = np.concatenate([p[2] for p in parts])
                else:
                    cols = np.zeros(0, dtype=_INDEX_DTYPE)
                    rows = np.zeros(0, dtype=_INDEX_DTYPE)
                    vals = np.zeros(0, dtype=np.float64)
                # Ã keeps the global inner dimension but only the needed
                # columns are populated (a DCSC-style hypersparse matrix).
                a_tilde = CSCMatrix.from_coo(
                    dist_a.nrows, k_inner, rows, cols, vals, sum_duplicates=False
                )
                other_bytes_per_rank[rank] = a_tilde.memory_bytes()
                cluster.charge_memory(
                    rank,
                    dist_a.local(rank).memory_bytes()
                    + local_b.memory_bytes()
                    + a_tilde.memory_bytes(),
                )
                flops_per_rank[rank] = int(per_column_flops(a_tilde, local_b).sum())
                with cluster.measured(rank, "comp"):
                    c_local = local_spgemm(
                        a_tilde, local_b, kernel=self.kernel, stats=kernel_stats
                    )
                cluster.charge_memory(
                    rank,
                    dist_a.local(rank).memory_bytes()
                    + local_b.memory_bytes()
                    + a_tilde.memory_bytes()
                    + c_local.memory_bytes(),
                )
                c_locals.append(c_local)
            # Batched charge passes — bit-identical to the per-rank calls the
            # loop used to make (each rank is charged exactly once).
            cluster.charge_other_bytes_bulk(other_bytes_per_rank)
            cluster.charge_compute_bulk(flops_per_rank)

        # C is naturally 1D distributed in B's column layout — no communication
        # is ever needed for the output (Algorithm 1), and the global matrix
        # only exists if someone asks for SpGEMMResult.C.
        op_c = DistributedOperand.columns_1d(
            DistributedColumns1D(
                nrows=dist_a.nrows,
                ncols=dist_b.ncols,
                nprocs=P,
                bounds=list(dist_b.bounds),
                locals_=c_locals,
            )
        )
        if prepared.mask is not None:
            # Rank-local pattern filter ("mask" phase, computation only) —
            # in early mode this also removes any entries computed in
            # masked-out columns as a side effect of shared fetches.
            op_c = apply_mask(cluster, op_c, prepared.mask)

        # memA uses the same wire-byte definition as the symbolic estimator
        # (``nnz(A) · BYTES_PER_ENTRY``: 8-byte row id + 8-byte value per
        # stored entry — exactly what the rowid/value windows expose), so the
        # executed CV/memA ratio is directly comparable to the predicted one
        # and to the paper's ≈30% partitioning threshold.
        a_total_bytes = sum(
            dist_a.local(rank).nnz for rank in range(P)
        ) * BYTES_PER_ENTRY
        # Bytes moved by the RDMA fetches of A only (what Fig 5 plots); the
        # ledger's total additionally includes the metadata allgather.
        fetch_bytes = sum(
            st.bytes_received
            for st in cluster.ledger.phases.get(scope + "fetch", [])
        )
        comm_bytes = fetch_bytes
        # Scoped executions (resident chains) report only their own slice of
        # the run-wide ledger; the unscoped wrapper keeps the whole thing.
        ledger = cluster.ledger if not scope else cluster.ledger.subset(scope)
        info = {
            "block_split": float(self.block_split),
            "fetch_bytes": float(fetch_bytes),
            "rdma_gets": float(ledger.total_rdma_gets()),
            "required_columns": float(total_required_cols),
            "fetched_columns": float(total_fetched_cols),
            "cv_over_memA": (
                (comm_bytes / P) / a_total_bytes if a_total_bytes else 0.0
            ),
            "kernel_flops": float(kernel_stats.flops),
            "output_nnz": float(op_c.nnz),
        }
        info.update(masked_info(prepared.mask, prepared.mask_mode))
        return SpGEMMResult(
            ledger=ledger,
            algorithm=self.name,
            nprocs=P,
            info=info,
            distributed_c=op_c,
        )


def sparsity_aware_spgemm_1d(
    A,
    B,
    cluster: SimulatedCluster,
    *,
    block_split: int = 2048,
    kernel: str = "hybrid",
    **kwargs,
) -> SpGEMMResult:
    """Functional wrapper around :class:`SparsityAware1D`."""
    return SparsityAware1D(block_split=block_split, kernel=kernel).multiply(
        A, B, cluster, **kwargs
    )

"""Resident distributed operands — the state the prepare/execute pipeline reuses.

The paper's 1D design keeps ``B`` and ``C`` stationary and produces ``C``
already in the desired layout, so a chain of multiplies never has to touch a
global matrix between steps.  The original drivers threw that away: every
``multiply()`` took *global* operands, redistributed them from scratch, and
reassembled a global ``C`` at the end.  This module introduces the two
objects that make distributions first-class instead:

:class:`DistributedOperand`
    A matrix resident on the simulated cluster in a concrete layout — 1D
    column blocks, 1D row blocks, 2D grid blocks, or (for inputs that have
    not been distributed yet) a plain global matrix.  For the sparsity-aware
    1D algorithm the operand additionally carries the *exposed* RDMA windows
    and the allgathered column metadata, so repeated multiplies against the
    same stationary ``A`` (BC's frontier expansions, iterated squaring)
    charge the window creation + metadata allgather **once** instead of once
    per call.  The global matrix is assembled lazily and cached — a
    modelled-only experiment run never assembles at all.

:class:`PreparedMultiply`
    The output of ``DistributedSpGEMMAlgorithm.prepare(A, B, cluster)``:
    both operands resident (and, for 1D, exposed), ready for one or more
    ``execute`` calls.  ``multiply()`` is now the thin legacy wrapper
    ``execute(prepare(...))`` and is bit-identical to the pre-pipeline
    drivers.

Assembly of a global matrix is host work that was never charged to the
modelled ledgers, so laziness changes no modelled number — it only removes
host wall-clock and memory from chained and modelled-only runs.

Units and conservation: sizes (``nnz``) count stored matrix entries;
everything ``prepare`` charges for setup (window creation, the metadata
allgather) goes through the cluster's collectives and therefore satisfies
the per-phase ``bytes_sent == bytes_received`` invariant — making an
operand resident never unbalances a ledger.  Pure layout bookkeeping
(wrapping, coercion of an already-assembled matrix) is uncharged, matching
the paper's convention that inputs are distributed before timing starts.
"""

from __future__ import annotations

import contextlib
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..distribution import (
    DistributedBlocks2D,
    DistributedColumns1D,
    DistributedRows1D,
)
from ..runtime import SimulatedCluster, WindowError
from ..sparse import CSCMatrix, as_csc

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (base imports us)
    from ..runtime.window import RdmaWindow
    from .base import DistributedSpGEMMAlgorithm

__all__ = [
    "LAYOUT_COLUMNS_1D",
    "LAYOUT_ROWS_1D",
    "LAYOUT_BLOCKS_2D",
    "LAYOUT_GLOBAL",
    "DistributedOperand",
    "OperandCache",
    "PreparedMultiply",
    "as_operand",
    "coerce_columns_1d",
    "coerce_rows_1d",
    "eager_assembly_enabled",
    "estimate_operand_nbytes",
    "install_operand_cache",
    "operand_cache",
    "operand_source_tag",
    "tag_operand_source",
]

LAYOUT_COLUMNS_1D = "1d-columns"
LAYOUT_ROWS_1D = "1d-rows"
LAYOUT_BLOCKS_2D = "2d-blocks"
LAYOUT_GLOBAL = "global"

#: attribute carrying a matrix's provenance key, e.g. ``("dataset",
#: "hv15r", 0.5)`` — what makes an operand addressable by the cache
_SOURCE_TAG_ATTR = "_repro_operand_tag"


def tag_operand_source(matrix, tag: Tuple) -> None:
    """Stamp a matrix with its provenance key (dataset name/scale/...).

    Only tagged matrices participate in operand caching: the tag is what
    lets two independent runs recognise that they are distributing the
    *same* input.  Derived matrices (permuted, masked, squared) carry no
    tag and therefore never alias a cache entry.
    """
    try:
        setattr(matrix, _SOURCE_TAG_ATTR, tuple(tag))
    except (AttributeError, TypeError):  # slotted/frozen inputs: skip caching
        pass


def operand_source_tag(matrix) -> Optional[Tuple]:
    """The provenance key stamped by :func:`tag_operand_source` (or None)."""
    return getattr(matrix, _SOURCE_TAG_ATTR, None)


def estimate_operand_nbytes(value) -> int:
    """Best-effort resident size of a cached value, in bytes.

    Sums ``memory_bytes()`` over the local pieces of a distribution (or the
    matrix itself); the estimate drives LRU eviction, so being approximate
    is fine — being *zero* is not, hence the conservative fallback.
    """
    mem = getattr(value, "memory_bytes", None)
    if callable(mem):
        return int(mem())
    if isinstance(value, DistributedOperand):
        if value.layout == LAYOUT_GLOBAL:
            return estimate_operand_nbytes(value._global)
        return estimate_operand_nbytes(value.dist)
    locals_ = getattr(value, "locals_", None)
    if locals_ is not None:
        return sum(estimate_operand_nbytes(m) for m in locals_)
    blocks = getattr(value, "blocks", None)
    if isinstance(blocks, dict):
        return sum(estimate_operand_nbytes(b) for b in blocks.values())
    nnz = getattr(value, "nnz", None)
    if isinstance(nnz, (int, np.integer)):
        return int(nnz) * 16 or 1024
    return 1024


class OperandCache:
    """Process-wide LRU cache of resident operands, bounded by bytes.

    Keyed by provenance — ``("dataset", name, scale)`` for loaded inputs,
    ``("dist", source_tag, layout, nprocs, bounds)`` for distributions — so
    repeated workloads against the same input skip regeneration *and*
    redistribution.  Everything cached here is **host-side state**: reusing
    an entry never changes a modelled counter (distribution is uncharged
    layout bookkeeping; charged setup like 1D window exposure happens per
    run, cache or no cache).  The ``repro serve`` service installs one per
    process via :func:`install_operand_cache`; without an installed cache
    every hook below is a no-op, so batch runs behave exactly as before.

    Thread-safe: the service's serial lane and the asyncio handlers share
    one instance.

    Entries can be **pinned** (:meth:`pin` / :meth:`unpin`, or the
    :meth:`borrowing` context manager the engine wraps around an in-flight
    execute): a pinned entry is skipped by LRU eviction, so an operand a
    run is actively using can never be dropped mid-execute no matter how
    much a concurrent run inserts.
    """

    def __init__(self, max_bytes: int = 256 * 1024 * 1024):
        self.max_bytes = int(max_bytes)
        self._lock = threading.RLock()
        self._entries: "OrderedDict[Tuple, Tuple[object, int]]" = OrderedDict()
        self._pins: Dict[Tuple, int] = {}
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Tuple):
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry[0]

    def put(self, key: Tuple, value, nbytes: Optional[int] = None) -> bool:
        """Insert (refreshing LRU position); returns False if the value
        alone exceeds the budget and was not cached."""
        size = int(nbytes) if nbytes is not None else estimate_operand_nbytes(value)
        with self._lock:
            if size > self.max_bytes:
                return False
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old[1]
            self._entries[key] = (value, size)
            self._bytes += size
            while self._bytes > self.max_bytes and len(self._entries) > 1:
                # Oldest unpinned entry that is not the one just inserted;
                # when everything else is borrowed by an in-flight execute
                # the cache temporarily overshoots its budget instead of
                # invalidating an operand somebody is using.
                victim = next(
                    (
                        k for k in self._entries
                        if k != key and not self._pins.get(k)
                    ),
                    None,
                )
                if victim is None:
                    break
                _, evicted_size = self._entries.pop(victim)
                self._bytes -= evicted_size
                self.evictions += 1
            return True

    def pin(self, key: Tuple) -> None:
        """Protect ``key`` from eviction until a matching :meth:`unpin`."""
        with self._lock:
            self._pins[key] = self._pins.get(key, 0) + 1

    def unpin(self, key: Tuple) -> None:
        with self._lock:
            count = self._pins.get(key, 0) - 1
            if count <= 0:
                self._pins.pop(key, None)
            else:
                self._pins[key] = count

    @contextlib.contextmanager
    def borrowing(self, key: Tuple):
        """Context manager pinning ``key`` for the duration of a borrow."""
        self.pin(key)
        try:
            yield
        finally:
            self.unpin(key)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._pins.clear()
            self._bytes = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def resident_bytes(self) -> int:
        with self._lock:
            return self._bytes

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "resident_bytes": self._bytes,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "pinned": len(self._pins),
            }


_OPERAND_CACHE: Optional[OperandCache] = None
_OPERAND_CACHE_LOCK = threading.Lock()


def install_operand_cache(cache: Optional[OperandCache]) -> Optional[OperandCache]:
    """Install (or, with ``None``, remove) the process-wide operand cache.

    Returns the previously-installed cache so callers can restore it.
    """
    global _OPERAND_CACHE
    with _OPERAND_CACHE_LOCK:
        previous = _OPERAND_CACHE
        _OPERAND_CACHE = cache
        return previous


def operand_cache() -> Optional[OperandCache]:
    """The installed process-wide cache, or ``None`` (hooks disabled)."""
    return _OPERAND_CACHE


def eager_assembly_enabled() -> bool:
    """Assemble every result's global C eagerly (``REPRO_EAGER_ASSEMBLY``).

    Only used by regression tests to prove that laziness never changes a
    persisted record: a sweep run with this flag set writes byte-identical
    JSONL to one run without it.
    """
    return os.environ.get("REPRO_EAGER_ASSEMBLY", "").strip().lower() in (
        "1",
        "true",
        "yes",
    )


@dataclass
class DistributedOperand:
    """A sparse matrix resident on the cluster in a concrete layout.

    Exactly one of ``dist`` (a layout object) or ``_global`` (a plain global
    matrix, layout ``"global"``) backs the operand; ``global_matrix()``
    assembles lazily from the layout and caches the result.

    The three ``window``/``rank_nonzero_cols``/``rank_col_prefix`` fields are
    the sparsity-aware 1D algorithm's resident state (Algorithm 1 lines 1–2):
    the per-rank exposed row-id/value windows and the allgathered nonzero
    column ids ``D`` with their nnz prefix sums.  They are attached by
    :meth:`SparsityAware1D.prepare` the first time the operand is used as the
    stationary ``A`` and reused — uncharged — on every later multiply.
    """

    layout: str
    dist: Optional[object] = None
    #: exposed RDMA windows over the local row-id/value arrays (1D A only)
    window: Optional["RdmaWindow"] = None
    #: per-rank global ids of nonzero columns (the paper's ``D`` vector)
    rank_nonzero_cols: Optional[List[np.ndarray]] = None
    #: per-rank nnz prefix sums over those columns
    rank_col_prefix: Optional[List[np.ndarray]] = None
    _global: Optional[CSCMatrix] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.layout == LAYOUT_GLOBAL:
            if self._global is None:
                raise ValueError("global-layout operand requires the matrix")
        elif self.dist is None:
            raise ValueError(f"layout {self.layout!r} requires a distribution object")

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_global(cls, A) -> "DistributedOperand":
        """Wrap an undistributed global matrix (drivers distribute on demand)."""
        return cls(layout=LAYOUT_GLOBAL, _global=as_csc(A))

    @classmethod
    def columns_1d(cls, dist: DistributedColumns1D) -> "DistributedOperand":
        return cls(layout=LAYOUT_COLUMNS_1D, dist=dist)

    @classmethod
    def rows_1d(cls, dist: DistributedRows1D) -> "DistributedOperand":
        return cls(layout=LAYOUT_ROWS_1D, dist=dist)

    @classmethod
    def blocks_2d(cls, dist: DistributedBlocks2D) -> "DistributedOperand":
        return cls(layout=LAYOUT_BLOCKS_2D, dist=dist)

    # ------------------------------------------------------------------
    # Shape / size without assembly
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        if self.layout == LAYOUT_GLOBAL:
            return self._global.shape
        return (self.dist.nrows, self.dist.ncols)

    @property
    def nrows(self) -> int:
        return self.shape[0]

    @property
    def ncols(self) -> int:
        return self.shape[1]

    @property
    def nnz(self) -> int:
        """Stored entries, computed from the distributed pieces.

        Every layout's assembly is a pure concatenation over disjoint index
        ranges (explicit zeros are retained, duplicates are impossible across
        blocks), so this equals ``global_matrix().nnz`` without assembling —
        pinned by the pipeline tests for all six drivers.
        """
        if self.layout == LAYOUT_GLOBAL:
            return self._global.nnz
        if self.layout == LAYOUT_BLOCKS_2D:
            return sum(blk.nnz for blk in self.dist.blocks.values())
        return self.dist.nnz

    @property
    def exposed(self) -> bool:
        """Were the 1D RDMA windows + metadata already created (setup charged)?"""
        return self.window is not None

    @property
    def assembled(self) -> bool:
        """Has the global matrix been materialised (lazily or at construction)?"""
        return self._global is not None

    # ------------------------------------------------------------------
    def global_matrix(self) -> CSCMatrix:
        """Assemble (lazily, cached) the global matrix from the layout."""
        if self._global is None:
            self._global = self.dist.to_global()
        return self._global

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DistributedOperand(layout={self.layout!r}, shape={self.shape}, "
            f"nnz={self.nnz}, exposed={self.exposed}, assembled={self.assembled})"
        )


@dataclass
class PreparedMultiply:
    """Resident operands bound to an algorithm and a cluster, ready to run.

    ``extras`` carries whatever per-algorithm state ``prepare`` computed
    beyond the two operands (e.g. the 3D layer split, which distributes both
    operands jointly).

    ``mask``, when set, is a *pattern* mask resident in the driver's output
    layout: ``execute`` computes ``C = (A·B) ⊙ M`` by intersecting each
    rank's local product with its local mask piece after the kernel — a
    purely local filter, never charged any communication (see
    :mod:`repro.core.masking`).  ``mask_mode`` is ``"late"`` (every driver)
    or ``"early"`` (1D only: the fetch plan is additionally pruned against
    the mask's column support, reducing modelled volume).
    """

    algorithm: "DistributedSpGEMMAlgorithm"
    cluster: SimulatedCluster
    a: DistributedOperand
    b: DistributedOperand
    extras: Dict[str, object] = field(default_factory=dict)
    #: optional pattern mask, resident in the output layout
    mask: Optional[DistributedOperand] = None
    #: "late" (post-kernel filter) or "early" (1D fetch pruning + filter)
    mask_mode: str = "late"

    def execute(self):
        """Run the multiply (delegates to ``algorithm.execute(self)``).

        Refuses to run against a cluster that has been shut down: the
        operands' windows (and, on real backends, the transport) are gone,
        so executing would otherwise fail deep inside the ledger with an
        unrelated-looking error.  This extends the wrong-cluster guard in
        ``prepare`` to the cluster's lifetime.
        """
        if getattr(self.cluster, "closed", False):
            raise WindowError(
                "cannot execute a PreparedMultiply on a shut-down "
                f"{getattr(self.cluster, 'backend_name', 'simulated')!r} backend "
                "cluster; prepare and execute on a live cluster (the backend "
                "was shut down after this multiply was prepared)"
            )
        return self.algorithm.execute(self)


# ----------------------------------------------------------------------
# Coercion helpers shared by the drivers
# ----------------------------------------------------------------------

def as_operand(A) -> DistributedOperand:
    """Wrap ``A`` as an operand (pass-through when it already is one)."""
    if isinstance(A, DistributedOperand):
        return A
    if isinstance(A, DistributedColumns1D):
        return DistributedOperand.columns_1d(A)
    if isinstance(A, DistributedRows1D):
        return DistributedOperand.rows_1d(A)
    if isinstance(A, DistributedBlocks2D):
        return DistributedOperand.blocks_2d(A)
    return DistributedOperand.from_global(A)


def _bounds_match(requested: Optional[Sequence[Tuple[int, int]]], actual) -> bool:
    if requested is None:
        return True
    return [(int(s), int(e)) for s, e in requested] == [
        (int(s), int(e)) for s, e in actual
    ]


def _cached_distribution(A_global, layout: str, nprocs: int, bounds, builder):
    """Build (or reuse) a distribution of a tagged source matrix.

    Distribution is a pure function of (matrix, nprocs, bounds) and is
    never charged to a ledger — the paper's convention is that inputs are
    distributed before timing starts — so serving it from the installed
    :class:`OperandCache` elides host work only.  Untagged matrices (the
    common batch path) always rebuild.
    """
    cache = operand_cache()
    tag = operand_source_tag(A_global)
    if cache is None or tag is None:
        return builder()
    key = (
        "dist",
        tag,
        layout,
        int(nprocs),
        None if bounds is None else tuple((int(s), int(e)) for s, e in bounds),
    )
    dist = cache.get(key)
    if dist is None:
        dist = builder()
        cache.put(key, dist)
    return dist


def coerce_columns_1d(
    A,
    nprocs: int,
    *,
    bounds: Optional[Sequence[Tuple[int, int]]] = None,
) -> DistributedOperand:
    """Resolve ``A`` to a 1D column-distributed operand over ``nprocs`` ranks.

    A resident column operand is reused in place when its process count (and,
    if explicitly requested, its block bounds) match — this is what lets a
    chained multiply feed ``C`` straight back in without touching a global
    matrix.  Anything else falls back to distributing the (lazily assembled)
    global matrix exactly like the pre-pipeline drivers did.
    """
    op = as_operand(A)
    if (
        op.layout == LAYOUT_COLUMNS_1D
        and op.dist.nprocs == nprocs
        and _bounds_match(bounds, op.dist.bounds)
    ):
        return op
    A_global = op.global_matrix()
    return DistributedOperand(
        layout=LAYOUT_COLUMNS_1D,
        dist=_cached_distribution(
            A_global, LAYOUT_COLUMNS_1D, nprocs, bounds,
            lambda: DistributedColumns1D.from_global(A_global, nprocs, bounds=bounds),
        ),
        # The global form was just materialised (or given) — keep it cached so
        # drivers that still need it reuse the identical object.
        _global=A_global,
    )


def coerce_rows_1d(
    A,
    nprocs: int,
    *,
    bounds: Optional[Sequence[Tuple[int, int]]] = None,
) -> DistributedOperand:
    """Row-block analogue of :func:`coerce_columns_1d` (block-row drivers)."""
    op = as_operand(A)
    if (
        op.layout == LAYOUT_ROWS_1D
        and op.dist.nprocs == nprocs
        and _bounds_match(bounds, op.dist.bounds)
    ):
        return op
    A_global = op.global_matrix()
    return DistributedOperand(
        layout=LAYOUT_ROWS_1D,
        dist=_cached_distribution(
            A_global, LAYOUT_ROWS_1D, nprocs, bounds,
            lambda: DistributedRows1D.from_global(A_global, nprocs, bounds=bounds),
        ),
        _global=A_global,
    )

"""Resident distributed operands — the state the prepare/execute pipeline reuses.

The paper's 1D design keeps ``B`` and ``C`` stationary and produces ``C``
already in the desired layout, so a chain of multiplies never has to touch a
global matrix between steps.  The original drivers threw that away: every
``multiply()`` took *global* operands, redistributed them from scratch, and
reassembled a global ``C`` at the end.  This module introduces the two
objects that make distributions first-class instead:

:class:`DistributedOperand`
    A matrix resident on the simulated cluster in a concrete layout — 1D
    column blocks, 1D row blocks, 2D grid blocks, or (for inputs that have
    not been distributed yet) a plain global matrix.  For the sparsity-aware
    1D algorithm the operand additionally carries the *exposed* RDMA windows
    and the allgathered column metadata, so repeated multiplies against the
    same stationary ``A`` (BC's frontier expansions, iterated squaring)
    charge the window creation + metadata allgather **once** instead of once
    per call.  The global matrix is assembled lazily and cached — a
    modelled-only experiment run never assembles at all.

:class:`PreparedMultiply`
    The output of ``DistributedSpGEMMAlgorithm.prepare(A, B, cluster)``:
    both operands resident (and, for 1D, exposed), ready for one or more
    ``execute`` calls.  ``multiply()`` is now the thin legacy wrapper
    ``execute(prepare(...))`` and is bit-identical to the pre-pipeline
    drivers.

Assembly of a global matrix is host work that was never charged to the
modelled ledgers, so laziness changes no modelled number — it only removes
host wall-clock and memory from chained and modelled-only runs.

Units and conservation: sizes (``nnz``) count stored matrix entries;
everything ``prepare`` charges for setup (window creation, the metadata
allgather) goes through the cluster's collectives and therefore satisfies
the per-phase ``bytes_sent == bytes_received`` invariant — making an
operand resident never unbalances a ledger.  Pure layout bookkeeping
(wrapping, coercion of an already-assembled matrix) is uncharged, matching
the paper's convention that inputs are distributed before timing starts.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..distribution import (
    DistributedBlocks2D,
    DistributedColumns1D,
    DistributedRows1D,
)
from ..runtime import SimulatedCluster, WindowError
from ..sparse import CSCMatrix, as_csc

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (base imports us)
    from ..runtime.window import RdmaWindow
    from .base import DistributedSpGEMMAlgorithm

__all__ = [
    "LAYOUT_COLUMNS_1D",
    "LAYOUT_ROWS_1D",
    "LAYOUT_BLOCKS_2D",
    "LAYOUT_GLOBAL",
    "DistributedOperand",
    "PreparedMultiply",
    "as_operand",
    "coerce_columns_1d",
    "coerce_rows_1d",
    "eager_assembly_enabled",
]

LAYOUT_COLUMNS_1D = "1d-columns"
LAYOUT_ROWS_1D = "1d-rows"
LAYOUT_BLOCKS_2D = "2d-blocks"
LAYOUT_GLOBAL = "global"


def eager_assembly_enabled() -> bool:
    """Assemble every result's global C eagerly (``REPRO_EAGER_ASSEMBLY``).

    Only used by regression tests to prove that laziness never changes a
    persisted record: a sweep run with this flag set writes byte-identical
    JSONL to one run without it.
    """
    return os.environ.get("REPRO_EAGER_ASSEMBLY", "").strip().lower() in (
        "1",
        "true",
        "yes",
    )


@dataclass
class DistributedOperand:
    """A sparse matrix resident on the cluster in a concrete layout.

    Exactly one of ``dist`` (a layout object) or ``_global`` (a plain global
    matrix, layout ``"global"``) backs the operand; ``global_matrix()``
    assembles lazily from the layout and caches the result.

    The three ``window``/``rank_nonzero_cols``/``rank_col_prefix`` fields are
    the sparsity-aware 1D algorithm's resident state (Algorithm 1 lines 1–2):
    the per-rank exposed row-id/value windows and the allgathered nonzero
    column ids ``D`` with their nnz prefix sums.  They are attached by
    :meth:`SparsityAware1D.prepare` the first time the operand is used as the
    stationary ``A`` and reused — uncharged — on every later multiply.
    """

    layout: str
    dist: Optional[object] = None
    #: exposed RDMA windows over the local row-id/value arrays (1D A only)
    window: Optional["RdmaWindow"] = None
    #: per-rank global ids of nonzero columns (the paper's ``D`` vector)
    rank_nonzero_cols: Optional[List[np.ndarray]] = None
    #: per-rank nnz prefix sums over those columns
    rank_col_prefix: Optional[List[np.ndarray]] = None
    _global: Optional[CSCMatrix] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.layout == LAYOUT_GLOBAL:
            if self._global is None:
                raise ValueError("global-layout operand requires the matrix")
        elif self.dist is None:
            raise ValueError(f"layout {self.layout!r} requires a distribution object")

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_global(cls, A) -> "DistributedOperand":
        """Wrap an undistributed global matrix (drivers distribute on demand)."""
        return cls(layout=LAYOUT_GLOBAL, _global=as_csc(A))

    @classmethod
    def columns_1d(cls, dist: DistributedColumns1D) -> "DistributedOperand":
        return cls(layout=LAYOUT_COLUMNS_1D, dist=dist)

    @classmethod
    def rows_1d(cls, dist: DistributedRows1D) -> "DistributedOperand":
        return cls(layout=LAYOUT_ROWS_1D, dist=dist)

    @classmethod
    def blocks_2d(cls, dist: DistributedBlocks2D) -> "DistributedOperand":
        return cls(layout=LAYOUT_BLOCKS_2D, dist=dist)

    # ------------------------------------------------------------------
    # Shape / size without assembly
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        if self.layout == LAYOUT_GLOBAL:
            return self._global.shape
        return (self.dist.nrows, self.dist.ncols)

    @property
    def nrows(self) -> int:
        return self.shape[0]

    @property
    def ncols(self) -> int:
        return self.shape[1]

    @property
    def nnz(self) -> int:
        """Stored entries, computed from the distributed pieces.

        Every layout's assembly is a pure concatenation over disjoint index
        ranges (explicit zeros are retained, duplicates are impossible across
        blocks), so this equals ``global_matrix().nnz`` without assembling —
        pinned by the pipeline tests for all six drivers.
        """
        if self.layout == LAYOUT_GLOBAL:
            return self._global.nnz
        if self.layout == LAYOUT_BLOCKS_2D:
            return sum(blk.nnz for blk in self.dist.blocks.values())
        return self.dist.nnz

    @property
    def exposed(self) -> bool:
        """Were the 1D RDMA windows + metadata already created (setup charged)?"""
        return self.window is not None

    @property
    def assembled(self) -> bool:
        """Has the global matrix been materialised (lazily or at construction)?"""
        return self._global is not None

    # ------------------------------------------------------------------
    def global_matrix(self) -> CSCMatrix:
        """Assemble (lazily, cached) the global matrix from the layout."""
        if self._global is None:
            self._global = self.dist.to_global()
        return self._global

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DistributedOperand(layout={self.layout!r}, shape={self.shape}, "
            f"nnz={self.nnz}, exposed={self.exposed}, assembled={self.assembled})"
        )


@dataclass
class PreparedMultiply:
    """Resident operands bound to an algorithm and a cluster, ready to run.

    ``extras`` carries whatever per-algorithm state ``prepare`` computed
    beyond the two operands (e.g. the 3D layer split, which distributes both
    operands jointly).

    ``mask``, when set, is a *pattern* mask resident in the driver's output
    layout: ``execute`` computes ``C = (A·B) ⊙ M`` by intersecting each
    rank's local product with its local mask piece after the kernel — a
    purely local filter, never charged any communication (see
    :mod:`repro.core.masking`).  ``mask_mode`` is ``"late"`` (every driver)
    or ``"early"`` (1D only: the fetch plan is additionally pruned against
    the mask's column support, reducing modelled volume).
    """

    algorithm: "DistributedSpGEMMAlgorithm"
    cluster: SimulatedCluster
    a: DistributedOperand
    b: DistributedOperand
    extras: Dict[str, object] = field(default_factory=dict)
    #: optional pattern mask, resident in the output layout
    mask: Optional[DistributedOperand] = None
    #: "late" (post-kernel filter) or "early" (1D fetch pruning + filter)
    mask_mode: str = "late"

    def execute(self):
        """Run the multiply (delegates to ``algorithm.execute(self)``).

        Refuses to run against a cluster that has been shut down: the
        operands' windows (and, on real backends, the transport) are gone,
        so executing would otherwise fail deep inside the ledger with an
        unrelated-looking error.  This extends the wrong-cluster guard in
        ``prepare`` to the cluster's lifetime.
        """
        if getattr(self.cluster, "closed", False):
            raise WindowError(
                "cannot execute a PreparedMultiply on a shut-down "
                f"{getattr(self.cluster, 'backend_name', 'simulated')!r} backend "
                "cluster; prepare and execute on a live cluster (the backend "
                "was shut down after this multiply was prepared)"
            )
        return self.algorithm.execute(self)


# ----------------------------------------------------------------------
# Coercion helpers shared by the drivers
# ----------------------------------------------------------------------

def as_operand(A) -> DistributedOperand:
    """Wrap ``A`` as an operand (pass-through when it already is one)."""
    if isinstance(A, DistributedOperand):
        return A
    if isinstance(A, DistributedColumns1D):
        return DistributedOperand.columns_1d(A)
    if isinstance(A, DistributedRows1D):
        return DistributedOperand.rows_1d(A)
    if isinstance(A, DistributedBlocks2D):
        return DistributedOperand.blocks_2d(A)
    return DistributedOperand.from_global(A)


def _bounds_match(requested: Optional[Sequence[Tuple[int, int]]], actual) -> bool:
    if requested is None:
        return True
    return [(int(s), int(e)) for s, e in requested] == [
        (int(s), int(e)) for s, e in actual
    ]


def coerce_columns_1d(
    A,
    nprocs: int,
    *,
    bounds: Optional[Sequence[Tuple[int, int]]] = None,
) -> DistributedOperand:
    """Resolve ``A`` to a 1D column-distributed operand over ``nprocs`` ranks.

    A resident column operand is reused in place when its process count (and,
    if explicitly requested, its block bounds) match — this is what lets a
    chained multiply feed ``C`` straight back in without touching a global
    matrix.  Anything else falls back to distributing the (lazily assembled)
    global matrix exactly like the pre-pipeline drivers did.
    """
    op = as_operand(A)
    if (
        op.layout == LAYOUT_COLUMNS_1D
        and op.dist.nprocs == nprocs
        and _bounds_match(bounds, op.dist.bounds)
    ):
        return op
    A_global = op.global_matrix()
    return DistributedOperand(
        layout=LAYOUT_COLUMNS_1D,
        dist=DistributedColumns1D.from_global(A_global, nprocs, bounds=bounds),
        # The global form was just materialised (or given) — keep it cached so
        # drivers that still need it reuse the identical object.
        _global=A_global,
    )


def coerce_rows_1d(
    A,
    nprocs: int,
    *,
    bounds: Optional[Sequence[Tuple[int, int]]] = None,
) -> DistributedOperand:
    """Row-block analogue of :func:`coerce_columns_1d` (block-row drivers)."""
    op = as_operand(A)
    if (
        op.layout == LAYOUT_ROWS_1D
        and op.dist.nprocs == nprocs
        and _bounds_match(bounds, op.dist.bounds)
    ):
        return op
    A_global = op.global_matrix()
    return DistributedOperand(
        layout=LAYOUT_ROWS_1D,
        dist=DistributedRows1D.from_global(A_global, nprocs, bounds=bounds),
        _global=A_global,
    )

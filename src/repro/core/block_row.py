"""1D block-row baselines from Ballard et al. (2013).

Two reference points for the communication analysis in §II-A of the paper:

* **Naive block row** — ``A`` and ``C`` stay put, ``B`` circulates in a ring:
  every process eventually receives a full copy of ``B`` (P−1 shifts of the
  other processes' blocks), so the volume is Θ(P·nnz(B)) regardless of
  sparsity structure.
* **Improved block row** — each process requests only the *rows* of ``B`` it
  actually needs for its local block of ``A``; communication becomes
  sparsity-dependent.  This is the algorithm the paper's RDMA design
  descends from ("Our idea is similar to the improved block row algorithm,
  however we use RDMA to remove the ring style exchange").

Both are implemented here in a *row*-wise 1D layout (A, B, C split by rows,
the layout Ballard et al. analyse), using two-sided communication so the
pack/unpack overhead the RDMA design avoids is charged faithfully.  Both
ride the prepare/execute pipeline: ``prepare`` resolves the operands to
resident row-block distributions (reusing an already-resident one, e.g. a
previous product), ``execute`` runs the exchange and multiply phases and
returns a row-distributed ``C``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..distribution import DistributedRows1D
from ..runtime import SimulatedCluster
from ..sparse import CSCMatrix, local_spgemm
from ..sparse.flops import per_column_flops
from ..sparse.ops import extract_rows
from .base import DistributedSpGEMMAlgorithm, SpGEMMResult
from .masking import (
    apply_mask,
    coerce_mask_rows_1d,
    masked_info,
    validate_mask_mode,
)
from .pipeline import DistributedOperand, PreparedMultiply, coerce_rows_1d

__all__ = ["NaiveBlockRow1D", "ImprovedBlockRow1D"]

_INDEX_DTYPE = np.int64


def _rows_needed_by(local_a: CSCMatrix) -> np.ndarray:
    """Global inner indices (columns of the row-block of A) with nonzeros.

    In the row-wise formulation ``C_i = A_i · B``: process ``i`` holds the row
    block ``A_i`` and needs exactly the rows of ``B`` indexed by the nonzero
    *columns* of ``A_i``.
    """
    return local_a.nonzero_columns()


def _prepare_row_blocks(
    algorithm: DistributedSpGEMMAlgorithm,
    A,
    B,
    cluster: SimulatedCluster,
    a_bounds: Optional[Sequence[Tuple[int, int]]],
    b_bounds: Optional[Sequence[Tuple[int, int]]],
    mask=None,
    mask_mode: str = "late",
) -> PreparedMultiply:
    """Shared prepare step of both block-row variants.

    ``a_bounds``/``b_bounds`` are *row* bounds (this is the row-wise 1D
    layout), e.g. partition-derived block sizes.  The mask, when given,
    follows ``C``'s layout — the row blocks of ``A``.
    """
    P = cluster.nprocs
    op_a = coerce_rows_1d(A, P, bounds=a_bounds)
    op_b = coerce_rows_1d(B, P, bounds=b_bounds)
    if op_a.dist.ncols != op_b.dist.nrows:
        raise ValueError(
            f"inner dimensions do not match: {op_a.dist.shape} x {op_b.dist.shape}"
        )
    op_m = None
    if mask is not None:
        validate_mask_mode(mask_mode)
        op_m = coerce_mask_rows_1d(
            mask,
            P,
            shape=(op_a.dist.nrows, op_b.dist.ncols),
            bounds=op_a.dist.bounds,
        )
    return PreparedMultiply(
        algorithm=algorithm,
        cluster=cluster,
        a=op_a,
        b=op_b,
        mask=op_m,
        mask_mode=mask_mode,
    )


@dataclass
class NaiveBlockRow1D(DistributedSpGEMMAlgorithm):
    """Ring-exchange 1D baseline: every process receives all of ``B``."""

    kernel: str = "hybrid"
    name: str = field(default="1d-naive-block-row", init=False)

    def prepare(
        self,
        A,
        B,
        cluster: SimulatedCluster,
        *,
        a_bounds: Optional[Sequence[Tuple[int, int]]] = None,
        b_bounds: Optional[Sequence[Tuple[int, int]]] = None,
        mask=None,
        mask_mode: str = "late",
    ) -> PreparedMultiply:
        return _prepare_row_blocks(
            self, A, B, cluster, a_bounds, b_bounds, mask=mask, mask_mode=mask_mode
        )

    def execute(self, prepared: PreparedMultiply) -> SpGEMMResult:
        cluster = prepared.cluster
        dist_a: DistributedRows1D = prepared.a.dist
        dist_b: DistributedRows1D = prepared.b.dist
        P = cluster.nprocs
        scope = cluster.phase_prefix

        # Ring exchange: in step s, rank r receives the block originally owned
        # by rank (r + s) mod P.  Every block of B therefore visits every rank.
        # All P·(P−1) sends of the ring are charged in one batched call.
        with cluster.phase("ring-exchange"):
            block_sizes = np.array(
                [dist_b.local(r).memory_bytes() for r in range(P)], dtype=np.int64
            )
            steps = np.arange(1, P, dtype=np.int64)
            dsts = np.repeat(np.arange(P, dtype=np.int64), P - 1)
            srcs = (dsts + np.tile(steps, P)) % P
            cluster.comm.send_many(srcs, dsts, block_sizes[srcs])

        # After the ring completes each rank holds all of B.
        B_full = prepared.b.global_matrix()
        c_locals: List[CSCMatrix] = []
        with cluster.phase("multiply"):
            for rank in range(P):
                local_a = dist_a.local(rank)
                flops = int(per_column_flops(local_a, B_full).sum())
                with cluster.measured(rank, "comp"):
                    c_local = local_spgemm(local_a, B_full, kernel=self.kernel)
                cluster.charge_compute(rank, flops)
                cluster.charge_memory(
                    rank,
                    local_a.memory_bytes()
                    + B_full.memory_bytes()
                    + c_local.memory_bytes(),
                )
                c_locals.append(c_local)

        op_c = _row_block_operand(c_locals, dist_a, B_full.ncols)
        if prepared.mask is not None:
            op_c = apply_mask(cluster, op_c, prepared.mask)
        ledger = cluster.ledger if not scope else cluster.ledger.subset(scope)
        return SpGEMMResult(
            ledger=ledger,
            algorithm=self.name,
            nprocs=P,
            info=masked_info(prepared.mask, prepared.mask_mode),
            distributed_c=op_c,
        )


@dataclass
class ImprovedBlockRow1D(DistributedSpGEMMAlgorithm):
    """Request-only-needed-rows 1D baseline (two-sided, no RDMA)."""

    kernel: str = "hybrid"
    name: str = field(default="1d-improved-block-row", init=False)

    def prepare(
        self,
        A,
        B,
        cluster: SimulatedCluster,
        *,
        a_bounds: Optional[Sequence[Tuple[int, int]]] = None,
        b_bounds: Optional[Sequence[Tuple[int, int]]] = None,
        mask=None,
        mask_mode: str = "late",
    ) -> PreparedMultiply:
        return _prepare_row_blocks(
            self, A, B, cluster, a_bounds, b_bounds, mask=mask, mask_mode=mask_mode
        )

    def execute(self, prepared: PreparedMultiply) -> SpGEMMResult:
        cluster = prepared.cluster
        dist_a: DistributedRows1D = prepared.a.dist
        dist_b: DistributedRows1D = prepared.b.dist
        P = cluster.nprocs
        scope = cluster.phase_prefix
        b_nrows, b_ncols = prepared.b.shape

        # Each rank asks the owners for the rows of B it needs; the owners
        # extract (pack) and send them — the packing overhead is the point.
        needed_rows_per_rank: List[np.ndarray] = []
        with cluster.phase("request"):
            request_buffers: Dict[int, Dict[int, object]] = {r: {} for r in range(P)}
            for rank in range(P):
                needed = _rows_needed_by(dist_a.local(rank))
                needed_rows_per_rank.append(needed)
                for owner in range(P):
                    rs, re = dist_b.row_bounds(owner)
                    wanted = needed[(needed >= rs) & (needed < re)]
                    if wanted.size and owner != rank:
                        request_buffers[rank][owner] = wanted
            cluster.comm.alltoallv(request_buffers)

        fetched_per_rank: List[List[CSCMatrix]] = [[] for _ in range(P)]
        fetched_rows_per_rank: List[List[np.ndarray]] = [[] for _ in range(P)]
        with cluster.phase("exchange"):
            reply_buffers: Dict[int, Dict[int, object]] = {r: {} for r in range(P)}
            for rank in range(P):
                needed = needed_rows_per_rank[rank]
                for owner in range(P):
                    rs, re = dist_b.row_bounds(owner)
                    wanted = needed[(needed >= rs) & (needed < re)]
                    if wanted.size == 0:
                        continue
                    sub = extract_rows(dist_b.local(owner), wanted - rs)
                    if owner == rank:
                        fetched_per_rank[rank].append(sub)
                        fetched_rows_per_rank[rank].append(wanted)
                    else:
                        reply_buffers[owner][rank] = sub
                        fetched_per_rank[rank].append(sub)
                        fetched_rows_per_rank[rank].append(wanted)
            cluster.comm.alltoallv(reply_buffers)

        c_locals: List[CSCMatrix] = []
        with cluster.phase("multiply"):
            for rank in range(P):
                local_a = dist_a.local(rank)
                # Assemble the fetched rows of B into a k × n operand with the
                # global row numbering (unfetched rows stay empty).
                rows_parts = []
                cols_parts = []
                vals_parts = []
                for rows_global, sub in zip(
                    fetched_rows_per_rank[rank], fetched_per_rank[rank]
                ):
                    r, c, v = sub.to_coo()
                    rows_parts.append(rows_global[r])
                    cols_parts.append(c)
                    vals_parts.append(v)
                if rows_parts:
                    b_needed = CSCMatrix.from_coo(
                        b_nrows,
                        b_ncols,
                        np.concatenate(rows_parts),
                        np.concatenate(cols_parts),
                        np.concatenate(vals_parts),
                        sum_duplicates=False,
                    )
                else:
                    b_needed = CSCMatrix.empty(b_nrows, b_ncols)
                cluster.charge_other_bytes(rank, b_needed.memory_bytes())
                flops = int(per_column_flops(local_a, b_needed).sum())
                with cluster.measured(rank, "comp"):
                    c_local = local_spgemm(local_a, b_needed, kernel=self.kernel)
                cluster.charge_compute(rank, flops)
                cluster.charge_memory(
                    rank,
                    local_a.memory_bytes()
                    + b_needed.memory_bytes()
                    + c_local.memory_bytes(),
                )
                c_locals.append(c_local)

        op_c = _row_block_operand(c_locals, dist_a, b_ncols)
        if prepared.mask is not None:
            op_c = apply_mask(cluster, op_c, prepared.mask)
        ledger = cluster.ledger if not scope else cluster.ledger.subset(scope)
        return SpGEMMResult(
            ledger=ledger,
            algorithm=self.name,
            nprocs=P,
            info=masked_info(prepared.mask, prepared.mask_mode),
            distributed_c=op_c,
        )


def _row_block_operand(
    c_locals: List[CSCMatrix], dist_a: DistributedRows1D, ncols: int
) -> DistributedOperand:
    """Wrap per-rank row-block results as a resident row-distributed C."""
    return DistributedOperand.rows_1d(
        DistributedRows1D(
            nrows=dist_a.nrows,
            ncols=ncols,
            nprocs=dist_a.nprocs,
            bounds=list(dist_a.bounds),
            locals_=c_locals,
        )
    )

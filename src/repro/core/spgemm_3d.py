"""3D Split SpGEMM baseline (Azad et al. 2016), the CombBLAS 3D algorithm.

Processes form a √(P/c) × √(P/c) × c grid.  The inner dimension is split
across the ``c`` layers: layer ``l`` owns the slices ``A(:, K_l)`` and
``B(K_l, :)`` (2D-distributed within the layer), runs a 2D SUMMA restricted
to the layer producing a *partial* ``C^(l)``, and the partial results are
summed across layers with an AllToAll along the layer ("fiber") dimension
followed by a local merge.

Reducing the per-layer grid from √P to √(P/c) shrinks the broadcast groups,
which is where the communication-volume advantage over plain 2D SUMMA comes
from; the price is the cross-layer merge.  The paper sweeps all valid layer
counts and reports the best — :meth:`SplitSpGEMM3D.best_layer_sweep` does the
same.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..distribution import (
    DistributedBlocks2D,
    LayerSplit3D,
    ProcessGrid3D,
    valid_layer_counts,
)
from ..runtime import SimulatedCluster
from ..sparse import CSCMatrix, add_matrices, local_spgemm, stack_columns
from ..sparse.csc import build_csc_unchecked
from ..sparse.ops import column_blocks
from .base import DistributedSpGEMMAlgorithm, SpGEMMResult
from .masking import (
    apply_mask,
    coerce_mask_blocks_2d,
    masked_info,
    validate_mask_mode,
)
from .pipeline import DistributedOperand, PreparedMultiply, as_operand

__all__ = ["SplitSpGEMM3D"]


@dataclass
class SplitSpGEMM3D(DistributedSpGEMMAlgorithm):
    """3D split SpGEMM with ``layers`` layers (``P/layers`` must be a perfect square)."""

    layers: int = 2
    kernel: str = "hybrid"
    name: str = field(default="3d-split", init=False)

    def prepare(
        self,
        A,
        B,
        cluster: SimulatedCluster,
        *,
        mask=None,
        mask_mode: str = "late",
        **kwargs,
    ) -> PreparedMultiply:
        op_a = as_operand(A)
        op_b = as_operand(B)
        if op_a.ncols != op_b.nrows:
            raise ValueError(
                f"inner dimensions do not match: {op_a.shape} x {op_b.shape}"
            )
        P = cluster.nprocs
        layers = self.layers
        valid = valid_layer_counts(P)
        if layers not in valid:
            # Fall back to the nearest valid layer count (e.g. layers=2 with
            # P=4 is impossible because P/c must stay a perfect square).
            layers = min(valid, key=lambda c: (abs(c - self.layers), c))
        grid = ProcessGrid3D.from_nprocs(P, layers)
        # The layer split distributes both operands jointly (the inner
        # dimension is sliced across layers), so residency of a single
        # operand cannot be reused here; non-global inputs assemble first.
        split = LayerSplit3D.from_global(
            op_a.global_matrix(), op_b.global_matrix(), grid
        )
        op_m = None
        if mask is not None:
            validate_mask_mode(mask_mode)
            # After the cross-layer merge C lives on the layer grid's (i, j)
            # blocks, so the mask follows that layout.
            op_m = coerce_mask_blocks_2d(
                mask,
                grid.layer_grid,
                shape=(op_a.nrows, op_b.ncols),
                row_bounds=split.a_layers[0].row_bounds,
                col_bounds=split.b_layers[0].col_bounds,
            )
        return PreparedMultiply(
            algorithm=self,
            cluster=cluster,
            a=op_a,
            b=op_b,
            extras={"grid": grid, "split": split},
            mask=op_m,
            mask_mode=mask_mode,
        )

    def execute(self, prepared: PreparedMultiply) -> SpGEMMResult:
        cluster = prepared.cluster
        grid: ProcessGrid3D = prepared.extras["grid"]
        split: LayerSplit3D = prepared.extras["split"]
        P = cluster.nprocs
        scope = cluster.phase_prefix
        layer_grid = grid.layer_grid

        # ------------------------------------------------------------------
        # Per-layer 2D SUMMA producing partial C^(l) blocks.
        # ------------------------------------------------------------------
        # partial_blocks[l][(i, j)] = list of stage partials for that block
        partial_blocks: List[Dict[Tuple[int, int], List[CSCMatrix]]] = [
            {(i, j): [] for i in range(grid.prows) for j in range(grid.pcols)}
            for _ in range(grid.layers)
        ]
        # Running byte totals of each block's partial list — the same
        # integers the loop used to recompute from scratch every stage.
        partial_bytes: List[Dict[Tuple[int, int], int]] = [
            {key: 0 for key in layer} for layer in partial_blocks
        ]
        stages = layer_grid.pcols
        for l in range(grid.layers):
            dist_a = split.a_layers[l]
            dist_b = split.b_layers[l]
            for s in range(stages):
                with cluster.phase(f"layer{l}-stage{s}"):
                    # Batch the layer-stage's row and column broadcasts into
                    # one accounting call.
                    cluster.comm.bcast_many(
                        [
                            (
                                dist_a.block(i, s),
                                grid.rank_of(i, s, l),
                                [grid.rank_of(i, j, l) for j in range(grid.pcols)],
                            )
                            for i in range(grid.prows)
                        ]
                        + [
                            (
                                dist_b.block(s, j),
                                grid.rank_of(s, j, l),
                                [grid.rank_of(i, j, l) for i in range(grid.prows)],
                            )
                            for j in range(grid.pcols)
                        ]
                    )
                    # Concatenate the layer-stage's B block row once; each
                    # A(i, s) multiplies it in a single kernel call and the
                    # result is sliced back into per-(i, j) partials —
                    # bit-identical per column in every kernel variant.
                    b_blocks = [dist_b.block(s, j) for j in range(grid.pcols)]
                    b_bytes = [b.memory_bytes() for b in b_blocks]
                    b_row = stack_columns(b_blocks, nrows=b_blocks[0].nrows)
                    col_offsets = np.cumsum([0] + [b.ncols for b in b_blocks])
                    # nnz boundaries of each B(s, j) inside the stacked row.
                    b_ent_offsets = b_row.indptr[col_offsets]
                    layer_partials = partial_blocks[l]
                    layer_bytes = partial_bytes[l]
                    layer_base = l * (grid.prows * grid.pcols)
                    for i in range(grid.prows):
                        a_block = dist_a.block(i, s)
                        if a_block.nnz == 0:
                            continue
                        a_bytes = a_block.memory_bytes()
                        a_col_nnz = a_block.column_nnz()
                        with cluster.measured(grid.rank_of(i, s, l), "comp"):
                            c_row = local_spgemm(
                                a_block, b_row, kernel=self.kernel
                            )
                        # Σ over B(s, j) entries of nnz(A(:,k)) for every j
                        # at once — the same integers
                        # per_column_flops(...).sum() produces, via exact
                        # int64 prefix-sum differences.
                        fl_prefix = np.zeros(b_row.nnz + 1, dtype=np.int64)
                        np.cumsum(a_col_nnz[b_row.indices], out=fl_prefix[1:])
                        flops_by_j = (
                            fl_prefix[b_ent_offsets[1:]]
                            - fl_prefix[b_ent_offsets[:-1]]
                        )
                        row_base = layer_base + i * grid.pcols
                        for j in range(grid.pcols):
                            b_block = b_blocks[j]
                            if b_block.nnz == 0:
                                continue
                            cs, ce = col_offsets[j], col_offsets[j + 1]
                            lo, hi = c_row.indptr[cs], c_row.indptr[ce]
                            partial = build_csc_unchecked(
                                c_row.nrows,
                                b_block.ncols,
                                c_row.indptr[cs : ce + 1] - lo,
                                c_row.indices[lo:hi],
                                c_row.data[lo:hi],
                            )
                            key = (i, j)
                            layer_partials[key].append(partial)
                            layer_bytes[key] += partial.memory_bytes()
                            cluster.charge_compute_and_memory(
                                row_base + j,
                                int(flops_by_j[j]),
                                a_bytes + b_bytes[j] + layer_bytes[key],
                            )

        # ------------------------------------------------------------------
        # Cross-layer reduction: AllToAll along each fiber + local merge.
        # Each fiber position (i, j) splits its partial C(i, j) into `layers`
        # column chunks; layer l ends up owning chunk l of everyone's partial.
        # ------------------------------------------------------------------
        row_bounds = split.a_layers[0].row_bounds
        col_bounds = split.b_layers[0].col_bounds
        c_blocks: Dict[Tuple[int, int], List[CSCMatrix]] = {}
        with cluster.phase("layer-merge"):
            buffers: Dict[int, Dict[int, object]] = {r: {} for r in range(P)}
            merged_per_position: Dict[Tuple[int, int, int], List[CSCMatrix]] = {}
            for i in range(grid.prows):
                for j in range(grid.pcols):
                    cs, ce = col_bounds[j]
                    chunk_bounds = column_blocks(ce - cs, grid.layers)
                    for l in range(grid.layers):
                        pieces = partial_blocks[l][(i, j)]
                        partial = (
                            add_matrices(pieces)
                            if pieces
                            else CSCMatrix.empty(
                                row_bounds[i][1] - row_bounds[i][0], ce - cs
                            )
                        )
                        src_rank = grid.rank_of(i, j, l)
                        cluster.charge_compute(src_rank, sum(p.nnz for p in pieces))
                        for dst_layer, (chs, che) in enumerate(chunk_bounds):
                            chunk = partial.extract_column_range(chs, che)
                            dst_rank = grid.rank_of(i, j, dst_layer)
                            key = (i, j, dst_layer)
                            merged_per_position.setdefault(key, []).append(chunk)
                            if dst_rank != src_rank and chunk.nnz:
                                buffers[src_rank][dst_rank] = chunk
            cluster.comm.alltoallv(buffers)
            # Local merge of the received chunks; reassemble each (i, j) block.
            for i in range(grid.prows):
                for j in range(grid.pcols):
                    cs, ce = col_bounds[j]
                    chunk_bounds = column_blocks(ce - cs, grid.layers)
                    chunks_in_order: List[CSCMatrix] = []
                    for l, (chs, che) in enumerate(chunk_bounds):
                        pieces = merged_per_position.get((i, j, l), [])
                        rank = grid.rank_of(i, j, l)
                        if pieces:
                            with cluster.measured(rank, "comp"):
                                merged = add_matrices(pieces)
                            cluster.charge_compute(rank, sum(p.nnz for p in pieces))
                        else:
                            merged = CSCMatrix.empty(
                                row_bounds[i][1] - row_bounds[i][0], che - chs
                            )
                        chunks_in_order.append(merged)
                    c_blocks[(i, j)] = [stack_columns(chunks_in_order,
                                                      nrows=row_bounds[i][1] - row_bounds[i][0])]

        # C stays distributed over the layer grid's (i, j) blocks (each block
        # fully merged across layers); the global matrix assembles lazily.
        op_c = DistributedOperand.blocks_2d(
            DistributedBlocks2D(
                nrows=prepared.a.nrows,
                ncols=prepared.b.ncols,
                grid=layer_grid,
                row_bounds=list(row_bounds),
                col_bounds=list(col_bounds),
                blocks={key: blocks[0] for key, blocks in c_blocks.items()},
            )
        )

        if prepared.mask is not None:
            op_c = apply_mask(cluster, op_c, prepared.mask)
        info = {"layers": float(grid.layers), "output_nnz": float(op_c.nnz)}
        info.update(masked_info(prepared.mask, prepared.mask_mode))
        ledger = cluster.ledger if not scope else cluster.ledger.subset(scope)
        return SpGEMMResult(
            ledger=ledger,
            algorithm=self.name,
            nprocs=P,
            info=info,
            distributed_c=op_c,
        )

    # ------------------------------------------------------------------
    @classmethod
    def best_layer_sweep(
        cls,
        A,
        B,
        nprocs: int,
        *,
        cost_model=None,
        kernel: str = "hybrid",
        layer_candidates: Optional[List[int]] = None,
    ) -> Tuple["SpGEMMResult", int]:
        """Run every valid layer count and return the fastest result.

        Mirrors the paper's protocol: "For the 3D algorithm, we explored all
        possible layer parameters and selected the optimal configuration."
        """
        from ..runtime import PERLMUTTER, SimulatedCluster

        model = cost_model or PERLMUTTER
        candidates = layer_candidates or [c for c in valid_layer_counts(nprocs) if c > 1]
        if not candidates:
            candidates = [1]
        best: Optional[SpGEMMResult] = None
        best_layers = candidates[0]
        for layers in candidates:
            cluster = SimulatedCluster(nprocs, cost_model=model)
            result = cls(layers=layers, kernel=kernel).multiply(A, B, cluster)
            if best is None or result.elapsed_time < best.elapsed_time:
                best = result
                best_layers = layers
        assert best is not None
        return best, best_layers

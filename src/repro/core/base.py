"""Common interface and result records for the distributed SpGEMM algorithms.

Every algorithm in :mod:`repro.core` implements the same callable contract:
it takes the global operands (plus a :class:`~repro.runtime.SimulatedCluster`
describing the machine) and returns a :class:`SpGEMMResult` holding the
distributed/global output and the per-phase cost ledger recorded while the
algorithm ran.  The benchmark harness only ever talks to this interface, so
1D / 2D / 3D / outer-product variants are interchangeable — the same property
the paper gets from implementing everything inside CombBLAS.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..runtime import PhaseLedger, SimulatedCluster
from ..sparse import CSCMatrix

__all__ = ["SpGEMMResult", "DistributedSpGEMMAlgorithm"]


@dataclass
class SpGEMMResult:
    """Output of one distributed SpGEMM execution."""

    #: the global product (reassembled from the distributed output)
    C: CSCMatrix
    #: the cost ledger recorded during the run
    ledger: PhaseLedger
    #: the algorithm name ("1d-sparsity-aware", "2d-summa", ...)
    algorithm: str
    #: number of simulated processes
    nprocs: int
    #: free-form extras (block counts, layers, CV/memA ratio, ...)
    info: Dict[str, float] = field(default_factory=dict)

    # Convenience accessors used throughout the harness -----------------
    @property
    def elapsed_time(self) -> float:
        """Modelled elapsed seconds (Σ over phases of the slowest rank)."""
        return self.ledger.elapsed_time()

    @property
    def comm_time(self) -> float:
        return self.ledger.elapsed_time_by_category()["comm"]

    @property
    def comp_time(self) -> float:
        return self.ledger.elapsed_time_by_category()["comp"]

    @property
    def other_time(self) -> float:
        return self.ledger.elapsed_time_by_category()["other"]

    @property
    def communication_volume(self) -> int:
        """Total bytes received across all ranks and phases."""
        return self.ledger.total_bytes()

    @property
    def message_count(self) -> int:
        return self.ledger.total_messages()

    @property
    def rdma_gets(self) -> int:
        return self.ledger.total_rdma_gets()

    @property
    def load_imbalance(self) -> float:
        return self.ledger.load_imbalance()


class DistributedSpGEMMAlgorithm(abc.ABC):
    """Abstract base class for distributed SpGEMM algorithms."""

    #: short identifier used by the registry and the reports
    name: str = "abstract"

    @abc.abstractmethod
    def multiply(
        self,
        A,
        B,
        cluster: SimulatedCluster,
        **kwargs,
    ) -> SpGEMMResult:
        """Compute ``C = A·B`` on the given simulated cluster."""

    def __call__(self, A, B, cluster: SimulatedCluster, **kwargs) -> SpGEMMResult:
        return self.multiply(A, B, cluster, **kwargs)

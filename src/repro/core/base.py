"""Common interface and result records for the distributed SpGEMM algorithms.

Every algorithm in :mod:`repro.core` implements the same two-step contract:

``prepare(A, B, cluster) -> PreparedMultiply``
    Resolve both operands to resident :class:`~repro.core.pipeline.DistributedOperand`
    instances (distributing global inputs, reusing already-resident ones) and
    charge whatever setup the algorithm needs — for the sparsity-aware 1D
    algorithm that is the window creation + metadata allgather, charged only
    the *first* time an operand is used as the stationary ``A``.

``execute(prepared) -> SpGEMMResult``
    Run the communication and compute phases, recording every byte and
    message in the cluster ledger, and return a result whose output ``C``
    stays *distributed* — the global matrix is assembled lazily on first
    access and never at all in modelled-only experiment runs.

``multiply(A, B, cluster)`` is the backward-compatible one-shot wrapper
(``execute(prepare(...))``); every modelled number it produces is
bit-identical to the pre-pipeline drivers.  The benchmark harness only ever
talks to this interface, so 1D / 2D / 3D / outer-product variants are
interchangeable — the same property the paper gets from implementing
everything inside CombBLAS.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..runtime import PhaseLedger, SimulatedCluster
from ..sparse import CSCMatrix
from .pipeline import (
    DistributedOperand,
    PreparedMultiply,
    as_operand,
    eager_assembly_enabled,
)

__all__ = ["SpGEMMResult", "DistributedSpGEMMAlgorithm"]


@dataclass
class SpGEMMResult:
    """Output of one distributed SpGEMM execution.

    The product is carried in distributed form (``distributed_c``); the
    global matrix is assembled lazily through the :attr:`C` property and
    cached.  Code that only reads modelled counters (the experiment engine,
    the figures) therefore never pays for — or allocates — a global output.
    """

    #: the cost ledger recorded during the run
    ledger: PhaseLedger
    #: the algorithm name ("1d-sparsity-aware", "2d-summa", ...)
    algorithm: str
    #: number of simulated processes
    nprocs: int
    #: free-form extras (block counts, layers, CV/memA ratio, ...)
    info: Dict[str, float] = field(default_factory=dict)
    #: the distributed product (C in the layout the algorithm produces)
    distributed_c: Optional[DistributedOperand] = None
    #: measured-transfer ledger of the producing cluster
    #: (:class:`~repro.runtime.shm.MeasuredLedger`); ``None`` on the
    #: simulated backend, attached post-hoc by the app-level runners.
    measured: Optional[object] = field(default=None, repr=False)
    #: lazily assembled global product (filled on first access of ``C``)
    _global_c: Optional[CSCMatrix] = field(default=None, repr=False)
    #: cached one-sweep ledger aggregates (see PhaseLedger.scalar_summary)
    _summary: Optional[Dict[str, object]] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.distributed_c is None and self._global_c is None:
            raise ValueError("SpGEMMResult needs a distributed or global C")
        if eager_assembly_enabled():
            _ = self.C

    # Output access --------------------------------------------------------
    @property
    def C(self) -> CSCMatrix:
        """The global product, assembled (and cached) on first access."""
        if self._global_c is None:
            self._global_c = self.distributed_c.global_matrix()
        return self._global_c

    @property
    def assembled(self) -> bool:
        """Has the global ``C`` been materialised?  (Assembly is lazy.)"""
        return self._global_c is not None

    @property
    def output_nnz(self) -> int:
        """nnz of the product, computed without assembling the global C."""
        if self._global_c is not None:
            return self._global_c.nnz
        return self.distributed_c.nnz

    # Convenience accessors used throughout the harness -----------------
    def _ledger_summary(self) -> Dict[str, object]:
        """One-sweep ledger aggregates, computed on first access and cached.

        The record extraction reads seven scalar counters per run; caching
        the combined sweep keeps that O(phases × ranks) once per result
        instead of once per counter.  Values are bit-identical to the
        individual :class:`~repro.runtime.PhaseLedger` methods.
        """
        if self._summary is None:
            self._summary = self.ledger.scalar_summary()
        return self._summary

    @property
    def elapsed_time(self) -> float:
        """Modelled elapsed seconds (Σ over phases of the slowest rank)."""
        return self._ledger_summary()["elapsed_time"]

    @property
    def comm_time(self) -> float:
        return self._ledger_summary()["elapsed_time_by_category"]["comm"]

    @property
    def comp_time(self) -> float:
        return self._ledger_summary()["elapsed_time_by_category"]["comp"]

    @property
    def other_time(self) -> float:
        return self._ledger_summary()["elapsed_time_by_category"]["other"]

    @property
    def communication_volume(self) -> int:
        """Total bytes received across all ranks and phases."""
        return self._ledger_summary()["total_bytes"]

    @property
    def message_count(self) -> int:
        return self._ledger_summary()["total_messages"]

    @property
    def rdma_gets(self) -> int:
        return self._ledger_summary()["total_rdma_gets"]

    @property
    def load_imbalance(self) -> float:
        return self.ledger.load_imbalance()


class DistributedSpGEMMAlgorithm(abc.ABC):
    """Abstract base class for distributed SpGEMM algorithms."""

    #: short identifier used by the registry and the reports
    name: str = "abstract"

    @abc.abstractmethod
    def prepare(
        self,
        A,
        B,
        cluster: SimulatedCluster,
        **kwargs,
    ) -> PreparedMultiply:
        """Make both operands resident on ``cluster`` and charge any setup.

        ``A`` and ``B`` may be global matrices, layout objects, or resident
        :class:`DistributedOperand` instances from an earlier multiply —
        already-resident operands in the algorithm's layout are reused
        without redistribution, and (for the 1D algorithm) an operand whose
        windows are already exposed skips the setup phase entirely.
        """

    @abc.abstractmethod
    def execute(self, prepared: PreparedMultiply) -> SpGEMMResult:
        """Run the multiply on prepared operands, returning a distributed C."""

    def prepare_operand(self, A, cluster: SimulatedCluster) -> DistributedOperand:
        """Make ``A`` resident for repeated multiplies against it.

        The default keeps the operand as-is (drivers distribute on demand);
        the sparsity-aware 1D algorithm overrides this to distribute *and*
        expose the RDMA windows, charging the setup phase once.
        """
        return as_operand(A)

    def multiply(
        self,
        A,
        B,
        cluster: SimulatedCluster,
        **kwargs,
    ) -> SpGEMMResult:
        """Compute ``C = A·B`` on the given simulated cluster.

        Backward-compatible one-shot wrapper: ``execute(prepare(...))``.
        Chained workloads should call ``prepare``/``execute`` directly so the
        stationary operand's setup is charged once instead of per call.
        """
        return self.execute(self.prepare(A, B, cluster, **kwargs))

    def __call__(self, A, B, cluster: SimulatedCluster, **kwargs) -> SpGEMMResult:
        return self.multiply(A, B, cluster, **kwargs)

"""Algorithm registry: look up distributed SpGEMM algorithms by name.

The benchmark harness, the applications and the examples all select
algorithms by the short names used throughout the paper's figures
("1D", "2D", "3D", …); this registry is the single mapping from those names
to constructors so sweeps can be written as plain loops over strings.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from .base import DistributedSpGEMMAlgorithm
from .block_row import ImprovedBlockRow1D, NaiveBlockRow1D
from .outer_product import OuterProduct1D
from .spgemm_1d import SparsityAware1D
from .spgemm_2d import SparseSUMMA2D
from .spgemm_3d import SplitSpGEMM3D

__all__ = ["make_algorithm", "available_algorithms", "ALGORITHM_FACTORIES"]

ALGORITHM_FACTORIES: Dict[str, Callable[..., DistributedSpGEMMAlgorithm]] = {
    # the paper's contribution
    "1d": SparsityAware1D,
    "1d-sparsity-aware": SparsityAware1D,
    # companion algorithm for (RtA)R
    "1d-outer-product": OuterProduct1D,
    "outer-product": OuterProduct1D,
    # CombBLAS baselines
    "2d": SparseSUMMA2D,
    "2d-summa": SparseSUMMA2D,
    "3d": SplitSpGEMM3D,
    "3d-split": SplitSpGEMM3D,
    # Ballard et al. block-row references
    "1d-naive-block-row": NaiveBlockRow1D,
    "1d-improved-block-row": ImprovedBlockRow1D,
}


def make_algorithm(name: str, **kwargs) -> DistributedSpGEMMAlgorithm:
    """Instantiate an algorithm by (case-insensitive) name.

    Keyword arguments are forwarded to the constructor, e.g.
    ``make_algorithm("1d", block_split=512)`` or
    ``make_algorithm("3d", layers=4)``.
    """
    key = name.lower()
    if key not in ALGORITHM_FACTORIES:
        raise ValueError(
            f"unknown algorithm {name!r}; available: {sorted(set(ALGORITHM_FACTORIES))}"
        )
    return ALGORITHM_FACTORIES[key](**kwargs)


def available_algorithms() -> List[str]:
    """Canonical algorithm names (deduplicated aliases)."""
    return sorted({cls().name if callable(cls) else str(cls) for cls in
                   {v for v in ALGORITHM_FACTORIES.values()}}, key=str)

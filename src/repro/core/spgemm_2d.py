"""2D Sparse SUMMA baseline (Buluç & Gilbert), the CombBLAS 2D algorithm.

Processes form a √P × √P grid; every matrix is block-distributed over the
grid.  The multiplication runs in √P stages: at stage ``s`` the owners of the
``A(i, s)`` blocks broadcast them along their process *row* and the owners of
``B(s, j)`` broadcast along their process *column*; every process then
accumulates ``C(i, j) += A(i, s) · B(s, j)`` locally.

The paper's experimental protocol applies a random symmetric permutation to
the inputs before running 2D SUMMA (load balancing); that is handled by the
caller (:mod:`repro.apps.squaring` et al.) so this class stays a pure
algorithm.  Communication is two-sided broadcast — charged with packing on
both sides — which is exactly the cost structure the 1D RDMA design avoids.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from ..distribution import DistributedBlocks2D, ProcessGrid2D
from ..runtime import SimulatedCluster
from ..sparse import CSCMatrix, add_matrices, local_spgemm, stack_columns
from ..sparse.csc import build_csc_unchecked
from .base import DistributedSpGEMMAlgorithm, SpGEMMResult
from .masking import (
    apply_mask,
    coerce_mask_blocks_2d,
    masked_info,
    validate_mask_mode,
)
from .pipeline import DistributedOperand, PreparedMultiply, as_operand

__all__ = ["SparseSUMMA2D"]

_INDEX_DTYPE = np.int64


@dataclass
class SparseSUMMA2D(DistributedSpGEMMAlgorithm):
    """2D sparse SUMMA on a √P × √P process grid."""

    kernel: str = "hybrid"
    name: str = field(default="2d-summa", init=False)

    def prepare(
        self,
        A,
        B,
        cluster: SimulatedCluster,
        *,
        mask=None,
        mask_mode: str = "late",
        **kwargs,
    ) -> PreparedMultiply:
        op_a = as_operand(A)
        op_b = as_operand(B)
        if op_a.ncols != op_b.nrows:
            raise ValueError(
                f"inner dimensions do not match: {op_a.shape} x {op_b.shape}"
            )
        P = cluster.nprocs
        grid = ProcessGrid2D.square(P)
        # The SUMMA stages need A's column splits aligned with B's row splits,
        # which from_global guarantees; non-global operands (a previous C) are
        # assembled first — the 2D baseline has no stationary-layout reuse,
        # which is exactly the asymmetry the paper's 1D design exploits.
        dist_a = DistributedBlocks2D.from_global(op_a.global_matrix(), grid)
        dist_b = DistributedBlocks2D.from_global(op_b.global_matrix(), grid)
        op_m = None
        if mask is not None:
            validate_mask_mode(mask_mode)
            # C(i, j) lives on rank (i, j) with A's row split and B's column
            # split, so the mask block layout mirrors that exactly.
            op_m = coerce_mask_blocks_2d(
                mask,
                grid,
                shape=(op_a.nrows, op_b.ncols),
                row_bounds=dist_a.row_bounds,
                col_bounds=dist_b.col_bounds,
            )
        return PreparedMultiply(
            algorithm=self,
            cluster=cluster,
            a=DistributedOperand.blocks_2d(dist_a),
            b=DistributedOperand.blocks_2d(dist_b),
            extras={"grid": grid},
            mask=op_m,
            mask_mode=mask_mode,
        )

    def execute(self, prepared: PreparedMultiply) -> SpGEMMResult:
        cluster = prepared.cluster
        grid: ProcessGrid2D = prepared.extras["grid"]
        dist_a: DistributedBlocks2D = prepared.a.dist
        dist_b: DistributedBlocks2D = prepared.b.dist
        scope = cluster.phase_prefix

        # Per-process accumulated partial results for its C block.
        partials: Dict[tuple, List[CSCMatrix]] = {
            (i, j): [] for i in range(grid.prows) for j in range(grid.pcols)
        }
        # Stage-invariant resident footprints, and a running byte total of
        # each block's partial list — the same integers the loop used to
        # recompute from scratch every stage.
        resident_bytes = {
            (i, j): dist_a.block(i, j).memory_bytes()
            + dist_b.block(i, j).memory_bytes()
            for i in range(grid.prows)
            for j in range(grid.pcols)
        }
        partial_bytes = {key: 0 for key in partials}

        stages = grid.pcols  # square grid: pcols == prows
        for s in range(stages):
            with cluster.phase(f"stage-{s}"):
                # Batch the stage's 2·√P broadcasts — A(i, s) along every
                # process row, B(s, j) along every process column — into one
                # accounting call.
                cluster.comm.bcast_many(
                    [
                        (dist_a.block(i, s), grid.rank_of(i, s), grid.row_ranks(i))
                        for i in range(grid.prows)
                    ]
                    + [
                        (dist_b.block(s, j), grid.rank_of(s, j), grid.col_ranks(j))
                        for j in range(grid.pcols)
                    ]
                )
                # Local multiply-accumulate on every process.  The stage's B
                # block row is concatenated once so each A(i, s) multiplies
                # it in a single kernel call; the result is sliced back into
                # the per-(i, j) partials.  Columns are independent in every
                # kernel variant, so the sliced partials (and all charges
                # derived from them) are bit-identical to per-block calls.
                b_blocks = [dist_b.block(s, j) for j in range(grid.pcols)]
                b_bytes = [b.memory_bytes() for b in b_blocks]
                b_row = stack_columns(b_blocks, nrows=b_blocks[0].nrows)
                col_offsets = np.cumsum([0] + [b.ncols for b in b_blocks])
                # nnz boundaries of each B(s, j) inside the stacked row.
                b_ent_offsets = b_row.indptr[col_offsets]
                for i in range(grid.prows):
                    a_block = dist_a.block(i, s)
                    if a_block.nnz == 0:
                        continue
                    a_bytes = a_block.memory_bytes()
                    a_col_nnz = a_block.column_nnz()
                    with cluster.measured(grid.rank_of(i, s), "comp"):
                        c_row = local_spgemm(a_block, b_row, kernel=self.kernel)
                    # Σ over B(s, j) entries of nnz(A(:,k)) for every j at
                    # once — the same integers per_column_flops(...).sum()
                    # produces, via exact int64 prefix-sum differences.
                    fl_prefix = np.zeros(b_row.nnz + 1, dtype=_INDEX_DTYPE)
                    np.cumsum(a_col_nnz[b_row.indices], out=fl_prefix[1:])
                    flops_by_j = fl_prefix[b_ent_offsets[1:]] - fl_prefix[b_ent_offsets[:-1]]
                    row_base = i * grid.pcols
                    for j in range(grid.pcols):
                        b_block = b_blocks[j]
                        if b_block.nnz == 0:
                            continue
                        cs, ce = col_offsets[j], col_offsets[j + 1]
                        lo, hi = c_row.indptr[cs], c_row.indptr[ce]
                        partial = build_csc_unchecked(
                            c_row.nrows,
                            b_block.ncols,
                            c_row.indptr[cs : ce + 1] - lo,
                            c_row.indices[lo:hi],
                            c_row.data[lo:hi],
                        )
                        key = (i, j)
                        partials[key].append(partial)
                        partial_bytes[key] += partial.memory_bytes()
                        cluster.charge_compute_and_memory(
                            row_base + j,
                            int(flops_by_j[j]),
                            resident_bytes[key]
                            + a_bytes
                            + b_bytes[j]
                            + partial_bytes[key],
                        )

        # Final local merge of the per-stage partials into each C block.
        c_blocks: Dict[tuple, CSCMatrix] = {}
        with cluster.phase("merge"):
            for i in range(grid.prows):
                rs, re = dist_a.row_bounds[i]
                for j in range(grid.pcols):
                    cs, ce = dist_b.col_bounds[j]
                    rank = grid.rank_of(i, j)
                    pieces = partials[(i, j)]
                    if pieces:
                        with cluster.measured(rank, "comp"):
                            merged = add_matrices(pieces)
                        cluster.charge_compute(rank, sum(p.nnz for p in pieces))
                    else:
                        merged = CSCMatrix.empty(re - rs, ce - cs)
                    c_blocks[(i, j)] = merged

        dist_c = DistributedBlocks2D(
            nrows=dist_a.nrows,
            ncols=dist_b.ncols,
            grid=grid,
            row_bounds=dist_a.row_bounds,
            col_bounds=dist_b.col_bounds,
            blocks=c_blocks,
        )
        op_c = DistributedOperand.blocks_2d(dist_c)
        if prepared.mask is not None:
            op_c = apply_mask(cluster, op_c, prepared.mask)
        info = {"grid": float(grid.prows), "output_nnz": float(op_c.nnz)}
        info.update(masked_info(prepared.mask, prepared.mask_mode))
        ledger = cluster.ledger if not scope else cluster.ledger.subset(scope)
        return SpGEMMResult(
            ledger=ledger,
            algorithm=self.name,
            nprocs=cluster.nprocs,
            info=info,
            distributed_c=op_c,
        )

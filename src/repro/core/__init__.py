"""The paper's distributed SpGEMM algorithms and baselines."""

from .base import DistributedSpGEMMAlgorithm, SpGEMMResult
from .pipeline import (
    DistributedOperand,
    PreparedMultiply,
    as_operand,
    coerce_columns_1d,
    coerce_rows_1d,
)
from .block_fetch import (
    BlockFetchPlan,
    BlockFetchPlanner,
    CompactFetchPlans,
    plan_block_fetch,
    plan_block_fetch_all,
    split_into_groups,
)
from .block_row import ImprovedBlockRow1D, NaiveBlockRow1D
from .elementwise import column_sums, ewise_mult, inflate, prune, scale_columns
from .masking import MASK_MODES, apply_mask, iter_local_pieces
from .estimator import (
    BYTES_PER_ENTRY,
    CommunicationEstimate,
    estimate_communication,
    should_partition,
)
from .outer_product import OuterProduct1D, outer_product_spgemm_1d
from .registry import ALGORITHM_FACTORIES, available_algorithms, make_algorithm
from .spgemm_1d import SparsityAware1D, sparsity_aware_spgemm_1d
from .spgemm_2d import SparseSUMMA2D
from .spgemm_3d import SplitSpGEMM3D

__all__ = [
    "DistributedSpGEMMAlgorithm",
    "SpGEMMResult",
    "DistributedOperand",
    "PreparedMultiply",
    "as_operand",
    "coerce_columns_1d",
    "coerce_rows_1d",
    "MASK_MODES",
    "apply_mask",
    "iter_local_pieces",
    "column_sums",
    "ewise_mult",
    "inflate",
    "prune",
    "scale_columns",
    "BlockFetchPlan",
    "BlockFetchPlanner",
    "CompactFetchPlans",
    "plan_block_fetch",
    "plan_block_fetch_all",
    "split_into_groups",
    "NaiveBlockRow1D",
    "ImprovedBlockRow1D",
    "CommunicationEstimate",
    "estimate_communication",
    "should_partition",
    "BYTES_PER_ENTRY",
    "OuterProduct1D",
    "outer_product_spgemm_1d",
    "SparsityAware1D",
    "sparsity_aware_spgemm_1d",
    "SparseSUMMA2D",
    "SplitSpGEMM3D",
    "ALGORITHM_FACTORIES",
    "available_algorithms",
    "make_algorithm",
]

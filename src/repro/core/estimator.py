"""Communication-volume prediction and the CV/memA criterion (paper §V-A).

Before doing any RDMA the 1D algorithm can compute, per process, exactly
which remote columns of ``A`` it will need (from its local ``H_i`` and the
allgathered ``D`` vector).  The paper turns this into a decision rule:

    compute  CV / memA  =  (total bytes of A that must move)
                           / (bytes of the whole matrix A)

and apply graph partitioning before the SpGEMM when the ratio exceeds a
threshold (≈ 30%); a ratio near 1.0 (every process needs essentially all of
``A``, the eukarya case) means the original ordering carries no exploitable
structure.

:func:`estimate_communication` performs that lightweight symbolic pass for a
1D distribution without executing any fetches, and
:func:`should_partition` applies the threshold rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..distribution import DistributedColumns1D
from ..sparse import as_csc
from .block_fetch import BlockFetchPlanner

__all__ = [
    "CommunicationEstimate",
    "estimate_communication",
    "should_partition",
    "BYTES_PER_ENTRY",
]

#: wire size of one sparse entry: 8-byte row id + 8-byte value.  This is the
#: canonical byte definition for both CV (what the RDMA windows move) and
#: memA (``nnz(A) · BYTES_PER_ENTRY``) — the executed algorithm
#: (:mod:`repro.core.spgemm_1d`) reports its CV/memA with the same constant,
#: so predicted and measured ratios are directly comparable.
BYTES_PER_ENTRY = 16


@dataclass
class CommunicationEstimate:
    """Predicted communication of the sparsity-aware 1D algorithm."""

    #: bytes of A data each rank must fetch from remote ranks
    per_rank_bytes: np.ndarray
    #: number of remote columns each rank needs
    per_rank_columns: np.ndarray
    #: RDMA messages per rank under the given block split K
    per_rank_messages: np.ndarray
    #: total bytes of the full distributed A
    mem_a_bytes: int

    @property
    def total_bytes(self) -> int:
        return int(self.per_rank_bytes.sum())

    @property
    def cv_over_mema(self) -> float:
        """The paper's CV/memA ratio.

        Defined per process: the average bytes of ``A`` a process must fetch
        divided by the size of the full matrix ``A``.  A value of 1.0 means
        "each MPI process must retrieve the entire matrix A to compute its
        local C" (the eukarya case in Fig. 5(b) / §V-A).
        """
        if self.mem_a_bytes == 0:
            return 0.0
        return float(self.per_rank_bytes.mean()) / self.mem_a_bytes

    @property
    def total_messages(self) -> int:
        return int(self.per_rank_messages.sum())


def estimate_communication(
    A,
    B=None,
    *,
    nprocs: int,
    block_split: int = 2048,
    a_bounds: Optional[Sequence[Tuple[int, int]]] = None,
    b_bounds: Optional[Sequence[Tuple[int, int]]] = None,
) -> CommunicationEstimate:
    """Symbolically predict the 1D algorithm's communication for ``C = A·B``.

    ``B`` defaults to ``A`` (the squaring case).  Only index arithmetic is
    performed — no numeric work and no simulated transfers — mirroring the
    paper's claim that the criterion "can be calculated prior to initiating
    actual RDMA communication" and is computationally lightweight.
    """
    A = as_csc(A)
    B = A if B is None else as_csc(B)
    if A.ncols != B.nrows:
        raise ValueError(f"inner dimensions do not match: {A.shape} x {B.shape}")
    dist_a = DistributedColumns1D.from_global(A, nprocs, bounds=a_bounds)
    dist_b = DistributedColumns1D.from_global(B, nprocs, bounds=b_bounds)

    # Per-rank nonzero-column metadata of A (what the allgather would share).
    rank_cols: List[np.ndarray] = []
    rank_col_nnz: List[np.ndarray] = []
    for rank in range(nprocs):
        local = dist_a.local(rank)
        start, _ = dist_a.column_bounds(rank)
        nz = local.nonzero_columns()
        rank_cols.append(nz + start)
        rank_col_nnz.append(local.column_nnz()[nz])

    per_rank_bytes = np.zeros(nprocs, dtype=np.int64)
    per_rank_columns = np.zeros(nprocs, dtype=np.int64)
    per_rank_messages = np.zeros(nprocs, dtype=np.int64)
    # One shared Algorithm-2 planner (the geometry only depends on A's
    # layout); per origin the summary arrays are enough — plan objects are
    # never built.  Bytes follow the *fetched* (block-covered) columns,
    # matching what the RDMA calls would actually move.
    planner = BlockFetchPlanner(
        rank_cols, block_split, col_weights_per_target=rank_col_nnz
    )
    nonempty = planner.nonempty_targets
    for rank in range(nprocs):
        hit = dist_b.local(rank).nonzero_rows_mask()
        compact = planner.plan_compact(hit, build_plans=False)
        remote = nonempty != rank
        per_rank_bytes[rank] = (
            int(compact.fetched_weight_per_target[remote].sum()) * BYTES_PER_ENTRY
        )
        per_rank_columns[rank] = int(compact.required_per_target[remote].sum())
        per_rank_messages[rank] = int(compact.messages_per_target[remote].sum())

    mem_a = int(A.nnz) * BYTES_PER_ENTRY
    return CommunicationEstimate(
        per_rank_bytes=per_rank_bytes,
        per_rank_columns=per_rank_columns,
        per_rank_messages=per_rank_messages,
        mem_a_bytes=mem_a,
    )


def should_partition(
    A,
    B=None,
    *,
    nprocs: int,
    threshold: float = 0.30,
    block_split: int = 2048,
) -> Tuple[bool, float]:
    """Apply the paper's CV/memA ≥ threshold rule (default 30%).

    Returns ``(apply_partitioning, cv_over_mema)``.
    """
    est = estimate_communication(A, B, nprocs=nprocs, block_split=block_split)
    ratio = est.cv_over_mema
    return (ratio >= threshold, ratio)

"""Masked SpGEMM support: ``C = (A·B) ⊙ M`` on resident distributed operands.

Masked multiplication is the primitive behind the two classic SpGEMM
consumers beyond squaring — triangle counting (``(L·L) ⊙ L``) and the
filtered expansions of graph algorithms.  The design here follows the
stationary-``C`` property of the paper's 1D algorithm: the mask ``M`` is a
resident :class:`~repro.core.pipeline.DistributedOperand` in the **output
layout** of the driver, so applying it is a purely rank-local filter after
the local kernel — **no extra communication is ever charged** for masking.

Semantics
---------
The mask is a *pattern* mask (CombBLAS/GraphBLAS convention): an output
entry ``C[i, j]`` survives iff ``M`` stores an entry at ``(i, j)``; the
mask's numeric values are ignored.  Masking happens inside a dedicated
``"mask"`` ledger phase, charged as local computation proportional to the
entries the sorted-merge intersection touches (``nnz(C_i) + nnz(M_i)``
flops on each rank) — zero bytes, zero messages.

Mask modes
----------
``"late"`` (every driver)
    Compute the full product locally, then intersect with the mask.

``"early"`` (the sparsity-aware 1D driver only)
    Additionally restrict the paper's ``H_i`` row marking (Algorithm 1
    line 4) to the columns of ``B_i`` whose mask column is non-empty: an
    output column with an empty mask column is all zeros after masking, so
    none of the ``A`` columns *only* it needs are fetched.  This **reduces
    the modelled communication volume** — the sparsity-aware story extended
    to masks — while the final masked product is bit-identical to the late
    mode (the late filter still runs, removing any entries computed in
    masked-out columns as a side effect of shared fetches).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from ..distribution import DistributedBlocks2D, DistributedColumns1D, DistributedRows1D
from ..runtime import SimulatedCluster
from ..sparse import CSCMatrix
from ..sparse.ops import elementwise_mask
from .pipeline import (
    LAYOUT_BLOCKS_2D,
    LAYOUT_COLUMNS_1D,
    LAYOUT_ROWS_1D,
    DistributedOperand,
    as_operand,
    coerce_columns_1d,
    coerce_rows_1d,
)

__all__ = [
    "MASK_MODES",
    "MASK_PHASE",
    "validate_mask_mode",
    "coerce_mask_columns_1d",
    "coerce_mask_rows_1d",
    "coerce_mask_blocks_2d",
    "apply_mask",
    "iter_local_pieces",
    "masked_info",
]

#: recognised values of the drivers' ``mask_mode`` option
MASK_MODES = ("late", "early")

#: ledger phase name under which every driver applies its mask
MASK_PHASE = "mask"


def validate_mask_mode(mode: str, *, allow_early: bool = False) -> str:
    """Check a ``mask_mode`` string (drivers call this in ``prepare``)."""
    if mode not in MASK_MODES:
        raise ValueError(f"unknown mask_mode {mode!r}; expected one of {MASK_MODES}")
    if mode == "early" and not allow_early:
        raise ValueError(
            "mask_mode='early' is only supported by the sparsity-aware 1D "
            "driver (it prunes the RDMA fetch plan); use 'late' here"
        )
    return mode


def _check_shape(mask: DistributedOperand, shape: Tuple[int, int]) -> None:
    if mask.shape != shape:
        raise ValueError(
            f"mask shape {mask.shape} does not match the output shape {shape}"
        )


def coerce_mask_columns_1d(
    mask,
    nprocs: int,
    *,
    shape: Tuple[int, int],
    bounds: Sequence[Tuple[int, int]],
) -> DistributedOperand:
    """Resolve a mask to the 1D column layout of the product (``B``'s bounds).

    A mask already resident in the right layout (e.g. ``L`` reused as both
    operand and mask by triangle counting) is passed through untouched —
    its distribution is never re-charged, exactly like the input operands.
    """
    op = as_operand(mask)
    _check_shape(op, shape)
    return coerce_columns_1d(op, nprocs, bounds=list(bounds))


def coerce_mask_rows_1d(
    mask,
    nprocs: int,
    *,
    shape: Tuple[int, int],
    bounds: Sequence[Tuple[int, int]],
) -> DistributedOperand:
    """Row-block analogue of :func:`coerce_mask_columns_1d` (block-row drivers)."""
    op = as_operand(mask)
    _check_shape(op, shape)
    return coerce_rows_1d(op, nprocs, bounds=list(bounds))


def coerce_mask_blocks_2d(
    mask,
    grid,
    *,
    shape: Tuple[int, int],
    row_bounds: Sequence[Tuple[int, int]],
    col_bounds: Sequence[Tuple[int, int]],
) -> DistributedOperand:
    """Resolve a mask to the 2D block layout of the product (2D/3D drivers)."""
    op = as_operand(mask)
    _check_shape(op, shape)
    if (
        op.layout == LAYOUT_BLOCKS_2D
        and op.dist.grid == grid
        and list(op.dist.row_bounds) == list(row_bounds)
        and list(op.dist.col_bounds) == list(col_bounds)
    ):
        return op
    return DistributedOperand.blocks_2d(
        DistributedBlocks2D.from_global(
            op.global_matrix(), grid, row_bounds=row_bounds, col_bounds=col_bounds
        )
    )


def iter_local_pieces(op: DistributedOperand) -> Iterator[Tuple[int, CSCMatrix]]:
    """Yield ``(rank, local matrix)`` pairs for any distributed layout.

    The iteration order is deterministic (rank-major; 2D blocks in row-major
    grid order), so ledger charges driven by it are reproducible.
    """
    if op.layout in (LAYOUT_COLUMNS_1D, LAYOUT_ROWS_1D):
        for rank in range(op.dist.nprocs):
            yield rank, op.dist.local(rank)
    elif op.layout == LAYOUT_BLOCKS_2D:
        grid = op.dist.grid
        for i in range(grid.prows):
            for j in range(grid.pcols):
                yield grid.rank_of(i, j), op.dist.block(i, j)
    else:
        raise ValueError(f"operand layout {op.layout!r} has no per-rank pieces")


def apply_mask(
    cluster: SimulatedCluster,
    op_c: DistributedOperand,
    mask: DistributedOperand,
) -> DistributedOperand:
    """Intersect a distributed product with a same-layout mask, rank-locally.

    Runs inside the ``"mask"`` ledger phase charging only local computation
    (``nnz(C_i) + nnz(M_i)`` flops per rank — the entries the sorted merge
    touches); no bytes or messages move, so the phase is trivially conserved.
    Returns a new operand in the same layout with the masked local pieces.
    """
    if mask.layout != op_c.layout:
        raise ValueError(
            f"mask layout {mask.layout!r} does not match product layout {op_c.layout!r}"
        )
    masked: List[CSCMatrix] = []
    with cluster.phase(MASK_PHASE):
        for (rank, c_local), (_, m_local) in zip(
            iter_local_pieces(op_c), iter_local_pieces(mask)
        ):
            out = elementwise_mask(c_local, m_local)
            cluster.charge_compute(rank, c_local.nnz + m_local.nnz)
            masked.append(out)
    if op_c.layout in (LAYOUT_COLUMNS_1D, LAYOUT_ROWS_1D):
        dist_cls = (
            DistributedColumns1D if op_c.layout == LAYOUT_COLUMNS_1D else DistributedRows1D
        )
        dist = dist_cls(
            nrows=op_c.dist.nrows,
            ncols=op_c.dist.ncols,
            nprocs=op_c.dist.nprocs,
            bounds=list(op_c.dist.bounds),
            locals_=masked,
        )
        return DistributedOperand(layout=op_c.layout, dist=dist)
    grid = op_c.dist.grid
    blocks = {}
    idx = 0
    for i in range(grid.prows):
        for j in range(grid.pcols):
            blocks[(i, j)] = masked[idx]
            idx += 1
    return DistributedOperand.blocks_2d(
        DistributedBlocks2D(
            nrows=op_c.dist.nrows,
            ncols=op_c.dist.ncols,
            grid=grid,
            row_bounds=list(op_c.dist.row_bounds),
            col_bounds=list(op_c.dist.col_bounds),
            blocks=blocks,
        )
    )


def masked_info(mask: Optional[DistributedOperand], mode: str) -> dict:
    """``SpGEMMResult.info`` entries all drivers report for a masked run."""
    if mask is None:
        return {}
    return {"masked": 1.0, "mask_nnz": float(mask.nnz), "mask_early": float(mode == "early")}

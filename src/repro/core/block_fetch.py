"""Algorithm 2 — the block fetching strategy.

Fetching every required remote column of ``A`` with its own RDMA call would
issue one message per column; for matrices with millions of non-empty
columns that is exactly the "excessive fine-grained messaging" previous 1D
implementations suffered from.  The paper's fix: split the (ordered) nonzero
columns of each remote ``A_j`` into at most ``K`` groups, and fetch an entire
group whenever *any* of its columns is needed.  The number of RDMA calls per
remote process is then bounded by ``K``, at the price of some extra volume
(whole groups move even if only one column in them is needed).

:func:`plan_block_fetch` reproduces Algorithm 2 literally: given the required
column ids (``D̃ = H ∩ D``) and the hit vector ``H``, it returns the list of
``(start, stop)`` column-id intervals to fetch, the number of RDMA calls
``M ≤ K``, and the covered column set for verification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "BlockFetchPlan",
    "BlockFetchPlanner",
    "CompactFetchPlans",
    "plan_block_fetch",
    "plan_block_fetch_all",
    "split_into_groups",
]

_INDEX_DTYPE = np.int64


@dataclass
class BlockFetchPlan:
    """The fetch plan for one remote process.

    ``interval_starts``/``interval_stops`` are half-open ``[start, stop)``
    ranges over *positions in the remote process's nonzero-column list* (not
    global column ids): the remote data is stored compressed (DCSC), so a
    contiguous run of nonzero columns is contiguous in the exposed
    row-id/value windows.  ``M`` is the number of RDMA calls
    (== number of intervals), bounded by the split count K.
    """

    #: start positions of the planned ``[start, stop)`` fetch intervals
    interval_starts: np.ndarray
    #: stop positions of the planned fetch intervals
    interval_stops: np.ndarray
    #: positions (into the remote nonzero-column list) actually required
    required_positions: np.ndarray
    #: positions covered by the planned intervals (superset of required)
    covered_positions: np.ndarray
    #: boolean mask over ``covered_positions``: which covered columns are hit
    covered_required: np.ndarray
    #: the split parameter K used
    K: int

    @property
    def intervals(self) -> List[Tuple[int, int]]:
        """The fetch intervals as ``(start, stop)`` tuples (built on demand)."""
        return [
            (int(s), int(e))
            for s, e in zip(self.interval_starts, self.interval_stops)
        ]

    @property
    def M(self) -> int:
        """Number of RDMA calls after grouping (Algorithm 2's output M ≤ K)."""
        return int(self.interval_starts.size)

    @property
    def fetched_columns(self) -> int:
        """Total number of nonzero columns transferred (needed or not)."""
        return int(self.covered_positions.size)

    @property
    def wasted_columns(self) -> int:
        """Columns transferred that the local computation does not need."""
        return int(self.covered_positions.size - self.required_positions.size)


def _group_bounds(ncolumns: int, K: int) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorised group boundaries: ``(starts, stops)`` arrays over positions."""
    if K <= 0:
        raise ValueError("K must be positive")
    if ncolumns <= 0:
        empty = np.zeros(0, dtype=_INDEX_DTYPE)
        return empty, empty
    groups = min(K, ncolumns)
    base = ncolumns // groups
    extra = ncolumns % groups
    js = np.arange(groups, dtype=_INDEX_DTYPE)
    starts = js * base + np.minimum(js, extra)
    widths = base + (js < extra)
    return starts, starts + widths


def split_into_groups(ncolumns: int, K: int) -> List[Tuple[int, int]]:
    """Split ``ncolumns`` ordered positions into at most ``K`` contiguous groups.

    Mirrors Algorithm 2 line 2 ("split the ordered non-zero column id into K
    groups"): the first ``ncolumns % K`` groups get one extra element.  When
    ``K >= ncolumns`` each column forms its own group (per-column fetching).
    """
    starts, stops = _group_bounds(ncolumns, K)
    return [(int(s), int(e)) for s, e in zip(starts, stops)]


def plan_block_fetch(
    remote_nonzero_columns: np.ndarray,
    hit_mask: np.ndarray,
    K: int,
) -> BlockFetchPlan:
    """Plan the RDMA fetches from one remote process (Algorithm 2).

    Parameters
    ----------
    remote_nonzero_columns:
        Global ids of the remote process's nonzero columns of ``A`` (the
        slice of the allgathered ``D`` vector belonging to that process),
        in ascending order.
    hit_mask:
        Dense boolean vector over the *global* inner dimension — the local
        ``H_i`` built from the nonzero rows of ``B_i`` (Algorithm 1 line 4).
    K:
        Maximum number of groups/RDMA calls for this remote process
        (the paper's "non-zero column split number", e.g. 2048).

    Returns
    -------
    BlockFetchPlan
        Intervals are positions into ``remote_nonzero_columns``; a group is
        selected as soon as any of its columns is hit (Algorithm 2 lines 3-11).
    """
    remote_nonzero_columns = np.asarray(remote_nonzero_columns, dtype=_INDEX_DTYPE)
    hit_mask = np.asarray(hit_mask, dtype=bool)
    ncols = int(remote_nonzero_columns.shape[0])
    if ncols and remote_nonzero_columns.max() >= hit_mask.shape[0]:
        raise ValueError("hit mask shorter than the largest remote column id")
    if ncols == 0:
        empty = np.zeros(0, dtype=_INDEX_DTYPE)
        return BlockFetchPlan(
            interval_starts=empty,
            interval_stops=empty,
            required_positions=empty,
            covered_positions=empty,
            covered_required=np.zeros(0, dtype=bool),
            K=K,
        )

    hits = hit_mask[remote_nonzero_columns]
    required = np.nonzero(hits)[0].astype(_INDEX_DTYPE)

    # "choose" becomes true as soon as any column in the group is hit: one
    # reduceat over the per-column hit flags replaces the per-group loop.
    starts, stops = _group_bounds(ncols, K)
    group_hits = np.add.reduceat(hits.astype(np.int64), starts) > 0
    sel_starts = starts[group_hits]
    sel_stops = stops[group_hits]
    covered = _expand_ranges(sel_starts, sel_stops)

    plan = BlockFetchPlan(
        interval_starts=sel_starts,
        interval_stops=sel_stops,
        required_positions=required,
        covered_positions=covered,
        covered_required=hits[covered],
        K=K,
    )
    # Invariant from Algorithm 2: the union of planned intervals must cover
    # every required column.  Intervals partition [0, ncols), so covering all
    # required positions is equivalent to covering every hit group — which the
    # reduceat selection guarantees; keep the cheap cardinality check.
    if required.size and covered.size < required.size:
        raise AssertionError("block fetch plan does not cover all required columns")
    return plan


def _expand_ranges(starts: np.ndarray, stops: np.ndarray) -> np.ndarray:
    """Concatenate ``[start, stop)`` position ranges into one index array."""
    lengths = (stops - starts).astype(_INDEX_DTYPE)
    total = int(lengths.sum())
    if total == 0:
        return np.zeros(0, dtype=_INDEX_DTYPE)
    offsets = np.repeat(starts, lengths)
    within = np.arange(total, dtype=_INDEX_DTYPE)
    seg_start = np.repeat(np.cumsum(lengths) - lengths, lengths)
    return offsets + (within - seg_start)


@dataclass
class CompactFetchPlans:
    """One origin rank's plans against every target, hot targets only.

    ``hot_targets`` lists (ascending) the targets with at least one hit
    group — the only ones an origin rank must talk to — and ``plans`` is
    aligned with it.  The per-target summary arrays are aligned with the
    planner's ``nonempty_targets`` so symbolic consumers (the communication
    estimator) never materialise per-target plan objects at all.
    """

    hot_targets: np.ndarray
    plans: List[BlockFetchPlan]
    #: Σ over *all* targets of required (hit) columns
    required_total: int
    #: Σ over *all* targets of block-covered columns
    fetched_total: int
    #: required columns per nonempty target
    required_per_target: np.ndarray
    #: RDMA messages (hit groups, Algorithm 2's M) per nonempty target
    messages_per_target: np.ndarray
    #: Σ of the planner's ``col_weights`` over covered columns per nonempty
    #: target; ``None`` when the planner was built without weights
    fetched_weight_per_target: Optional[np.ndarray]

    def iter_hot(self):
        """Iterate ``(target, plan)`` pairs for the hot targets."""
        return zip((int(t) for t in self.hot_targets), self.plans)


class BlockFetchPlanner:
    """Reusable Algorithm-2 planner for one set of remote column lists.

    The 1D algorithm plans fetches for ``P`` origin ranks against the *same*
    remote layout (the allgathered ``D`` vector), and only the hit mask
    differs between origins.  Everything hit-independent — the concatenated
    column-id array, per-target offsets, and the group boundaries of
    Algorithm 2 — is computed here once, turning P quadratic planning passes
    into one; :meth:`plan_compact` then costs a couple of numpy calls per
    origin rank and touches only the hot targets.

    ``col_weights_per_target`` (optional, e.g. per-column nnz) enables the
    precomputed group-weight prefix sums behind
    :attr:`CompactFetchPlans.fetched_weight_per_target`.
    """

    def __init__(
        self,
        remote_columns_per_target: Sequence[np.ndarray],
        K: int,
        *,
        col_weights_per_target: Optional[Sequence[np.ndarray]] = None,
    ):
        if K <= 0:
            raise ValueError("K must be positive")
        self.K = int(K)
        self.ntargets = len(remote_columns_per_target)
        ncols_per_target = np.fromiter(
            (np.asarray(c).shape[0] for c in remote_columns_per_target),
            dtype=_INDEX_DTYPE,
            count=self.ntargets,
        )
        #: targets owning at least one nonzero column (the others never plan)
        self.nonempty_targets = np.nonzero(ncols_per_target)[0].astype(_INDEX_DTYPE)
        nonempty = self.nonempty_targets
        if nonempty.size == 0:
            self._all_cols = np.zeros(0, dtype=_INDEX_DTYPE)
            self._max_col = -1
            self._group_weight = (
                None if col_weights_per_target is None else np.zeros(0, dtype=np.int64)
            )
            return
        sizes = ncols_per_target[nonempty]
        self._sizes = sizes
        self._all_cols = np.concatenate(
            [
                np.asarray(remote_columns_per_target[t], dtype=_INDEX_DTYPE)
                for t in nonempty
            ]
        )
        self._max_col = int(self._all_cols.max()) if self._all_cols.size else -1

        # Group boundaries of *every* target at once, shifted into the
        # concatenated index space: target with n columns gets min(K, n)
        # groups, the first n % groups of them one element wider (same
        # arithmetic as :func:`split_into_groups`, all targets in one shot).
        col_offsets = np.zeros(nonempty.size, dtype=_INDEX_DTYPE)
        col_offsets[1:] = np.cumsum(sizes)[:-1]
        self._col_offsets = col_offsets
        groups_per_target = np.minimum(self.K, sizes)
        group_offsets = np.zeros(nonempty.size + 1, dtype=_INDEX_DTYPE)
        np.cumsum(groups_per_target, out=group_offsets[1:])
        self._group_offsets = group_offsets
        total_groups = int(group_offsets[-1])
        owner = np.repeat(
            np.arange(nonempty.size, dtype=_INDEX_DTYPE), groups_per_target
        )
        self._owner = owner
        js = np.arange(total_groups, dtype=_INDEX_DTYPE) - group_offsets[owner]
        base = (sizes // groups_per_target)[owner]
        extra = (sizes % groups_per_target)[owner]
        self._rel_starts = js * base + np.minimum(js, extra)
        self._g_starts = self._rel_starts + col_offsets[owner]
        self._g_widths = base + (js < extra)

        self._group_weight = None
        if col_weights_per_target is not None:
            wprefix = np.zeros(self._all_cols.size + 1, dtype=np.int64)
            np.cumsum(
                np.concatenate(
                    [
                        np.asarray(col_weights_per_target[t], dtype=np.int64)
                        for t in nonempty
                    ]
                ),
                out=wprefix[1:],
            )
            self._group_weight = (
                wprefix[self._g_starts + self._g_widths] - wprefix[self._g_starts]
            )

    # ------------------------------------------------------------------
    def plan_compact(
        self, hit_mask: np.ndarray, *, build_plans: bool = True
    ) -> CompactFetchPlans:
        """Evaluate Algorithm 2 against ``hit_mask``, returning hot targets only.

        ``build_plans=False`` skips materialising the per-target
        :class:`BlockFetchPlan` objects (``plans`` comes back empty) for
        symbolic consumers such as the communication estimator that only read
        the aggregate summary arrays.
        """
        hit_mask = np.asarray(hit_mask, dtype=bool)
        if self._max_col >= hit_mask.shape[0]:
            raise ValueError("hit mask shorter than the largest remote column id")
        nonempty = self.nonempty_targets
        empty_i64 = np.zeros(0, dtype=_INDEX_DTYPE)
        if nonempty.size == 0:
            return CompactFetchPlans(
                hot_targets=empty_i64,
                plans=[],
                required_total=0,
                fetched_total=0,
                required_per_target=empty_i64,
                messages_per_target=empty_i64,
                fetched_weight_per_target=(
                    None if self._group_weight is None else empty_i64
                ),
            )
        all_hits = hit_mask[self._all_cols]
        # One reduceat over every group of every target at once ("choose" a
        # group as soon as any of its columns is hit, Algorithm 2 lines 3-11).
        group_hit = np.add.reduceat(all_hits.astype(np.int8), self._g_starts) > 0
        hit_groups_per_target = np.add.reduceat(
            group_hit.astype(np.int64), self._group_offsets[:-1]
        )
        required_per_target = np.add.reduceat(
            all_hits.astype(np.int64), self._col_offsets
        )
        fetched_weight = None
        if self._group_weight is not None:
            fetched_weight = np.add.reduceat(
                np.where(group_hit, self._group_weight, 0), self._group_offsets[:-1]
            )
        required_all = np.nonzero(all_hits)[0].astype(_INDEX_DTYPE)
        req_bounds = np.searchsorted(required_all, self._col_offsets)

        hot = np.nonzero(hit_groups_per_target)[0]
        plans: List[BlockFetchPlan] = []
        if build_plans and hot.size:
            # Expand every hit group of every hot target in one pass, then
            # hand each plan zero-copy views.  Hit groups are stored in
            # ascending target order, so each target's groups (and covered
            # columns) are contiguous runs sliced by prefix offsets; the
            # values are identical to the old per-target expansion.
            idx = np.nonzero(group_hit)[0]
            starts_rel = self._rel_starts[idx]
            widths = self._g_widths[idx]
            stops_rel = starts_rel + widths
            abs_starts = self._g_starts[idx]
            abs_cov = _expand_ranges(abs_starts, abs_starts + widths)
            cov_req_all = all_hits[abs_cov]
            rel_cov = abs_cov - np.repeat(self._col_offsets[self._owner[idx]], widths)
            g_bounds = np.zeros(hot.size + 1, dtype=_INDEX_DTYPE)
            np.cumsum(hit_groups_per_target[hot], out=g_bounds[1:])
            cov_prefix = np.zeros(widths.size + 1, dtype=_INDEX_DTYPE)
            np.cumsum(widths, out=cov_prefix[1:])
            cov_bounds = cov_prefix[g_bounds]
            base_offs = self._col_offsets[hot]
            for n in range(hot.size):
                pos = int(hot[n])
                lo, hi = int(g_bounds[n]), int(g_bounds[n + 1])
                clo, chi = int(cov_bounds[n]), int(cov_bounds[n + 1])
                base_off = int(base_offs[n])
                req_lo = int(req_bounds[pos])
                req_hi = (
                    int(req_bounds[pos + 1])
                    if pos + 1 < req_bounds.size
                    else required_all.size
                )
                plans.append(
                    BlockFetchPlan(
                        interval_starts=starts_rel[lo:hi],
                        interval_stops=stops_rel[lo:hi],
                        required_positions=required_all[req_lo:req_hi] - base_off,
                        covered_positions=rel_cov[clo:chi],
                        covered_required=cov_req_all[clo:chi],
                        K=self.K,
                    )
                )
        return CompactFetchPlans(
            hot_targets=nonempty[hot],
            plans=plans,
            required_total=int(required_all.size),
            fetched_total=int(self._g_widths[group_hit].sum()),
            required_per_target=required_per_target,
            messages_per_target=hit_groups_per_target,
            fetched_weight_per_target=fetched_weight,
        )

    def plan(self, hit_mask: np.ndarray) -> List[Optional[BlockFetchPlan]]:
        """Full per-target plan list (``None`` for targets with no columns).

        Identical to calling :func:`plan_block_fetch` once per target; cold
        nonempty targets share one empty plan so the common P ≫ hits case
        allocates nothing per target.
        """
        plans: List[Optional[BlockFetchPlan]] = [None] * self.ntargets
        compact = self.plan_compact(hit_mask)
        empty = np.zeros(0, dtype=_INDEX_DTYPE)
        cold_plan = BlockFetchPlan(
            interval_starts=empty,
            interval_stops=empty,
            required_positions=empty,
            covered_positions=empty,
            covered_required=np.zeros(0, dtype=bool),
            K=self.K,
        )
        for t in self.nonempty_targets:
            plans[t] = cold_plan
        for target, plan in compact.iter_hot():
            plans[target] = plan
        return plans


def plan_block_fetch_all(
    remote_columns_per_target: Sequence[np.ndarray],
    hit_mask: np.ndarray,
    K: int,
) -> List[Optional[BlockFetchPlan]]:
    """Plan the fetches from *all* remote processes in one vectorised pass.

    Convenience wrapper over :class:`BlockFetchPlanner` for one-shot use;
    callers planning for many origin ranks against the same layout should
    construct the planner once and call :meth:`BlockFetchPlanner.plan_compact`
    per origin instead.
    """
    return BlockFetchPlanner(remote_columns_per_target, K).plan(hit_mask)

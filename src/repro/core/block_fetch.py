"""Algorithm 2 — the block fetching strategy.

Fetching every required remote column of ``A`` with its own RDMA call would
issue one message per column; for matrices with millions of non-empty
columns that is exactly the "excessive fine-grained messaging" previous 1D
implementations suffered from.  The paper's fix: split the (ordered) nonzero
columns of each remote ``A_j`` into at most ``K`` groups, and fetch an entire
group whenever *any* of its columns is needed.  The number of RDMA calls per
remote process is then bounded by ``K``, at the price of some extra volume
(whole groups move even if only one column in them is needed).

:func:`plan_block_fetch` reproduces Algorithm 2 literally: given the required
column ids (``D̃ = H ∩ D``) and the hit vector ``H``, it returns the list of
``(start, stop)`` column-id intervals to fetch, the number of RDMA calls
``M ≤ K``, and the covered column set for verification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "BlockFetchPlan",
    "plan_block_fetch",
    "plan_block_fetch_all",
    "split_into_groups",
]

_INDEX_DTYPE = np.int64


@dataclass
class BlockFetchPlan:
    """The fetch plan for one remote process.

    ``intervals`` are half-open ``[start, stop)`` ranges over *positions in
    the remote process's nonzero-column list* (not global column ids): the
    remote data is stored compressed (DCSC), so a contiguous run of nonzero
    columns is contiguous in the exposed row-id/value windows.  ``M`` is the
    number of RDMA calls (== len(intervals)), bounded by the split count K.
    """

    intervals: List[Tuple[int, int]]
    #: positions (into the remote nonzero-column list) actually required
    required_positions: np.ndarray
    #: positions covered by the planned intervals (superset of required)
    covered_positions: np.ndarray
    #: the split parameter K used
    K: int

    @property
    def M(self) -> int:
        """Number of RDMA calls after grouping (Algorithm 2's output M ≤ K)."""
        return len(self.intervals)

    @property
    def fetched_columns(self) -> int:
        """Total number of nonzero columns transferred (needed or not)."""
        return int(self.covered_positions.size)

    @property
    def wasted_columns(self) -> int:
        """Columns transferred that the local computation does not need."""
        return int(self.covered_positions.size - self.required_positions.size)


def _group_bounds(ncolumns: int, K: int) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorised group boundaries: ``(starts, stops)`` arrays over positions."""
    if K <= 0:
        raise ValueError("K must be positive")
    if ncolumns <= 0:
        empty = np.zeros(0, dtype=_INDEX_DTYPE)
        return empty, empty
    groups = min(K, ncolumns)
    base = ncolumns // groups
    extra = ncolumns % groups
    js = np.arange(groups, dtype=_INDEX_DTYPE)
    starts = js * base + np.minimum(js, extra)
    widths = base + (js < extra)
    return starts, starts + widths


def split_into_groups(ncolumns: int, K: int) -> List[Tuple[int, int]]:
    """Split ``ncolumns`` ordered positions into at most ``K`` contiguous groups.

    Mirrors Algorithm 2 line 2 ("split the ordered non-zero column id into K
    groups"): the first ``ncolumns % K`` groups get one extra element.  When
    ``K >= ncolumns`` each column forms its own group (per-column fetching).
    """
    starts, stops = _group_bounds(ncolumns, K)
    return [(int(s), int(e)) for s, e in zip(starts, stops)]


def plan_block_fetch(
    remote_nonzero_columns: np.ndarray,
    hit_mask: np.ndarray,
    K: int,
) -> BlockFetchPlan:
    """Plan the RDMA fetches from one remote process (Algorithm 2).

    Parameters
    ----------
    remote_nonzero_columns:
        Global ids of the remote process's nonzero columns of ``A`` (the
        slice of the allgathered ``D`` vector belonging to that process),
        in ascending order.
    hit_mask:
        Dense boolean vector over the *global* inner dimension — the local
        ``H_i`` built from the nonzero rows of ``B_i`` (Algorithm 1 line 4).
    K:
        Maximum number of groups/RDMA calls for this remote process
        (the paper's "non-zero column split number", e.g. 2048).

    Returns
    -------
    BlockFetchPlan
        Intervals are positions into ``remote_nonzero_columns``; a group is
        selected as soon as any of its columns is hit (Algorithm 2 lines 3-11).
    """
    remote_nonzero_columns = np.asarray(remote_nonzero_columns, dtype=_INDEX_DTYPE)
    hit_mask = np.asarray(hit_mask, dtype=bool)
    ncols = int(remote_nonzero_columns.shape[0])
    if ncols and remote_nonzero_columns.max() >= hit_mask.shape[0]:
        raise ValueError("hit mask shorter than the largest remote column id")
    if ncols == 0:
        empty = np.zeros(0, dtype=_INDEX_DTYPE)
        return BlockFetchPlan(
            intervals=[], required_positions=empty, covered_positions=empty, K=K
        )

    hits = hit_mask[remote_nonzero_columns]
    required = np.nonzero(hits)[0].astype(_INDEX_DTYPE)

    # "choose" becomes true as soon as any column in the group is hit: one
    # reduceat over the per-column hit flags replaces the per-group loop.
    starts, stops = _group_bounds(ncols, K)
    group_hits = np.add.reduceat(hits.astype(np.int64), starts) > 0
    sel_starts = starts[group_hits]
    sel_stops = stops[group_hits]
    intervals = [(int(s), int(e)) for s, e in zip(sel_starts, sel_stops)]
    covered = _expand_ranges(sel_starts, sel_stops)

    plan = BlockFetchPlan(
        intervals=intervals,
        required_positions=required,
        covered_positions=covered,
        K=K,
    )
    # Invariant from Algorithm 2: the union of planned intervals must cover
    # every required column.  Intervals partition [0, ncols), so covering all
    # required positions is equivalent to covering every hit group — which the
    # reduceat selection guarantees; keep the cheap cardinality check.
    if required.size and covered.size < required.size:
        raise AssertionError("block fetch plan does not cover all required columns")
    return plan


def _expand_ranges(starts: np.ndarray, stops: np.ndarray) -> np.ndarray:
    """Concatenate ``[start, stop)`` position ranges into one index array."""
    lengths = (stops - starts).astype(_INDEX_DTYPE)
    total = int(lengths.sum())
    if total == 0:
        return np.zeros(0, dtype=_INDEX_DTYPE)
    offsets = np.repeat(starts, lengths)
    within = np.arange(total, dtype=_INDEX_DTYPE)
    seg_start = np.repeat(np.cumsum(lengths) - lengths, lengths)
    return offsets + (within - seg_start)


def plan_block_fetch_all(
    remote_columns_per_target: Sequence[np.ndarray],
    hit_mask: np.ndarray,
    K: int,
) -> List[Optional[BlockFetchPlan]]:
    """Plan the fetches from *all* remote processes in one vectorised pass.

    Concatenates every target's nonzero-column list, evaluates the group "any
    column hit" predicate with a single ``np.add.reduceat`` over the combined
    hit counts, and splits the result back into one :class:`BlockFetchPlan`
    per target.  Targets with no nonzero columns yield ``None``.  Produces
    plans identical to calling :func:`plan_block_fetch` per target — this is
    the O(1)-numpy-calls path the 1D algorithm and the symbolic estimator use
    so planning stays cheap at P = 1024.
    """
    if K <= 0:
        raise ValueError("K must be positive")
    hit_mask = np.asarray(hit_mask, dtype=bool)
    ntargets = len(remote_columns_per_target)
    ncols_per_target = np.fromiter(
        (np.asarray(c).shape[0] for c in remote_columns_per_target),
        dtype=_INDEX_DTYPE,
        count=ntargets,
    )
    plans: List[Optional[BlockFetchPlan]] = [None] * ntargets
    nonempty = np.nonzero(ncols_per_target)[0]
    if nonempty.size == 0:
        return plans

    sizes = ncols_per_target[nonempty]
    all_cols = np.concatenate(
        [np.asarray(remote_columns_per_target[t], dtype=_INDEX_DTYPE) for t in nonempty]
    )
    if all_cols.size and all_cols.max() >= hit_mask.shape[0]:
        raise ValueError("hit mask shorter than the largest remote column id")
    all_hits = hit_mask[all_cols]

    # Group boundaries of *every* target at once, shifted into the
    # concatenated index space: target with n columns gets min(K, n) groups,
    # the first n % groups of them one element wider (same arithmetic as
    # :func:`split_into_groups`, evaluated for all targets in one shot).
    col_offsets = np.zeros(nonempty.size, dtype=_INDEX_DTYPE)
    col_offsets[1:] = np.cumsum(sizes)[:-1]
    groups_per_target = np.minimum(K, sizes)
    group_offsets = np.zeros(nonempty.size + 1, dtype=_INDEX_DTYPE)
    np.cumsum(groups_per_target, out=group_offsets[1:])
    total_groups = int(group_offsets[-1])
    owner = np.repeat(np.arange(nonempty.size, dtype=_INDEX_DTYPE), groups_per_target)
    js = np.arange(total_groups, dtype=_INDEX_DTYPE) - group_offsets[owner]
    base = (sizes // groups_per_target)[owner]
    extra = (sizes % groups_per_target)[owner]
    rel_starts = js * base + np.minimum(js, extra)
    g_starts = rel_starts + col_offsets[owner]
    g_widths = base + (js < extra)

    # One reduceat over every group of every target at once ("choose" a group
    # as soon as any of its columns is hit, Algorithm 2 lines 3-11).
    group_hit = np.add.reduceat(all_hits.astype(np.int8), g_starts) > 0
    hit_groups_per_target = np.add.reduceat(
        group_hit.astype(np.int64), group_offsets[:-1]
    )
    required_all = np.nonzero(all_hits)[0].astype(_INDEX_DTYPE)
    req_bounds = np.searchsorted(required_all, col_offsets)

    empty = np.zeros(0, dtype=_INDEX_DTYPE)
    # Targets whose groups are all cold share one empty plan (no hit group
    # implies no required column), so the common P≫hits case allocates
    # nothing per target.
    cold_plan = BlockFetchPlan(
        intervals=[], required_positions=empty, covered_positions=empty, K=K
    )
    for pos in np.nonzero(hit_groups_per_target == 0)[0]:
        plans[nonempty[pos]] = cold_plan
    for pos in np.nonzero(hit_groups_per_target)[0]:
        lo, hi = int(group_offsets[pos]), int(group_offsets[pos + 1])
        sel = group_hit[lo:hi]
        base_off = int(col_offsets[pos])
        sel_starts = rel_starts[lo:hi][sel]
        sel_stops = sel_starts + g_widths[lo:hi][sel]
        req_lo = int(req_bounds[pos])
        req_hi = int(req_bounds[pos + 1]) if pos + 1 < req_bounds.size else required_all.size
        plans[nonempty[pos]] = BlockFetchPlan(
            intervals=[(int(s), int(e)) for s, e in zip(sel_starts, sel_stops)],
            required_positions=required_all[req_lo:req_hi] - base_off,
            covered_positions=_expand_ranges(sel_starts, sel_stops),
            K=K,
        )
    return plans

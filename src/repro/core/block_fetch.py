"""Algorithm 2 — the block fetching strategy.

Fetching every required remote column of ``A`` with its own RDMA call would
issue one message per column; for matrices with millions of non-empty
columns that is exactly the "excessive fine-grained messaging" previous 1D
implementations suffered from.  The paper's fix: split the (ordered) nonzero
columns of each remote ``A_j`` into at most ``K`` groups, and fetch an entire
group whenever *any* of its columns is needed.  The number of RDMA calls per
remote process is then bounded by ``K``, at the price of some extra volume
(whole groups move even if only one column in them is needed).

:func:`plan_block_fetch` reproduces Algorithm 2 literally: given the required
column ids (``D̃ = H ∩ D``) and the hit vector ``H``, it returns the list of
``(start, stop)`` column-id intervals to fetch, the number of RDMA calls
``M ≤ K``, and the covered column set for verification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["BlockFetchPlan", "plan_block_fetch", "split_into_groups"]

_INDEX_DTYPE = np.int64


@dataclass
class BlockFetchPlan:
    """The fetch plan for one remote process.

    ``intervals`` are half-open ``[start, stop)`` ranges over *positions in
    the remote process's nonzero-column list* (not global column ids): the
    remote data is stored compressed (DCSC), so a contiguous run of nonzero
    columns is contiguous in the exposed row-id/value windows.  ``M`` is the
    number of RDMA calls (== len(intervals)), bounded by the split count K.
    """

    intervals: List[Tuple[int, int]]
    #: positions (into the remote nonzero-column list) actually required
    required_positions: np.ndarray
    #: positions covered by the planned intervals (superset of required)
    covered_positions: np.ndarray
    #: the split parameter K used
    K: int

    @property
    def M(self) -> int:
        """Number of RDMA calls after grouping (Algorithm 2's output M ≤ K)."""
        return len(self.intervals)

    @property
    def fetched_columns(self) -> int:
        """Total number of nonzero columns transferred (needed or not)."""
        return int(self.covered_positions.size)

    @property
    def wasted_columns(self) -> int:
        """Columns transferred that the local computation does not need."""
        return int(self.covered_positions.size - self.required_positions.size)


def split_into_groups(ncolumns: int, K: int) -> List[Tuple[int, int]]:
    """Split ``ncolumns`` ordered positions into at most ``K`` contiguous groups.

    Mirrors Algorithm 2 line 2 ("split the ordered non-zero column id into K
    groups"): the first ``ncolumns % K`` groups get one extra element.  When
    ``K >= ncolumns`` each column forms its own group (per-column fetching).
    """
    if K <= 0:
        raise ValueError("K must be positive")
    if ncolumns <= 0:
        return []
    groups = min(K, ncolumns)
    base = ncolumns // groups
    extra = ncolumns % groups
    out = []
    start = 0
    for g in range(groups):
        width = base + (1 if g < extra else 0)
        out.append((start, start + width))
        start += width
    return out


def plan_block_fetch(
    remote_nonzero_columns: np.ndarray,
    hit_mask: np.ndarray,
    K: int,
) -> BlockFetchPlan:
    """Plan the RDMA fetches from one remote process (Algorithm 2).

    Parameters
    ----------
    remote_nonzero_columns:
        Global ids of the remote process's nonzero columns of ``A`` (the
        slice of the allgathered ``D`` vector belonging to that process),
        in ascending order.
    hit_mask:
        Dense boolean vector over the *global* inner dimension — the local
        ``H_i`` built from the nonzero rows of ``B_i`` (Algorithm 1 line 4).
    K:
        Maximum number of groups/RDMA calls for this remote process
        (the paper's "non-zero column split number", e.g. 2048).

    Returns
    -------
    BlockFetchPlan
        Intervals are positions into ``remote_nonzero_columns``; a group is
        selected as soon as any of its columns is hit (Algorithm 2 lines 3-11).
    """
    remote_nonzero_columns = np.asarray(remote_nonzero_columns, dtype=_INDEX_DTYPE)
    hit_mask = np.asarray(hit_mask, dtype=bool)
    ncols = int(remote_nonzero_columns.shape[0])
    if ncols and remote_nonzero_columns.max() >= hit_mask.shape[0]:
        raise ValueError("hit mask shorter than the largest remote column id")
    required = (
        np.nonzero(hit_mask[remote_nonzero_columns])[0]
        if ncols
        else np.zeros(0, dtype=_INDEX_DTYPE)
    )

    intervals: List[Tuple[int, int]] = []
    covered_parts: List[np.ndarray] = []
    for (start, stop) in split_into_groups(ncols, K):
        group_cols = remote_nonzero_columns[start:stop]
        # "choose" becomes true as soon as any column in the group is hit.
        if np.any(hit_mask[group_cols]):
            intervals.append((start, stop))
            covered_parts.append(np.arange(start, stop, dtype=_INDEX_DTYPE))

    covered = (
        np.concatenate(covered_parts) if covered_parts else np.zeros(0, dtype=_INDEX_DTYPE)
    )
    plan = BlockFetchPlan(
        intervals=intervals,
        required_positions=required,
        covered_positions=covered,
        K=K,
    )
    # Invariant from Algorithm 2: the union of planned intervals must cover
    # every required column.
    if required.size and not np.all(np.isin(required, covered)):
        raise AssertionError("block fetch plan does not cover all required columns")
    return plan

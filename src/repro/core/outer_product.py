"""Algorithm 3 — the outer-product 1D SpGEMM algorithm.

Used by the paper for the *right multiplication* of the Galerkin product,
``(RᵀA)·R``, following Ballard, Siefert & Hu (2016) who showed the
outer-product formulation is the best 1D algorithm for that shape
(stationary input is tall-skinny, output is small).

The three steps of Algorithm 3:

1. **Redistribute** ``B`` so that process ``p_i`` owns the ``i``-th *row*
   block (aligned with the column block of ``A`` it already owns);
2. each process forms the **local outer product** of its column block of
   ``A`` with its row block of ``B`` — a partial result for the *entire*
   output ``C``;
3. the partial results are **redistributed and merged**: each process sends
   the slice of its partial ``C`` that belongs to every other process's
   column block (an all-to-all), and each process sums what it receives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..distribution import (
    DistributedColumns1D,
    columns_to_rows_1d,
)
from ..runtime import SimulatedCluster
from ..sparse import CSCMatrix, add_matrices, local_spgemm
from ..sparse.flops import per_column_flops
from .base import DistributedSpGEMMAlgorithm, SpGEMMResult
from .masking import (
    apply_mask,
    coerce_mask_columns_1d,
    masked_info,
    validate_mask_mode,
)
from .pipeline import DistributedOperand, PreparedMultiply, coerce_columns_1d

__all__ = ["OuterProduct1D", "outer_product_spgemm_1d"]

_INDEX_DTYPE = np.int64


@dataclass
class OuterProduct1D(DistributedSpGEMMAlgorithm):
    """Outer-product 1D SpGEMM (Algorithm 3)."""

    kernel: str = "hybrid"
    name: str = field(default="1d-outer-product", init=False)

    def prepare(
        self,
        A,
        B,
        cluster: SimulatedCluster,
        *,
        a_bounds: Optional[Sequence[Tuple[int, int]]] = None,
        c_bounds: Optional[Sequence[Tuple[int, int]]] = None,
        mask=None,
        mask_mode: str = "late",
    ) -> PreparedMultiply:
        P = cluster.nprocs

        # A is 1D column-distributed (its columns are the inner dimension);
        # a resident column operand — e.g. the RᵀA product of the Galerkin
        # chain — is consumed in place, with no intermediate global gather.
        op_a = coerce_columns_1d(A, P, bounds=a_bounds)
        op_b = coerce_columns_1d(B, P)
        if op_a.dist.ncols != op_b.dist.nrows:
            raise ValueError(
                f"inner dimensions do not match: {op_a.dist.shape} x {op_b.dist.shape}"
            )

        # Output column blocks (defaults to an even split of B's columns).
        dist_c_template = DistributedColumns1D.from_global(
            CSCMatrix.empty(op_a.dist.nrows, op_b.dist.ncols), P, bounds=c_bounds
        )
        op_m = None
        if mask is not None:
            validate_mask_mode(mask_mode)
            op_m = coerce_mask_columns_1d(
                mask,
                P,
                shape=(op_a.dist.nrows, op_b.dist.ncols),
                bounds=dist_c_template.bounds,
            )
        return PreparedMultiply(
            algorithm=self,
            cluster=cluster,
            a=op_a,
            b=op_b,
            extras={"c_template": dist_c_template},
            mask=op_m,
            mask_mode=mask_mode,
        )

    def execute(self, prepared: PreparedMultiply) -> SpGEMMResult:
        cluster = prepared.cluster
        dist_a: DistributedColumns1D = prepared.a.dist
        dist_b_cols: DistributedColumns1D = prepared.b.dist
        dist_c_template: DistributedColumns1D = prepared.extras["c_template"]
        P = cluster.nprocs
        scope = cluster.phase_prefix

        # ------------------------------------------------------------------
        # Step 1: redistribute B so p_i owns the row block matching its A columns.
        # ------------------------------------------------------------------
        row_bounds = [dist_a.column_bounds(r) for r in range(P)]
        dist_b = columns_to_rows_1d(dist_b_cols, cluster=cluster, row_bounds=row_bounds)

        # ------------------------------------------------------------------
        # Step 2: local outer products — every rank builds a partial C.
        # ------------------------------------------------------------------
        partials: List[CSCMatrix] = []
        with cluster.phase("local-outer-product"):
            for rank in range(P):
                local_a = dist_a.local(rank)      # m × k_i
                local_b = dist_b.local(rank)      # k_i × n  (row block, local row ids)
                flops = int(per_column_flops(local_a, local_b).sum())
                with cluster.measured(rank, "comp"):
                    partial = local_spgemm(local_a, local_b, kernel=self.kernel)
                cluster.charge_compute(rank, flops)
                cluster.charge_memory(
                    rank,
                    local_a.memory_bytes()
                    + local_b.memory_bytes()
                    + partial.memory_bytes(),
                )
                partials.append(partial)

        # ------------------------------------------------------------------
        # Step 3: redistribute the partial results by output column block and merge.
        # ------------------------------------------------------------------
        received: Dict[int, List[CSCMatrix]] = {r: [] for r in range(P)}
        with cluster.phase("merge"):
            buffers: Dict[int, Dict[int, object]] = {r: {} for r in range(P)}
            for src in range(P):
                partial = partials[src]
                for dst in range(P):
                    cs, ce = dist_c_template.column_bounds(dst)
                    piece = partial.extract_column_range(cs, ce)
                    if piece.nnz == 0:
                        continue
                    if src == dst:
                        received[dst].append(piece)
                    else:
                        buffers[src][dst] = piece
                        received[dst].append(piece)
            cluster.comm.alltoallv(buffers)
            c_locals: List[CSCMatrix] = []
            for rank in range(P):
                cs, ce = dist_c_template.column_bounds(rank)
                pieces = received[rank]
                if pieces:
                    merged = add_matrices(pieces)
                else:
                    merged = CSCMatrix.empty(dist_a.nrows, ce - cs)
                cluster.charge_other_bytes(rank, merged.memory_bytes())
                # Merging k sorted partials costs ~ the touched entries.
                cluster.charge_compute(rank, sum(p.nnz for p in pieces))
                c_locals.append(merged)

        op_c = DistributedOperand.columns_1d(
            DistributedColumns1D(
                nrows=dist_a.nrows,
                ncols=dist_c_template.ncols,
                nprocs=P,
                bounds=list(dist_c_template.bounds),
                locals_=c_locals,
            )
        )
        if prepared.mask is not None:
            op_c = apply_mask(cluster, op_c, prepared.mask)
        info = {"output_nnz": float(op_c.nnz)}
        info.update(masked_info(prepared.mask, prepared.mask_mode))
        ledger = cluster.ledger if not scope else cluster.ledger.subset(scope)
        return SpGEMMResult(
            ledger=ledger,
            algorithm=self.name,
            nprocs=P,
            info=info,
            distributed_c=op_c,
        )


def outer_product_spgemm_1d(A, B, cluster: SimulatedCluster, **kwargs) -> SpGEMMResult:
    """Functional wrapper around :class:`OuterProduct1D`."""
    return OuterProduct1D().multiply(A, B, cluster, **kwargs)

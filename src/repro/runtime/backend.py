"""Pluggable execution backends.

The algorithms in :mod:`repro.core` are written against a narrow cluster
protocol — the collectives of :class:`~repro.runtime.communicator.Communicator`
(``send``/``send_many``/``bcast``/``bcast_many``/``allgather``/``gather``/
``alltoallv``/``alltoallv_sizes``/``allreduce_scalar``/``barrier``), the
one-sided :class:`~repro.runtime.window.RdmaWindow` epochs, and the
``phase``/``phase_scope`` ledger slicing of
:class:`~repro.runtime.simulator.SimulatedCluster`.  A *backend* is a factory
for cluster objects implementing that protocol:

``simulated``
    The default.  Everything runs in one process, data moves by reference,
    and only the modelled α–β–γ accounting is real.  Deterministic and
    bit-identical across machines — this is what every figure uses.

``shm``
    The multiprocessing shared-memory backend
    (:class:`~repro.runtime.shm.ShmCluster`).  The same SPMD driver loops run
    unchanged, but every remote payload is physically serialised, moved
    through a POSIX shared-memory segment into a peer process, and read back
    before the receiver sees it.  Alongside the (unchanged, bit-identical)
    modelled ledger it records a *measured* ledger: wall-clock seconds and
    actually-moved byte counts per phase.

Backends are looked up by name so the experiment layer can carry the choice
as a plain config field (hash-elided at ``"simulated"`` — see
:mod:`repro.experiments.config`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Optional

from .costmodel import CostModel, PERLMUTTER
from .simulator import SimulatedCluster

__all__ = [
    "Backend",
    "SimulatedBackend",
    "ShmBackend",
    "BACKENDS",
    "available_backends",
    "resolve_backend",
    "create_cluster",
]


class Backend(ABC):
    """Factory for cluster objects implementing the runtime protocol."""

    #: registry key; also the value carried in ``RunConfig.backend``
    name: str = ""

    #: routing metadata for the experiment scheduler: can configs on this
    #: backend run inside daemonic ``multiprocessing`` pool workers?
    #: Backends that fork transport helper processes of their own (shm)
    #: cannot — a daemonic worker is not allowed to have children — so the
    #: scheduler routes them onto its dedicated serial lane instead.
    pool_safe: bool = True

    @abstractmethod
    def create_cluster(
        self,
        nprocs: int,
        *,
        cost_model: CostModel = PERLMUTTER,
        name: str = "sim",
        check_conservation: Optional[bool] = None,
    ) -> SimulatedCluster:
        """Build a cluster of ``nprocs`` ranks on this backend."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class SimulatedBackend(Backend):
    """The in-process modelled-only backend (today's simulator)."""

    name = "simulated"

    def create_cluster(
        self,
        nprocs: int,
        *,
        cost_model: CostModel = PERLMUTTER,
        name: str = "sim",
        check_conservation: Optional[bool] = None,
    ) -> SimulatedCluster:
        return SimulatedCluster(
            nprocs,
            cost_model=cost_model,
            name=name,
            check_conservation=check_conservation,
        )


class ShmBackend(Backend):
    """The multiprocessing shared-memory backend (real inter-process bytes)."""

    name = "shm"
    # The shm transport forks a peer process per cluster, which a daemonic
    # pool worker may not do: shm configs belong on the serial lane.
    pool_safe = False

    def create_cluster(
        self,
        nprocs: int,
        *,
        cost_model: CostModel = PERLMUTTER,
        name: str = "sim",
        check_conservation: Optional[bool] = None,
    ) -> SimulatedCluster:
        # Deferred import: the shm transport pulls in multiprocessing
        # machinery that simulated-only runs never need.
        from .shm import ShmCluster

        return ShmCluster(
            nprocs,
            cost_model=cost_model,
            name=name,
            check_conservation=check_conservation,
        )


#: name -> backend instance; the experiment layer and the CLI validate against
#: this registry so error messages can list what is actually available.
BACKENDS: Dict[str, Backend] = {
    SimulatedBackend.name: SimulatedBackend(),
    ShmBackend.name: ShmBackend(),
}


def available_backends() -> List[str]:
    """Sorted names of all registered backends."""
    return sorted(BACKENDS)


def resolve_backend(name: str) -> Backend:
    """Look up a backend by name; unknown names raise with the valid choices."""
    try:
        return BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; available backends: "
            + ", ".join(available_backends())
        ) from None


def create_cluster(
    nprocs: int,
    *,
    backend: str = "simulated",
    cost_model: CostModel = PERLMUTTER,
    name: str = "sim",
    check_conservation: Optional[bool] = None,
) -> SimulatedCluster:
    """Create a cluster on the named backend (convenience wrapper)."""
    return resolve_backend(backend).create_cluster(
        nprocs,
        cost_model=cost_model,
        name=name,
        check_conservation=check_conservation,
    )

"""The simulated distributed-memory cluster.

:class:`SimulatedCluster` stands in for ``MPI_COMM_WORLD`` + the physical
machine: it knows the number of ranks, the machine cost model, and it owns
the :class:`~repro.runtime.stats.PhaseLedger` into which every communication
primitive and every explicitly-charged local computation records its cost.

Why a simulator instead of mpi4py
---------------------------------
The evaluation of the paper is about distributed-memory behaviour at 16-1024
processes on a Slingshot network.  This environment has neither an MPI
implementation nor multiple nodes, so launching real ranks would neither be
possible nor informative.  Instead the distributed algorithms in
:mod:`repro.core` are written in an explicit SPMD style — *for each rank i:
do what rank i would do* — against this cluster object.  All data that
"moves" does so through :class:`~repro.runtime.window.RdmaWindow` or
:class:`~repro.runtime.communicator.Communicator`, so the communication
volume, message counts and modelled times reported by the benchmark harness
are exactly those of the real algorithm at that process count.

Determinism: given the same inputs and parameters, every simulated run
produces bit-identical ledgers, which makes the benchmark harness and the
property-based tests reproducible.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

import numpy as np

from .communicator import Communicator
from .costmodel import CostModel, PERLMUTTER
from .stats import PhaseLedger, RankStats
from .window import RdmaWindow

__all__ = ["SimulatedCluster", "MemoryLimitExceeded"]


class MemoryLimitExceeded(MemoryError):
    """Raised when a rank's modelled memory exceeds the cost model's capacity.

    Used to reproduce out-of-memory behaviour such as the 2D algorithm
    failing the hv15r backward sweep in Fig. 14.
    """

    def __init__(self, rank: int, needed: int, capacity: int):
        super().__init__(
            f"rank {rank} needs {needed} bytes but capacity is {capacity} bytes"
        )
        self.rank = rank
        self.needed = needed
        self.capacity = capacity


@dataclass
class SimulatedCluster:
    """A P-rank simulated distributed-memory machine.

    Parameters
    ----------
    nprocs:
        Number of simulated MPI processes.
    cost_model:
        The α–β–γ machine model; defaults to the Perlmutter-like preset.
    name:
        Optional label carried into reports.
    """

    nprocs: int
    cost_model: CostModel = PERLMUTTER
    name: str = "sim"
    #: assert the per-collective conservation invariant (bytes sent ==
    #: bytes received per group) inside every communication primitive;
    #: ``None`` defers to the ``REPRO_CHECK_CONSERVATION`` environment
    #: variable (default: enabled — the check is two numpy sums per call).
    check_conservation: Optional[bool] = None
    ledger: PhaseLedger = field(init=False)
    _current_phase: str = field(default="default", init=False)
    _phase_prefix: str = field(default="", init=False)
    _stats_cache: Optional[tuple] = field(default=None, init=False, repr=False)

    #: registry name of the backend this cluster runs on (see
    #: :mod:`repro.runtime.backend`); subclasses override.
    backend_name = "simulated"
    #: measured-transfer ledger; only non-simulated backends carry one.
    measured_ledger = None
    _closed = False

    def __post_init__(self) -> None:
        if self.nprocs <= 0:
            raise ValueError("nprocs must be positive")
        self.ledger = PhaseLedger(nprocs=self.nprocs)
        self.comm = Communicator(self, check_conservation=self.check_conservation)

    # ------------------------------------------------------------------
    # Ranks and phases
    # ------------------------------------------------------------------
    def ranks(self) -> range:
        """Iterate over rank ids (used by the SPMD-style algorithm loops)."""
        return range(self.nprocs)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Enter a named bulk-synchronous phase; costs recorded inside go to it."""
        name = self._phase_prefix + name
        previous = self._current_phase
        self._current_phase = name
        self.ledger.phase(name)  # materialise even if nothing gets charged
        try:
            yield
        finally:
            self._current_phase = previous

    @contextmanager
    def phase_scope(self, prefix: str) -> Iterator[None]:
        """Prefix every phase entered inside the block with ``prefix``.

        The resident pipeline runs several multiplies on one cluster; giving
        each multiply a unique scope (``"it3:"``, ``"sq1:"``, …) keeps their
        phases apart in the run-wide ledger so per-multiply metrics can be
        sliced back out with :meth:`PhaseLedger.subset`.  Scopes nest.
        """
        previous = self._phase_prefix
        self._phase_prefix = previous + prefix
        try:
            yield
        finally:
            self._phase_prefix = previous

    @property
    def phase_prefix(self) -> str:
        """The active phase-name prefix ("" outside any :meth:`phase_scope`)."""
        return self._phase_prefix

    @property
    def current_phase(self) -> str:
        return self._current_phase

    def stats(self, rank: int) -> RankStats:
        """Per-rank stats record of the *current* phase."""
        if not 0 <= rank < self.nprocs:
            raise IndexError(f"rank {rank} outside 0..{self.nprocs - 1}")
        # Cache the current phase's stats list: the charge paths resolve a
        # rank on every event, and the phase only changes at phase()
        # boundaries.  The list object is stable once the ledger creates it,
        # so keying the cache on the phase name is sufficient.
        cache = self._stats_cache
        if cache is not None and cache[0] == self._current_phase:
            return cache[1][rank]
        stats_list = self.ledger.phase(self._current_phase)
        self._stats_cache = (self._current_phase, stats_list)
        return stats_list[rank]

    # ------------------------------------------------------------------
    # Charging local work
    # ------------------------------------------------------------------
    def charge_compute(self, rank: int, flops: int) -> None:
        """Charge ``flops`` sparse flops of local computation to ``rank``."""
        st = self.stats(rank)
        st.flops += int(flops)
        st.charge_time("comp", self.cost_model.compute_cost(int(flops)))

    def charge_other_bytes(self, rank: int, nbytes: int) -> None:
        """Charge auxiliary data-structure work proportional to ``nbytes`` to ``rank``."""
        self.stats(rank).charge_time("other", self.cost_model.pack_cost(int(nbytes)))

    def charge_memory(self, rank: int, nbytes: int) -> None:
        """Record a rank's modelled memory high-water mark; raise if over capacity."""
        st = self.stats(rank)
        st.note_memory(int(nbytes))
        cap = self.cost_model.memory_capacity_bytes
        if cap and nbytes > cap:
            raise MemoryLimitExceeded(rank, int(nbytes), cap)

    def charge_compute_and_memory(self, rank: int, flops: int, nbytes: int) -> None:
        """Fused :meth:`charge_compute` + :meth:`charge_memory` for one rank.

        Applies the exact per-call operations in the same order with a single
        stats lookup — the hot per-(block, stage) path of the 2D/3D stage
        loops charges both on every iteration.
        """
        st = self.stats(rank)
        st.flops += int(flops)
        st.charge_time("comp", self.cost_model.compute_cost(int(flops)))
        st.note_memory(int(nbytes))
        cap = self.cost_model.memory_capacity_bytes
        if cap and nbytes > cap:
            raise MemoryLimitExceeded(rank, int(nbytes), cap)

    # ------------------------------------------------------------------
    # Batched charging (one vectorised pass instead of a per-rank loop)
    # ------------------------------------------------------------------
    def _per_rank_array(self, values, what: str) -> np.ndarray:
        arr = np.asarray(values, dtype=np.int64)
        if arr.shape != (self.nprocs,):
            raise ValueError(
                f"{what} expects one value per rank (shape ({self.nprocs},)), "
                f"got shape {arr.shape}"
            )
        return arr

    def charge_compute_bulk(self, flops_per_rank) -> None:
        """Charge per-rank flops to the current phase in one vectorised pass.

        Bit-identical to calling :meth:`charge_compute` once per rank: the
        cost model's arithmetic is applied elementwise and ranks with zero
        flops are no-ops either way.  This is the batched path the SPMD
        per-rank loops use so charging stays O(numpy) at P = 1024.
        """
        arr = self._per_rank_array(flops_per_rank, "charge_compute_bulk")
        costs = self.cost_model.compute_cost_bulk(arr)
        stats_list = self.ledger.phase(self._current_phase)
        for r in np.nonzero(arr)[0]:
            st = stats_list[r]
            st.flops += int(arr[r])
            st.time["comp"] += float(costs[r])

    def charge_other_bytes_bulk(self, nbytes_per_rank) -> None:
        """Vectorised :meth:`charge_other_bytes` (one value per rank)."""
        arr = self._per_rank_array(nbytes_per_rank, "charge_other_bytes_bulk")
        costs = self.cost_model.pack_cost_bulk(arr)
        stats_list = self.ledger.phase(self._current_phase)
        for r in np.nonzero(arr)[0]:
            stats_list[r].time["other"] += float(costs[r])

    def charge_memory_bulk(self, nbytes_per_rank) -> None:
        """Vectorised :meth:`charge_memory`; raises for the lowest offending rank."""
        arr = self._per_rank_array(nbytes_per_rank, "charge_memory_bulk")
        cap = self.cost_model.memory_capacity_bytes
        stats_list = self.ledger.phase(self._current_phase)
        for r in np.nonzero(arr)[0]:
            stats_list[r].note_memory(int(arr[r]))
            if cap and arr[r] > cap:
                raise MemoryLimitExceeded(int(r), int(arr[r]), cap)

    @contextmanager
    def measured(self, rank: int, category: str) -> Iterator[None]:
        """Measure real wall-clock of the enclosed block into ``rank``'s stats.

        The modelled time is what the figures use; measured time is kept
        alongside it so tests can assert the local kernels really ran.
        """
        start = time.perf_counter()
        try:
            yield
        finally:
            self.stats(rank).charge_measured(category, time.perf_counter() - start)

    # ------------------------------------------------------------------
    # Windows
    # ------------------------------------------------------------------
    def create_window(self, exposed: Dict[int, Dict[str, np.ndarray]]) -> RdmaWindow:
        """Create an RDMA window over per-rank exposed arrays (``MPI_Win_create``)."""
        return RdmaWindow(cluster=self, exposed=exposed)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def elapsed_time(self) -> float:
        """Modelled elapsed seconds accumulated so far (Σ over phases of slowest rank)."""
        return self.ledger.elapsed_time()

    def assert_conservation(self) -> None:
        """Assert the ledger-wide byte balance (delegates to the PhaseLedger)."""
        self.ledger.assert_conserved()

    def reset(self) -> None:
        """Clear all recorded phases (fresh ledger, same machine)."""
        self.ledger = PhaseLedger(nprocs=self.nprocs)
        self._current_phase = "default"
        self._phase_prefix = ""

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        """Has :meth:`shutdown` been called?  Closed clusters refuse new work."""
        return self._closed

    def shutdown(self) -> None:
        """Release backend resources and mark the cluster closed.

        For the simulator this is pure bookkeeping (there is nothing to
        release), but executing a :class:`~repro.core.pipeline.PreparedMultiply`
        against a closed cluster raises a clear error instead of failing deep
        inside the ledger; backends with real resources (the shm transport's
        peer process and segments) override this to release them first.
        Idempotent; recorded ledgers stay readable after shutdown.
        """
        self._closed = True

    def __enter__(self) -> "SimulatedCluster":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    def summary(self) -> Dict[str, float]:
        """Headline numbers for reports."""
        by_cat = self.ledger.elapsed_time_by_category()
        return {
            "nprocs": float(self.nprocs),
            "elapsed_time": self.ledger.elapsed_time(),
            "comm_time": by_cat["comm"],
            "comp_time": by_cat["comp"],
            "other_time": by_cat["other"],
            "total_bytes": float(self.ledger.total_bytes()),
            "total_messages": float(self.ledger.total_messages()),
            "total_rdma_gets": float(self.ledger.total_rdma_gets()),
            "total_flops": float(self.ledger.total_flops()),
            "load_imbalance": self.ledger.load_imbalance(),
            "max_peak_memory": float(self.ledger.max_peak_memory()),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimulatedCluster(nprocs={self.nprocs}, name={self.name!r})"

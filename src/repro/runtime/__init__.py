"""Simulated distributed-memory runtime (the "MPI + RDMA" substrate).

The paper runs on MPI with one-sided RDMA on NERSC Perlmutter; this package
provides the equivalent substrate for an offline, single-node reproduction:
simulated ranks, collectives, passive-target windows, and an α–β–γ cost
model that converts the recorded communication/computation events into
modelled time.  See DESIGN.md §2 for the substitution rationale.
"""

from .costmodel import CostModel, LAPTOP, PERLMUTTER, ZERO_COST
from .stats import CATEGORIES, PhaseLedger, RankStats
from .window import RdmaWindow, WindowEpoch, WindowError
from .communicator import Communicator, binomial_send_counts
from .simulator import MemoryLimitExceeded, SimulatedCluster

__all__ = [
    "CostModel",
    "PERLMUTTER",
    "LAPTOP",
    "ZERO_COST",
    "CATEGORIES",
    "PhaseLedger",
    "RankStats",
    "RdmaWindow",
    "WindowEpoch",
    "WindowError",
    "Communicator",
    "binomial_send_counts",
    "SimulatedCluster",
    "MemoryLimitExceeded",
]

"""Simulated distributed-memory runtime (the "MPI + RDMA" substrate).

The paper runs on MPI with one-sided RDMA on NERSC Perlmutter; this package
provides the equivalent substrate for an offline, single-node reproduction:
simulated ranks, collectives, passive-target windows, and an α–β–γ cost
model that converts the recorded communication/computation events into
modelled time.  See DESIGN.md §2 for the substitution rationale.

The substrate is pluggable (:mod:`repro.runtime.backend`): ``simulated`` is
the modelled-only default, ``shm`` additionally moves every remote payload
through shared memory into a peer process and records a measured ledger
alongside the modelled one.
"""

from .costmodel import CostModel, LAPTOP, PERLMUTTER, ZERO_COST
from .stats import CATEGORIES, PhaseLedger, RankStats
from .window import RdmaWindow, WindowEpoch, WindowError
from .communicator import Communicator, binomial_send_counts
from .simulator import MemoryLimitExceeded, SimulatedCluster
from .backend import (
    Backend,
    BACKENDS,
    available_backends,
    create_cluster,
    resolve_backend,
)

__all__ = [
    "CostModel",
    "PERLMUTTER",
    "LAPTOP",
    "ZERO_COST",
    "CATEGORIES",
    "PhaseLedger",
    "RankStats",
    "RdmaWindow",
    "WindowEpoch",
    "WindowError",
    "Communicator",
    "binomial_send_counts",
    "SimulatedCluster",
    "MemoryLimitExceeded",
    "Backend",
    "BACKENDS",
    "available_backends",
    "create_cluster",
    "resolve_backend",
]

"""Two-sided and collective communication on the simulated runtime.

The baselines the paper compares against (2D sparse SUMMA, 3D split SpGEMM,
block-row 1D) are built on broadcasts, point-to-point sends and
all-to-all exchanges rather than one-sided Gets.  This module provides those
primitives with the same accounting discipline as :mod:`repro.runtime.window`:
data is handed over as numpy arrays (or small picklable metadata), and every
operation charges modelled time to the participating ranks in the current
phase of the owning cluster.

Collective cost conventions (standard implementations):

* ``bcast`` of ``b`` bytes to ``g`` ranks — binomial tree:
  ``ceil(log2 g)`` rounds; every non-root rank receives ``b`` bytes once, and
  each rank that forwards pays the corresponding sends.
* ``allgather`` of per-rank ``b_i`` bytes over ``g`` ranks — ring/bruck:
  each rank receives ``Σ b_i − b_own`` bytes in ``g − 1`` messages.
* ``alltoallv`` — pairwise exchange: each rank sends its per-destination
  buffers directly, paying one message per non-empty destination.
* ``reduce``/``allreduce`` — binomial tree (+ broadcast for allreduce).

All collectives also charge the two-sided pack cost on both sides, which is
exactly the overhead the paper's RDMA design avoids.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

import numpy as np

__all__ = ["Communicator"]


def _nbytes(obj) -> int:
    """Approximate wire size of a payload (numpy array, bytes, or sequence of them)."""
    if obj is None:
        return 0
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (bytes, bytearray)):
        return len(obj)
    if isinstance(obj, (int, float, np.integer, np.floating)):
        return 8
    if isinstance(obj, (list, tuple)):
        return sum(_nbytes(x) for x in obj)
    if isinstance(obj, dict):
        return sum(_nbytes(k) + _nbytes(v) for k, v in obj.items())
    if hasattr(obj, "memory_bytes"):
        return int(obj.memory_bytes())
    # Fallback: a conservative flat size for small metadata objects.
    return 64


class Communicator:
    """Two-sided/collective operations over all ranks of a simulated cluster.

    The data itself is exchanged by reference inside one Python process —
    what matters for the reproduction is the *accounting*: who is charged how
    many messages, bytes, and seconds.
    """

    def __init__(self, cluster) -> None:
        self.cluster = cluster

    # ------------------------------------------------------------------
    @property
    def nprocs(self) -> int:
        return self.cluster.nprocs

    def _model(self):
        return self.cluster.cost_model

    def _stats(self, rank: int):
        return self.cluster.stats(rank)

    # ------------------------------------------------------------------
    # Point-to-point
    # ------------------------------------------------------------------
    def send(self, payload, src: int, dst: int):
        """Model a two-sided send/recv pair and return the payload (for the receiver)."""
        if src == dst:
            return payload
        nbytes = _nbytes(payload)
        model = self._model()
        s = self._stats(src)
        d = self._stats(dst)
        s.messages_sent += 1
        s.bytes_sent += nbytes
        d.bytes_received += nbytes
        cost = model.message_cost(nbytes)
        s.charge_time("comm", cost)
        d.charge_time("comm", cost)
        # Two-sided transfers pack on the sender and unpack on the receiver.
        s.charge_time("other", model.pack_cost(nbytes))
        d.charge_time("other", model.pack_cost(nbytes))
        return payload

    # ------------------------------------------------------------------
    # Collectives
    # ------------------------------------------------------------------
    def bcast(self, payload, root: int, ranks: Optional[Sequence[int]] = None):
        """Broadcast ``payload`` from ``root`` to ``ranks`` (default: everyone).

        Returns a dict ``rank -> payload`` so SPMD-style loops can index it.
        """
        ranks = list(range(self.nprocs)) if ranks is None else list(ranks)
        if root not in ranks:
            raise ValueError("broadcast root must be a member of the rank group")
        g = len(ranks)
        nbytes = _nbytes(payload)
        model = self._model()
        rounds = max(1, math.ceil(math.log2(g))) if g > 1 else 0
        for rank in ranks:
            st = self._stats(rank)
            if g == 1:
                continue
            if rank == root:
                # The root participates in every round of the binomial tree.
                st.messages_sent += rounds
                st.bytes_sent += nbytes * rounds
                st.charge_time("comm", rounds * model.message_cost(nbytes))
                st.charge_time("other", model.pack_cost(nbytes))
            else:
                st.bytes_received += nbytes
                # Every non-root rank receives once and may forward up to
                # log2(g) times; charging one receive + average forwarding of
                # one send keeps totals equal to a binomial tree's volume.
                st.messages_sent += 1
                st.bytes_sent += nbytes
                st.charge_time("comm", rounds * model.message_cost(nbytes))
                st.charge_time("other", model.pack_cost(nbytes))
        return {rank: payload for rank in ranks}

    def allgather(self, per_rank_payloads: Dict[int, object],
                  ranks: Optional[Sequence[int]] = None) -> Dict[int, List[object]]:
        """Allgather: every rank contributes one payload, every rank gets all of them."""
        ranks = sorted(per_rank_payloads) if ranks is None else list(ranks)
        g = len(ranks)
        model = self._model()
        sizes = {r: _nbytes(per_rank_payloads[r]) for r in ranks}
        total = sum(sizes.values())
        for rank in ranks:
            st = self._stats(rank)
            if g > 1:
                recv = total - sizes[rank]
                st.messages_sent += g - 1
                st.bytes_sent += sizes[rank] * (g - 1)
                st.bytes_received += recv
                st.charge_time(
                    "comm", (g - 1) * model.alpha + model.beta * (sizes[rank] * (g - 1) + recv)
                )
                st.charge_time("other", model.pack_cost(recv + sizes[rank]))
        gathered = [per_rank_payloads[r] for r in ranks]
        return {rank: list(gathered) for rank in ranks}

    def gather(self, per_rank_payloads: Dict[int, object], root: int) -> List[object]:
        """Gather every rank's payload at ``root``; returns the ordered list at root."""
        ranks = sorted(per_rank_payloads)
        model = self._model()
        root_stats = self._stats(root)
        for rank in ranks:
            if rank == root:
                continue
            nbytes = _nbytes(per_rank_payloads[rank])
            st = self._stats(rank)
            st.messages_sent += 1
            st.bytes_sent += nbytes
            st.charge_time("comm", model.message_cost(nbytes))
            st.charge_time("other", model.pack_cost(nbytes))
            root_stats.bytes_received += nbytes
            root_stats.charge_time("comm", model.message_cost(nbytes))
            root_stats.charge_time("other", model.pack_cost(nbytes))
        return [per_rank_payloads[r] for r in ranks]

    def alltoallv(
        self, buffers: Dict[int, Dict[int, object]]
    ) -> Dict[int, Dict[int, object]]:
        """Personalised all-to-all.

        ``buffers[src][dst]`` is the payload ``src`` sends to ``dst``; the
        return value is ``received[dst][src]``.  Empty/None payloads cost
        nothing (sparse all-to-all, as used by the 3D merge step).
        """
        model = self._model()
        received: Dict[int, Dict[int, object]] = {r: {} for r in range(self.nprocs)}
        for src, per_dst in buffers.items():
            for dst, payload in per_dst.items():
                if payload is None:
                    continue
                nbytes = _nbytes(payload)
                if src == dst:
                    received[dst][src] = payload
                    continue
                s = self._stats(src)
                d = self._stats(dst)
                s.messages_sent += 1
                s.bytes_sent += nbytes
                d.bytes_received += nbytes
                cost = model.message_cost(nbytes)
                s.charge_time("comm", cost)
                d.charge_time("comm", cost)
                s.charge_time("other", model.pack_cost(nbytes))
                d.charge_time("other", model.pack_cost(nbytes))
                received[dst][src] = payload
        return received

    def allreduce_scalar(self, per_rank_values: Dict[int, float], op=sum) -> Dict[int, float]:
        """Allreduce of one scalar per rank (tree reduce + broadcast accounting)."""
        ranks = sorted(per_rank_values)
        g = len(ranks)
        model = self._model()
        rounds = max(1, math.ceil(math.log2(g))) if g > 1 else 0
        for rank in ranks:
            st = self._stats(rank)
            if g > 1:
                st.messages_sent += rounds
                st.bytes_sent += 8 * rounds
                st.bytes_received += 8 * rounds
                st.charge_time("comm", 2 * rounds * model.message_cost(8))
        value = op(per_rank_values[r] for r in ranks)
        return {rank: value for rank in ranks}

    def barrier(self, ranks: Optional[Sequence[int]] = None) -> None:
        """Synchronise; charges one log-tree latency round to every rank."""
        ranks = list(range(self.nprocs)) if ranks is None else list(ranks)
        g = len(ranks)
        if g <= 1:
            return
        rounds = max(1, math.ceil(math.log2(g)))
        model = self._model()
        for rank in ranks:
            self._stats(rank).charge_time("comm", rounds * model.alpha)

"""Two-sided and collective communication on the simulated runtime.

The baselines the paper compares against (2D sparse SUMMA, 3D split SpGEMM,
block-row 1D) are built on broadcasts, point-to-point sends and
all-to-all exchanges rather than one-sided Gets.  This module provides those
primitives with the same accounting discipline as :mod:`repro.runtime.window`:
data is handed over as numpy arrays (or small picklable metadata), and every
operation charges modelled time to the participating ranks in the current
phase of the owning cluster.

Collective cost conventions (standard implementations):

* ``bcast`` of ``b`` bytes to ``g`` ranks — binomial tree: exactly ``g − 1``
  messages of ``b`` bytes move in ``ceil(log2 g)`` rounds.  Rank at tree
  position ``j`` (relative to the root) receives once and forwards to
  ``j + 2^k`` for every round ``k`` with ``2^k > j`` and ``j + 2^k < g``;
  summed over the group, sent bytes equal received bytes.
* ``allgather`` of per-rank ``b_i`` bytes over ``g`` ranks — ring/bruck:
  each rank receives ``Σ b_i − b_own`` bytes in ``g − 1`` messages.
* ``gather`` — binomial tree towards the root: each non-root sends exactly
  one message carrying its whole accumulated subtree.
* ``alltoallv`` — pairwise exchange: each rank sends its per-destination
  buffers directly, paying one message per non-empty destination.
* ``reduce``/``allreduce`` — binomial tree reduce (one up-message per
  non-root) followed by a binomial-tree broadcast.

Every collective conserves bytes by construction — the total charged as sent
across the group equals the total charged as received — and when
``check_conservation`` is enabled (the default; disable with the environment
variable ``REPRO_CHECK_CONSERVATION=0``) each call also asserts that balance,
so bookkeeping regressions fail loudly at the call site.

All collectives also charge the two-sided pack cost on both sides, which is
exactly the overhead the paper's RDMA design avoids.
"""

from __future__ import annotations

import math
import os
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Communicator", "binomial_send_counts"]

_INDEX_DTYPE = np.int64


def _nbytes(obj) -> int:
    """Approximate wire size of a payload (numpy array, bytes, or sequence of them)."""
    if obj is None:
        return 0
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (bytes, bytearray)):
        return len(obj)
    if isinstance(obj, (int, float, np.integer, np.floating)):
        return 8
    if isinstance(obj, (list, tuple)):
        return sum(_nbytes(x) for x in obj)
    if isinstance(obj, dict):
        return sum(_nbytes(k) + _nbytes(v) for k, v in obj.items())
    if hasattr(obj, "memory_bytes"):
        return int(obj.memory_bytes())
    # Fallback: a conservative flat size for small metadata objects.
    return 64


def _env_flag(name: str, default: bool) -> bool:
    raw = os.environ.get(name)
    if raw is None:
        return default
    return raw.strip().lower() not in ("0", "false", "no", "off", "")


#: cache of per-group-size binomial tree shapes (send counts per tree position)
_BINOMIAL_CACHE: Dict[int, np.ndarray] = {}


def binomial_send_counts(g: int) -> np.ndarray:
    """Messages sent by each *tree position* of a ``g``-rank binomial broadcast.

    Position 0 is the root.  Position ``j`` forwards to ``j + 2^k`` for every
    round ``k`` with ``2^k > j`` and ``j + 2^k < g``; the returned counts
    therefore sum to exactly ``g − 1`` (each non-root position receives the
    payload once, from ``j − 2^floor(log2 j)``).
    """
    if g <= 0:
        raise ValueError("group size must be positive")
    cached = _BINOMIAL_CACHE.get(g)
    if cached is not None:
        return cached
    if g == 1:
        counts = np.zeros(1, dtype=_INDEX_DTYPE)
    else:
        rounds = int(math.ceil(math.log2(g)))
        ks = (2 ** np.arange(rounds, dtype=_INDEX_DTYPE))[None, :]
        js = np.arange(g, dtype=_INDEX_DTYPE)[:, None]
        counts = np.sum((ks > js) & (js + ks < g), axis=1).astype(_INDEX_DTYPE)
    counts.setflags(write=False)
    _BINOMIAL_CACHE[g] = counts
    return counts


class Communicator:
    """Two-sided/collective operations over all ranks of a simulated cluster.

    The data itself is exchanged by reference inside one Python process —
    what matters for the reproduction is the *accounting*: who is charged how
    many messages, bytes, and seconds.  Charges land on the cluster's
    *current phase* in the units of :class:`~repro.runtime.stats.RankStats`
    (modelled seconds, payload bytes, message counts), and every primitive
    conserves bytes by construction: the group's total ``bytes_sent``
    equals its total ``bytes_received`` for each call, asserted inline
    when ``check_conservation`` is enabled (the default).
    """

    def __init__(self, cluster, check_conservation: Optional[bool] = None) -> None:
        self.cluster = cluster
        if check_conservation is None:
            check_conservation = _env_flag("REPRO_CHECK_CONSERVATION", True)
        #: assert per-call group conservation (bytes sent == bytes received)
        self.check_conservation = bool(check_conservation)

    # ------------------------------------------------------------------
    @property
    def nprocs(self) -> int:
        return self.cluster.nprocs

    def _model(self):
        return self.cluster.cost_model

    def _stats(self, rank: int):
        return self.cluster.stats(rank)

    def _charge_group(
        self,
        ranks: np.ndarray,
        *,
        messages: np.ndarray,
        bytes_sent: np.ndarray,
        bytes_received: np.ndarray,
        comm_seconds: np.ndarray,
        other_seconds: Optional[np.ndarray] = None,
        collective: str = "collective",
    ) -> None:
        """Apply per-rank charge arrays for one collective, checking conservation.

        The arrays are aligned with ``ranks``; the conservation invariant is
        checked on the arrays *before* they touch the ledger, so a violation
        points at the exact collective call that produced it.
        """
        if self.check_conservation:
            sent = int(np.sum(bytes_sent))
            received = int(np.sum(bytes_received))
            if sent != received:
                raise AssertionError(
                    f"{collective} violates conservation: group sent {sent} bytes "
                    f"but received {received} bytes"
                )
        for idx, rank in enumerate(ranks):
            self._stats(int(rank)).charge_bulk(
                messages=int(messages[idx]),
                bytes_sent=int(bytes_sent[idx]),
                bytes_received=int(bytes_received[idx]),
                comm_seconds=float(comm_seconds[idx]),
                other_seconds=0.0 if other_seconds is None else float(other_seconds[idx]),
            )

    # ------------------------------------------------------------------
    # Point-to-point
    # ------------------------------------------------------------------
    def send(self, payload, src: int, dst: int):
        """Model a two-sided send/recv pair and return the payload (for the receiver)."""
        if src == dst:
            return payload
        nbytes = _nbytes(payload)
        model = self._model()
        s = self._stats(src)
        d = self._stats(dst)
        cost = model.message_cost(nbytes)
        pack = model.pack_cost(nbytes)
        # Two-sided transfers pack on the sender and unpack on the receiver.
        s.charge_bulk(
            messages=1, bytes_sent=nbytes, comm_seconds=cost, other_seconds=pack
        )
        d.charge_bulk(bytes_received=nbytes, comm_seconds=cost, other_seconds=pack)
        return payload

    def send_many(
        self,
        srcs: Sequence[int],
        dsts: Sequence[int],
        sizes: Sequence[int],
    ) -> None:
        """Charge a whole batch of point-to-point sends in O(P) numpy work.

        ``srcs``/``dsts``/``sizes`` are aligned arrays, one entry per message;
        self-sends (``src == dst``) cost nothing, matching :meth:`send`.  The
        caller keeps moving the payloads by reference — this is the accounting
        path the naive block-row ring exchange uses so its P·(P−1) messages
        cost a handful of numpy calls instead of a Python loop pair.
        """
        srcs = np.asarray(srcs, dtype=_INDEX_DTYPE)
        dsts = np.asarray(dsts, dtype=_INDEX_DTYPE)
        sizes = np.asarray(sizes, dtype=_INDEX_DTYPE)
        if not (srcs.shape == dsts.shape == sizes.shape):
            raise ValueError("send_many arrays must be aligned")
        remote = srcs != dsts
        if not np.any(remote):
            return
        srcs, dsts, sizes = srcs[remote], dsts[remote], sizes[remote]
        model = self._model()
        costs = model.alpha + model.beta * sizes
        packs = model.pack_per_byte * sizes.astype(np.float64)
        ledger = self.cluster.ledger
        phase = self.cluster.current_phase
        ledger.charge_bulk(
            phase,
            srcs,
            messages=1,
            bytes_sent=sizes,
            comm_seconds=costs,
            other_seconds=packs,
        )
        ledger.charge_bulk(
            phase,
            dsts,
            bytes_received=sizes,
            comm_seconds=costs,
            other_seconds=packs,
        )

    # ------------------------------------------------------------------
    # Collectives
    # ------------------------------------------------------------------
    def _bcast_charges(
        self, nbytes: int, root: int, ranks: List[int]
    ) -> Tuple[np.ndarray, ...]:
        """Per-rank (messages, sent, received, comm, other) of one broadcast."""
        g = len(ranks)
        model = self._model()
        ranks_arr = np.asarray(ranks, dtype=_INDEX_DTYPE)
        # Tree positions are assigned relative to the root's position in the
        # group list (the standard relative-rank rotation).
        root_pos = ranks.index(root)
        send_counts = binomial_send_counts(g)[(np.arange(g) - root_pos) % g]
        recv_counts = np.ones(g, dtype=_INDEX_DTYPE)
        recv_counts[root_pos] = 0
        rounds = max(1, math.ceil(math.log2(g))) if g > 1 else 0
        messages = send_counts
        bytes_sent = send_counts * nbytes
        bytes_received = recv_counts * nbytes
        # Every participant is on the critical path of the full tree depth.
        comm = np.full(g, rounds * model.message_cost(nbytes), dtype=np.float64)
        other = np.full(g, model.pack_cost(nbytes), dtype=np.float64)
        if g == 1:
            comm[:] = 0.0
            other[:] = 0.0
        return ranks_arr, messages, bytes_sent, bytes_received, comm, other

    def bcast(self, payload, root: int, ranks: Optional[Sequence[int]] = None):
        """Broadcast ``payload`` from ``root`` to ``ranks`` (default: everyone).

        Binomial-tree accounting: exactly ``g − 1`` messages of ``b`` bytes in
        total, so group bytes sent equal group bytes received.  Returns a dict
        ``rank -> payload`` so SPMD-style loops can index it.
        """
        ranks = list(range(self.nprocs)) if ranks is None else list(ranks)
        if root not in ranks:
            raise ValueError("broadcast root must be a member of the rank group")
        nbytes = _nbytes(payload)
        ranks_arr, messages, sent, received, comm, other = self._bcast_charges(
            nbytes, root, ranks
        )
        self._charge_group(
            ranks_arr,
            messages=messages,
            bytes_sent=sent,
            bytes_received=received,
            comm_seconds=comm,
            other_seconds=other,
            collective="bcast",
        )
        return {rank: payload for rank in ranks}

    def bcast_many(
        self,
        items: Sequence[Tuple[object, int, Sequence[int]]],
    ) -> List[Dict[int, object]]:
        """Charge a batch of broadcasts — ``(payload, root, ranks)`` triples — at once.

        Produces byte-for-byte the same ledger as looping :meth:`bcast`, but
        aggregates all per-rank deltas into numpy arrays and lands them with
        one :meth:`~repro.runtime.stats.PhaseLedger.charge_bulk` call, which is
        what keeps a √P-stage SUMMA sweep O(stages) in Python instead of
        O(stages · √P · group).
        """
        all_ranks: List[np.ndarray] = []
        all_msgs: List[np.ndarray] = []
        all_sent: List[np.ndarray] = []
        all_recv: List[np.ndarray] = []
        all_comm: List[np.ndarray] = []
        all_other: List[np.ndarray] = []
        results: List[Dict[int, object]] = []
        for payload, root, ranks in items:
            ranks = list(ranks)
            if root not in ranks:
                raise ValueError("broadcast root must be a member of the rank group")
            nbytes = _nbytes(payload)
            ranks_arr, messages, sent, received, comm, other = self._bcast_charges(
                nbytes, root, ranks
            )
            all_ranks.append(ranks_arr)
            all_msgs.append(messages)
            all_sent.append(sent)
            all_recv.append(received)
            all_comm.append(comm)
            all_other.append(other)
            if self.check_conservation and int(sent.sum()) != int(received.sum()):
                raise AssertionError(
                    "bcast_many violates conservation: group sent "
                    f"{int(sent.sum())} bytes but received {int(received.sum())}"
                )
            results.append({rank: payload for rank in ranks})
        if not all_ranks:
            return results
        self.cluster.ledger.charge_bulk(
            self.cluster.current_phase,
            np.concatenate(all_ranks),
            messages=np.concatenate(all_msgs),
            bytes_sent=np.concatenate(all_sent),
            bytes_received=np.concatenate(all_recv),
            comm_seconds=np.concatenate(all_comm),
            other_seconds=np.concatenate(all_other),
        )
        return results

    def allgather(self, per_rank_payloads: Dict[int, object],
                  ranks: Optional[Sequence[int]] = None) -> Dict[int, List[object]]:
        """Allgather: every rank contributes one payload, every rank gets all of them."""
        ranks = sorted(per_rank_payloads) if ranks is None else list(ranks)
        g = len(ranks)
        model = self._model()
        sizes = np.array([_nbytes(per_rank_payloads[r]) for r in ranks], dtype=_INDEX_DTYPE)
        total = int(sizes.sum())
        gathered = [per_rank_payloads[r] for r in ranks]
        if g > 1:
            recv = total - sizes
            sent = sizes * (g - 1)
            messages = np.full(g, g - 1, dtype=_INDEX_DTYPE)
            comm = (g - 1) * model.alpha + model.beta * (sent + recv).astype(np.float64)
            other = model.pack_per_byte * (recv + sizes).astype(np.float64)
            self._charge_group(
                np.asarray(ranks, dtype=_INDEX_DTYPE),
                messages=messages,
                bytes_sent=sent,
                bytes_received=recv,
                comm_seconds=comm,
                other_seconds=other,
                collective="allgather",
            )
        return {rank: list(gathered) for rank in ranks}

    def gather(self, per_rank_payloads: Dict[int, object], root: int) -> List[object]:
        """Gather every rank's payload at ``root``; returns the ordered list at root.

        Binomial-tree accounting: each non-root tree position sends exactly one
        message carrying its accumulated subtree, so the group moves ``g − 1``
        messages and ``Σ_{j≠root} subtree_bytes(j)`` bytes, sent == received.
        """
        ranks = sorted(per_rank_payloads)
        g = len(ranks)
        model = self._model()
        result = [per_rank_payloads[r] for r in ranks]
        if g <= 1:
            return result
        root_pos = ranks.index(root)
        sizes = np.array([_nbytes(per_rank_payloads[r]) for r in ranks], dtype=_INDEX_DTYPE)
        # Accumulate subtree sizes up the binomial tree, round by round; the
        # position arrays are relative to the root (position 0 = root).
        rel_sizes = np.roll(sizes, -root_pos)
        acc = rel_sizes.astype(_INDEX_DTYPE).copy()
        rounds = int(math.ceil(math.log2(g)))
        rel_sent = np.zeros(g, dtype=_INDEX_DTYPE)
        rel_recv = np.zeros(g, dtype=_INDEX_DTYPE)
        rel_msgs = np.zeros(g, dtype=_INDEX_DTYPE)
        for k in range(rounds):
            step = 1 << k
            senders = np.arange(g, dtype=_INDEX_DTYPE)
            mask = (senders & ((step << 1) - 1)) == step
            senders = senders[mask]
            if senders.size == 0:
                continue
            parents = senders - step
            moved = acc[senders]
            rel_sent[senders] += moved
            rel_msgs[senders] += 1
            rel_recv[parents] += moved
            np.add.at(acc, parents, moved)
            acc[senders] = 0
        # Rotate back to absolute group positions.
        positions = (np.arange(g) - root_pos) % g
        sent = rel_sent[positions]
        received = rel_recv[positions]
        messages = rel_msgs[positions]
        comm = model.alpha * (messages + (received > 0)) + model.beta * (
            sent + received
        ).astype(np.float64)
        other = model.pack_per_byte * (sent + received).astype(np.float64)
        self._charge_group(
            np.asarray(ranks, dtype=_INDEX_DTYPE),
            messages=messages,
            bytes_sent=sent,
            bytes_received=received,
            comm_seconds=comm,
            other_seconds=other,
            collective="gather",
        )
        return result

    def alltoallv(
        self, buffers: Dict[int, Dict[int, object]]
    ) -> Dict[int, Dict[int, object]]:
        """Personalised all-to-all.

        ``buffers[src][dst]`` is the payload ``src`` sends to ``dst``; the
        return value is ``received[dst][src]``.  Empty/None payloads cost
        nothing (sparse all-to-all, as used by the 3D merge step).  The
        accounting for all pairs is aggregated into numpy arrays and charged
        in O(P), not O(P²).
        """
        received: Dict[int, Dict[int, object]] = {r: {} for r in range(self.nprocs)}
        srcs: List[int] = []
        dsts: List[int] = []
        sizes: List[int] = []
        for src, per_dst in buffers.items():
            for dst, payload in per_dst.items():
                if payload is None:
                    continue
                received[dst][src] = payload
                if src == dst:
                    continue
                srcs.append(src)
                dsts.append(dst)
                sizes.append(_nbytes(payload))
        self.alltoallv_sizes(srcs, dsts, sizes)
        return received

    def alltoallv_sizes(
        self,
        srcs: Sequence[int],
        dsts: Sequence[int],
        sizes: Sequence[int],
    ) -> None:
        """Pure-accounting personalised all-to-all over numpy size arrays.

        One entry per pairwise message; self-messages must already be
        filtered out by the caller (:meth:`alltoallv` does).  This is the
        vectorised path the algorithms use when the payload routing is handled
        separately from the cost accounting.
        """
        srcs = np.asarray(srcs, dtype=_INDEX_DTYPE)
        dsts = np.asarray(dsts, dtype=_INDEX_DTYPE)
        sizes = np.asarray(sizes, dtype=_INDEX_DTYPE)
        if not (srcs.shape == dsts.shape == sizes.shape):
            raise ValueError("alltoallv_sizes arrays must be aligned")
        if srcs.size == 0:
            return
        if self.check_conservation and np.any(srcs == dsts):
            raise AssertionError("alltoallv_sizes received a self-message")
        model = self._model()
        costs = model.alpha + model.beta * sizes
        packs = model.pack_per_byte * sizes.astype(np.float64)
        ledger = self.cluster.ledger
        phase = self.cluster.current_phase
        ledger.charge_bulk(
            phase,
            srcs,
            messages=1,
            bytes_sent=sizes,
            comm_seconds=costs,
            other_seconds=packs,
        )
        ledger.charge_bulk(
            phase,
            dsts,
            bytes_received=sizes,
            comm_seconds=costs,
            other_seconds=packs,
        )

    def allreduce_scalar(self, per_rank_values: Dict[int, float], op=sum) -> Dict[int, float]:
        """Allreduce of one scalar per rank (binomial reduce + binomial broadcast).

        The reduce phase moves ``g − 1`` eight-byte messages up the tree (one
        per non-root position); the broadcast phase moves ``g − 1`` back down,
        so the group's sent and received bytes balance exactly.
        """
        ranks = sorted(per_rank_values)
        g = len(ranks)
        model = self._model()
        value = op(per_rank_values[r] for r in ranks)
        if g <= 1:
            return {rank: value for rank in ranks}
        rounds = max(1, math.ceil(math.log2(g)))
        # Tree position == group position (root = ranks[0]).
        down_sends = binomial_send_counts(g)          # broadcast: sends per position
        up_sends = (np.arange(g) > 0).astype(_INDEX_DTYPE)  # reduce: one up-message
        up_recvs = down_sends                          # children count == bcast sends
        down_recvs = up_sends                          # every non-root receives once
        messages = up_sends + down_sends
        sent = 8 * messages
        received = 8 * (up_recvs + down_recvs)
        comm = np.full(g, 2 * rounds * model.message_cost(8), dtype=np.float64)
        self._charge_group(
            np.asarray(ranks, dtype=_INDEX_DTYPE),
            messages=messages,
            bytes_sent=sent,
            bytes_received=received,
            comm_seconds=comm,
            collective="allreduce_scalar",
        )
        return {rank: value for rank in ranks}

    def barrier(self, ranks: Optional[Sequence[int]] = None) -> None:
        """Synchronise; charges one log-tree latency round to every rank."""
        ranks = list(range(self.nprocs)) if ranks is None else list(ranks)
        g = len(ranks)
        if g <= 1:
            return
        rounds = max(1, math.ceil(math.log2(g)))
        model = self._model()
        for rank in ranks:
            self._stats(rank).charge_time("comm", rounds * model.alpha)

"""Per-rank accounting of communication, computation and "other" work.

The paper's breakdown figures (Figs 4, 8, 10) report, for every MPI process,
three categories:

* **communication** — RDMA requests fetching remote ``A`` data (or, for the
  baselines, the SUMMA broadcasts / AllToAll exchanges),
* **computation** — the local SpGEMM,
* **other** — creation/deletion of auxiliary arrays and data structures
  (building the local DCSC object, exchanging the nonzero-column metadata of
  ``A_i``, packing the compacted Ã …).

:class:`RankStats` mirrors those categories and additionally counts messages,
bytes and flops so communication-volume figures (Figs 5, 6) come from the
same objects.  :class:`PhaseLedger` groups the per-rank numbers into named
bulk-synchronous phases so elapsed time can be modelled as
``Σ_phases max_ranks(phase time)``.

Conservation invariant
----------------------
Every byte charged as *sent* by some rank must be charged as *received* by
another rank (and vice versa): sends, collectives and RDMA Gets all move data
between two ledger entries of the same phase.  :meth:`PhaseLedger.conservation_report`
exposes the per-phase balance and :meth:`PhaseLedger.assert_conserved` turns a
violation into a hard error, which is how the test suite pins the bookkeeping
of every collective and every distributed algorithm.

Batched charging
----------------
The distributed algorithms execute O(P²) logical messages per phase; charging
them one Python attribute update at a time dominates wall-clock at high
process counts.  :meth:`RankStats.charge_bulk` applies a whole phase's worth
of counters to one rank in a single call, and
:meth:`PhaseLedger.charge_bulk` scatters numpy arrays of per-event charges
onto the ranks of a phase with ``np.add.at`` so the Python-level work is
O(ranks), not O(messages).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

__all__ = ["RankStats", "PhaseLedger", "CATEGORIES"]

CATEGORIES = ("comm", "comp", "other")


@dataclass
class RankStats:
    """Event counters and modelled times for one simulated rank.

    Units: ``time``/``measured`` are **seconds** (modelled α–β–γ seconds
    and measured host wall-clock respectively — never mixed), byte
    counters are **bytes** of wire payload, ``flops`` are sparse
    multiply-adds, ``peak_memory_bytes`` is a high-water mark in bytes.
    Conservation expectation: summed over the ranks of one phase,
    ``bytes_sent == bytes_received`` — every primitive that moves bytes
    charges both sides in the same phase.
    """

    rank: int
    #: modelled seconds by category (literal spelling of ``CATEGORIES`` —
    #: a dict literal is much cheaper than a comprehension and P×phases
    #: instances are created per run)
    time: Dict[str, float] = field(
        default_factory=lambda: {"comm": 0.0, "comp": 0.0, "other": 0.0}
    )
    #: measured wall-clock seconds by category (real Python work that ran)
    measured: Dict[str, float] = field(
        default_factory=lambda: {"comm": 0.0, "comp": 0.0, "other": 0.0}
    )
    #: number of point-to-point / one-sided messages this rank originated
    messages_sent: int = 0
    #: number of RDMA Get operations this rank issued
    rdma_gets: int = 0
    #: bytes this rank sent (origin side of sends; target side of Gets)
    bytes_sent: int = 0
    #: bytes this rank received (fetched via Gets or received via sends)
    bytes_received: int = 0
    #: sparse flops executed by this rank's local kernels
    flops: int = 0
    #: peak modelled memory in bytes (local inputs + fetched data + output)
    peak_memory_bytes: int = 0

    @classmethod
    def fresh(cls, rank: int) -> "RankStats":
        """Zeroed instance, skipping dataclass-init overhead.

        Identical to ``RankStats(rank=rank)``; the ledger creates P of these
        per phase, which makes the generated ``__init__`` (plus two factory
        calls) measurable at P = 1024.
        """
        st = object.__new__(cls)
        st.rank = rank
        st.time = {"comm": 0.0, "comp": 0.0, "other": 0.0}
        st.measured = {"comm": 0.0, "comp": 0.0, "other": 0.0}
        st.messages_sent = 0
        st.rdma_gets = 0
        st.bytes_sent = 0
        st.bytes_received = 0
        st.flops = 0
        st.peak_memory_bytes = 0
        return st

    def charge_time(self, category: str, seconds: float) -> None:
        if category not in self.time:
            raise KeyError(f"unknown time category {category!r}")
        self.time[category] += float(seconds)

    def charge_bulk(
        self,
        *,
        messages: int = 0,
        rdma_gets: int = 0,
        bytes_sent: int = 0,
        bytes_received: int = 0,
        comm_seconds: float = 0.0,
        comp_seconds: float = 0.0,
        other_seconds: float = 0.0,
        flops: int = 0,
    ) -> None:
        """Apply a whole batch of charges to this rank in one call.

        The batched communication primitives aggregate an entire phase's
        messages into per-rank totals (with numpy) and land them here, so the
        Python-level cost is one call per rank instead of one per message.
        """
        self.messages_sent += int(messages)
        self.rdma_gets += int(rdma_gets)
        self.bytes_sent += int(bytes_sent)
        self.bytes_received += int(bytes_received)
        self.time["comm"] += float(comm_seconds)
        self.time["comp"] += float(comp_seconds)
        self.time["other"] += float(other_seconds)
        self.flops += int(flops)

    def charge_measured(self, category: str, seconds: float) -> None:
        if category not in self.measured:
            raise KeyError(f"unknown time category {category!r}")
        self.measured[category] += float(seconds)

    def note_memory(self, nbytes: int) -> None:
        self.peak_memory_bytes = max(self.peak_memory_bytes, int(nbytes))

    @property
    def total_time(self) -> float:
        """Total modelled time across categories."""
        return float(sum(self.time.values()))

    @property
    def comm_time(self) -> float:
        return self.time["comm"]

    @property
    def comp_time(self) -> float:
        return self.time["comp"]

    @property
    def other_time(self) -> float:
        return self.time["other"]

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary used by the reporting helpers."""
        out: Dict[str, float] = {f"time_{k}": v for k, v in self.time.items()}
        out.update({f"measured_{k}": v for k, v in self.measured.items()})
        out.update(
            {
                "messages_sent": float(self.messages_sent),
                "rdma_gets": float(self.rdma_gets),
                "bytes_sent": float(self.bytes_sent),
                "bytes_received": float(self.bytes_received),
                "flops": float(self.flops),
                "peak_memory_bytes": float(self.peak_memory_bytes),
            }
        )
        return out


@dataclass
class PhaseLedger:
    """Collection of per-rank stats grouped into named BSP phases.

    A *phase* is a stretch of the algorithm delimited by (implicit) global
    synchronisation: metadata exchange, remote fetch, local multiply, result
    redistribution, …  Elapsed modelled time is the sum over phases of the
    slowest rank in that phase, which is how a bulk-synchronous SPMD code
    actually behaves.

    All aggregations return the units of :class:`RankStats` (seconds,
    bytes, flops); ``is_conserved``/``assert_conserved`` check the
    per-phase byte balance every finished ledger is expected to satisfy.
    """

    nprocs: int
    #: phase name -> list of RankStats (index = rank)
    phases: Dict[str, List[RankStats]] = field(default_factory=dict)
    #: insertion order of phases
    phase_order: List[str] = field(default_factory=list)

    def phase(self, name: str) -> List[RankStats]:
        """Return (creating if needed) the per-rank stats of phase ``name``."""
        if name not in self.phases:
            fresh = RankStats.fresh
            self.phases[name] = [fresh(r) for r in range(self.nprocs)]
            self.phase_order.append(name)
        return self.phases[name]

    def rank(self, phase: str, rank: int) -> RankStats:
        return self.phase(phase)[rank]

    def charge_bulk(
        self,
        phase: str,
        ranks,
        *,
        messages=None,
        rdma_gets=None,
        bytes_sent=None,
        bytes_received=None,
        comm_seconds=None,
        other_seconds=None,
    ) -> None:
        """Scatter per-event charges onto the ranks of ``phase`` in O(ranks).

        ``ranks`` is an integer array with one entry per event (repeats
        allowed); each keyword is either ``None``, a scalar applied to every
        event, or an array aligned with ``ranks``.  Aggregation happens with
        ``np.add.at`` so a phase with millions of messages costs a handful of
        numpy calls plus one Python loop over the *distinct* ranks touched.
        """
        ranks = np.asarray(ranks, dtype=np.int64)
        if ranks.size == 0:
            return
        if ranks.min() < 0 or ranks.max() >= self.nprocs:
            raise IndexError("rank id outside 0..nprocs-1 in charge_bulk")
        stats_list = self.phase(phase)

        def _accumulate(values, dtype):
            if values is None:
                return None
            acc = np.zeros(self.nprocs, dtype=dtype)
            values = np.asarray(values)
            if values.ndim == 0:
                np.add.at(acc, ranks, np.broadcast_to(values, ranks.shape))
            else:
                if values.shape != ranks.shape:
                    raise ValueError("charge_bulk array not aligned with ranks")
                np.add.at(acc, ranks, values)
            return acc

        acc_msgs = _accumulate(messages, np.int64)
        acc_gets = _accumulate(rdma_gets, np.int64)
        acc_sent = _accumulate(bytes_sent, np.int64)
        acc_recv = _accumulate(bytes_received, np.int64)
        acc_comm = _accumulate(comm_seconds, np.float64)
        acc_other = _accumulate(other_seconds, np.float64)
        for r in np.unique(ranks):
            stats_list[r].charge_bulk(
                messages=0 if acc_msgs is None else acc_msgs[r],
                rdma_gets=0 if acc_gets is None else acc_gets[r],
                bytes_sent=0 if acc_sent is None else acc_sent[r],
                bytes_received=0 if acc_recv is None else acc_recv[r],
                comm_seconds=0.0 if acc_comm is None else acc_comm[r],
                other_seconds=0.0 if acc_other is None else acc_other[r],
            )

    # ------------------------------------------------------------------
    # Conservation invariant
    # ------------------------------------------------------------------
    def conservation_report(self) -> Dict[str, Dict[str, int]]:
        """Per-phase byte balance: total sent, total received, and the gap.

        Every primitive of the simulated runtime moves bytes between two
        ledger entries of the same phase (sender/origin and receiver/target),
        so a non-zero ``imbalance`` in any phase means a bookkeeping bug.
        """
        report: Dict[str, Dict[str, int]] = {}
        for name in self.phase_order:
            stats_list = self.phases[name]
            sent = sum(st.bytes_sent for st in stats_list)
            received = sum(st.bytes_received for st in stats_list)
            report[name] = {
                "bytes_sent": sent,
                "bytes_received": received,
                "imbalance": sent - received,
            }
        return report

    def is_conserved(self) -> bool:
        """True iff every phase's total bytes sent equals total bytes received."""
        return all(row["imbalance"] == 0 for row in self.conservation_report().values())

    def assert_conserved(self) -> None:
        """Raise ``AssertionError`` naming the offending phases if unbalanced."""
        bad = {
            name: row
            for name, row in self.conservation_report().items()
            if row["imbalance"] != 0
        }
        if bad:
            detail = ", ".join(
                f"{name}: sent={row['bytes_sent']} received={row['bytes_received']}"
                for name, row in bad.items()
            )
            raise AssertionError(f"ledger conservation violated in phases {{{detail}}}")

    # ------------------------------------------------------------------
    # Aggregations
    # ------------------------------------------------------------------
    def per_rank_totals(self) -> List[RankStats]:
        """Sum every phase into one RankStats per rank (for breakdown plots)."""
        totals = [RankStats(rank=r) for r in range(self.nprocs)]
        for stats_list in self.phases.values():
            for r, st in enumerate(stats_list):
                for cat in CATEGORIES:
                    totals[r].time[cat] += st.time[cat]
                    totals[r].measured[cat] += st.measured[cat]
                totals[r].messages_sent += st.messages_sent
                totals[r].rdma_gets += st.rdma_gets
                totals[r].bytes_sent += st.bytes_sent
                totals[r].bytes_received += st.bytes_received
                totals[r].flops += st.flops
                totals[r].peak_memory_bytes = max(
                    totals[r].peak_memory_bytes, st.peak_memory_bytes
                )
        return totals

    def per_rank_time_arrays(self) -> Dict[str, np.ndarray]:
        """Per-rank modelled seconds by category, summed across phases.

        The record-extraction fast path: same values as reading ``time`` off
        :meth:`per_rank_totals` without materialising RankStats objects.
        Each rank's float accumulation happens in phase-insertion order, one
        addition per phase — exactly the order the RankStats loop applies —
        so every entry is bit-identical.
        """
        acc = {c: np.zeros(self.nprocs, dtype=np.float64) for c in CATEGORIES}
        for stats_list in self.phases.values():
            for c in CATEGORIES:
                acc[c] += np.fromiter(
                    (st.time[c] for st in stats_list),
                    dtype=np.float64,
                    count=len(stats_list),
                )
        return acc

    def elapsed_time(self) -> float:
        """Modelled elapsed time: Σ over phases of the slowest rank in that phase."""
        total = 0.0
        for name in self.phase_order:
            stats_list = self.phases[name]
            total += max((st.total_time for st in stats_list), default=0.0)
        return total

    def elapsed_time_by_category(self) -> Dict[str, float]:
        """Per-category elapsed time using the same Σ-max convention.

        The per-category maxima are taken on the same critical rank that
        maximises the phase total, so the categories sum to
        :meth:`elapsed_time` exactly.
        """
        out = {c: 0.0 for c in CATEGORIES}
        for name in self.phase_order:
            stats_list = self.phases[name]
            if not stats_list:
                continue
            critical = max(stats_list, key=lambda st: st.total_time)
            for c in CATEGORIES:
                out[c] += critical.time[c]
        return out

    def total_bytes(self) -> int:
        """Total communication volume (bytes received across all ranks/phases)."""
        return sum(
            st.bytes_received for stats_list in self.phases.values() for st in stats_list
        )

    def total_messages(self) -> int:
        """Total message count (sends + Gets) across all ranks/phases."""
        return sum(
            st.messages_sent + st.rdma_gets
            for stats_list in self.phases.values()
            for st in stats_list
        )

    def total_rdma_gets(self) -> int:
        return sum(
            st.rdma_gets for stats_list in self.phases.values() for st in stats_list
        )

    def total_flops(self) -> int:
        return sum(st.flops for stats_list in self.phases.values() for st in stats_list)

    def max_peak_memory(self) -> int:
        return max(
            (st.peak_memory_bytes for stats_list in self.phases.values() for st in stats_list),
            default=0,
        )

    def scalar_summary(self) -> Dict[str, object]:
        """Every scalar aggregate of the record schema in one ledger sweep.

        Computes exactly what :meth:`elapsed_time`,
        :meth:`elapsed_time_by_category`, :meth:`total_bytes`,
        :meth:`total_messages` and :meth:`total_rdma_gets` return — same
        iteration order, same accumulation order, so every value is
        bit-identical to the individual methods — but visits each
        ``RankStats`` once instead of once per aggregate.
        """
        elapsed = 0.0
        by_category = {c: 0.0 for c in CATEGORIES}
        total_bytes = 0
        total_messages = 0
        total_gets = 0
        for name in self.phase_order:
            critical = None
            critical_total = 0.0
            for st in self.phases[name]:
                t = st.total_time
                # Strict > keeps the first maximal rank, matching max().
                if critical is None or t > critical_total:
                    critical, critical_total = st, t
                total_bytes += st.bytes_received
                total_messages += st.messages_sent + st.rdma_gets
                total_gets += st.rdma_gets
            if critical is not None:
                elapsed += critical_total
                for c in CATEGORIES:
                    by_category[c] += critical.time[c]
        return {
            "elapsed_time": elapsed,
            "elapsed_time_by_category": by_category,
            "total_bytes": total_bytes,
            "total_messages": total_messages,
            "total_rdma_gets": total_gets,
        }

    def load_imbalance(self) -> float:
        """max/mean ratio of per-rank total modelled time (1.0 = perfectly balanced)."""
        totals = [st.total_time for st in self.per_rank_totals()]
        mean = float(np.mean(totals)) if totals else 0.0
        if mean == 0.0:
            return 1.0
        return float(np.max(totals)) / mean

    def merge(self, other: "PhaseLedger", *, prefix: str = "") -> None:
        """Append another ledger's phases to this one (phase names optionally prefixed)."""
        if other.nprocs != self.nprocs:
            raise ValueError("cannot merge ledgers with different process counts")
        for name in other.phase_order:
            target = self.phase(prefix + name)
            for r, st in enumerate(other.phases[name]):
                _accumulate_rank_stats(target[r], st)

    def subset(self, prefix: str, *, strip: bool = True) -> "PhaseLedger":
        """A new ledger holding copies of the phases whose names start with ``prefix``.

        Used by the resident prepare/execute pipeline to slice one run-wide
        ledger into per-multiply ledgers: each ``execute`` runs under a unique
        phase prefix (see :meth:`SimulatedCluster.phase_scope`) and its result
        carries ``ledger.subset(prefix)``.  With ``strip`` (the default) the
        prefix is removed from the copied phase names, so a sliced ledger is
        phase-for-phase comparable to one produced by a standalone run.
        """
        out = PhaseLedger(nprocs=self.nprocs)
        for name in self.phase_order:
            if not name.startswith(prefix):
                continue
            target = out.phase(name[len(prefix):] if strip else name)
            for r, st in enumerate(self.phases[name]):
                _accumulate_rank_stats(target[r], st)
        return out


def _accumulate_rank_stats(tgt: RankStats, st: RankStats) -> None:
    """Fold ``st``'s counters into ``tgt`` (shared by merge/subset)."""
    for cat in CATEGORIES:
        tgt.time[cat] += st.time[cat]
        tgt.measured[cat] += st.measured[cat]
    tgt.messages_sent += st.messages_sent
    tgt.rdma_gets += st.rdma_gets
    tgt.bytes_sent += st.bytes_sent
    tgt.bytes_received += st.bytes_received
    tgt.flops += st.flops
    tgt.peak_memory_bytes = max(tgt.peak_memory_bytes, st.peak_memory_bytes)

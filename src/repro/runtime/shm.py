"""Shared-memory execution backend: real inter-process transfers.

The simulated runtime moves data by reference inside one Python process —
only the accounting is real.  :class:`ShmCluster` keeps that modelled ledger
bit-identical (every charge is delegated to the unmodified base classes) but
additionally moves every remote payload *physically*: the bytes are
serialised, written into a POSIX shared-memory segment, copied out by a peer
process into its own address space, written back into a second segment, and
only then deserialised for the receiving rank.  The round trip through
another process is what makes the transfer real: the payload a receiver sees
has genuinely left this process and come back through shared memory.

Alongside the modelled :class:`~repro.runtime.stats.PhaseLedger` the cluster
records a :class:`MeasuredLedger` — per phase: wall-clock seconds, transfer
seconds, per-rank physically-moved byte counters, and transfer counts.  The
measured byte ledger is conserved per phase by construction (every transfer
records the same byte count as sent by the source and received by the
destination), and tests assert it the same way ``tests/test_conservation.py``
asserts the modelled invariant.

Measured vs modelled byte counts
--------------------------------
Window ``get``/``get_concat`` and the size-only primitives
(``send_many``/``alltoallv_sizes``) move exactly the modelled byte counts, so
measured == modelled for those phases.  Payload collectives serialise with
pickle, so their measured bytes are the *wire* size (pickle framing included)
rather than the modelled raw-array size — the difference is precisely the
packing overhead the paper's RDMA design avoids, and the validation harness
(``benchmarks/bench_backend_validation.py``) reports both side by side.

The transport uses the ``fork`` start method (a ``spawn`` child cannot be
launched from all the entry points this repo supports) and a single peer
process; group collectives perform one physical round trip per logical
pairwise message, so e.g. a broadcast to ``g`` ranks moves ``g − 1`` real
copies.  Process counts on this backend are the paper's small configurations
(4–16 ranks), not the 1024-rank modelled sweeps.
"""

from __future__ import annotations

import pickle
import struct
import time
import weakref
from contextlib import contextmanager
from dataclasses import dataclass, field
from multiprocessing import get_context, shared_memory
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .communicator import Communicator, _nbytes
from .simulator import SimulatedCluster
from .window import RdmaWindow, WindowError

__all__ = [
    "MeasuredPhase",
    "MeasuredLedger",
    "ShmTransport",
    "ShmCommunicator",
    "ShmRdmaWindow",
    "ShmCluster",
    "attach_segment",
]

_INITIAL_CAPACITY = 1 << 20  # 1 MiB; segments grow on demand


# ----------------------------------------------------------------------
# Measured accounting
# ----------------------------------------------------------------------
@dataclass
class MeasuredPhase:
    """Measured counters of one phase: what physically moved, and when."""

    nprocs: int
    #: bytes each rank physically pushed through shared memory
    bytes_sent: np.ndarray = field(default=None)  # type: ignore[assignment]
    #: bytes each rank physically received back out of shared memory
    bytes_received: np.ndarray = field(default=None)  # type: ignore[assignment]
    #: number of physical round trips recorded in this phase
    transfers: int = 0
    #: seconds spent inside transport round trips
    transfer_seconds: float = 0.0
    #: wall-clock seconds of the whole phase block (driver code included)
    wall_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.bytes_sent is None:
            self.bytes_sent = np.zeros(self.nprocs, dtype=np.int64)
        if self.bytes_received is None:
            self.bytes_received = np.zeros(self.nprocs, dtype=np.int64)

    def is_conserved(self) -> bool:
        return int(self.bytes_sent.sum()) == int(self.bytes_received.sum())


class MeasuredLedger:
    """Per-phase measured counters, mirroring the modelled PhaseLedger shape.

    Supports the same ``subset``/``merge`` slicing the modelled ledger offers
    so multi-cluster workloads (AMG's two products, legacy BC's per-iteration
    clusters) can compose one run-wide measured ledger with phase prefixes.
    """

    def __init__(self, nprocs: int) -> None:
        if nprocs <= 0:
            raise ValueError("nprocs must be positive")
        self.nprocs = nprocs
        self.phases: Dict[str, MeasuredPhase] = {}
        self.phase_order: List[str] = []

    def phase(self, name: str) -> MeasuredPhase:
        ph = self.phases.get(name)
        if ph is None:
            ph = MeasuredPhase(nprocs=self.nprocs)
            self.phases[name] = ph
            self.phase_order.append(name)
        return ph

    def record_transfer(
        self, phase: str, src: int, dst: int, nbytes: int, seconds: float
    ) -> None:
        """Account one physical transfer of ``nbytes`` from ``src`` to ``dst``."""
        ph = self.phase(phase)
        ph.bytes_sent[src] += int(nbytes)
        ph.bytes_received[dst] += int(nbytes)
        ph.transfers += 1
        ph.transfer_seconds += float(seconds)

    # Totals ------------------------------------------------------------
    def total_bytes(self) -> int:
        return int(sum(int(p.bytes_received.sum()) for p in self.phases.values()))

    def total_bytes_sent(self) -> int:
        return int(sum(int(p.bytes_sent.sum()) for p in self.phases.values()))

    def total_transfers(self) -> int:
        return int(sum(p.transfers for p in self.phases.values()))

    def transfer_seconds(self) -> float:
        return float(sum(p.transfer_seconds for p in self.phases.values()))

    def wall_seconds(self) -> float:
        return float(sum(p.wall_seconds for p in self.phases.values()))

    def is_conserved(self) -> bool:
        """Does every phase balance physically-sent against physically-received?"""
        return all(p.is_conserved() for p in self.phases.values())

    # Composition -------------------------------------------------------
    def subset(self, prefix: str, strip: bool = True) -> "MeasuredLedger":
        """A new ledger holding only phases whose name starts with ``prefix``."""
        out = MeasuredLedger(nprocs=self.nprocs)
        for name in self.phase_order:
            if not name.startswith(prefix):
                continue
            target = name[len(prefix):] if strip else name
            src = self.phases[name]
            dst = out.phase(target)
            dst.bytes_sent += src.bytes_sent
            dst.bytes_received += src.bytes_received
            dst.transfers += src.transfers
            dst.transfer_seconds += src.transfer_seconds
            dst.wall_seconds += src.wall_seconds
        return out

    def merge(self, other: "MeasuredLedger", prefix: str = "") -> None:
        """Fold ``other`` into this ledger, optionally prefixing phase names."""
        if other.nprocs != self.nprocs:
            raise ValueError(
                f"cannot merge measured ledgers with {other.nprocs} and "
                f"{self.nprocs} ranks"
            )
        for name in other.phase_order:
            src = other.phases[name]
            dst = self.phase(prefix + name)
            dst.bytes_sent += src.bytes_sent
            dst.bytes_received += src.bytes_received
            dst.transfers += src.transfers
            dst.transfer_seconds += src.transfer_seconds
            dst.wall_seconds += src.wall_seconds

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict summary (per-phase totals; per-rank arrays collapsed)."""
        return {
            "phases": [
                {
                    "phase": name,
                    "wall_seconds": self.phases[name].wall_seconds,
                    "transfer_seconds": self.phases[name].transfer_seconds,
                    "bytes": int(self.phases[name].bytes_received.sum()),
                    "transfers": self.phases[name].transfers,
                }
                for name in self.phase_order
            ],
            "wall_seconds": self.wall_seconds(),
            "transfer_seconds": self.transfer_seconds(),
            "bytes_sent": self.total_bytes_sent(),
            "bytes_received": self.total_bytes(),
            "transfers": self.total_transfers(),
            "conserved": self.is_conserved(),
        }


# ----------------------------------------------------------------------
# Transport
# ----------------------------------------------------------------------
def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment in a peer/worker process.

    Under the ``fork`` start method the child shares the parent's resource
    tracker, so the attach-time ``register`` call is an idempotent set-add and
    must NOT be undone here — unregistering from the child would strip the
    parent's own registration and make the parent's later ``unlink`` trip the
    tracker.  The parent owns the whole segment lifecycle.

    Shared with the dataset transport (:mod:`repro.matrices.transport`),
    which attaches published operand segments from pool workers under the
    same contract.
    """
    return shared_memory.SharedMemory(name=name)


#: backwards-compatible private alias (pre-operand-plane name)
_attach_segment = attach_segment


def _serve(conn, outbox_name: str, inbox_name: str) -> None:
    """Peer-process loop: pull bytes out of the outbox, push them to the inbox.

    Runs in the transport's worker process.  Copying the payload into a local
    ``bytes`` object lands it in this process's address space — the data has
    really arrived somewhere else — before it is written back for the parent
    to read.  Module-level so the fork (and any future spawn) start method
    can locate it.
    """
    outbox = attach_segment(outbox_name)
    inbox = attach_segment(inbox_name)
    try:
        while True:
            msg = conn.recv()
            op = msg[0]
            if op == "xfer":
                n = msg[1]
                data = bytes(outbox.buf[:n])  # payload lands in this process
                inbox.buf[:n] = data
                conn.send(("ok", n))
            elif op == "reattach":
                outbox.close()
                inbox.close()
                outbox = attach_segment(msg[1])
                inbox = attach_segment(msg[2])
                conn.send(("ok", 0))
            elif op == "quit":
                conn.send(("bye", 0))
                return
            else:  # pragma: no cover - protocol guard
                conn.send(("err", f"unknown op {op!r}"))
    finally:
        outbox.close()
        inbox.close()
        conn.close()


def _release_transport(state: Dict[str, object]) -> None:
    """Finalizer: stop the worker and unlink the segments (idempotent)."""
    if state.get("closed"):
        return
    state["closed"] = True
    conn = state.get("conn")
    proc = state.get("proc")
    if conn is not None:
        try:
            conn.send(("quit", 0))
            conn.recv()
        except Exception:
            pass
    if proc is not None:
        proc.join(timeout=2.0)
        if proc.is_alive():  # pragma: no cover - defensive
            proc.terminate()
            proc.join(timeout=2.0)
    if conn is not None:
        try:
            conn.close()
        except Exception:
            pass
    for key in ("outbox", "inbox"):
        seg = state.get(key)
        if seg is None:
            continue
        try:
            seg.close()
            seg.unlink()
        except Exception:
            pass


class ShmTransport:
    """One peer process plus two shared-memory segments (outbox and inbox).

    :meth:`roundtrip` pushes a byte string through the peer and returns the
    copy read back out of shared memory together with the elapsed seconds.
    Segments grow geometrically when a payload exceeds the current capacity.
    """

    def __init__(self, capacity: int = _INITIAL_CAPACITY) -> None:
        ctx = get_context("fork")
        self._conn, child_conn = ctx.Pipe()
        outbox = shared_memory.SharedMemory(create=True, size=capacity)
        inbox = shared_memory.SharedMemory(create=True, size=capacity)
        self._state: Dict[str, object] = {
            "outbox": outbox,
            "inbox": inbox,
            "conn": self._conn,
            "closed": False,
        }
        proc = ctx.Process(
            target=_serve,
            args=(child_conn, outbox.name, inbox.name),
            daemon=True,
            name="repro-shm-peer",
        )
        proc.start()
        child_conn.close()
        self._state["proc"] = proc
        self._finalizer = weakref.finalize(self, _release_transport, self._state)
        #: lifetime totals, independent of any ledger slicing
        self.transfers = 0
        self.bytes_moved = 0
        self.transfer_seconds = 0.0

    @property
    def closed(self) -> bool:
        return bool(self._state["closed"])

    @property
    def capacity(self) -> int:
        return self._state["outbox"].size  # type: ignore[union-attr]

    def _ensure_open(self) -> None:
        if self.closed:
            raise WindowError(
                "shared-memory transport is shut down; the owning cluster was "
                "closed before this operation"
            )

    def _ensure_capacity(self, nbytes: int) -> None:
        if nbytes <= self.capacity:
            return
        new_size = max(nbytes, 2 * self.capacity)
        new_outbox = shared_memory.SharedMemory(create=True, size=new_size)
        new_inbox = shared_memory.SharedMemory(create=True, size=new_size)
        self._conn.send(("reattach", new_outbox.name, new_inbox.name))
        reply = self._conn.recv()
        if reply[0] != "ok":  # pragma: no cover - protocol guard
            raise RuntimeError(f"shm peer failed to reattach: {reply!r}")
        for key, seg in (("outbox", new_outbox), ("inbox", new_inbox)):
            old = self._state[key]
            old.close()  # type: ignore[union-attr]
            old.unlink()  # type: ignore[union-attr]
            self._state[key] = seg

    def roundtrip(self, data: bytes) -> Tuple[bytes, float]:
        """Move ``data`` through the peer process; return (echo, seconds)."""
        self._ensure_open()
        n = len(data)
        self._ensure_capacity(n)
        outbox = self._state["outbox"]
        inbox = self._state["inbox"]
        start = time.perf_counter()
        if n:
            outbox.buf[:n] = data  # type: ignore[union-attr]
        self._conn.send(("xfer", n))
        reply = self._conn.recv()
        if reply != ("ok", n):  # pragma: no cover - protocol guard
            raise RuntimeError(f"shm peer returned {reply!r} for {n}-byte transfer")
        echoed = bytes(inbox.buf[:n]) if n else b""  # type: ignore[union-attr]
        elapsed = time.perf_counter() - start
        self.transfers += 1
        self.bytes_moved += n
        self.transfer_seconds += elapsed
        return echoed, elapsed

    def close(self) -> None:
        """Stop the peer process and unlink both segments (idempotent)."""
        self._finalizer()


# ----------------------------------------------------------------------
# Communicator
# ----------------------------------------------------------------------
class ShmCommunicator(Communicator):
    """Collectives that physically move payloads before modelled accounting.

    Every override performs the real shared-memory round trips (recording
    them in the cluster's measured ledger), then delegates to the unmodified
    base implementation so the *modelled* charges stay bit-identical to the
    simulated backend.  Receivers get the bytes that came back out of shared
    memory — reconstructed objects, not references — which is what lets the
    validation harness assert bit-identical results across backends.
    """

    # Physical movement helpers ----------------------------------------
    def _record(self, src: int, dst: int, nbytes: int, seconds: float) -> None:
        self.cluster.measured_ledger.record_transfer(
            self.cluster.current_phase, src, dst, nbytes, seconds
        )

    def _move(self, payload, src: int, dst: int):
        """Round-trip one payload through the peer; return the reconstruction."""
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        echoed, seconds = self.cluster.transport.roundtrip(blob)
        self._record(src, dst, len(blob), seconds)
        return pickle.loads(echoed)

    def _burn(self, src: int, dst: int, nbytes: int) -> None:
        """Physically move ``nbytes`` of filler for a size-only primitive."""
        _, seconds = self.cluster.transport.roundtrip(bytes(int(nbytes)))
        self._record(src, dst, int(nbytes), seconds)

    def _move_scalar(self, value: float, src: int, dst: int) -> float:
        """Round-trip one float64 (exactly the modelled 8 wire bytes)."""
        echoed, seconds = self.cluster.transport.roundtrip(
            struct.pack("<d", float(value))
        )
        self._record(src, dst, 8, seconds)
        return struct.unpack("<d", echoed)[0]

    # Point-to-point ----------------------------------------------------
    def send(self, payload, src: int, dst: int):
        if src != dst:
            payload = self._move(payload, src, dst)
        return super().send(payload, src, dst)

    def send_many(
        self,
        srcs: Sequence[int],
        dsts: Sequence[int],
        sizes: Sequence[int],
    ) -> None:
        for s, d, n in zip(
            np.asarray(srcs).tolist(),
            np.asarray(dsts).tolist(),
            np.asarray(sizes).tolist(),
        ):
            if s != d:
                self._burn(int(s), int(d), int(n))
        super().send_many(srcs, dsts, sizes)

    # Collectives -------------------------------------------------------
    def bcast(self, payload, root: int, ranks: Optional[Sequence[int]] = None):
        modelled = super().bcast(payload, root, ranks)  # validates + charges
        return {
            rank: payload if rank == root else self._move(payload, root, rank)
            for rank in modelled
        }

    def bcast_many(
        self,
        items: Sequence[Tuple[object, int, Sequence[int]]],
    ) -> List[Dict[int, object]]:
        modelled = super().bcast_many(items)
        results: List[Dict[int, object]] = []
        for (payload, root, _ranks), group in zip(items, modelled):
            results.append(
                {
                    rank: payload if rank == root else self._move(payload, root, rank)
                    for rank in group
                }
            )
        return results

    def allgather(
        self,
        per_rank_payloads: Dict[int, object],
        ranks: Optional[Sequence[int]] = None,
    ) -> Dict[int, List[object]]:
        group = sorted(per_rank_payloads) if ranks is None else list(ranks)
        super().allgather(per_rank_payloads, ranks)
        blobs = {
            r: pickle.dumps(per_rank_payloads[r], protocol=pickle.HIGHEST_PROTOCOL)
            for r in group
        }
        out: Dict[int, List[object]] = {}
        for dst in group:
            gathered: List[object] = []
            for src in group:
                if src == dst:
                    gathered.append(per_rank_payloads[src])
                    continue
                echoed, seconds = self.cluster.transport.roundtrip(blobs[src])
                self._record(src, dst, len(blobs[src]), seconds)
                gathered.append(pickle.loads(echoed))
            out[dst] = gathered
        return out

    def gather(self, per_rank_payloads: Dict[int, object], root: int) -> List[object]:
        ranks = sorted(per_rank_payloads)
        super().gather(per_rank_payloads, root)
        result: List[object] = []
        for r in ranks:
            if r == root:
                result.append(per_rank_payloads[r])
            else:
                # The modelled tree relays through intermediates; physically
                # each contribution is moved to the root once (direct).
                result.append(self._move(per_rank_payloads[r], r, root))
        return result

    def alltoallv(
        self, buffers: Dict[int, Dict[int, object]]
    ) -> Dict[int, Dict[int, object]]:
        received: Dict[int, Dict[int, object]] = {r: {} for r in range(self.nprocs)}
        srcs: List[int] = []
        dsts: List[int] = []
        sizes: List[int] = []
        for src, per_dst in buffers.items():
            for dst, payload in per_dst.items():
                if payload is None:
                    continue
                if src == dst:
                    received[dst][src] = payload
                    continue
                received[dst][src] = self._move(payload, src, dst)
                srcs.append(src)
                dsts.append(dst)
                sizes.append(_nbytes(payload))
        # Modelled accounting only — the physical movement happened above.
        super().alltoallv_sizes(srcs, dsts, sizes)
        return received

    def alltoallv_sizes(
        self,
        srcs: Sequence[int],
        dsts: Sequence[int],
        sizes: Sequence[int],
    ) -> None:
        for s, d, n in zip(
            np.asarray(srcs).tolist(),
            np.asarray(dsts).tolist(),
            np.asarray(sizes).tolist(),
        ):
            if s != d:
                self._burn(int(s), int(d), int(n))
        super().alltoallv_sizes(srcs, dsts, sizes)

    def allreduce_scalar(
        self, per_rank_values: Dict[int, float], op=sum
    ) -> Dict[int, float]:
        modelled = super().allreduce_scalar(per_rank_values, op)
        ranks = sorted(per_rank_values)
        if len(ranks) <= 1:
            return modelled
        root = ranks[0]
        # Reduce up: each contribution physically reaches the root.
        for r in ranks:
            if r != root:
                self._move_scalar(per_rank_values[r], r, root)
        # Broadcast down: the reduced value physically reaches every rank.
        # struct round trips are exact for float64, so values are unchanged.
        return {
            r: modelled[r] if r == root else self._move_scalar(modelled[r], root, r)
            for r in ranks
        }

    def barrier(self, ranks: Optional[Sequence[int]] = None) -> None:
        group = list(range(self.nprocs)) if ranks is None else list(ranks)
        if len(group) > 1:
            # A real synchronisation with the peer process (zero payload).
            self.cluster.transport.roundtrip(b"")
        super().barrier(ranks)


# ----------------------------------------------------------------------
# Window
# ----------------------------------------------------------------------
class ShmRdmaWindow(RdmaWindow):
    """One-sided gets whose data round-trips through shared memory.

    The base class performs validation, the local-access fast path, and all
    modelled charging; remote fetches are then physically moved byte-for-byte
    (measured bytes == modelled bytes) and the reconstruction is returned.
    """

    def _roundtrip_array(self, data: np.ndarray, origin: int, target: int) -> np.ndarray:
        blob = data.tobytes()
        echoed, seconds = self.cluster.transport.roundtrip(blob)
        # The passive target is the physical sender, the origin the receiver.
        self.cluster.measured_ledger.record_transfer(
            self.cluster.current_phase, target, origin, len(blob), seconds
        )
        out = np.frombuffer(echoed, dtype=data.dtype)
        return out.reshape(data.shape).copy()

    def get(
        self,
        origin: int,
        target: int,
        key: str,
        start: int,
        stop: int,
    ) -> np.ndarray:
        data = super().get(origin, target, key, start, stop)
        if origin == target or data.nbytes == 0:
            return data
        return self._roundtrip_array(data, origin, target)

    def get_concat_many(
        self,
        origin: int,
        target: int,
        keys,
        ranges,
    ) -> list:
        # ``get_concat`` delegates here in the base class, so overriding the
        # batched primitive covers both entry points exactly once.
        datas = super().get_concat_many(origin, target, keys, ranges)
        if origin == target:
            return datas
        return [
            data if data.nbytes == 0 else self._roundtrip_array(data, origin, target)
            for data in datas
        ]


# ----------------------------------------------------------------------
# Cluster
# ----------------------------------------------------------------------
class ShmCluster(SimulatedCluster):
    """A cluster whose remote data movement really crosses process boundaries.

    Drop-in replacement for :class:`SimulatedCluster` (same constructor, same
    protocol): the modelled ledger is charged through the unmodified base
    classes and stays bit-identical to a simulated run of the same program,
    while :attr:`measured_ledger` accumulates the physical transfer record
    and per-phase wall clock.  Call :meth:`shutdown` (or use the cluster as a
    context manager) to stop the peer process and release the segments; a
    finalizer covers abandoned instances.
    """

    backend_name = "shm"

    def __post_init__(self) -> None:
        super().__post_init__()
        self.measured_ledger = MeasuredLedger(nprocs=self.nprocs)
        self.transport = ShmTransport()
        self.comm = ShmCommunicator(self, check_conservation=self.check_conservation)

    # Phases ------------------------------------------------------------
    def phase(self, name: str):
        @contextmanager
        def _timed():
            measured = self.measured_ledger.phase(self._phase_prefix + name)
            start = time.perf_counter()
            try:
                with super(ShmCluster, self).phase(name):
                    yield
            finally:
                measured.wall_seconds += time.perf_counter() - start

        return _timed()

    # Windows -----------------------------------------------------------
    def create_window(self, exposed) -> ShmRdmaWindow:
        return ShmRdmaWindow(cluster=self, exposed=exposed)

    # Lifecycle ---------------------------------------------------------
    def shutdown(self) -> None:
        self.transport.close()
        super().shutdown()

    def reset(self) -> None:
        super().reset()
        self.measured_ledger = MeasuredLedger(nprocs=self.nprocs)

    def summary(self) -> Dict[str, float]:
        out = super().summary()
        out["measured_wall_seconds"] = self.measured_ledger.wall_seconds()
        out["measured_bytes"] = float(self.measured_ledger.total_bytes())
        out["measured_transfers"] = float(self.measured_ledger.total_transfers())
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShmCluster(nprocs={self.nprocs}, name={self.name!r})"

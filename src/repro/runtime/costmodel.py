"""Machine cost model for the simulated distributed-memory runtime.

The paper measures wall-clock time on NERSC Perlmutter (AMD Milan CPU nodes,
HPE Slingshot-11, Cray MPICH).  This reproduction runs on a single laptop
node, so figures that compare *algorithms across process counts* are
generated from an explicit, deterministic cost model applied to the exact
communication and computation each algorithm performs:

* **Communication** follows the postal (α–β) model.  A message of ``b`` bytes
  costs ``α + β·b`` seconds.  RDMA ``Get`` operations use a (slightly lower)
  one-sided latency, reflecting the paper's motivation for passive-target
  RDMA: no matching receive, no packing/unpacking rendezvous.
* **Computation** costs ``γ`` seconds per sparse flop, divided by the number
  of OpenMP threads per process and discounted by a serial fraction
  (Amdahl), which is what produces the "intermediate MPI×OpenMP
  configurations win" behaviour of Fig. 7.
* **Per-element packing overhead** (``pack_per_byte``) charges the
  pack/unpack work a two-sided implementation pays; the RDMA path charges it
  only on the origin side.  This is the knob behind the paper's
  EpetraExt-style overhead discussion.

The default constants are of the right order of magnitude for a Slingshot-11
dragonfly (sub-2µs MPI latency, ~25 GB/s effective per-NIC injection
bandwidth) and a Milan socket, but the *conclusions* reproduced here (who
wins, by what factor) are insensitive to modest changes in the constants —
see ``benchmarks/bench_ablation_costmodel.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

__all__ = ["CostModel", "PERLMUTTER", "LAPTOP", "ZERO_COST"]


@dataclass(frozen=True)
class CostModel:
    """α–β–γ machine model used to convert event counts to modelled seconds."""

    #: two-sided message latency (seconds per message)
    alpha: float = 2.0e-6
    #: one-sided (RDMA Get) latency; passive-target, no rendezvous
    alpha_rdma: float = 1.2e-6
    #: seconds per byte transferred (inverse bandwidth)
    beta: float = 1.0 / 25.0e9
    #: seconds per sparse flop on one core
    gamma: float = 1.0 / 1.0e9
    #: seconds per byte of pack/unpack performed on the CPU
    pack_per_byte: float = 1.0 / 8.0e9
    #: OpenMP threads per process (local SpGEMM speed-up factor)
    threads_per_process: int = 1
    #: fraction of local computation that does not parallelise across threads
    serial_fraction: float = 0.05
    #: per-process memory capacity in bytes (0 disables the OOM check)
    memory_capacity_bytes: int = 0

    def message_cost(self, nbytes: int, *, rdma: bool = False) -> float:
        """Modelled time for one message/Get of ``nbytes`` bytes."""
        latency = self.alpha_rdma if rdma else self.alpha
        return latency + self.beta * float(nbytes)

    def pack_cost(self, nbytes: int) -> float:
        """Modelled CPU time to pack or unpack ``nbytes`` bytes."""
        return self.pack_per_byte * float(nbytes)

    def compute_cost(self, flops: int) -> float:
        """Modelled time for ``flops`` sparse flops with the configured threads.

        Applies Amdahl's law with ``serial_fraction`` so that huge thread
        counts do not make local computation free.
        """
        t = max(1, int(self.threads_per_process))
        serial = self.serial_fraction
        speedup = 1.0 / (serial + (1.0 - serial) / t)
        return self.gamma * float(flops) / speedup

    def pack_cost_bulk(self, nbytes: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`pack_cost` — same per-element arithmetic, so the
        modelled seconds are bit-identical to charging one rank at a time."""
        return self.pack_per_byte * np.asarray(nbytes, dtype=np.float64)

    def compute_cost_bulk(self, flops: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`compute_cost` (identical per-element float ops)."""
        t = max(1, int(self.threads_per_process))
        serial = self.serial_fraction
        speedup = 1.0 / (serial + (1.0 - serial) / t)
        return self.gamma * np.asarray(flops, dtype=np.float64) / speedup

    def with_threads(self, threads: int) -> "CostModel":
        """A copy of this model with a different thread count per process."""
        return replace(self, threads_per_process=int(threads))

    def with_memory_capacity(self, nbytes: int) -> "CostModel":
        """A copy of this model with a per-process memory capacity (for OOM checks)."""
        return replace(self, memory_capacity_bytes=int(nbytes))


#: Perlmutter-like CPU-node constants (Slingshot-11, Milan). One NIC per node
#: shared by the processes on it is folded into the effective β.
PERLMUTTER = CostModel(
    alpha=2.0e-6,
    alpha_rdma=1.2e-6,
    beta=1.0 / 25.0e9,
    gamma=1.0 / 1.0e9,
    pack_per_byte=1.0 / 8.0e9,
    threads_per_process=8,
    serial_fraction=0.05,
)

#: Constants representative of running MPI ranks on one laptop (much lower
#: latency, much lower bandwidth ceiling); used by tests to check that model
#: choice does not change *orderings*.
LAPTOP = CostModel(
    alpha=5.0e-7,
    alpha_rdma=4.0e-7,
    beta=1.0 / 10.0e9,
    gamma=1.0 / 5.0e8,
    pack_per_byte=1.0 / 4.0e9,
    threads_per_process=4,
    serial_fraction=0.1,
)

#: A zero-cost model: every event is free. Useful for pure correctness tests
#: where only the produced matrices matter.
ZERO_COST = CostModel(
    alpha=0.0,
    alpha_rdma=0.0,
    beta=0.0,
    gamma=0.0,
    pack_per_byte=0.0,
    threads_per_process=1,
    serial_fraction=0.0,
)

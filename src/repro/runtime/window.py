"""Passive-target one-sided windows (the simulated ``MPI_Win`` / ``MPI_Get``).

Algorithm 1 exposes, on every process, two MPI windows: one over the row-id
array and one over the numeric-value array of the local ``A_i`` (stored
column-compressed).  Remote processes then issue passive-target ``MPI_Get``
calls for contiguous column ranges — no matching receive, no packing by the
target.

:class:`RdmaWindow` reproduces that interface on the simulated runtime:

* every rank *exposes* one or more named numpy arrays;
* any rank may :meth:`~RdmaWindow.get` a contiguous slice of another rank's
  exposed array;
* each ``get`` charges the origin rank one RDMA message (``α_rdma + β·bytes``)
  in the current phase, counts the transferred bytes on both sides, and
  charges the origin the unpack cost of landing the data.

A :class:`WindowEpoch` context manager mirrors ``MPI_Win_lock_all`` /
``MPI_Win_unlock_all`` semantics: gets are only legal inside an epoch, which
keeps algorithm code honest about where synchronisation happens.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping

import numpy as np

__all__ = ["RdmaWindow", "WindowEpoch", "WindowError"]


class WindowError(RuntimeError):
    """Raised on illegal window usage (get outside an epoch, bad rank, bad key)."""


@dataclass
class RdmaWindow:
    """A set of per-rank exposed arrays reachable with one-sided ``get``.

    Parameters
    ----------
    cluster:
        The owning :class:`~repro.runtime.simulator.SimulatedCluster`; used to
        reach the cost model and the per-rank stats of the current phase.
    exposed:
        Mapping ``rank -> {name -> numpy array}`` of the arrays each rank
        exposes.  Arrays are *not* copied: like a real MPI window the memory
        stays owned by the target rank.
    """

    cluster: "object"
    exposed: Dict[int, Dict[str, np.ndarray]]
    _epoch_open: bool = field(default=False, init=False)
    _gets_issued: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        nprocs = self.cluster.nprocs
        for rank in self.exposed:
            if not 0 <= rank < nprocs:
                raise WindowError(f"exposed rank {rank} outside 0..{nprocs - 1}")
        # Exposing a window costs a collective "window creation" — charge a
        # latency per rank in the current phase under "other".
        for rank in range(nprocs):
            stats = self.cluster.stats(rank)
            stats.charge_time("other", self.cluster.cost_model.alpha)

    # ------------------------------------------------------------------
    # Epoch management (lock_all / unlock_all)
    # ------------------------------------------------------------------
    def epoch(self) -> "WindowEpoch":
        """Open a passive-target access epoch (``MPI_Win_lock_all`` analogue)."""
        return WindowEpoch(self)

    @property
    def gets_issued(self) -> int:
        """Total number of ``get`` operations issued through this window."""
        return self._gets_issued

    # ------------------------------------------------------------------
    # One-sided access
    # ------------------------------------------------------------------
    def get(
        self,
        origin: int,
        target: int,
        key: str,
        start: int,
        stop: int,
    ) -> np.ndarray:
        """Fetch ``exposed[target][key][start:stop]`` into ``origin``.

        Returns a copy (the data has "arrived" at the origin).  Charges the
        origin rank one RDMA message plus the per-byte transfer and unpack
        costs; the target is charged nothing (passive target), only its
        byte counter moves so volume accounting stays symmetric.
        """
        if not self._epoch_open:
            raise WindowError("RDMA get outside of an access epoch")
        if origin == target:
            # Local access: no message, no transfer cost, just a view copy.
            arr = self._lookup(target, key)
            return arr[start:stop].copy()
        arr = self._lookup(target, key)
        if not (0 <= start <= stop <= arr.shape[0]):
            raise WindowError(
                f"get range [{start}, {stop}) outside exposed array of length {arr.shape[0]}"
            )
        data = arr[start:stop].copy()
        nbytes = int(data.nbytes)
        model = self.cluster.cost_model
        origin_stats = self.cluster.stats(origin)
        target_stats = self.cluster.stats(target)
        origin_stats.rdma_gets += 1
        origin_stats.bytes_received += nbytes
        target_stats.bytes_sent += nbytes
        origin_stats.charge_time("comm", model.message_cost(nbytes, rdma=True))
        # Only the origin pays to land/unpack the data — the point of RDMA.
        origin_stats.charge_time("other", model.pack_cost(nbytes))
        self._gets_issued += 1
        return data

    def get_concat(
        self,
        origin: int,
        target: int,
        key: str,
        ranges,
    ) -> np.ndarray:
        """Issue one ``get`` per ``(start, stop)`` range and concatenate the results.

        ``ranges`` is a sequence of ``(start, stop)`` pairs — a list of tuples
        or an ``(M, 2)`` integer array.  Used by the block-fetch strategy,
        which issues at most ``K`` gets per remote process.  The accounting is
        batched: the ``M`` gets are charged in one bulk update
        (``M·α_rdma + β·total_bytes`` of modelled time, ``M`` RDMA messages,
        the summed byte counters on both sides) instead of ``M`` separate
        Python-level stat updates — byte-for-byte identical to looping
        :meth:`get`.
        """
        return self.get_concat_many(origin, target, (key,), ranges)[0]

    def get_concat_many(
        self,
        origin: int,
        target: int,
        keys,
        ranges,
    ) -> list[np.ndarray]:
        """Fetch the same ranges from several exposed arrays of one target.

        Returns one concatenated array per key, in order.  The accounting is
        byte-for-byte identical to calling :meth:`get_concat` once per key
        (each key charges its own ``M`` gets and byte totals); batching the
        keys only saves the host-side range translation and bounds checks.
        """
        arrs = [self._lookup(target, key) for key in keys]
        m = len(ranges)
        if m == 0:
            return [np.zeros(0, dtype=arr.dtype) for arr in arrs]
        if not self._epoch_open:
            raise WindowError("RDMA get outside of an access epoch")
        if isinstance(ranges, np.ndarray):
            pairs = ranges.tolist()
        else:
            pairs = [(int(s), int(e)) for s, e in ranges]
        if origin == target:
            # Local access: no messages, just view copies (matches `get`).
            return [
                np.concatenate([arr[start:stop] for start, stop in pairs])
                for arr in arrs
            ]
        # M is small (at most K per fetch), so a Python sweep beats three
        # numpy reductions over a tiny array.
        min_start = min(s for s, _ in pairs)
        max_stop = max(e for _, e in pairs)
        ordered = all(s <= e for s, e in pairs)
        model = self.cluster.cost_model
        origin_stats = self.cluster.stats(origin)
        target_stats = self.cluster.stats(target)
        out: list[np.ndarray] = []
        for arr in arrs:
            if not (ordered and 0 <= min_start and max_stop <= arr.shape[0]):
                raise WindowError("get range outside exposed array")
            data = np.concatenate([arr[start:stop] for start, stop in pairs])
            nbytes = int(data.nbytes)
            origin_stats.charge_bulk(
                rdma_gets=m,
                bytes_received=nbytes,
                comm_seconds=m * model.alpha_rdma + model.beta * nbytes,
                # Only the origin pays to land/unpack — the point of RDMA.
                other_seconds=model.pack_cost(nbytes),
            )
            target_stats.charge_bulk(bytes_sent=nbytes)
            self._gets_issued += m
            out.append(data)
        return out

    # ------------------------------------------------------------------
    def _lookup(self, rank: int, key: str) -> np.ndarray:
        try:
            per_rank = self.exposed[rank]
        except KeyError as exc:
            raise WindowError(f"rank {rank} exposes no window data") from exc
        try:
            return per_rank[key]
        except KeyError as exc:
            raise WindowError(
                f"rank {rank} exposes keys {sorted(per_rank)}, not {key!r}"
            ) from exc


class WindowEpoch:
    """Context manager marking a passive-target access epoch on a window."""

    def __init__(self, window: RdmaWindow) -> None:
        self._window = window

    def __enter__(self) -> RdmaWindow:
        if self._window._epoch_open:
            raise WindowError("nested window epochs are not supported")
        self._window._epoch_open = True
        return self._window

    def __exit__(self, exc_type, exc, tb) -> None:
        self._window._epoch_open = False
        # Closing the epoch implies a flush/fence; charge one latency per rank.
        for rank in range(self._window.cluster.nprocs):
            self._window.cluster.stats(rank).charge_time(
                "comm", self._window.cluster.cost_model.alpha_rdma
            )

"""Frontier utilities for the batched multi-source BFS of betweenness centrality.

The batched Brandes algorithm works on ``n × b`` sparse "frontier" matrices:
column ``j`` holds the current BFS frontier (with path counts) of source
``j`` of the batch.  These helpers build the initial source selection matrix,
apply visited-masks, and convert between the sparse frontier and the dense
per-batch accumulators (``σ`` path counts and ``δ`` dependencies).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ...sparse import CSCMatrix

__all__ = [
    "source_selection_matrix",
    "mask_visited",
    "frontier_to_dense",
    "dense_to_frontier",
]

_INDEX_DTYPE = np.int64


def source_selection_matrix(n: int, sources: Sequence[int]) -> CSCMatrix:
    """The ``n × b`` selection matrix with a 1 at ``(sources[j], j)``."""
    sources = np.asarray(list(sources), dtype=_INDEX_DTYPE)
    if sources.size and (sources.min() < 0 or sources.max() >= n):
        raise IndexError("source vertex id out of range")
    b = sources.shape[0]
    return CSCMatrix.from_coo(
        n,
        b,
        rows=sources,
        cols=np.arange(b, dtype=_INDEX_DTYPE),
        vals=np.ones(b, dtype=np.float64),
        sum_duplicates=False,
    )


def mask_visited(frontier: CSCMatrix, visited: np.ndarray) -> CSCMatrix:
    """Drop frontier entries at positions already visited.

    ``visited`` is a dense boolean ``n × b`` array; the returned frontier
    keeps only entries ``(v, j)`` with ``visited[v, j] == False`` — the
    "and not yet discovered" filter of BFS.
    """
    rows, cols, vals = frontier.to_coo()
    if rows.size == 0:
        return frontier
    keep = ~visited[rows, cols]
    return CSCMatrix.from_coo(
        frontier.nrows, frontier.ncols, rows[keep], cols[keep], vals[keep],
        sum_duplicates=False,
    )


def frontier_to_dense(frontier: CSCMatrix) -> np.ndarray:
    """Dense ``n × b`` array of the frontier values (path counts)."""
    return frontier.to_dense()


def dense_to_frontier(values: np.ndarray, pattern: CSCMatrix) -> CSCMatrix:
    """Sparse matrix with ``pattern``'s nonzero positions and values from ``values``."""
    rows, cols, _ = pattern.to_coo()
    return CSCMatrix.from_coo(
        pattern.nrows,
        pattern.ncols,
        rows,
        cols,
        values[rows, cols],
        sum_duplicates=False,
    )

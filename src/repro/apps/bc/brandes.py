"""Batched approximate Brandes betweenness centrality (§II-C-3, §IV-C).

The paper benchmarks the batched approximate BC algorithm: ``K`` randomly
chosen source vertices are split into batches; for each batch a
**multi-source BFS forward search** (an SpGEMM per BFS level) counts shortest
paths, and a **backward sweep** (again an SpGEMM per level) accumulates the
dependency scores.  The forward search and backward sweep dominate the run
time, so Figs 13–14 report the per-iteration SpGEMM time of the first batch
— exactly what :class:`BCResult.iterations` records here.

Matrix formulation (the CombBLAS one the paper builds on):

forward, level ``t``::

    F_{t+1} = (Aᵀ · F_t)  masked to unvisited vertices        # SpGEMM + mask
    σ      += F_{t+1}                                          # path counts

backward, level ``t`` (deepest first)::

    W_t = F_t ⊙ (1 + δ) / σ                                    # elementwise
    Z   = A · W_t                                              # SpGEMM
    δ  += (Z masked to F_{t-1}'s pattern) ⊙ σ                  # elementwise

and the BC score of ``v`` is Σ_batches Σ_j δ[v, j] (halved for undirected
graphs, sources excluded).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ...core import make_algorithm
from ...runtime import CostModel, PERLMUTTER, SimulatedCluster
from ...sparse import CSCMatrix, as_csc, local_spgemm
from ...sparse.ops import transpose
from .frontier import mask_visited, source_selection_matrix

__all__ = ["BCIterationRecord", "BCResult", "batched_betweenness_centrality"]

_INDEX_DTYPE = np.int64


@dataclass
class BCIterationRecord:
    """One SpGEMM iteration of the forward search or backward sweep."""

    phase: str          # "forward" or "backward"
    iteration: int
    #: modelled elapsed seconds of the distributed SpGEMM (0 in local mode)
    modelled_time: float
    #: measured wall-clock seconds of the local kernel work
    measured_time: float
    communication_volume: int
    frontier_nnz: int
    #: modelled per-category seconds of the iteration's SpGEMM
    comm_time: float = 0.0
    comp_time: float = 0.0
    other_time: float = 0.0
    #: two-sided messages + one-sided Gets of the iteration's SpGEMM
    message_count: int = 0
    rdma_gets: int = 0
    #: max/mean per-rank time of the iteration's SpGEMM (1.0 in local mode)
    load_imbalance: float = 1.0
    #: did the iteration's ledger satisfy bytes_sent == bytes_received?
    conserved: bool = True


@dataclass
class BCResult:
    """Scores and per-iteration telemetry of a batched BC run."""

    scores: np.ndarray
    iterations: List[BCIterationRecord] = field(default_factory=list)
    directed: bool = False

    @property
    def forward_time(self) -> float:
        return sum(r.modelled_time for r in self.iterations if r.phase == "forward")

    @property
    def backward_time(self) -> float:
        return sum(r.modelled_time for r in self.iterations if r.phase == "backward")

    @property
    def total_time(self) -> float:
        return self.forward_time + self.backward_time

    @property
    def forward_volume(self) -> int:
        return sum(r.communication_volume for r in self.iterations if r.phase == "forward")

    @property
    def backward_volume(self) -> int:
        return sum(r.communication_volume for r in self.iterations if r.phase == "backward")

    @property
    def total_volume(self) -> int:
        return self.forward_volume + self.backward_volume

    @property
    def message_count(self) -> int:
        return sum(r.message_count for r in self.iterations)

    @property
    def conserved(self) -> bool:
        return all(r.conserved for r in self.iterations)


def _timed_spgemm(
    A: CSCMatrix,
    F: CSCMatrix,
    *,
    phase: str,
    iteration: int,
    algorithm: str,
    nprocs: int,
    cost_model: CostModel,
) -> tuple[CSCMatrix, BCIterationRecord]:
    """Multiply ``A·F`` either locally or with a distributed algorithm.

    Returns the product and a populated :class:`BCIterationRecord`; the
    caller fills ``frontier_nnz`` in (the masked new frontier for forward
    iterations, W itself backward) once it is known.
    """
    t0 = time.perf_counter()
    if algorithm == "local":
        product = local_spgemm(A, F)
        record = BCIterationRecord(
            phase=phase,
            iteration=iteration,
            modelled_time=0.0,
            measured_time=time.perf_counter() - t0,
            communication_volume=0,
            frontier_nnz=0,
        )
        return product, record
    cluster = SimulatedCluster(nprocs, cost_model=cost_model, name="bc")
    result = make_algorithm(algorithm).multiply(A, F, cluster)
    record = BCIterationRecord(
        phase=phase,
        iteration=iteration,
        modelled_time=result.elapsed_time,
        measured_time=time.perf_counter() - t0,
        communication_volume=result.communication_volume,
        frontier_nnz=0,
        comm_time=result.comm_time,
        comp_time=result.comp_time,
        other_time=result.other_time,
        message_count=result.message_count,
        rdma_gets=result.rdma_gets,
        load_imbalance=result.load_imbalance,
        conserved=result.ledger.is_conserved(),
    )
    return result.C, record


def batched_betweenness_centrality(
    A,
    *,
    sources: Optional[Sequence[int]] = None,
    num_sources: Optional[int] = None,
    batch_size: int = 64,
    algorithm: str = "local",
    nprocs: int = 16,
    cost_model: CostModel = PERLMUTTER,
    directed: bool = False,
    seed: int = 0,
    max_levels: Optional[int] = None,
) -> BCResult:
    """Approximate betweenness centrality from a sampled set of sources.

    Parameters
    ----------
    A:
        Adjacency matrix (values are ignored; only the pattern matters).
    sources / num_sources:
        Either an explicit list of source vertices or a count to sample
        uniformly at random (the paper's approximate BC with a sampling
        rate).  Giving all ``n`` vertices yields exact BC.
    batch_size:
        Sources per batch (the paper uses 4096 at scale).
    algorithm:
        ``"local"`` for a purely local run (correctness / unit tests) or any
        registered distributed algorithm name ("1d", "2d", "3d", ...) to
        route every frontier expansion through the simulated cluster.
    directed:
        Treat ``A`` as a directed adjacency matrix.  Undirected scores are
        halved at the end (each shortest path is found from both endpoints).
    """
    A = as_csc(A)
    if A.nrows != A.ncols:
        raise ValueError("betweenness centrality requires a square adjacency matrix")
    n = A.nrows
    rng = np.random.default_rng(seed)
    if sources is None:
        if num_sources is None:
            raise ValueError("provide either sources or num_sources")
        num_sources = min(num_sources, n)
        sources = rng.choice(n, size=num_sources, replace=False)
    sources = np.asarray(list(sources), dtype=_INDEX_DTYPE)
    if max_levels is None:
        max_levels = n  # BFS depth can never exceed n

    # Pattern-only adjacency (values set to 1) and its transpose for the
    # forward expansion.  For undirected graphs the two coincide.
    rows, cols, _ = A.to_coo()
    pattern = CSCMatrix.from_coo(
        n, n, rows, cols, np.ones(rows.shape[0]), sum_duplicates=False
    )
    pattern_t = pattern if not directed else transpose(pattern)

    scores = np.zeros(n, dtype=np.float64)
    iterations: List[BCIterationRecord] = []

    for batch_start in range(0, sources.shape[0], batch_size):
        batch = sources[batch_start : batch_start + batch_size]
        b = batch.shape[0]

        # ------------------------------------------------------------------
        # Forward multi-source BFS with path counting.
        # ------------------------------------------------------------------
        frontier = source_selection_matrix(n, batch)
        sigma = frontier.to_dense()                      # path counts σ
        visited = sigma > 0
        levels: List[CSCMatrix] = [frontier]
        it = 0
        while frontier.nnz and it < max_levels:
            product, record = _timed_spgemm(
                pattern_t, frontier, phase="forward", iteration=it,
                algorithm=algorithm, nprocs=nprocs, cost_model=cost_model,
            )
            new_frontier = mask_visited(product, visited)
            record.frontier_nnz = new_frontier.nnz
            iterations.append(record)
            if new_frontier.nnz == 0:
                break
            dense_new = new_frontier.to_dense()
            sigma += dense_new
            visited |= dense_new > 0
            levels.append(new_frontier)
            frontier = new_frontier
            it += 1

        # ------------------------------------------------------------------
        # Backward sweep accumulating dependencies δ.
        # ------------------------------------------------------------------
        delta = np.zeros((n, b), dtype=np.float64)
        safe_sigma = np.where(sigma > 0, sigma, 1.0)
        for d in range(len(levels) - 1, 0, -1):
            lvl = levels[d]
            rows_d, cols_d, _ = lvl.to_coo()
            w_vals = (1.0 + delta[rows_d, cols_d]) / safe_sigma[rows_d, cols_d]
            W = CSCMatrix.from_coo(n, b, rows_d, cols_d, w_vals, sum_duplicates=False)
            product, record = _timed_spgemm(
                pattern, W, phase="backward", iteration=len(levels) - 1 - d,
                algorithm=algorithm, nprocs=nprocs, cost_model=cost_model,
            )
            record.frontier_nnz = W.nnz
            iterations.append(record)
            # Restrict the propagated values to the previous level's pattern
            # and scale by σ there.
            prev = levels[d - 1]
            rows_p, cols_p, _ = prev.to_coo()
            dense_prod = product.to_dense()
            delta[rows_p, cols_p] += dense_prod[rows_p, cols_p] * sigma[rows_p, cols_p]

        # Sources do not accumulate their own dependency.
        delta[batch, np.arange(b)] = 0.0
        scores += delta.sum(axis=1)

    if not directed:
        scores *= 0.5
    return BCResult(scores=scores, iterations=iterations, directed=directed)

"""Batched approximate Brandes betweenness centrality (§II-C-3, §IV-C).

The paper benchmarks the batched approximate BC algorithm: ``K`` randomly
chosen source vertices are split into batches; for each batch a
**multi-source BFS forward search** (an SpGEMM per BFS level) counts shortest
paths, and a **backward sweep** (again an SpGEMM per level) accumulates the
dependency scores.  The forward search and backward sweep dominate the run
time, so Figs 13–14 report the per-iteration SpGEMM time of the first batch
— exactly what :class:`BCResult.iterations` records here.

Matrix formulation (the CombBLAS one the paper builds on):

forward, level ``t``::

    F_{t+1} = (Aᵀ · F_t)  masked to unvisited vertices        # SpGEMM + mask
    σ      += F_{t+1}                                          # path counts

backward, level ``t`` (deepest first)::

    W_t = F_t ⊙ (1 + δ) / σ                                    # elementwise
    Z   = A · W_t                                              # SpGEMM
    δ  += (Z masked to F_{t-1}'s pattern) ⊙ σ                  # elementwise

and the BC score of ``v`` is Σ_batches Σ_j δ[v, j] (halved for undirected
graphs, sources excluded).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ...core import make_algorithm
from ...runtime import CostModel, PERLMUTTER, create_cluster
from ...sparse import CSCMatrix, as_csc, local_spgemm
from ...sparse.ops import transpose
from .frontier import mask_visited, source_selection_matrix

__all__ = ["BCIterationRecord", "BCResult", "batched_betweenness_centrality"]

_INDEX_DTYPE = np.int64


@dataclass
class BCIterationRecord:
    """One SpGEMM iteration of the forward search or backward sweep.

    Resident runs (``resident=True``) prepend a single record with
    ``phase="setup"`` carrying the hoisted window-creation + metadata
    allgather cost — charged once per run instead of once per iteration.
    """

    phase: str          # "forward", "backward" or "setup" (resident runs)
    iteration: int
    #: modelled elapsed seconds of the distributed SpGEMM (0 in local mode)
    modelled_time: float
    #: measured wall-clock seconds of the local kernel work
    measured_time: float
    communication_volume: int
    frontier_nnz: int
    #: modelled per-category seconds of the iteration's SpGEMM
    comm_time: float = 0.0
    comp_time: float = 0.0
    other_time: float = 0.0
    #: two-sided messages + one-sided Gets of the iteration's SpGEMM
    message_count: int = 0
    rdma_gets: int = 0
    #: max/mean per-rank time of the iteration's SpGEMM (1.0 in local mode)
    load_imbalance: float = 1.0
    #: did the iteration's ledger satisfy bytes_sent == bytes_received?
    conserved: bool = True


@dataclass
class BCResult:
    """Scores and per-iteration telemetry of a batched BC run."""

    scores: np.ndarray
    iterations: List[BCIterationRecord] = field(default_factory=list)
    directed: bool = False
    #: run-wide measured-transfer ledger (non-simulated backends only);
    #: legacy runs merge their per-iteration clusters under ``it{n}:``
    measured: Optional[object] = None

    @property
    def forward_time(self) -> float:
        return sum(r.modelled_time for r in self.iterations if r.phase == "forward")

    @property
    def backward_time(self) -> float:
        return sum(r.modelled_time for r in self.iterations if r.phase == "backward")

    @property
    def setup_time(self) -> float:
        """Hoisted one-off setup cost (0 for legacy per-iteration runs)."""
        return sum(r.modelled_time for r in self.iterations if r.phase == "setup")

    @property
    def total_time(self) -> float:
        # Summed per phase (not in iteration order) so legacy runs — where
        # setup_time is exactly 0.0 — reproduce the historic forward+backward
        # float value bit for bit.
        return self.setup_time + self.forward_time + self.backward_time

    @property
    def forward_volume(self) -> int:
        return sum(r.communication_volume for r in self.iterations if r.phase == "forward")

    @property
    def backward_volume(self) -> int:
        return sum(r.communication_volume for r in self.iterations if r.phase == "backward")

    @property
    def setup_volume(self) -> int:
        return sum(r.communication_volume for r in self.iterations if r.phase == "setup")

    @property
    def total_volume(self) -> int:
        return self.setup_volume + self.forward_volume + self.backward_volume

    @property
    def message_count(self) -> int:
        return sum(r.message_count for r in self.iterations)

    @property
    def conserved(self) -> bool:
        return all(r.conserved for r in self.iterations)


def _record_from_result(result, *, phase: str, iteration: int, wall: float) -> BCIterationRecord:
    """Distil one SpGEMM result (or ledger slice) into an iteration record."""
    return BCIterationRecord(
        phase=phase,
        iteration=iteration,
        modelled_time=result.elapsed_time,
        measured_time=wall,
        communication_volume=result.communication_volume,
        frontier_nnz=0,
        comm_time=result.comm_time,
        comp_time=result.comp_time,
        other_time=result.other_time,
        message_count=result.message_count,
        rdma_gets=result.rdma_gets,
        load_imbalance=result.load_imbalance,
        conserved=result.ledger.is_conserved(),
    )


class _FrontierMultiplier:
    """Runs each BFS-level SpGEMM in one of three modes.

    * ``"local"`` — plain local kernel, no simulated cluster;
    * legacy — a **fresh** cluster per iteration, so every iteration re-pays
      A's distribution and (for the 1D algorithm) window setup;
    * resident — **one** run-wide cluster: the adjacency pattern(s) are made
      resident up front (setup charged exactly once, under the ``prep:``
      phase scope) and each iteration only prepares/executes the frontier,
      sliced out of the run ledger by a unique per-iteration phase scope.
    """

    def __init__(
        self,
        algorithm: str,
        nprocs: int,
        cost_model: CostModel,
        pattern: CSCMatrix,
        pattern_t: CSCMatrix,
        resident: bool,
        backend: str = "simulated",
    ) -> None:
        self.algorithm = algorithm
        self.nprocs = nprocs
        self.cost_model = cost_model
        self.backend = backend
        self.local = algorithm == "local"
        self.resident = resident and not self.local
        self._pattern = pattern
        self._pattern_t = pattern_t
        self._counter = 0
        #: run-wide measured ledger (non-simulated backends only)
        self.measured = None
        self.setup_record: Optional[BCIterationRecord] = None
        if self.resident:
            t0 = time.perf_counter()
            self.cluster = create_cluster(
                nprocs, backend=backend, cost_model=cost_model, name="bc"
            )
            self.algo = make_algorithm(algorithm)
            with self.cluster.phase_scope("prep:"):
                self._op_t = self.algo.prepare_operand(pattern_t, self.cluster)
                self._op = (
                    self._op_t
                    if pattern is pattern_t
                    else self.algo.prepare_operand(pattern, self.cluster)
                )
            setup_ledger = self.cluster.ledger.subset("prep:")
            categories = setup_ledger.elapsed_time_by_category()
            self.setup_record = BCIterationRecord(
                phase="setup",
                iteration=0,
                modelled_time=setup_ledger.elapsed_time(),
                measured_time=time.perf_counter() - t0,
                communication_volume=setup_ledger.total_bytes(),
                frontier_nnz=0,
                comm_time=categories["comm"],
                comp_time=categories["comp"],
                other_time=categories["other"],
                message_count=setup_ledger.total_messages(),
                rdma_gets=setup_ledger.total_rdma_gets(),
                load_imbalance=setup_ledger.load_imbalance(),
                conserved=setup_ledger.is_conserved(),
            )

    def multiply(
        self, transposed: bool, F: CSCMatrix, *, phase: str, iteration: int
    ) -> tuple[CSCMatrix, BCIterationRecord]:
        """Multiply the (transposed) pattern by the frontier ``F``.

        Returns the product and a populated :class:`BCIterationRecord`; the
        caller fills ``frontier_nnz`` in (the masked new frontier for forward
        iterations, W itself backward) once it is known.
        """
        A = self._pattern_t if transposed else self._pattern
        t0 = time.perf_counter()
        if self.local:
            product = local_spgemm(A, F)
            record = BCIterationRecord(
                phase=phase,
                iteration=iteration,
                modelled_time=0.0,
                measured_time=time.perf_counter() - t0,
                communication_volume=0,
                frontier_nnz=0,
            )
            return product, record
        if self.resident:
            op = self._op_t if transposed else self._op
            with self.cluster.phase_scope(f"it{self._counter}:"):
                result = self.algo.execute(self.algo.prepare(op, F, self.cluster))
            self._counter += 1
        else:
            cluster = create_cluster(
                self.nprocs,
                backend=self.backend,
                cost_model=self.cost_model,
                name="bc",
            )
            try:
                result = make_algorithm(self.algorithm).multiply(A, F, cluster)
                self._note_measured(
                    cluster.measured_ledger, prefix=f"it{self._counter}:"
                )
                self._counter += 1
            finally:
                cluster.shutdown()
        record = _record_from_result(
            result, phase=phase, iteration=iteration, wall=time.perf_counter() - t0
        )
        return result.C, record

    def _note_measured(self, ledger, prefix: str = "") -> None:
        """Fold one cluster's measured ledger into the run-wide one."""
        if ledger is None:
            return
        if self.measured is None:
            from ...runtime.shm import MeasuredLedger

            self.measured = MeasuredLedger(nprocs=self.nprocs)
        self.measured.merge(ledger, prefix=prefix)

    def close(self) -> None:
        """Collect the resident cluster's measurements and release the backend."""
        if self.resident:
            self._note_measured(self.cluster.measured_ledger)
            self.cluster.shutdown()


def batched_betweenness_centrality(
    A,
    *,
    sources: Optional[Sequence[int]] = None,
    num_sources: Optional[int] = None,
    batch_size: int = 64,
    algorithm: str = "local",
    nprocs: int = 16,
    cost_model: CostModel = PERLMUTTER,
    directed: bool = False,
    seed: int = 0,
    max_levels: Optional[int] = None,
    resident: bool = False,
    backend: str = "simulated",
) -> BCResult:
    """Approximate betweenness centrality from a sampled set of sources.

    Parameters
    ----------
    A:
        Adjacency matrix (values are ignored; only the pattern matters).
    sources / num_sources:
        Either an explicit list of source vertices or a count to sample
        uniformly at random (the paper's approximate BC with a sampling
        rate).  Giving all ``n`` vertices yields exact BC.
    batch_size:
        Sources per batch (the paper uses 4096 at scale).
    algorithm:
        ``"local"`` for a purely local run (correctness / unit tests) or any
        registered distributed algorithm name ("1d", "2d", "3d", ...) to
        route every frontier expansion through the simulated cluster.
    directed:
        Treat ``A`` as a directed adjacency matrix.  Undirected scores are
        halved at the end (each shortest path is found from both endpoints).
    resident:
        Run every frontier expansion on **one** run-wide simulated cluster
        with the adjacency pattern held as a resident distributed operand:
        A's distribution and (for the 1D algorithm) its RDMA windows +
        metadata allgather are set up once per run — recorded as a single
        ``phase="setup"`` iteration record — instead of being re-charged on
        every BFS level, which is both closer to how a real long-lived run
        behaves and substantially cheaper in host time.  The default
        (``False``) keeps the legacy fresh-cluster-per-iteration accounting
        bit-for-bit.
    """
    A = as_csc(A)
    if A.nrows != A.ncols:
        raise ValueError("betweenness centrality requires a square adjacency matrix")
    n = A.nrows
    rng = np.random.default_rng(seed)
    if sources is None:
        if num_sources is None:
            raise ValueError("provide either sources or num_sources")
        num_sources = min(num_sources, n)
        sources = rng.choice(n, size=num_sources, replace=False)
    sources = np.asarray(list(sources), dtype=_INDEX_DTYPE)
    if max_levels is None:
        max_levels = n  # BFS depth can never exceed n

    # Pattern-only adjacency (values set to 1) and its transpose for the
    # forward expansion.  For undirected graphs the two coincide.
    rows, cols, _ = A.to_coo()
    pattern = CSCMatrix.from_coo(
        n, n, rows, cols, np.ones(rows.shape[0]), sum_duplicates=False
    )
    pattern_t = pattern if not directed else transpose(pattern)

    scores = np.zeros(n, dtype=np.float64)
    iterations: List[BCIterationRecord] = []
    multiplier = _FrontierMultiplier(
        algorithm, nprocs, cost_model, pattern, pattern_t, resident, backend=backend
    )
    if multiplier.setup_record is not None:
        iterations.append(multiplier.setup_record)

    for batch_start in range(0, sources.shape[0], batch_size):
        batch = sources[batch_start : batch_start + batch_size]
        b = batch.shape[0]

        # ------------------------------------------------------------------
        # Forward multi-source BFS with path counting.
        # ------------------------------------------------------------------
        frontier = source_selection_matrix(n, batch)
        sigma = frontier.to_dense()                      # path counts σ
        visited = sigma > 0
        levels: List[CSCMatrix] = [frontier]
        it = 0
        while frontier.nnz and it < max_levels:
            product, record = multiplier.multiply(
                True, frontier, phase="forward", iteration=it,
            )
            new_frontier = mask_visited(product, visited)
            record.frontier_nnz = new_frontier.nnz
            iterations.append(record)
            if new_frontier.nnz == 0:
                break
            dense_new = new_frontier.to_dense()
            sigma += dense_new
            visited |= dense_new > 0
            levels.append(new_frontier)
            frontier = new_frontier
            it += 1

        # ------------------------------------------------------------------
        # Backward sweep accumulating dependencies δ.
        # ------------------------------------------------------------------
        delta = np.zeros((n, b), dtype=np.float64)
        safe_sigma = np.where(sigma > 0, sigma, 1.0)
        for d in range(len(levels) - 1, 0, -1):
            lvl = levels[d]
            rows_d, cols_d, _ = lvl.to_coo()
            w_vals = (1.0 + delta[rows_d, cols_d]) / safe_sigma[rows_d, cols_d]
            W = CSCMatrix.from_coo(n, b, rows_d, cols_d, w_vals, sum_duplicates=False)
            product, record = multiplier.multiply(
                False, W, phase="backward", iteration=len(levels) - 1 - d,
            )
            record.frontier_nnz = W.nnz
            iterations.append(record)
            # Restrict the propagated values to the previous level's pattern
            # and scale by σ there.
            prev = levels[d - 1]
            rows_p, cols_p, _ = prev.to_coo()
            dense_prod = product.to_dense()
            delta[rows_p, cols_p] += dense_prod[rows_p, cols_p] * sigma[rows_p, cols_p]

        # Sources do not accumulate their own dependency.
        delta[batch, np.arange(b)] = 0.0
        scores += delta.sum(axis=1)

    if not directed:
        scores *= 0.5
    multiplier.close()
    return BCResult(
        scores=scores,
        iterations=iterations,
        directed=directed,
        measured=multiplier.measured,
    )

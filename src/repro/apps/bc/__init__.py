"""Betweenness-centrality application: batched approximate Brandes on SpGEMM."""

from .frontier import (
    dense_to_frontier,
    frontier_to_dense,
    mask_visited,
    source_selection_matrix,
)
from .brandes import BCIterationRecord, BCResult, batched_betweenness_centrality

__all__ = [
    "dense_to_frontier",
    "frontier_to_dense",
    "mask_visited",
    "source_selection_matrix",
    "BCIterationRecord",
    "BCResult",
    "batched_betweenness_centrality",
]

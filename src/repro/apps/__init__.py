"""The paper's benchmark applications: squaring, AMG Galerkin product, betweenness centrality."""

from . import amg, bc
from .squaring import PERMUTATION_STRATEGIES, SquaringRun, prepare_ordering, run_squaring

__all__ = [
    "amg",
    "bc",
    "PERMUTATION_STRATEGIES",
    "SquaringRun",
    "prepare_ordering",
    "run_squaring",
]

"""The paper's benchmark applications and the SpGEMM consumers built on them:
squaring, AMG Galerkin product, betweenness centrality, triangle counting,
Markov clustering."""

from . import amg, bc
from .mcl import MCLIterationRecord, MCLRun, run_mcl
from .squaring import PERMUTATION_STRATEGIES, SquaringRun, prepare_ordering, run_squaring
from .triangles import TriangleCountRun, run_triangles

__all__ = [
    "amg",
    "bc",
    "PERMUTATION_STRATEGIES",
    "SquaringRun",
    "prepare_ordering",
    "run_squaring",
    "TriangleCountRun",
    "run_triangles",
    "MCLIterationRecord",
    "MCLRun",
    "run_mcl",
]

"""Triangle counting via masked SpGEMM — the classic masked-multiply consumer.

The standard SpGEMM formulation (Azad, Buluç & Gilbert 2015; the LAGraph /
GraphChallenge baseline): take the strictly lower-triangular part ``L`` of
the (symmetrised, loop-free) adjacency matrix and compute

    #triangles = Σ ( (L·L) ⊙ L )

``(L·L)[i, j]`` counts the wedges ``i > k > j``; masking by ``L`` keeps only
the wedges whose endpoints are themselves connected, and every triangle is
counted exactly once because the mask fixes the orientation ``i > k > j``.

The distributed run exercises the masked prepare/execute pipeline end to
end: ``L`` is distributed once and serves as *both* operands **and** the
mask (the mask is resident in the output layout, so masking is rank-local
and free of communication).  With ``mask_mode="early"`` the 1D driver
additionally prunes its RDMA fetch plan against the mask's column support —
modelled volume drops while the count is unchanged.

The final count is a sum of the masked product's local values followed by an
``allreduce`` of one scalar per rank (charged to the ledger like any other
collective).  Every run is cross-checked against a local ``scipy.sparse``
reference unless ``verify=False``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core import SpGEMMResult, iter_local_pieces, make_algorithm
from ..runtime import CostModel, PERLMUTTER, create_cluster
from ..sparse import CSCMatrix, as_csc, to_scipy
from ..sparse.ops import symmetrize_pattern

__all__ = ["TriangleCountRun", "build_lower_triangle", "reference_triangle_count", "run_triangles"]

_INDEX_DTYPE = np.int64


@dataclass
class TriangleCountRun:
    """Result of one distributed triangle-counting experiment."""

    dataset: str
    algorithm: str
    nprocs: int
    #: the masked SpGEMM result (its ledger covers fetch + multiply + mask + count)
    result: SpGEMMResult
    #: exact number of triangles in the (symmetrised) graph
    triangles: int
    #: nnz of the strictly lower-triangular operand/mask L
    l_nnz: int
    #: nnz of the masked product (L·L) ⊙ L — triangle-closing wedge pairs
    masked_nnz: int
    #: "late" or "early" (1D fetch pruning)
    mask_mode: str
    #: the local scipy reference count (None when verify=False)
    reference: Optional[int] = None

    @property
    def matches_reference(self) -> bool:
        """Did the distributed count equal the local scipy count?"""
        return self.reference is None or self.triangles == self.reference


def build_lower_triangle(A) -> CSCMatrix:
    """Strictly lower-triangular pattern matrix of the symmetrised graph.

    Values are set to 1 (only the pattern of the adjacency matters), the
    diagonal (self-loops) is dropped, and the pattern is symmetrised first
    so directed inputs count the triangles of their underlying undirected
    graph — the GraphChallenge convention.
    """
    A = as_csc(A)
    if A.nrows != A.ncols:
        raise ValueError("triangle counting requires a square adjacency matrix")
    sym = symmetrize_pattern(A)
    r, c, _ = sym.to_coo()
    keep = r > c
    return CSCMatrix.from_coo(
        A.nrows,
        A.ncols,
        r[keep],
        c[keep],
        np.ones(int(keep.sum()), dtype=np.float64),
        sum_duplicates=False,
    )


def reference_triangle_count(L: CSCMatrix) -> int:
    """Local scipy reference: ``Σ ((L·L) ⊙ L)`` on the host, no simulation."""
    S = to_scipy(L).tocsr()
    return int((S @ S).multiply(S).sum())


def run_triangles(
    A,
    *,
    algorithm: str = "1d",
    nprocs: int = 16,
    cost_model: CostModel = PERLMUTTER,
    dataset: str = "matrix",
    block_split: int = 2048,
    mask_mode: str = "late",
    layers: Optional[int] = None,
    backend: str = "simulated",
    verify: bool = True,
) -> TriangleCountRun:
    """Count triangles with a distributed masked SpGEMM ``(L·L) ⊙ L``.

    ``mask_mode="early"`` (1D algorithm only) prunes the RDMA fetch plan
    against the mask's column support, reducing modelled volume; the count
    is identical either way.  With ``verify=True`` (the default) the
    distributed count is asserted equal to a local scipy reference.
    """
    A = as_csc(A)
    L = build_lower_triangle(A)

    cluster = create_cluster(
        nprocs, backend=backend, cost_model=cost_model, name=dataset
    )
    try:
        kwargs = {}
        if algorithm in ("1d", "1d-sparsity-aware"):
            kwargs["block_split"] = block_split
        if algorithm in ("3d", "3d-split") and layers is not None:
            kwargs["layers"] = layers
        algo = make_algorithm(algorithm, **kwargs)
        result = algo.multiply(L, L, cluster, mask=L, mask_mode=mask_mode)

        # The count is one scalar per rank (the sum of its masked local
        # values) allreduced over the cluster — charged like any other
        # collective.
        with cluster.phase("count"):
            per_rank = {}
            for rank, local in iter_local_pieces(result.distributed_c):
                cluster.charge_compute(rank, local.nnz)
                per_rank[rank] = float(local.data.sum())
            reduced = cluster.comm.allreduce_scalar(per_rank)
        triangles = int(round(next(iter(reduced.values())))) if reduced else 0
        result.measured = cluster.measured_ledger
    finally:
        cluster.shutdown()

    reference = None
    if verify:
        reference = reference_triangle_count(L)
        if triangles != reference:
            raise AssertionError(
                f"distributed triangle count {triangles} does not match the "
                f"scipy reference {reference} ({dataset}, {algorithm}, P={nprocs})"
            )
    return TriangleCountRun(
        dataset=dataset,
        algorithm=result.algorithm,
        nprocs=nprocs,
        result=result,
        triangles=triangles,
        l_nnz=L.nnz,
        masked_nnz=result.output_nnz,
        mask_mode=mask_mode,
        reference=reference,
    )

"""Algebraic-multigrid application: MIS-2 coarsening, restriction operators, Galerkin product."""

from .mis2 import mis2, verify_mis2
from .restriction import RestrictionOperator, build_restriction
from .galerkin import (
    GalerkinResult,
    galerkin_product,
    left_multiplication,
    right_multiplication,
)

__all__ = [
    "mis2",
    "verify_mis2",
    "RestrictionOperator",
    "build_restriction",
    "GalerkinResult",
    "galerkin_product",
    "left_multiplication",
    "right_multiplication",
]

"""Restriction operator construction from MIS-2 aggregation.

Following the AMG setup the paper references (Bell et al. 2012, Azad et al.
2016): the MIS-2 vertices become aggregate roots; every other vertex joins
the aggregate of its nearest root (breaking ties by root id).  The tentative
restriction/prolongation operator is piecewise constant: ``R[i, agg(i)] = 1``
— a tall-skinny matrix with **exactly one nonzero per row**, matching the
structure reported in Table III.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ...partition.graph import AdjacencyGraph
from ...sparse import CSCMatrix, as_csc
from .mis2 import mis2

__all__ = ["RestrictionOperator", "build_restriction"]

_INDEX_DTYPE = np.int64


@dataclass
class RestrictionOperator:
    """The aggregation-based restriction operator and its provenance."""

    #: n_fine × n_coarse matrix with one nonzero per row
    R: CSCMatrix
    #: aggregate (coarse vertex) id of every fine vertex
    aggregates: np.ndarray
    #: the MIS-2 roots (fine vertex ids), one per aggregate
    roots: np.ndarray

    @property
    def n_fine(self) -> int:
        return self.R.nrows

    @property
    def n_coarse(self) -> int:
        return self.R.ncols


def build_restriction(A, *, seed: Optional[int] = 0) -> RestrictionOperator:
    """Build the MIS-2 aggregation restriction operator for ``A``.

    Every fine vertex is assigned to the aggregate of the nearest MIS-2 root
    (multi-source BFS from all roots simultaneously); vertices unreachable
    from any root (isolated vertices) become singleton aggregates, keeping
    every row of ``R`` populated.
    """
    A = as_csc(A)
    if A.nrows != A.ncols:
        raise ValueError("restriction construction requires a square matrix")
    graph = AdjacencyGraph.from_matrix(A)
    n = graph.nvertices
    roots = mis2(A, seed=seed)

    aggregates = np.full(n, -1, dtype=_INDEX_DTYPE)
    queue: deque = deque()
    for agg_id, root in enumerate(roots):
        aggregates[root] = agg_id
        queue.append(int(root))
    # Multi-source BFS: nearer roots claim vertices first.
    while queue:
        v = queue.popleft()
        neigh, _ = graph.neighbours(v)
        for u in neigh:
            if aggregates[u] < 0:
                aggregates[u] = aggregates[v]
                queue.append(int(u))

    # Unreached vertices (isolated / disconnected from every root) become
    # their own aggregates so R keeps exactly one nonzero per row.
    unassigned = np.nonzero(aggregates < 0)[0]
    extra_roots = []
    next_id = int(roots.shape[0])
    for v in unassigned:
        aggregates[v] = next_id
        extra_roots.append(int(v))
        next_id += 1
    all_roots = np.concatenate([roots, np.asarray(extra_roots, dtype=_INDEX_DTYPE)])

    n_coarse = next_id
    R = CSCMatrix.from_coo(
        n,
        n_coarse,
        rows=np.arange(n, dtype=_INDEX_DTYPE),
        cols=aggregates,
        vals=np.ones(n, dtype=np.float64),
        sum_duplicates=False,
    )
    return RestrictionOperator(R=R, aggregates=aggregates, roots=all_roots)

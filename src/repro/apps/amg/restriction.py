"""Restriction operator construction from MIS-2 aggregation.

Following the AMG setup the paper references (Bell et al. 2012, Azad et al.
2016): the MIS-2 vertices become aggregate roots; every other vertex joins
the aggregate of its nearest root (breaking ties by root id).  The tentative
restriction/prolongation operator is piecewise constant: ``R[i, agg(i)] = 1``
— a tall-skinny matrix with **exactly one nonzero per row**, matching the
structure reported in Table III.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ...partition.graph import AdjacencyGraph
from ...sparse import CSCMatrix, as_csc
from .mis2 import mis2

__all__ = ["RestrictionOperator", "build_restriction"]

_INDEX_DTYPE = np.int64


def _assign_aggregates(graph: AdjacencyGraph, roots: np.ndarray) -> np.ndarray:
    """Multi-source BFS assigning every reachable vertex to its nearest root.

    Frontier-at-a-time numpy implementation of the FIFO BFS (one python
    iteration per BFS *level* instead of per vertex).  Tie-breaking matches
    the sequential queue exactly: a vertex reached at level ``d+1`` joins the
    aggregate of the first level-``d`` vertex adjacent to it in queue order,
    where the queue order within a level is the order in which vertices were
    claimed (roots start in aggregate-id order).  The pinning equality test
    in ``tests/test_apps_amg.py`` compares this against the reference
    per-vertex BFS on every fixture graph.
    """
    n = graph.nvertices
    aggregates = np.full(n, -1, dtype=_INDEX_DTYPE)
    roots = np.asarray(roots, dtype=_INDEX_DTYPE)
    aggregates[roots] = np.arange(roots.shape[0], dtype=_INDEX_DTYPE)
    xadj, adjncy = graph.xadj, graph.adjncy
    frontier = roots
    while frontier.size:
        degrees = xadj[frontier + 1] - xadj[frontier]
        total = int(degrees.sum())
        if total == 0:
            break
        # Concatenate the frontier's adjacency lists in (queue position,
        # adjacency position) order — the exact order the sequential BFS
        # would inspect edges in.
        owners = np.repeat(np.arange(frontier.shape[0]), degrees)
        offsets = np.arange(total) - np.repeat(np.cumsum(degrees) - degrees, degrees)
        targets = adjncy[np.repeat(xadj[frontier], degrees) + offsets]
        unclaimed = aggregates[targets] < 0
        targets = targets[unclaimed]
        owners = owners[unclaimed]
        if targets.size == 0:
            break
        # First edge touching each unclaimed vertex wins (np.unique returns
        # the index of the first occurrence); sorting those indices restores
        # claim order, which becomes the next level's queue order.
        claimed, first_edge = np.unique(targets, return_index=True)
        aggregates[claimed] = aggregates[frontier[owners[first_edge]]]
        frontier = targets[np.sort(first_edge)]
    return aggregates


@dataclass
class RestrictionOperator:
    """The aggregation-based restriction operator and its provenance."""

    #: n_fine × n_coarse matrix with one nonzero per row
    R: CSCMatrix
    #: aggregate (coarse vertex) id of every fine vertex
    aggregates: np.ndarray
    #: the MIS-2 roots (fine vertex ids), one per aggregate
    roots: np.ndarray

    @property
    def n_fine(self) -> int:
        return self.R.nrows

    @property
    def n_coarse(self) -> int:
        return self.R.ncols


def build_restriction(A, *, seed: Optional[int] = 0) -> RestrictionOperator:
    """Build the MIS-2 aggregation restriction operator for ``A``.

    Every fine vertex is assigned to the aggregate of the nearest MIS-2 root
    (multi-source BFS from all roots simultaneously); vertices unreachable
    from any root (isolated vertices) become singleton aggregates, keeping
    every row of ``R`` populated.
    """
    A = as_csc(A)
    if A.nrows != A.ncols:
        raise ValueError("restriction construction requires a square matrix")
    graph = AdjacencyGraph.from_matrix(A)
    n = graph.nvertices
    roots = mis2(A, seed=seed)

    aggregates = _assign_aggregates(graph, roots)

    # Unreached vertices (isolated / disconnected from every root) become
    # their own aggregates so R keeps exactly one nonzero per row.
    unassigned = np.nonzero(aggregates < 0)[0]
    aggregates[unassigned] = roots.shape[0] + np.arange(
        unassigned.shape[0], dtype=_INDEX_DTYPE
    )
    all_roots = np.concatenate([roots, unassigned.astype(_INDEX_DTYPE)])

    n_coarse = int(roots.shape[0] + unassigned.shape[0])
    R = CSCMatrix.from_coo(
        n,
        n_coarse,
        rows=np.arange(n, dtype=_INDEX_DTYPE),
        cols=aggregates,
        vals=np.ones(n, dtype=np.float64),
        sum_duplicates=False,
    )
    return RestrictionOperator(R=R, aggregates=aggregates, roots=all_roots)

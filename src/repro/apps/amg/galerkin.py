"""The Galerkin triple product RᵀAR (§II-C-2, §IV-B of the paper).

AMG coarse-grid construction computes ``A_coarse = Rᵀ A R`` with two
SpGEMMs:

* the **left multiplication** ``Rᵀ·A`` — the paper evaluates the
  sparsity-aware 1D algorithm (and the 2D/3D baselines) on it (Figs 10, 11);
* the **right multiplication** ``(RᵀA)·R`` — the paper uses the
  outer-product 1D algorithm here, citing Ballard, Siefert & Hu (2016) that
  outer-product is the best 1D formulation for this shape (Fig 12).

:func:`galerkin_product` runs both steps, each on its own simulated cluster,
and returns the coarse operator plus the two :class:`SpGEMMResult` ledgers so
the harness can report the phases separately (the paper notes RᵀA dominates).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ...core import DistributedOperand, SpGEMMResult, make_algorithm
from ...runtime import CostModel, PERLMUTTER, create_cluster
from ...sparse import CSCMatrix, as_csc
from ...sparse.ops import transpose
from .restriction import RestrictionOperator, build_restriction

__all__ = ["GalerkinResult", "galerkin_product", "left_multiplication", "right_multiplication"]


@dataclass
class GalerkinResult:
    """Outcome of the full Galerkin product."""

    #: the coarse-grid operator Rᵀ A R
    coarse: CSCMatrix
    #: result (with ledger) of the left multiplication RᵀA
    left: SpGEMMResult
    #: result (with ledger) of the right multiplication (RᵀA)R
    right: SpGEMMResult
    restriction: RestrictionOperator

    @property
    def total_time(self) -> float:
        """Modelled time of both SpGEMMs (the quantity summed in Fig 11's comparison)."""
        return self.left.elapsed_time + self.right.elapsed_time


def left_multiplication(
    R,
    A,
    *,
    algorithm: str = "1d",
    nprocs: int = 16,
    cost_model: CostModel = PERLMUTTER,
    backend: str = "simulated",
    **algo_kwargs,
) -> SpGEMMResult:
    """Compute ``Rᵀ·A`` with the chosen distributed algorithm."""
    R = as_csc(R)
    A = as_csc(A)
    cluster = create_cluster(
        nprocs, backend=backend, cost_model=cost_model, name="RtA"
    )
    try:
        algo = make_algorithm(algorithm, **algo_kwargs)
        result = algo.multiply(transpose(R), A, cluster)
        result.measured = cluster.measured_ledger
        return result
    finally:
        cluster.shutdown()


def right_multiplication(
    RtA,
    R,
    *,
    algorithm: str = "outer-product",
    nprocs: int = 16,
    cost_model: CostModel = PERLMUTTER,
    backend: str = "simulated",
    **algo_kwargs,
) -> SpGEMMResult:
    """Compute ``(RᵀA)·R``; defaults to the outer-product 1D algorithm.

    ``RtA`` may be a global matrix, the :class:`SpGEMMResult` of the left
    multiplication, or a :class:`~repro.core.DistributedOperand`.  Passing
    the left result chains the two products **resident**: the 1D-column
    distributed RᵀA feeds straight into the outer-product algorithm with no
    intermediate global gather/scatter — the modelled counters are identical
    (assembly was never charged), only the host-side gather disappears.
    """
    if isinstance(RtA, SpGEMMResult):
        RtA = RtA.distributed_c if RtA.distributed_c is not None else RtA.C
    if not isinstance(RtA, DistributedOperand):
        RtA = as_csc(RtA)
    R = as_csc(R)
    cluster = create_cluster(
        nprocs, backend=backend, cost_model=cost_model, name="RtAR"
    )
    try:
        algo = make_algorithm(algorithm, **algo_kwargs)
        result = algo.multiply(RtA, R, cluster)
        result.measured = cluster.measured_ledger
        return result
    finally:
        cluster.shutdown()


def galerkin_product(
    A,
    *,
    restriction: Optional[RestrictionOperator] = None,
    left_algorithm: str = "1d",
    right_algorithm: str = "outer-product",
    nprocs: int = 16,
    cost_model: CostModel = PERLMUTTER,
    seed: int = 0,
    resident: bool = True,
    backend: str = "simulated",
) -> GalerkinResult:
    """Full Galerkin product ``Rᵀ A R`` with separate ledgers for each SpGEMM.

    The restriction operator defaults to the MIS-2 aggregation of ``A``
    (:func:`repro.apps.amg.build_restriction`), matching how the paper's
    Table III operators were produced.

    With ``resident`` (the default) the intermediate RᵀA flows into the
    right multiplication as a distributed operand — no global gather/scatter
    between the two SpGEMMs.  ``resident=False`` forces the legacy
    gather-then-scatter path; the modelled ledgers are identical either way.
    """
    A = as_csc(A)
    if restriction is None:
        restriction = build_restriction(A, seed=seed)
    R = restriction.R

    left = left_multiplication(
        R,
        A,
        algorithm=left_algorithm,
        nprocs=nprocs,
        cost_model=cost_model,
        backend=backend,
    )
    right = right_multiplication(
        left if resident else left.C,
        R,
        algorithm=right_algorithm,
        nprocs=nprocs,
        cost_model=cost_model,
        backend=backend,
    )
    return GalerkinResult(
        coarse=right.C, left=left, right=right, restriction=restriction
    )

"""Distance-2 Maximal Independent Set (MIS-2).

Algebraic multigrid coarsening (Bell, Dalton & Olson 2012; Azad et al. 2016)
selects coarse points as a distance-2 MIS of the fine-grid graph: a set of
vertices such that no two selected vertices share a neighbour (are within two
hops), and that is maximal (no further vertex can be added).  The selected
vertices become the roots of the aggregates that define the restriction
operator.

The greedy implementation below visits vertices in a deterministic
random-priority order (like the parallel Luby-style algorithms, but run
sequentially): a vertex joins the MIS if no vertex within distance 2 has
already joined.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...partition.graph import AdjacencyGraph
from ...sparse import as_csc

__all__ = ["mis2", "verify_mis2"]

_INDEX_DTYPE = np.int64


def mis2(A, *, seed: Optional[int] = 0) -> np.ndarray:
    """Return the vertex ids of a distance-2 maximal independent set of ``A``'s graph."""
    A = as_csc(A)
    if A.nrows != A.ncols:
        raise ValueError("MIS-2 requires a square matrix")
    graph = AdjacencyGraph.from_matrix(A)
    n = graph.nvertices
    rng = np.random.default_rng(seed)
    priority = rng.permutation(n)

    #  0 = undecided, 1 = in MIS, -1 = excluded (within distance 2 of a member)
    state = np.zeros(n, dtype=np.int8)
    for v in np.argsort(priority, kind="stable"):
        v = int(v)
        if state[v] != 0:
            continue
        state[v] = 1
        neigh, _ = graph.neighbours(v)
        for u in neigh:
            if state[u] == 0:
                state[u] = -1
            # distance-2 exclusion
            nn, _ = graph.neighbours(int(u))
            for w in nn:
                if state[w] == 0:
                    state[w] = -1
    return np.nonzero(state == 1)[0].astype(_INDEX_DTYPE)


def verify_mis2(A, members: np.ndarray) -> bool:
    """Check both MIS-2 properties: distance-2 independence and maximality."""
    A = as_csc(A)
    graph = AdjacencyGraph.from_matrix(A)
    n = graph.nvertices
    member_mask = np.zeros(n, dtype=bool)
    member_mask[np.asarray(members, dtype=_INDEX_DTYPE)] = True

    # Distance ≤ 2 reachability from members.
    within_two = np.zeros(n, dtype=bool)
    for v in np.nonzero(member_mask)[0]:
        neigh, _ = graph.neighbours(int(v))
        within_two[neigh] = True
        for u in neigh:
            nn, _ = graph.neighbours(int(u))
            within_two[nn] = True

    # Independence: no member may be within distance 2 of another member.
    for v in np.nonzero(member_mask)[0]:
        neigh, _ = graph.neighbours(int(v))
        for u in neigh:
            if member_mask[u] and u != v:
                return False
            nn, _ = graph.neighbours(int(u))
            for w in nn:
                if member_mask[w] and w != v:
                    return False

    # Maximality: every non-member must be within distance 2 of some member
    # (otherwise it could be added).  Isolated vertices count as coverable by
    # themselves, so they must be members.
    for v in range(n):
        if member_mask[v]:
            continue
        if not within_two[v]:
            return False
    return True

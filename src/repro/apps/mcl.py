"""Markov clustering (MCL) on the resident prepare/execute pipeline.

MCL (van Dongen 2000; HipMCL is the distributed-SpGEMM incarnation the
paper cites as the motivating squaring consumer) iterates three steps on a
column-stochastic matrix ``M`` until the process converges:

1. **expansion** — ``M ← M·M`` (the SpGEMM; flow spreads along paths),
2. **inflation** — entries are raised to the power ``r`` and each column is
   re-normalised (flow concentrates into strong neighbourhoods),
3. **pruning** — near-zero entries are dropped and the columns re-normalised
   (keeps the iterate sparse, as every real MCL implementation does).

Every step runs **resident**: expansion feeds each level's distributed
``C`` straight back in through ``prepare``/``execute`` (the stationary-``C``
property of the paper's 1D design), and inflation/pruning/normalisation are
the rank-local elementwise operands of :mod:`repro.core.elementwise` — no
global matrix is ever assembled between iterations.

Convergence uses the standard MCL *chaos* metric: for each column, the
largest entry minus the sum of squared entries; the global maximum over
columns (an ``allreduce`` of one scalar per rank, charged to the ledger)
tends to zero as every column collapses onto its attractor.  The run stops
when ``chaos <= convergence``.

Each iteration contributes ``{phase, iteration, time, volume, messages,
nnz}`` records — phases ``"expand"``, ``"inflate"``, ``"prune"`` and
``"converge"`` — sliced out of the one run-wide ledger exactly like the BC
iteration series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..core import inflate, make_algorithm, prune
from ..core.pipeline import DistributedOperand
from ..runtime import CostModel, PERLMUTTER, PhaseLedger, SimulatedCluster, create_cluster
from ..sparse import CSCMatrix, as_csc

__all__ = [
    "COLUMN_OUTPUT_ALGORITHMS",
    "MCLIterationRecord",
    "MCLRun",
    "build_stochastic_matrix",
    "run_mcl",
]

_INDEX_DTYPE = np.int64


@dataclass
class MCLIterationRecord:
    """One phase of one MCL iteration (sliced from the run-wide ledger)."""

    phase: str          # "expand", "inflate", "prune" or "converge"
    iteration: int
    #: modelled seconds of the phase (Σ over its ledger phases of the slowest rank)
    time: float
    #: bytes received during the phase
    volume: int
    #: two-sided messages + one-sided Gets of the phase
    messages: int
    #: stored entries of the iterate after the phase
    nnz: int
    #: did the phase's ledger slice satisfy bytes_sent == bytes_received?
    conserved: bool = True


@dataclass
class MCLRun:
    """Result of one Markov-clustering run."""

    dataset: str
    algorithm: str
    nprocs: int
    #: inflation exponent r and pruning threshold actually used
    inflation: float
    prune_threshold: float
    #: per-phase iteration series (4 entries per executed iteration)
    iterations: List[MCLIterationRecord] = field(default_factory=list)
    #: did chaos fall to/below ``convergence`` within ``max_iterations``?
    converged: bool = False
    #: executed iteration count
    n_iterations: int = 0
    #: chaos value after the last iteration
    final_chaos: float = 0.0
    #: nnz of the final iterate
    final_nnz: int = 0
    #: number of clusters: distinct attractor rows of the final iterate
    n_clusters: int = 0
    #: the run-wide ledger (phases scoped ``it0:``, ``it1:``, …)
    ledger: Optional[PhaseLedger] = None
    #: the final iterate, still distributed (assemble via ``.global_matrix()``)
    final: Optional[DistributedOperand] = None
    #: run-wide measured-transfer ledger (non-simulated backends only)
    measured: Optional[object] = None

    @property
    def elapsed_time(self) -> float:
        """Modelled seconds of the whole run."""
        return self.ledger.elapsed_time() if self.ledger is not None else 0.0

    @property
    def communication_volume(self) -> int:
        return self.ledger.total_bytes() if self.ledger is not None else 0

    @property
    def message_count(self) -> int:
        return self.ledger.total_messages() if self.ledger is not None else 0

    @property
    def conserved(self) -> bool:
        return self.ledger.is_conserved() if self.ledger is not None else True


def build_stochastic_matrix(A) -> CSCMatrix:
    """Column-stochastic MCL start matrix: pattern + self-loops, normalised.

    Values of ``A`` are ignored (MCL operates on the graph structure); the
    identity is added (standard MCL self-loops, which damp oscillations)
    and each column is scaled to sum to 1.
    """
    A = as_csc(A)
    if A.nrows != A.ncols:
        raise ValueError("MCL requires a square adjacency matrix")
    n = A.nrows
    r, c, _ = A.to_coo()
    keep = r != c
    rows = np.concatenate([r[keep], np.arange(n, dtype=_INDEX_DTYPE)])
    cols = np.concatenate([c[keep], np.arange(n, dtype=_INDEX_DTYPE)])
    vals = np.ones(rows.shape[0], dtype=np.float64)
    M = CSCMatrix.from_coo(n, n, rows, cols, vals, sum_duplicates=True)
    sums = np.zeros(n, dtype=np.float64)
    col_of_entry = np.repeat(np.arange(n, dtype=_INDEX_DTYPE), np.diff(M.indptr))
    np.add.at(sums, col_of_entry, M.data)
    safe = np.where(sums != 0.0, sums, 1.0)
    return CSCMatrix(
        nrows=n,
        ncols=n,
        indptr=M.indptr.copy(),
        indices=M.indices.copy(),
        data=M.data / safe[col_of_entry],
    )


def _chaos(op: DistributedOperand, cluster: SimulatedCluster) -> float:
    """Global MCL chaos: ``max_j (max_i M[i,j] - Σ_i M[i,j]²)``.

    Rank-local column maxima/sums (the 1D column layout owns whole columns)
    followed by a one-scalar-per-rank ``allreduce`` with ``max`` — the
    convergence test a real distributed MCL performs every iteration.
    """
    per_rank = {}
    for rank in range(op.dist.nprocs):
        local = op.dist.local(rank)
        if local.nnz == 0:
            per_rank[rank] = 0.0
            continue
        col_of_entry = np.repeat(
            np.arange(local.ncols, dtype=_INDEX_DTYPE), np.diff(local.indptr)
        )
        maxima = np.zeros(local.ncols, dtype=np.float64)
        np.maximum.at(maxima, col_of_entry, local.data)
        sumsq = np.zeros(local.ncols, dtype=np.float64)
        np.add.at(sumsq, col_of_entry, local.data**2)
        cluster.charge_compute(rank, 2 * local.nnz)
        per_rank[rank] = float(np.max(maxima - sumsq))
    reduced = cluster.comm.allreduce_scalar(per_rank, op=max)
    return float(next(iter(reduced.values()))) if reduced else 0.0


#: algorithms whose output layout is 1D columns — the layout the rank-local
#: inflation/pruning steps (and the chained expansion) require.  The sweep
#: CLI validates against this same tuple, so the two can never drift.
COLUMN_OUTPUT_ALGORITHMS = ("1d", "1d-sparsity-aware", "outer-product", "1d-outer-product")


def _phase_record(
    sliced: PhaseLedger, phase: str, iteration: int, nnz: int
) -> MCLIterationRecord:
    """Distil one already-sliced iteration-phase ledger into a record."""
    return MCLIterationRecord(
        phase=phase,
        iteration=iteration,
        time=sliced.elapsed_time(),
        volume=sliced.total_bytes(),
        messages=sliced.total_messages(),
        nnz=nnz,
        conserved=sliced.is_conserved(),
    )


def run_mcl(
    A,
    *,
    inflation: float = 2.0,
    prune_threshold: float = 1e-3,
    max_iterations: int = 30,
    convergence: float = 1e-4,
    algorithm: str = "1d",
    nprocs: int = 16,
    cost_model: CostModel = PERLMUTTER,
    dataset: str = "matrix",
    block_split: int = 2048,
    layers: Optional[int] = None,
    backend: str = "simulated",
) -> MCLRun:
    """Run Markov clustering to convergence on one resident pipeline.

    Requires a driver whose output layout is 1D columns (``"1d"`` or
    ``"outer-product"``): the rank-local inflation/pruning operate on whole
    columns, and the expansion feeds each level's distributed ``C``
    straight back in without assembling a global matrix.  Returns the
    per-phase iteration series plus the final (still distributed) iterate.
    """
    if max_iterations < 1:
        raise ValueError(f"max_iterations must be >= 1, got {max_iterations}")
    if algorithm not in COLUMN_OUTPUT_ALGORITHMS:
        raise ValueError(
            f"MCL requires a 1D-column-output algorithm {COLUMN_OUTPUT_ALGORITHMS}, "
            f"got {algorithm!r}"
        )
    M = build_stochastic_matrix(A)

    cluster = create_cluster(
        nprocs, backend=backend, cost_model=cost_model, name=dataset
    )
    kwargs = {}
    if algorithm in ("1d", "1d-sparsity-aware"):
        kwargs["block_split"] = block_split
    if algorithm in ("3d", "3d-split") and layers is not None:
        kwargs["layers"] = layers
    algo = make_algorithm(algorithm, **kwargs)

    operand = M
    iterations: List[MCLIterationRecord] = []
    converged = False
    chaos = float("inf")
    n_done = 0
    op_c: Optional[DistributedOperand] = None
    for i in range(max_iterations):
        scope = f"it{i}:"
        with cluster.phase_scope(scope):
            # Expansion: the previous iterate (already resident after the
            # first round) is squared in place.
            result = algo.execute(algo.prepare(operand, operand, cluster))
            op_c = result.distributed_c
            expand_nnz = op_c.nnz
            # Inflation (power + column normalisation), rank-local.
            op_c = inflate(op_c, inflation, cluster)
            # Pruning + re-normalisation, rank-local.  The "prune" series
            # entry covers both (shared ledger-phase prefix).
            op_c = prune(op_c, prune_threshold, cluster, phase="prune")
            op_c = inflate(op_c, 1.0, cluster, phase="prune-renormalise")
            # Convergence test: rank-local chaos + one-scalar allreduce.
            with cluster.phase("converge"):
                chaos = _chaos(op_c, cluster)
        final_nnz = op_c.nnz
        # result.ledger is already the `it{i}:` slice taken before the
        # elementwise phases existed — exactly the expansion's share.
        iterations.append(_phase_record(result.ledger, "expand", i, expand_nnz))
        # Inflation preserves the pattern exactly (power + scale, no drops),
        # so its "nnz after the phase" is still the expansion's; only the
        # prune phase shrinks the iterate.
        for phase, nnz_after in (
            ("inflate", expand_nnz),
            ("prune", final_nnz),
            ("converge", final_nnz),
        ):
            # "prune" prefix-matches "prune-renormalise" too, so the prune
            # entry covers the drop *and* the restored stochasticity.
            iterations.append(
                _phase_record(
                    cluster.ledger.subset(f"{scope}{phase}"), phase, i, nnz_after
                )
            )
        operand = op_c
        n_done = i + 1
        if chaos <= convergence:
            converged = True
            break

    # The expand/inflate/prune/converge loop is done; release the backend
    # (the shm transport's finalizer backstops error paths).
    cluster.shutdown()

    # Attractor rows of the converged iterate: every cluster is the column
    # support of (at least) one nonzero row, so distinct nonzero rows count
    # the clusters.  Computed from the resident pieces — no global assembly.
    row_ids = [
        op_c.dist.local(rank).indices
        for rank in range(op_c.dist.nprocs)
        if op_c.dist.local(rank).nnz
    ]
    nonzero_rows = (
        np.unique(np.concatenate(row_ids)) if row_ids else np.zeros(0, dtype=_INDEX_DTYPE)
    )
    return MCLRun(
        dataset=dataset,
        algorithm=algorithm,
        nprocs=nprocs,
        inflation=inflation,
        prune_threshold=prune_threshold,
        iterations=iterations,
        converged=converged,
        n_iterations=n_done,
        final_chaos=chaos,
        final_nnz=op_c.nnz,
        n_clusters=int(nonzero_rows.size),
        ledger=cluster.ledger,
        final=op_c,
        measured=cluster.measured_ledger,
    )

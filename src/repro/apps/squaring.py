"""Squaring (A·A) — the paper's first benchmark application (§II-C-1, §IV-A).

Squaring a sparse matrix powers Markov clustering (MCL/HipMCL) and several
graph algorithms; its irregular access pattern and output growth make it the
canonical SpGEMM stress test.  The driver here adds what the experiments in
the paper need around the raw algorithms:

* **permutation strategy selection** — "none" (keep the original ordering,
  the paper's choice for clustered inputs), "random" (the 2D/3D default),
  "metis" (the METIS-like partitioner with flops weights), and "rcm"
  (a band-reducing ordering, used by the ablation benchmark);
* time/volume breakdown per strategy and per algorithm, with the permutation
  cost reported separately so "with/without permutation time" series can be
  produced exactly as in Figs 9 and 4.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core import SpGEMMResult, make_algorithm
from ..core.estimator import estimate_communication
from ..distribution import block_bounds_from_sizes
from ..partition import (
    Ordering,
    apply_ordering,
    apply_symmetric_permutation,
    identity_ordering,
    ordering_from_partition,
    partition_matrix,
    random_symmetric_permutation,
    rcm_ordering,
)
from ..runtime import CostModel, PERLMUTTER, PhaseLedger, create_cluster
from ..sparse import CSCMatrix, as_csc

__all__ = [
    "SquaringRun",
    "ChainedSquaringRun",
    "prepare_ordering",
    "run_squaring",
    "run_chained_squaring",
    "PERMUTATION_STRATEGIES",
]

PERMUTATION_STRATEGIES = ("none", "random", "metis", "rcm")


@dataclass
class SquaringRun:
    """Result of one squaring experiment (one bar/line of Figs 4, 5, 9)."""

    dataset: str
    algorithm: str
    strategy: str
    nprocs: int
    result: SpGEMMResult
    #: modelled seconds for the permutation-induced redistribution
    #: (``beta * permutation_bytes``; 0 for "none") — deterministic, so the
    #: Fig 9 "time+perm" series is identical across machines and runs
    permutation_seconds: float
    #: bytes the permutation-induced redistribution would move
    permutation_bytes: int
    #: CV/memA ratio of the (permuted) input at this process count
    cv_over_mema: float
    #: measured host wall-clock spent computing the permutation/partition
    #: (machine-dependent; reported separately, never mixed into the model)
    permutation_wall_seconds: float = 0.0

    @property
    def spgemm_time(self) -> float:
        """Modelled SpGEMM kernel time (what Fig 9's 'kernel only' series shows)."""
        return self.result.elapsed_time

    @property
    def total_time_with_permutation(self) -> float:
        """Kernel time plus the (amortised-once) permutation cost."""
        return self.result.elapsed_time + self.permutation_seconds

    def breakdown(self) -> Dict[str, float]:
        return {
            "comm": self.result.comm_time,
            "comp": self.result.comp_time,
            "other": self.result.other_time,
        }


def prepare_ordering(
    A,
    strategy: str,
    nprocs: int,
    *,
    seed: int = 0,
) -> Tuple[CSCMatrix, Ordering, float]:
    """Apply a permutation strategy to ``A`` and return (A', ordering, seconds).

    The returned ordering carries the per-process block sizes so the 1D
    distribution follows partition boundaries (non-uniform blocks) when a
    partitioner was used.
    """
    A = as_csc(A)
    if strategy not in PERMUTATION_STRATEGIES:
        raise ValueError(
            f"unknown permutation strategy {strategy!r}; expected one of {PERMUTATION_STRATEGIES}"
        )
    t0 = time.perf_counter()
    if strategy == "none":
        ordering = identity_ordering(A.ncols, nprocs)
        permuted = A
    elif strategy == "random":
        perm = random_symmetric_permutation(A.ncols, seed=seed)
        ordering = Ordering(
            perm=perm,
            block_sizes=identity_ordering(A.ncols, nprocs).block_sizes,
            name="random",
        )
        permuted = apply_symmetric_permutation(A, perm)
    elif strategy == "metis":
        partition = partition_matrix(A, nprocs, seed=seed)
        ordering = ordering_from_partition(partition)
        permuted = apply_ordering(A, ordering)
    else:  # "rcm"
        ordering = rcm_ordering(A, nprocs)
        permuted = apply_ordering(A, ordering)
    seconds = time.perf_counter() - t0
    return permuted, ordering, seconds


def _algo_constructor_kwargs(
    algorithm: str, block_split: int, layers: Optional[int]
) -> Dict[str, object]:
    """Constructor kwargs the named algorithm accepts."""
    kwargs: Dict[str, object] = {}
    if algorithm in ("1d", "1d-sparsity-aware"):
        kwargs["block_split"] = block_split
    if algorithm in ("3d", "3d-split") and layers is not None:
        kwargs["layers"] = layers
    return kwargs


def _bounds_kwargs(algorithm: str, bounds) -> Dict[str, object]:
    """Partition-derived block bounds each 1D-family algorithm honours.

    Squaring is square, so the same bounds serve rows and columns.
    """
    if algorithm in ("1d", "1d-sparsity-aware"):
        return {"a_bounds": bounds, "b_bounds": bounds}
    if algorithm in ("outer-product", "1d-outer-product"):
        return {"a_bounds": bounds, "c_bounds": bounds}
    if algorithm in ("1d-naive-block-row", "1d-improved-block-row"):
        return {"a_bounds": bounds, "b_bounds": bounds}
    return {}


def run_squaring(
    A,
    *,
    algorithm: str = "1d",
    strategy: str = "none",
    nprocs: int = 16,
    cost_model: CostModel = PERLMUTTER,
    dataset: str = "matrix",
    block_split: int = 2048,
    seed: int = 0,
    layers: Optional[int] = None,
    backend: str = "simulated",
    verify_against: Optional[CSCMatrix] = None,
) -> SquaringRun:
    """Square ``A`` with the chosen algorithm and permutation strategy.

    For the 2D/3D baselines the permutation models the CombBLAS protocol
    (random permutation for load balance); the redistribution bytes it would
    move are recorded in ``permutation_bytes``.  Every 1D-family algorithm
    (sparsity-aware, outer-product and the block-row baselines) honours the
    partition-derived block bounds so each process's slice follows the
    partitioner's parts.
    """
    A = as_csc(A)
    permuted, ordering, perm_seconds = prepare_ordering(A, strategy, nprocs, seed=seed)

    cluster = create_cluster(
        nprocs, backend=backend, cost_model=cost_model, name=dataset
    )
    try:
        algo = make_algorithm(
            algorithm, **_algo_constructor_kwargs(algorithm, block_split, layers)
        )

        # Every 1D-family algorithm honours the partition-derived block bounds.
        bounds = block_bounds_from_sizes(ordering.block_sizes)
        multiply_kwargs = _bounds_kwargs(algorithm, bounds)

        result = algo.multiply(permuted, permuted, cluster, **multiply_kwargs)
        result.measured = cluster.measured_ledger
    finally:
        cluster.shutdown()

    if verify_against is not None:
        # Undo the permutation on the output for comparison: C' = P C Pᵀ.
        restored = apply_symmetric_permutation(
            result.C, np.argsort(ordering.perm, kind="stable")
        ) if strategy != "none" else result.C
        if not restored.allclose(verify_against, rtol=1e-8, atol=1e-10):
            raise AssertionError("squaring result does not match the reference product")

    # Permutation-induced data movement (paper's "including permutation" series).
    from ..distribution import estimate_redistribution_bytes

    perm_bytes = 0 if strategy == "none" else estimate_redistribution_bytes(A, nprocs)

    est = estimate_communication(permuted, nprocs=nprocs, block_split=block_split)
    return SquaringRun(
        dataset=dataset,
        algorithm=result.algorithm,
        strategy=strategy,
        nprocs=nprocs,
        result=result,
        permutation_seconds=cost_model.beta * perm_bytes,
        permutation_bytes=perm_bytes,
        cv_over_mema=est.cv_over_mema,
        permutation_wall_seconds=perm_seconds,
    )


@dataclass
class ChainedSquaringRun:
    """Result of one iterated-squaring experiment (``A^(2^k)``).

    MCL-style chained squaring: level ``i`` squares the previous level's
    product, so after ``k`` levels the final operand is ``A`` raised to the
    ``2^k``-th power.  The whole chain runs on **one** simulated cluster
    through the resident prepare/execute pipeline — each level's output
    ``C`` is already in the 1D layout the next level consumes, so no global
    matrix is ever assembled between levels (the paper's stationary-``C``
    property, exploited end to end).
    """

    dataset: str
    algorithm: str
    strategy: str
    nprocs: int
    #: number of squarings (the final product is A^(2^k))
    k: int
    #: per-level results; ``results[i].ledger`` is level ``i``'s own slice
    results: List[SpGEMMResult]
    #: run-wide ledger over all levels (phases scoped ``sq0:``, ``sq1:``, …)
    ledger: PhaseLedger
    permutation_seconds: float
    permutation_bytes: int
    cv_over_mema: float
    permutation_wall_seconds: float = 0.0
    #: run-wide measured-transfer ledger (non-simulated backends only)
    measured: Optional[object] = None

    @property
    def final(self) -> SpGEMMResult:
        """The last level's result (its ``C`` is ``A^(2^k)``, still distributed)."""
        return self.results[-1]

    @property
    def elapsed_time(self) -> float:
        """Modelled seconds of the whole chain (Σ over all levels' phases)."""
        return self.ledger.elapsed_time()

    @property
    def communication_volume(self) -> int:
        return self.ledger.total_bytes()

    @property
    def message_count(self) -> int:
        return self.ledger.total_messages()


def run_chained_squaring(
    A,
    *,
    k: int = 2,
    algorithm: str = "1d",
    strategy: str = "none",
    nprocs: int = 16,
    cost_model: CostModel = PERLMUTTER,
    dataset: str = "matrix",
    block_split: int = 2048,
    seed: int = 0,
    layers: Optional[int] = None,
    backend: str = "simulated",
) -> ChainedSquaringRun:
    """Compute ``A^(2^k)`` by iterated squaring on one resident pipeline.

    Level 0 squares the (permuted) input; every later level feeds the
    previous level's *distributed* ``C`` straight back in as both operands.
    For the 1D-family algorithms no global matrix is assembled between
    levels; each level's stationary operand is freshly exposed (it is a new
    matrix), so the per-level modelled numbers are identical to ``k``
    independent ``multiply()`` calls on the assembled intermediates — pinned
    by the chaining tests — while the host never pays for assembly.
    """
    if k < 1:
        raise ValueError(f"chained squaring needs k >= 1, got {k}")
    A = as_csc(A)
    permuted, ordering, perm_seconds = prepare_ordering(A, strategy, nprocs, seed=seed)

    cluster = create_cluster(
        nprocs, backend=backend, cost_model=cost_model, name=dataset
    )
    try:
        algo = make_algorithm(
            algorithm, **_algo_constructor_kwargs(algorithm, block_split, layers)
        )
        bounds = block_bounds_from_sizes(ordering.block_sizes)
        multiply_kwargs = _bounds_kwargs(algorithm, bounds)

        operand = permuted
        results: List[SpGEMMResult] = []
        for level in range(k):
            with cluster.phase_scope(f"sq{level}:"):
                prepared = algo.prepare(operand, operand, cluster, **multiply_kwargs)
                result = algo.execute(prepared)
            results.append(result)
            # The output lands already in the desired layout — the next level
            # consumes it without assembling a global matrix.
            operand = (
                result.distributed_c if result.distributed_c is not None else result.C
            )
    finally:
        cluster.shutdown()

    from ..distribution import estimate_redistribution_bytes

    perm_bytes = 0 if strategy == "none" else estimate_redistribution_bytes(A, nprocs)
    est = estimate_communication(permuted, nprocs=nprocs, block_split=block_split)
    return ChainedSquaringRun(
        dataset=dataset,
        algorithm=results[0].algorithm,
        strategy=strategy,
        nprocs=nprocs,
        k=k,
        results=results,
        ledger=cluster.ledger,
        permutation_seconds=cost_model.beta * perm_bytes,
        permutation_bytes=perm_bytes,
        cv_over_mema=est.cv_over_mema,
        permutation_wall_seconds=perm_seconds,
        measured=cluster.measured_ledger,
    )

"""Plain-text tables for the benchmark harness.

Every benchmark prints the rows/series the corresponding paper table or
figure reports.  matplotlib is deliberately not used (offline environment,
and text output diffs cleanly); the helpers here format aligned tables and
simple text bar charts from lists of dictionaries.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

import numpy as np

__all__ = ["format_table", "format_bar_chart", "format_grid", "seconds", "mebibytes"]


def seconds(value: float) -> str:
    """Human-readable seconds with ms/µs downscaling."""
    if value >= 1.0:
        return f"{value:.3f} s"
    if value >= 1e-3:
        return f"{value * 1e3:.3f} ms"
    return f"{value * 1e6:.1f} µs"


def mebibytes(nbytes: float) -> str:
    """Human-readable byte counts."""
    nbytes = float(nbytes)
    if nbytes >= 1 << 30:
        return f"{nbytes / (1 << 30):.2f} GiB"
    if nbytes >= 1 << 20:
        return f"{nbytes / (1 << 20):.2f} MiB"
    if nbytes >= 1 << 10:
        return f"{nbytes / (1 << 10):.2f} KiB"
    return f"{nbytes:.0f} B"


def format_table(
    rows: Sequence[Mapping[str, object]],
    *,
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Format a list of dict rows as an aligned text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    str_rows = [[str(r.get(c, "")) for c in columns] for r in rows]
    widths = [
        max(len(str(c)), *(len(sr[i]) for sr in str_rows)) for i, c in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(str(c).ljust(w) for c, w in zip(columns, widths))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for sr in str_rows:
        lines.append("  ".join(v.ljust(w) for v, w in zip(sr, widths)))
    return "\n".join(lines)


def format_bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    *,
    width: int = 40,
    title: Optional[str] = None,
    unit: str = "",
) -> str:
    """Horizontal text bar chart (used for per-rank breakdowns and volume plots)."""
    values = [float(v) for v in values]
    vmax = max(values) if values else 0.0
    lines = []
    if title:
        lines.append(title)
    label_w = max((len(str(l)) for l in labels), default=0)
    for label, value in zip(labels, values):
        bar_len = 0 if vmax == 0 else int(round(width * value / vmax))
        lines.append(
            f"{str(label).ljust(label_w)} | {'#' * bar_len}{' ' * (width - bar_len)} "
            f"{value:.4g}{unit}"
        )
    return "\n".join(lines)


def format_grid(
    grid: np.ndarray, *, title: Optional[str] = None, shades: str = " .:-=+*#%@"
) -> str:
    """Render a 2-D density grid as ASCII art (the text-mode spy plot of Figs 2-3)."""
    grid = np.asarray(grid, dtype=np.float64)
    lines = []
    if title:
        lines.append(title)
    vmax = grid.max() if grid.size else 0.0
    nlevels = len(shades) - 1
    for row in grid:
        if vmax == 0:
            lines.append(" " * len(row))
            continue
        # log scaling makes sparse off-diagonal mass visible
        scaled = np.log1p(row) / np.log1p(vmax)
        chars = [shades[int(round(s * nlevels))] for s in scaled]
        lines.append("".join(chars))
    return "\n".join(lines)

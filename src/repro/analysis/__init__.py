"""Reporting helpers: per-rank breakdowns, parameter sweeps, text tables."""

from .breakdown import (
    RankBreakdown,
    breakdown_chart,
    breakdown_table,
    per_rank_breakdown,
    record_breakdown_table,
)
from .reporting import format_bar_chart, format_grid, format_table, mebibytes, seconds
from .sweep import (
    ConfigPoint,
    ScalingPoint,
    config_sweep,
    mpi_omp_configurations,
    strong_scaling_sweep,
)

__all__ = [
    "RankBreakdown",
    "breakdown_chart",
    "breakdown_table",
    "per_rank_breakdown",
    "record_breakdown_table",
    "format_bar_chart",
    "format_grid",
    "format_table",
    "mebibytes",
    "seconds",
    "ConfigPoint",
    "ScalingPoint",
    "config_sweep",
    "mpi_omp_configurations",
    "strong_scaling_sweep",
]

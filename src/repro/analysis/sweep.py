"""Parameter sweeps used by the strong-scaling and configuration figures.

The paper's evaluation is a family of sweeps: over process counts (Figs 8,
9, 11), over MPI×OpenMP configurations at fixed core counts (Fig 7), over
block-fetch split counts (Fig 6), and over 3D layer counts (implicit in
"we explored all possible layer parameters").  These helpers are thin,
figure-shaped views over the experiment engine
(:mod:`repro.experiments`): each sweep point becomes a
:class:`~repro.experiments.RunConfig`, executes through
:func:`~repro.experiments.execute_config`, and the resulting
:class:`~repro.experiments.RunRecord` is projected into the row shape the
figure prints.  Grid-scale, parallel, cached execution lives in
:func:`repro.experiments.run_grid`; these wrappers keep the classic
matrix-in-hand API for tests and small scripts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..experiments import RunConfig, RunRecord, execute_config
from ..runtime import CostModel, PERLMUTTER

__all__ = [
    "ScalingPoint",
    "ConfigPoint",
    "strong_scaling_sweep",
    "mpi_omp_configurations",
    "config_sweep",
]


@dataclass
class ScalingPoint:
    """One point of a strong-scaling curve."""

    nprocs: int
    algorithm: str
    strategy: str
    elapsed_time: float
    elapsed_with_permutation: float
    communication_volume: int
    messages: int
    load_imbalance: float

    @classmethod
    def from_record(cls, record: RunRecord) -> "ScalingPoint":
        return cls(
            nprocs=record.config.nprocs,
            algorithm=record.algorithm,
            strategy=record.config.strategy,
            elapsed_time=record.elapsed_time,
            elapsed_with_permutation=record.total_time_with_permutation,
            communication_volume=record.communication_volume,
            messages=record.message_count,
            load_imbalance=record.load_imbalance,
        )

    def as_row(self) -> Dict[str, object]:
        return {
            "P": self.nprocs,
            "algorithm": self.algorithm,
            "strategy": self.strategy,
            "time (s)": f"{self.elapsed_time:.6f}",
            "time+perm (s)": f"{self.elapsed_with_permutation:.6f}",
            "volume (B)": self.communication_volume,
            "messages": self.messages,
            "imbalance": f"{self.load_imbalance:.2f}",
        }


@dataclass
class ConfigPoint:
    """One MPI×OpenMP configuration of the Fig 7 sweep.

    Numeric fields stay numeric here; formatting happens only in
    :meth:`as_row`, so no private ``"_time"`` style keys ever leak into
    rendered tables.
    """

    processes: int
    threads: int
    elapsed_time: float
    comm_time: float
    comp_time: float
    other_time: float

    @classmethod
    def from_record(cls, record: RunRecord) -> "ConfigPoint":
        return cls(
            processes=record.config.nprocs,
            threads=record.config.threads or 1,
            elapsed_time=record.elapsed_time,
            comm_time=record.comm_time,
            comp_time=record.comp_time,
            other_time=record.other_time,
        )

    @property
    def cores(self) -> int:
        return self.processes * self.threads

    def as_row(self) -> Dict[str, object]:
        return {
            "processes": self.processes,
            "threads": self.threads,
            "cores": self.cores,
            "time (s)": f"{self.elapsed_time:.6f}",
            "comm (s)": f"{self.comm_time:.6f}",
            "comp (s)": f"{self.comp_time:.6f}",
            "other (s)": f"{self.other_time:.6f}",
        }


def strong_scaling_sweep(
    A,
    *,
    algorithm: str,
    strategy: str,
    process_counts: Sequence[int],
    cost_model: CostModel = PERLMUTTER,
    dataset: str = "matrix",
    block_split: int = 2048,
    seed: int = 0,
    verify_conservation: bool = True,
) -> List[ScalingPoint]:
    """Run the squaring benchmark across a list of process counts.

    With ``verify_conservation`` (the default) every point's ledger is
    checked for the byte-balance invariant — the sweeps *are* the paper's
    communication-volume figures, so an unbalanced ledger must fail loudly
    rather than silently skew a curve.
    """
    points = []
    for nprocs in process_counts:
        config = RunConfig(
            dataset=dataset,
            algorithm=algorithm,
            strategy=strategy,
            nprocs=int(nprocs),
            block_split=block_split,
            seed=seed,
        )
        record = execute_config(config, matrix=A, cost_model=cost_model)
        if verify_conservation and not record.conserved:
            raise AssertionError(
                f"ledger not conserved for {algorithm}/{strategy} at P={nprocs}"
            )
        points.append(ScalingPoint.from_record(record))
    return points


def mpi_omp_configurations(total_cores: int) -> List[Dict[str, int]]:
    """All (processes, threads) splits of a fixed core count, perfect-square processes.

    Mirrors Fig 7's protocol: given ``c`` cores, vary processes ``p`` and
    threads ``t`` with ``c = p·t``; CombBLAS tradition restricts ``p`` to
    perfect squares.
    """
    configs = []
    p = 1
    while p <= total_cores:
        if total_cores % p == 0:
            root = int(round(np.sqrt(p)))
            if root * root == p:
                configs.append({"processes": p, "threads": total_cores // p})
        p += 1
    return configs


def config_sweep(
    A,
    *,
    total_cores: int,
    algorithm: str = "1d",
    strategy: str = "none",
    cost_model: CostModel = PERLMUTTER,
    dataset: str = "matrix",
    block_split: int = 2048,
    min_processes: int = 4,
) -> List[ConfigPoint]:
    """Fig 7 sweep: fixed core budget, varying the MPI×OpenMP split."""
    points = []
    for config in mpi_omp_configurations(total_cores):
        p, t = config["processes"], config["threads"]
        if p < min_processes:
            continue
        run_config = RunConfig(
            dataset=dataset,
            algorithm=algorithm,
            strategy=strategy,
            nprocs=p,
            block_split=block_split,
            threads=t,
        )
        record = execute_config(run_config, matrix=A, cost_model=cost_model)
        points.append(ConfigPoint.from_record(record))
    return points

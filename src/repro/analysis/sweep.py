"""Parameter sweeps used by the strong-scaling and configuration figures.

The paper's evaluation is a family of sweeps: over process counts (Figs 8, 9,
11), over MPI×OpenMP configurations at fixed core counts (Fig 7), over
block-fetch split counts (Fig 6), and over 3D layer counts (implicit in
"we explored all possible layer parameters").  This module wraps those loops
so the benchmark scripts stay declarative.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..apps.squaring import SquaringRun, run_squaring
from ..runtime import CostModel, PERLMUTTER

__all__ = [
    "ScalingPoint",
    "strong_scaling_sweep",
    "mpi_omp_configurations",
    "config_sweep",
]


@dataclass
class ScalingPoint:
    """One point of a strong-scaling curve."""

    nprocs: int
    algorithm: str
    strategy: str
    elapsed_time: float
    elapsed_with_permutation: float
    communication_volume: int
    messages: int
    load_imbalance: float

    def as_row(self) -> Dict[str, object]:
        return {
            "P": self.nprocs,
            "algorithm": self.algorithm,
            "strategy": self.strategy,
            "time (s)": f"{self.elapsed_time:.6f}",
            "time+perm (s)": f"{self.elapsed_with_permutation:.6f}",
            "volume (B)": self.communication_volume,
            "messages": self.messages,
            "imbalance": f"{self.load_imbalance:.2f}",
        }


def strong_scaling_sweep(
    A,
    *,
    algorithm: str,
    strategy: str,
    process_counts: Sequence[int],
    cost_model: CostModel = PERLMUTTER,
    dataset: str = "matrix",
    block_split: int = 2048,
    seed: int = 0,
    verify_conservation: bool = True,
) -> List[ScalingPoint]:
    """Run the squaring benchmark across a list of process counts.

    With ``verify_conservation`` (the default) every point's ledger is
    checked for the byte-balance invariant — the sweeps *are* the paper's
    communication-volume figures, so an unbalanced ledger must fail loudly
    rather than silently skew a curve.
    """
    points = []
    for nprocs in process_counts:
        run = run_squaring(
            A,
            algorithm=algorithm,
            strategy=strategy,
            nprocs=nprocs,
            cost_model=cost_model,
            dataset=dataset,
            block_split=block_split,
            seed=seed,
        )
        if verify_conservation:
            run.result.ledger.assert_conserved()
        points.append(
            ScalingPoint(
                nprocs=nprocs,
                algorithm=run.algorithm,
                strategy=strategy,
                elapsed_time=run.spgemm_time,
                elapsed_with_permutation=run.total_time_with_permutation,
                communication_volume=run.result.communication_volume,
                messages=run.result.message_count,
                load_imbalance=run.result.load_imbalance,
            )
        )
    return points


def mpi_omp_configurations(total_cores: int) -> List[Dict[str, int]]:
    """All (processes, threads) splits of a fixed core count, perfect-square processes.

    Mirrors Fig 7's protocol: given ``c`` cores, vary processes ``p`` and
    threads ``t`` with ``c = p·t``; CombBLAS tradition restricts ``p`` to
    perfect squares.
    """
    configs = []
    p = 1
    while p <= total_cores:
        if total_cores % p == 0:
            root = int(round(np.sqrt(p)))
            if root * root == p:
                configs.append({"processes": p, "threads": total_cores // p})
        p += 1
    return configs


def config_sweep(
    A,
    *,
    total_cores: int,
    algorithm: str = "1d",
    strategy: str = "none",
    cost_model: CostModel = PERLMUTTER,
    dataset: str = "matrix",
    block_split: int = 2048,
    min_processes: int = 4,
) -> List[Dict[str, object]]:
    """Fig 7 sweep: fixed core budget, varying the MPI×OpenMP split."""
    rows = []
    for config in mpi_omp_configurations(total_cores):
        p, t = config["processes"], config["threads"]
        if p < min_processes:
            continue
        model = cost_model.with_threads(t)
        run = run_squaring(
            A,
            algorithm=algorithm,
            strategy=strategy,
            nprocs=p,
            cost_model=model,
            dataset=dataset,
            block_split=block_split,
        )
        rows.append(
            {
                "processes": p,
                "threads": t,
                "cores": p * t,
                "time (s)": f"{run.spgemm_time:.6f}",
                "comm (s)": f"{run.result.comm_time:.6f}",
                "comp (s)": f"{run.result.comp_time:.6f}",
                "other (s)": f"{run.result.other_time:.6f}",
                "_time": run.spgemm_time,
            }
        )
    return rows

"""Per-rank time breakdowns (the paper's Figs 4, 8, 10 style reports).

The paper presents per-MPI-process stacked bars of communication /
computation / other time to expose load imbalance.  These helpers extract
that data from a :class:`~repro.runtime.PhaseLedger` (or an
:class:`~repro.core.SpGEMMResult`) into plain rows and render them as text.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core.base import SpGEMMResult
from ..runtime import PhaseLedger
from .reporting import format_bar_chart, format_table, seconds

__all__ = [
    "RankBreakdown",
    "per_rank_breakdown",
    "breakdown_table",
    "breakdown_chart",
    "record_breakdown_table",
]


@dataclass
class RankBreakdown:
    """Per-rank times for one run."""

    rank: int
    comm: float
    comp: float
    other: float
    bytes_received: int
    rdma_gets: int

    @property
    def total(self) -> float:
        return self.comm + self.comp + self.other


def per_rank_breakdown(source) -> List[RankBreakdown]:
    """Extract per-rank breakdowns from a ledger or an SpGEMM result."""
    ledger: PhaseLedger = source.ledger if isinstance(source, SpGEMMResult) else source
    out = []
    for st in ledger.per_rank_totals():
        out.append(
            RankBreakdown(
                rank=st.rank,
                comm=st.time["comm"],
                comp=st.time["comp"],
                other=st.time["other"],
                bytes_received=st.bytes_received,
                rdma_gets=st.rdma_gets,
            )
        )
    return out


def breakdown_table(source, *, title: str = "per-rank time breakdown") -> str:
    """Aligned table of per-rank comm/comp/other times."""
    rows = []
    for rb in per_rank_breakdown(source):
        rows.append(
            {
                "rank": rb.rank,
                "comm": seconds(rb.comm),
                "comp": seconds(rb.comp),
                "other": seconds(rb.other),
                "total": seconds(rb.total),
                "recv bytes": rb.bytes_received,
                "rdma gets": rb.rdma_gets,
            }
        )
    return format_table(rows, title=title)


def record_breakdown_table(record, *, title: str = "per-rank time breakdown") -> str:
    """Per-rank comm/comp/other table from a persisted ``RunRecord``.

    Engine records carry only the modelled per-rank *times* (not the byte
    counters a live ledger holds), so this is the record-shaped analogue of
    :func:`breakdown_table` for the engine-backed benchmarks.
    """
    rows = []
    for rank, (comm, comp, other) in enumerate(
        zip(record.per_rank_comm, record.per_rank_comp, record.per_rank_other)
    ):
        rows.append(
            {
                "rank": rank,
                "comm": seconds(comm),
                "comp": seconds(comp),
                "other": seconds(other),
                "total": seconds(comm + comp + other),
            }
        )
    return format_table(rows, title=title)


def breakdown_chart(source, *, title: str = "per-rank total time") -> str:
    """Text bar chart of per-rank total times (visualises load imbalance)."""
    breakdowns = per_rank_breakdown(source)
    return format_bar_chart(
        [f"rank {rb.rank}" for rb in breakdowns],
        [rb.total for rb in breakdowns],
        title=title,
        unit=" s",
    )

"""Redistribution between layouts, with communication accounting.

Two conversions are needed by the algorithms and the applications:

* column-1D → row-1D (and back): the outer-product algorithm's first step
  "redistribute B so that p_i owns the i-th row block" (Algorithm 3 line 1);
* 1D → 2D / 3D: the baselines expect block distributions, and the paper's
  strong-scaling comparisons include (or exclude) this "permutation +
  redistribution" cost explicitly.

Each function takes an optional :class:`~repro.runtime.SimulatedCluster`; when
given, the data movement is routed through the cluster's communicator so the
bytes/messages show up in the ledger (phase ``"redistribute"``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..runtime import SimulatedCluster
from ..sparse import CSCMatrix, as_csc
from .dist1d import DistributedColumns1D, DistributedRows1D

__all__ = [
    "columns_to_rows_1d",
    "rows_to_columns_1d",
    "estimate_redistribution_bytes",
]

_INDEX_DTYPE = np.int64


def _entry_bytes(mat: CSCMatrix) -> int:
    """Wire bytes per stored entry: row id (8) + value (8); column ids travel as ranges."""
    return 16


def columns_to_rows_1d(
    dist: DistributedColumns1D,
    *,
    cluster: Optional[SimulatedCluster] = None,
    row_bounds: Optional[List[Tuple[int, int]]] = None,
) -> DistributedRows1D:
    """Convert a column-1D distribution to a row-1D distribution.

    Every rank splits its local column slice by destination row block and the
    pieces are exchanged with an all-to-all.  With ``cluster`` given, each
    piece is charged as one message of ``16·nnz`` bytes from its source to its
    destination rank.
    """
    target = DistributedRows1D.from_global(
        dist.to_global(), dist.nprocs, bounds=row_bounds
    )
    if cluster is not None:
        if cluster.nprocs != dist.nprocs:
            raise ValueError("cluster size must match distribution size")
        with cluster.phase("redistribute"):
            buffers: Dict[int, Dict[int, object]] = {r: {} for r in range(dist.nprocs)}
            for src in range(dist.nprocs):
                local = dist.local(src)
                rows_of_entries, _, _ = local.to_coo()
                for dst in range(dist.nprocs):
                    rs, re = target.row_bounds(dst)
                    count = int(np.count_nonzero((rows_of_entries >= rs) & (rows_of_entries < re)))
                    if count and src != dst:
                        # Payload is modelled by its size only.
                        buffers[src][dst] = np.zeros(count * 2, dtype=np.float64)
            cluster.comm.alltoallv(buffers)
            for rank in range(dist.nprocs):
                cluster.charge_other_bytes(rank, target.local(rank).memory_bytes())
    return target


def rows_to_columns_1d(
    dist: DistributedRows1D,
    *,
    cluster: Optional[SimulatedCluster] = None,
    col_bounds: Optional[List[Tuple[int, int]]] = None,
) -> DistributedColumns1D:
    """Convert a row-1D distribution to a column-1D distribution (same accounting)."""
    target = DistributedColumns1D.from_global(
        dist.to_global(), dist.nprocs, bounds=col_bounds
    )
    if cluster is not None:
        if cluster.nprocs != dist.nprocs:
            raise ValueError("cluster size must match distribution size")
        with cluster.phase("redistribute"):
            buffers: Dict[int, Dict[int, object]] = {r: {} for r in range(dist.nprocs)}
            for src in range(dist.nprocs):
                local = dist.local(src)
                _, cols_of_entries, _ = local.to_coo()
                for dst in range(dist.nprocs):
                    cs, ce = target.column_bounds(dst)
                    count = int(np.count_nonzero((cols_of_entries >= cs) & (cols_of_entries < ce)))
                    if count and src != dst:
                        buffers[src][dst] = np.zeros(count * 2, dtype=np.float64)
            cluster.comm.alltoallv(buffers)
            for rank in range(dist.nprocs):
                cluster.charge_other_bytes(rank, target.local(rank).memory_bytes())
    return target


def estimate_redistribution_bytes(A, nprocs: int) -> int:
    """Bytes a full redistribution of ``A`` across ``nprocs`` ranks would move.

    Used to account for the cost of applying a random permutation /
    repartitioning before the 2D and 3D baselines (the "with permutation"
    series of Figs 9 and 11): in expectation a fraction ``(P-1)/P`` of the
    entries change owner.
    """
    A = as_csc(A)
    if nprocs <= 1:
        return 0
    moved_entries = A.nnz * (nprocs - 1) / nprocs
    return int(moved_entries * 16)

"""3D (split) distribution over a √(P/c) × √(P/c) × c process grid.

The Split-3D-SpGEMM algorithm (Azad et al. 2016, the CombBLAS baseline the
paper compares against) adds a third grid dimension of ``c`` *layers*.  The
inner dimension of the multiplication is split across layers: layer ``l``
owns the column slice ``A(:, K_l)`` and the row slice ``B(K_l, :)`` (each
distributed 2D within the layer), computes a *partial* ``C^(l)`` with a 2D
SUMMA restricted to the layer, and the partial results are summed across
layers with an AllToAll along the fiber dimension followed by a local merge.

This module provides the grid geometry and the layer-splitting of the
operands; the stage loop lives in :mod:`repro.core.spgemm_3d`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from ..sparse import as_csc
from ..sparse.ops import column_blocks, extract_rows
from .dist2d import DistributedBlocks2D, ProcessGrid2D

__all__ = ["ProcessGrid3D", "LayerSplit3D", "valid_layer_counts"]


def valid_layer_counts(nprocs: int) -> List[int]:
    """Layer counts ``c`` such that ``P/c`` is a perfect square (the paper sweeps these)."""
    out = []
    for c in range(1, nprocs + 1):
        if nprocs % c:
            continue
        per_layer = nprocs // c
        root = int(round(math.sqrt(per_layer)))
        if root * root == per_layer:
            out.append(c)
    return out


@dataclass(frozen=True)
class ProcessGrid3D:
    """A √(P/c) × √(P/c) × c grid; ranks numbered layer-major."""

    prows: int
    pcols: int
    layers: int

    @classmethod
    def from_nprocs(cls, nprocs: int, layers: int) -> "ProcessGrid3D":
        if layers <= 0 or nprocs % layers:
            raise ValueError(f"layer count {layers} does not divide {nprocs}")
        per_layer = nprocs // layers
        root = int(round(math.sqrt(per_layer)))
        if root * root != per_layer:
            raise ValueError(
                f"P/c = {per_layer} is not a perfect square (P={nprocs}, c={layers})"
            )
        return cls(prows=root, pcols=root, layers=layers)

    @property
    def nprocs(self) -> int:
        return self.prows * self.pcols * self.layers

    @property
    def layer_grid(self) -> ProcessGrid2D:
        """The 2D grid used inside each layer."""
        return ProcessGrid2D(prows=self.prows, pcols=self.pcols)

    def rank_of(self, i: int, j: int, l: int) -> int:
        if not (0 <= i < self.prows and 0 <= j < self.pcols and 0 <= l < self.layers):
            raise IndexError(f"grid coordinate ({i}, {j}, {l}) outside grid")
        return l * (self.prows * self.pcols) + i * self.pcols + j

    def coords_of(self, rank: int) -> Tuple[int, int, int]:
        if not 0 <= rank < self.nprocs:
            raise IndexError(f"rank {rank} outside grid")
        per_layer = self.prows * self.pcols
        l, rem = divmod(rank, per_layer)
        i, j = divmod(rem, self.pcols)
        return i, j, l

    def fiber_ranks(self, i: int, j: int) -> List[int]:
        """Ranks sharing grid position (i, j) across all layers (the AllToAll group)."""
        return [self.rank_of(i, j, l) for l in range(self.layers)]


@dataclass
class LayerSplit3D:
    """Operands of ``C = A·B`` split across layers along the inner dimension.

    ``a_layers[l]`` holds the 2D-distributed column slice ``A(:, K_l)`` and
    ``b_layers[l]`` the 2D-distributed row slice ``B(K_l, :)`` for layer ``l``.
    """

    grid: ProcessGrid3D
    inner_bounds: List[Tuple[int, int]]
    a_layers: List[DistributedBlocks2D]
    b_layers: List[DistributedBlocks2D]

    @classmethod
    def from_global(cls, A, B, grid: ProcessGrid3D) -> "LayerSplit3D":
        A = as_csc(A)
        B = as_csc(B)
        if A.ncols != B.nrows:
            raise ValueError(f"inner dimensions do not match: {A.shape} x {B.shape}")
        inner_bounds = column_blocks(A.ncols, grid.layers)
        a_layers = []
        b_layers = []
        layer_grid = grid.layer_grid
        for (ks, ke) in inner_bounds:
            a_slice = A.extract_column_range(ks, ke)
            b_slice = extract_rows(B, range(ks, ke))
            a_layers.append(DistributedBlocks2D.from_global(a_slice, layer_grid))
            b_layers.append(DistributedBlocks2D.from_global(b_slice, layer_grid))
        return cls(grid=grid, inner_bounds=inner_bounds, a_layers=a_layers, b_layers=b_layers)

    @property
    def nnz(self) -> int:
        return sum(d.nnz for d in self.a_layers) + sum(d.nnz for d in self.b_layers)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"LayerSplit3D(grid={self.grid.prows}x{self.grid.pcols}x{self.grid.layers}, "
            f"layers={len(self.a_layers)})"
        )

"""1D column distribution — the layout of the paper's algorithm.

``A (m×k)``, ``B (k×n)`` and ``C (m×n)`` are each split along the *column*
dimension over ``P`` processes: process ``p_i`` owns contiguous column slices
``A_i (m×k_i)``, ``B_i (k×n_i)`` and after the multiply ``C_i (m×n_i)``, with
``Σ k_i = k`` and ``Σ n_i = n`` (Table I / Algorithm 1 of the paper).

The column blocks need not be equal: when a graph partitioner is used, the
matrix is first symmetrically permuted so each part is contiguous and the
block boundaries follow the part sizes (see
:mod:`repro.partition.ordering`).

The same class also models a 1D *row* distribution (used by the
outer-product algorithm to redistribute ``B`` by row blocks) via
:class:`DistributedRows1D`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..sparse import CSCMatrix, as_csc, stack_columns
from ..sparse.ops import column_blocks, extract_rows

__all__ = ["DistributedColumns1D", "DistributedRows1D", "block_bounds_from_sizes"]

_INDEX_DTYPE = np.int64


def block_bounds_from_sizes(sizes: Sequence[int]) -> List[Tuple[int, int]]:
    """Convert per-part sizes into contiguous ``[start, stop)`` bounds."""
    bounds = []
    start = 0
    for s in sizes:
        if s < 0:
            raise ValueError("block sizes must be non-negative")
        bounds.append((start, start + int(s)))
        start += int(s)
    return bounds


@dataclass
class DistributedColumns1D:
    """A sparse matrix distributed by contiguous column blocks over P ranks."""

    nrows: int
    ncols: int
    nprocs: int
    #: per-rank ``[start, stop)`` global column bounds
    bounds: List[Tuple[int, int]]
    #: per-rank local matrices, ``locals_[i].shape == (nrows, stop_i - start_i)``
    locals_: List[CSCMatrix]

    # ------------------------------------------------------------------
    @classmethod
    def from_global(
        cls,
        A,
        nprocs: int,
        *,
        bounds: Optional[Sequence[Tuple[int, int]]] = None,
    ) -> "DistributedColumns1D":
        """Distribute a global matrix into ``nprocs`` contiguous column blocks.

        ``bounds`` overrides the default equal split (used when block sizes
        come from a partitioner).  Bounds must cover ``0..ncols`` contiguously.
        """
        A = as_csc(A)
        if nprocs <= 0:
            raise ValueError("nprocs must be positive")
        if bounds is None:
            bounds = column_blocks(A.ncols, nprocs)
        bounds = [(int(s), int(e)) for s, e in bounds]
        if len(bounds) != nprocs:
            raise ValueError("bounds must have one entry per process")
        expected = 0
        for s, e in bounds:
            if s != expected or e < s:
                raise ValueError("bounds must be contiguous and non-overlapping")
            expected = e
        if expected != A.ncols:
            raise ValueError("bounds must cover all columns")
        locals_ = [A.extract_column_range(s, e) for s, e in bounds]
        return cls(
            nrows=A.nrows, ncols=A.ncols, nprocs=nprocs, bounds=list(bounds), locals_=locals_
        )

    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        return (self.nrows, self.ncols)

    @property
    def nnz(self) -> int:
        return sum(m.nnz for m in self.locals_)

    def local(self, rank: int) -> CSCMatrix:
        """The column slice owned by ``rank``."""
        return self.locals_[rank]

    def column_bounds(self, rank: int) -> Tuple[int, int]:
        """Global ``[start, stop)`` column range owned by ``rank``."""
        return self.bounds[rank]

    def owner_of_column(self, j: int) -> int:
        """Rank owning global column ``j``."""
        if not 0 <= j < self.ncols:
            raise IndexError(f"column {j} out of range")
        starts = np.array([s for s, _ in self.bounds], dtype=_INDEX_DTYPE)
        return int(np.searchsorted(starts, j, side="right") - 1)

    def global_column_ids(self, rank: int) -> np.ndarray:
        """Global column indices owned by ``rank`` (contiguous range)."""
        s, e = self.bounds[rank]
        return np.arange(s, e, dtype=_INDEX_DTYPE)

    def local_nnz_per_rank(self) -> np.ndarray:
        return np.array([m.nnz for m in self.locals_], dtype=_INDEX_DTYPE)

    def memory_bytes_per_rank(self) -> np.ndarray:
        return np.array([m.memory_bytes() for m in self.locals_], dtype=_INDEX_DTYPE)

    def to_global(self) -> CSCMatrix:
        """Reassemble the global matrix (inverse of :meth:`from_global`)."""
        return stack_columns(self.locals_, nrows=self.nrows)

    # ------------------------------------------------------------------
    # Per-rank metadata used by Algorithm 1
    # ------------------------------------------------------------------
    def nonzero_column_ids(self) -> np.ndarray:
        """Global ids of non-empty columns across all ranks (the paper's ``D`` vector)."""
        parts = []
        for rank in range(self.nprocs):
            s, _ = self.bounds[rank]
            local_nzc = self.locals_[rank].nonzero_columns()
            if local_nzc.size:
                parts.append(local_nzc + s)
        if not parts:
            return np.zeros(0, dtype=_INDEX_DTYPE)
        return np.concatenate(parts)

    def column_nnz_global(self) -> np.ndarray:
        """Per-global-column nnz counts (length ``ncols``)."""
        out = np.zeros(self.ncols, dtype=_INDEX_DTYPE)
        for rank in range(self.nprocs):
            s, e = self.bounds[rank]
            out[s:e] = self.locals_[rank].column_nnz()
        return out

    def nonzero_rows_mask(self, rank: int) -> np.ndarray:
        """Dense boolean ``H_i`` of length ``nrows`` for rank ``rank``'s local slice.

        Algorithm 1 line 4 computes this on ``B_i``: rows of the *global*
        inner dimension that appear in the local columns.
        """
        return self.locals_[rank].nonzero_rows_mask()

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"DistributedColumns1D(shape={self.shape}, nprocs={self.nprocs}, nnz={self.nnz})"
        )


@dataclass
class DistributedRows1D:
    """A sparse matrix distributed by contiguous row blocks over P ranks.

    Used by the outer-product 1D algorithm (Algorithm 3), whose first step
    redistributes ``B`` so that process ``p_i`` owns the ``i``-th *row* block.
    """

    nrows: int
    ncols: int
    nprocs: int
    bounds: List[Tuple[int, int]]
    locals_: List[CSCMatrix]

    @classmethod
    def from_global(
        cls,
        A,
        nprocs: int,
        *,
        bounds: Optional[Sequence[Tuple[int, int]]] = None,
    ) -> "DistributedRows1D":
        A = as_csc(A)
        if nprocs <= 0:
            raise ValueError("nprocs must be positive")
        if bounds is None:
            bounds = column_blocks(A.nrows, nprocs)  # same splitting rule, on rows
        bounds = [(int(s), int(e)) for s, e in bounds]
        if len(bounds) != nprocs:
            raise ValueError("bounds must have one entry per process")
        expected = 0
        for s, e in bounds:
            if s != expected or e < s:
                raise ValueError("bounds must be contiguous and non-overlapping")
            expected = e
        if expected != A.nrows:
            raise ValueError("bounds must cover all rows")
        locals_ = [extract_rows(A, range(s, e)) for s, e in bounds]
        return cls(
            nrows=A.nrows, ncols=A.ncols, nprocs=nprocs, bounds=list(bounds), locals_=locals_
        )

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.nrows, self.ncols)

    @property
    def nnz(self) -> int:
        return sum(m.nnz for m in self.locals_)

    def local(self, rank: int) -> CSCMatrix:
        return self.locals_[rank]

    def row_bounds(self, rank: int) -> Tuple[int, int]:
        return self.bounds[rank]

    def owner_of_row(self, i: int) -> int:
        if not 0 <= i < self.nrows:
            raise IndexError(f"row {i} out of range")
        starts = np.array([s for s, _ in self.bounds], dtype=_INDEX_DTYPE)
        return int(np.searchsorted(starts, i, side="right") - 1)

    def to_global(self) -> CSCMatrix:
        rows_parts = []
        cols_parts = []
        vals_parts = []
        for rank in range(self.nprocs):
            s, _ = self.bounds[rank]
            local = self.locals_[rank]
            r, c, v = local.to_coo()
            rows_parts.append(r + s)
            cols_parts.append(c)
            vals_parts.append(v)
        if not rows_parts:
            return CSCMatrix.empty(self.nrows, self.ncols)
        return CSCMatrix.from_coo(
            self.nrows,
            self.ncols,
            np.concatenate(rows_parts),
            np.concatenate(cols_parts),
            np.concatenate(vals_parts),
            sum_duplicates=False,
        )

    def __repr__(self) -> str:  # pragma: no cover
        return f"DistributedRows1D(shape={self.shape}, nprocs={self.nprocs}, nnz={self.nnz})"

"""Distributed matrix layouts: 1D column (the paper's), 2D SUMMA, 3D split."""

from .dist1d import DistributedColumns1D, DistributedRows1D, block_bounds_from_sizes
from .dist2d import DistributedBlocks2D, ProcessGrid2D, square_grid_dims
from .dist3d import LayerSplit3D, ProcessGrid3D, valid_layer_counts
from .redistribute import (
    columns_to_rows_1d,
    estimate_redistribution_bytes,
    rows_to_columns_1d,
)

__all__ = [
    "DistributedColumns1D",
    "DistributedRows1D",
    "block_bounds_from_sizes",
    "DistributedBlocks2D",
    "ProcessGrid2D",
    "square_grid_dims",
    "LayerSplit3D",
    "ProcessGrid3D",
    "valid_layer_counts",
    "columns_to_rows_1d",
    "rows_to_columns_1d",
    "estimate_redistribution_bytes",
]

"""2D block distribution over a √P × √P process grid (Sparse SUMMA layout).

CombBLAS's 2D sparse SUMMA (Buluç & Gilbert 2008) arranges ``P`` processes in
a square grid; process ``(i, j)`` owns the ``(i, j)`` block of every matrix.
Stage ``s`` of the SUMMA loop broadcasts ``A(i, s)`` along process row ``i``
and ``B(s, j)`` along process column ``j``, and every process accumulates
``C(i, j) += A(i, s)·B(s, j)``.

The distribution object here only holds the blocks and the grid geometry; the
stage loop and its communication accounting live in
:mod:`repro.core.spgemm_2d`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..sparse import CSCMatrix, as_csc
from ..sparse.ops import column_blocks, row_blocks

__all__ = ["ProcessGrid2D", "DistributedBlocks2D", "square_grid_dims"]

_INDEX_DTYPE = np.int64


def square_grid_dims(nprocs: int) -> Tuple[int, int]:
    """Return the √P × √P grid dimensions; P must be a perfect square.

    The paper follows "the tradition of CombBLAS that the number of MPI
    processes is a perfect square".
    """
    root = int(round(math.sqrt(nprocs)))
    if root * root != nprocs:
        raise ValueError(f"2D/3D layouts require a perfect-square process count, got {nprocs}")
    return root, root


@dataclass(frozen=True)
class ProcessGrid2D:
    """A rectangular process grid with row-major rank numbering."""

    prows: int
    pcols: int

    @classmethod
    def square(cls, nprocs: int) -> "ProcessGrid2D":
        pr, pc = square_grid_dims(nprocs)
        return cls(prows=pr, pcols=pc)

    @property
    def nprocs(self) -> int:
        return self.prows * self.pcols

    def rank_of(self, i: int, j: int) -> int:
        if not (0 <= i < self.prows and 0 <= j < self.pcols):
            raise IndexError(f"grid coordinate ({i}, {j}) outside {self.prows}x{self.pcols}")
        return i * self.pcols + j

    def coords_of(self, rank: int) -> Tuple[int, int]:
        if not 0 <= rank < self.nprocs:
            raise IndexError(f"rank {rank} outside grid")
        return divmod(rank, self.pcols)

    def row_ranks(self, i: int) -> List[int]:
        """Ranks in process row ``i`` (the A-broadcast group of SUMMA)."""
        return [self.rank_of(i, j) for j in range(self.pcols)]

    def col_ranks(self, j: int) -> List[int]:
        """Ranks in process column ``j`` (the B-broadcast group of SUMMA)."""
        return [self.rank_of(i, j) for i in range(self.prows)]


@dataclass
class DistributedBlocks2D:
    """A matrix split into a ``prows × pcols`` grid of blocks."""

    nrows: int
    ncols: int
    grid: ProcessGrid2D
    row_bounds: List[Tuple[int, int]]
    col_bounds: List[Tuple[int, int]]
    #: blocks[(i, j)] is the (i, j) sub-matrix
    blocks: Dict[Tuple[int, int], CSCMatrix]

    @classmethod
    def from_global(
        cls,
        A,
        grid: ProcessGrid2D,
        *,
        row_bounds: Optional[List[Tuple[int, int]]] = None,
        col_bounds: Optional[List[Tuple[int, int]]] = None,
    ) -> "DistributedBlocks2D":
        """Distribute a global matrix over the grid's blocks.

        ``row_bounds``/``col_bounds`` override the default even split (used
        when the block boundaries must align with an existing distribution,
        e.g. a mask coerced into a product's layout).
        """
        A = as_csc(A)
        rb = (
            [(int(s), int(e)) for s, e in row_bounds]
            if row_bounds is not None
            else row_blocks(A.nrows, grid.prows)
        )
        cb = (
            [(int(s), int(e)) for s, e in col_bounds]
            if col_bounds is not None
            else column_blocks(A.ncols, grid.pcols)
        )
        if len(rb) != grid.prows or len(cb) != grid.pcols:
            raise ValueError("block bounds must have one entry per grid row/column")
        blocks: Dict[Tuple[int, int], CSCMatrix] = {}
        # Slice columns once per grid column, then carve rows out of each slice.
        for j, (cs, ce) in enumerate(cb):
            col_slice = A.extract_column_range(cs, ce)
            rows_of_entries, cols_of_entries, vals = col_slice.to_coo()
            for i, (rs, re) in enumerate(rb):
                keep = (rows_of_entries >= rs) & (rows_of_entries < re)
                blocks[(i, j)] = CSCMatrix.from_coo(
                    re - rs,
                    ce - cs,
                    rows_of_entries[keep] - rs,
                    cols_of_entries[keep],
                    vals[keep],
                    sum_duplicates=False,
                )
        return cls(
            nrows=A.nrows,
            ncols=A.ncols,
            grid=grid,
            row_bounds=rb,
            col_bounds=cb,
            blocks=blocks,
        )

    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        return (self.nrows, self.ncols)

    @property
    def nnz(self) -> int:
        return sum(b.nnz for b in self.blocks.values())

    def block(self, i: int, j: int) -> CSCMatrix:
        return self.blocks[(i, j)]

    def block_shape(self, i: int, j: int) -> Tuple[int, int]:
        rs, re = self.row_bounds[i]
        cs, ce = self.col_bounds[j]
        return (re - rs, ce - cs)

    def to_global(self) -> CSCMatrix:
        rows_parts = []
        cols_parts = []
        vals_parts = []
        for (i, j), blk in self.blocks.items():
            if blk.nnz == 0:
                continue
            rs, _ = self.row_bounds[i]
            cs, _ = self.col_bounds[j]
            r, c, v = blk.to_coo()
            rows_parts.append(r + rs)
            cols_parts.append(c + cs)
            vals_parts.append(v)
        if not rows_parts:
            return CSCMatrix.empty(self.nrows, self.ncols)
        return CSCMatrix.from_coo(
            self.nrows,
            self.ncols,
            np.concatenate(rows_parts),
            np.concatenate(cols_parts),
            np.concatenate(vals_parts),
            sum_duplicates=True,
        )

    def nnz_per_rank(self) -> np.ndarray:
        out = np.zeros(self.grid.nprocs, dtype=_INDEX_DTYPE)
        for (i, j), blk in self.blocks.items():
            out[self.grid.rank_of(i, j)] = blk.nnz
        return out

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"DistributedBlocks2D(shape={self.shape}, grid={self.grid.prows}x"
            f"{self.grid.pcols}, nnz={self.nnz})"
        )

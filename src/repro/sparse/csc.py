"""Compressed Sparse Column (CSC) container used as the local-matrix substrate.

The paper stores local submatrices in CombBLAS's DCSC format (see
:mod:`repro.sparse.dcsc`) but explicitly notes the algorithm "would run on
both [CSC and DCSC] with the same complexity bounds".  This module provides a
plain CSC container backed by numpy arrays, which is the workhorse layout for
local SpGEMM kernels, column extraction (the RDMA fetch unit of Algorithm 1),
and conversions to/from :mod:`scipy.sparse`.

Design notes
------------
* Index arrays use ``int64`` throughout — the paper's ParMETIS runs use
  64-bit indices and the synthetic suite can exceed 2^31 products even at
  laptop scale.
* Values use ``float64`` unless the caller supplies another dtype (the
  betweenness-centrality application uses integer path counts).
* Rows within each column are kept **sorted**; every constructor either
  verifies or establishes this invariant, because the heap/hash kernels and
  the merge routines rely on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple

import numpy as np

__all__ = ["CSCMatrix"]

_INDEX_DTYPE = np.int64


def _as_index_array(values: Iterable[int]) -> np.ndarray:
    arr = np.asarray(values, dtype=_INDEX_DTYPE)
    if arr.ndim != 1:
        raise ValueError(f"expected a 1-D index array, got shape {arr.shape}")
    return arr


@dataclass
class CSCMatrix:
    """A compressed-sparse-column matrix.

    Attributes
    ----------
    nrows, ncols:
        Logical dimensions of the matrix.
    indptr:
        ``int64`` array of length ``ncols + 1``; column ``j`` occupies the
        half-open slice ``indptr[j]:indptr[j+1]`` of ``indices``/``data``.
    indices:
        ``int64`` row indices, sorted within each column.
    data:
        Numeric values aligned with ``indices``.
    """

    nrows: int
    ncols: int
    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray

    # ------------------------------------------------------------------
    # Construction and validation
    # ------------------------------------------------------------------
    def __post_init__(self) -> None:
        self.nrows = int(self.nrows)
        self.ncols = int(self.ncols)
        self.indptr = _as_index_array(self.indptr)
        self.indices = _as_index_array(self.indices)
        self.data = np.asarray(self.data)
        if self.nrows < 0 or self.ncols < 0:
            raise ValueError("matrix dimensions must be non-negative")
        if self.indptr.shape[0] != self.ncols + 1:
            raise ValueError(
                f"indptr has length {self.indptr.shape[0]}, expected {self.ncols + 1}"
            )
        if self.indices.shape[0] != self.data.shape[0]:
            raise ValueError("indices and data must have the same length")
        if self.indptr[0] != 0 or self.indptr[-1] != self.indices.shape[0]:
            raise ValueError("indptr must start at 0 and end at nnz")
        if np.any(self.indptr[1:] < self.indptr[:-1]):
            raise ValueError("indptr must be non-decreasing")
        if self.indices.size and (
            self.indices.min() < 0 or self.indices.max() >= self.nrows
        ):
            raise ValueError("row index out of range")

    # ------------------------------------------------------------------
    # Alternate constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, nrows: int, ncols: int, dtype=np.float64) -> "CSCMatrix":
        """An all-zero matrix of the given shape."""
        return cls(
            nrows=nrows,
            ncols=ncols,
            indptr=np.zeros(ncols + 1, dtype=_INDEX_DTYPE),
            indices=np.zeros(0, dtype=_INDEX_DTYPE),
            data=np.zeros(0, dtype=dtype),
        )

    @classmethod
    def identity(cls, n: int, dtype=np.float64) -> "CSCMatrix":
        """The n×n identity matrix."""
        return cls(
            nrows=n,
            ncols=n,
            indptr=np.arange(n + 1, dtype=_INDEX_DTYPE),
            indices=np.arange(n, dtype=_INDEX_DTYPE),
            data=np.ones(n, dtype=dtype),
        )

    @classmethod
    def from_coo(
        cls,
        nrows: int,
        ncols: int,
        rows: Iterable[int],
        cols: Iterable[int],
        vals: Iterable[float],
        *,
        sum_duplicates: bool = True,
        dtype=None,
    ) -> "CSCMatrix":
        """Build from COO triplets.

        Duplicate ``(row, col)`` entries are summed when ``sum_duplicates``
        is true (the SpGEMM accumulation semantics); otherwise the last value
        wins.  Explicit zeros produced by summation are retained, matching
        CombBLAS semantics where numerical cancellation does not change the
        pattern within one operation.
        """
        rows = _as_index_array(rows)
        cols = _as_index_array(cols)
        vals = np.asarray(vals, dtype=dtype)
        if not (rows.shape == cols.shape == vals.shape):
            raise ValueError("rows, cols and vals must have identical shapes")
        if rows.size == 0:
            return cls.empty(nrows, ncols, dtype=vals.dtype if dtype is None else dtype)
        if rows.min() < 0 or rows.max() >= nrows:
            raise ValueError("row index out of range")
        if cols.min() < 0 or cols.max() >= ncols:
            raise ValueError("column index out of range")

        # Sort lexicographically by (col, row).
        order = np.lexsort((rows, cols))
        rows = rows[order]
        cols = cols[order]
        vals = vals[order]

        if sum_duplicates:
            # Identify runs of identical (col, row) pairs and sum their values.
            new_run = np.empty(rows.shape[0], dtype=bool)
            new_run[0] = True
            new_run[1:] = (rows[1:] != rows[:-1]) | (cols[1:] != cols[:-1])
            group_ids = np.cumsum(new_run) - 1
            unique_rows = rows[new_run]
            unique_cols = cols[new_run]
            summed = np.zeros(unique_rows.shape[0], dtype=vals.dtype)
            np.add.at(summed, group_ids, vals)
            rows, cols, vals = unique_rows, unique_cols, summed

        indptr = np.zeros(ncols + 1, dtype=_INDEX_DTYPE)
        counts = np.bincount(cols, minlength=ncols)
        indptr[1:] = np.cumsum(counts)
        return cls(nrows=nrows, ncols=ncols, indptr=indptr, indices=rows, data=vals)

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CSCMatrix":
        """Build from a dense 2-D array, dropping exact zeros."""
        dense = np.asarray(dense)
        if dense.ndim != 2:
            raise ValueError("expected a 2-D array")
        rows, cols = np.nonzero(dense)
        return cls.from_coo(
            dense.shape[0], dense.shape[1], rows, cols, dense[rows, cols]
        )

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        return (self.nrows, self.ncols)

    @property
    def nnz(self) -> int:
        """Number of stored entries (explicit zeros included)."""
        return int(self.indices.shape[0])

    @property
    def dtype(self):
        return self.data.dtype

    def column_nnz(self) -> np.ndarray:
        """Per-column stored-entry counts (length ``ncols``)."""
        return self.indptr[1:] - self.indptr[:-1]

    def row_nnz(self) -> np.ndarray:
        """Per-row stored-entry counts (length ``nrows``)."""
        return np.bincount(self.indices, minlength=self.nrows).astype(_INDEX_DTYPE)

    def nonzero_columns(self) -> np.ndarray:
        """Indices of columns holding at least one stored entry (the paper's nzc)."""
        return np.nonzero(np.diff(self.indptr) > 0)[0].astype(_INDEX_DTYPE)

    def nzc(self) -> int:
        """Number of non-empty columns."""
        return int(np.count_nonzero(np.diff(self.indptr)))

    def nonzero_rows_mask(self) -> np.ndarray:
        """Dense boolean vector of length ``nrows`` marking rows with entries.

        This is the paper's ``H_i`` vector computed on a local ``B_i`` slice
        (Algorithm 1 line 4).
        """
        mask = np.zeros(self.nrows, dtype=bool)
        mask[self.indices] = True
        return mask

    def memory_bytes(self) -> int:
        """Approximate memory footprint of the index and value arrays."""
        return int(
            self.indptr.nbytes + self.indices.nbytes + self.data.nbytes
        )

    # ------------------------------------------------------------------
    # Element access / conversion
    # ------------------------------------------------------------------
    def column(self, j: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(row_indices, values)`` views of column ``j``."""
        if not 0 <= j < self.ncols:
            raise IndexError(f"column index {j} out of range for {self.shape}")
        lo, hi = self.indptr[j], self.indptr[j + 1]
        return self.indices[lo:hi], self.data[lo:hi]

    def to_dense(self) -> np.ndarray:
        out = np.zeros((self.nrows, self.ncols), dtype=self.data.dtype)
        cols = np.repeat(np.arange(self.ncols, dtype=_INDEX_DTYPE), np.diff(self.indptr))
        # np.add.at accumulates duplicate (row, col) entries correctly, which
        # plain fancy-index assignment would not.
        np.add.at(out, (self.indices, cols), self.data)
        return out

    def to_coo(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(rows, cols, vals)`` arrays in column-major order."""
        cols = np.repeat(
            np.arange(self.ncols, dtype=_INDEX_DTYPE), np.diff(self.indptr)
        )
        return self.indices.copy(), cols, self.data.copy()

    def copy(self) -> "CSCMatrix":
        return CSCMatrix(
            nrows=self.nrows,
            ncols=self.ncols,
            indptr=self.indptr.copy(),
            indices=self.indices.copy(),
            data=self.data.copy(),
        )

    def astype(self, dtype) -> "CSCMatrix":
        return CSCMatrix(
            nrows=self.nrows,
            ncols=self.ncols,
            indptr=self.indptr.copy(),
            indices=self.indices.copy(),
            data=self.data.astype(dtype),
        )

    # ------------------------------------------------------------------
    # Structural transforms needed by the algorithms
    # ------------------------------------------------------------------
    def extract_columns(self, columns: Iterable[int]) -> "CSCMatrix":
        """Return a new matrix containing only the requested columns.

        The result has ``len(columns)`` columns, in the requested order; row
        dimension is unchanged.  This is the "pack the fetched blocks into a
        compacted Ã" step of Algorithm 1 (line 8).
        """
        columns = _as_index_array(columns)
        if columns.size and (columns.min() < 0 or columns.max() >= self.ncols):
            raise IndexError("column index out of range")
        col_counts = np.diff(self.indptr)[columns]
        new_indptr = np.zeros(columns.size + 1, dtype=_INDEX_DTYPE)
        new_indptr[1:] = np.cumsum(col_counts)
        total = int(new_indptr[-1])
        new_indices = np.empty(total, dtype=_INDEX_DTYPE)
        new_data = np.empty(total, dtype=self.data.dtype)
        pos = 0
        for j in columns:
            lo, hi = self.indptr[j], self.indptr[j + 1]
            width = hi - lo
            new_indices[pos : pos + width] = self.indices[lo:hi]
            new_data[pos : pos + width] = self.data[lo:hi]
            pos += width
        return CSCMatrix(
            nrows=self.nrows,
            ncols=int(columns.size),
            indptr=new_indptr,
            indices=new_indices,
            data=new_data,
        )

    def extract_column_range(self, start: int, stop: int) -> "CSCMatrix":
        """Return columns ``start:stop`` as a new matrix (contiguous slice).

        Contiguous column ranges are the unit transferred by the block-fetch
        strategy (Algorithm 2), so this path avoids per-column copying.
        """
        if not (0 <= start <= stop <= self.ncols):
            raise IndexError(f"invalid column range [{start}, {stop}) for {self.shape}")
        lo = self.indptr[start]
        hi = self.indptr[stop]
        return CSCMatrix(
            nrows=self.nrows,
            ncols=stop - start,
            indptr=(self.indptr[start : stop + 1] - lo).astype(_INDEX_DTYPE),
            indices=self.indices[lo:hi].copy(),
            data=self.data[lo:hi].copy(),
        )

    def transpose(self) -> "CSCMatrix":
        """Return the transpose as a new CSC matrix (CSC(Aᵀ) == CSR(A))."""
        rows, cols, vals = self.to_coo()
        return CSCMatrix.from_coo(
            self.ncols, self.nrows, cols, rows, vals, sum_duplicates=False
        )

    def permute(self, row_perm: np.ndarray | None = None,
                col_perm: np.ndarray | None = None) -> "CSCMatrix":
        """Apply permutations: result[i, j] = self[row_perm[i], col_perm[j]].

        ``row_perm`` and ``col_perm`` give, for each *new* index, the old
        index it takes its entries from (i.e. they are the inverse of a
        relabelling map).  Either may be ``None`` for identity.
        """
        rows, cols, vals = self.to_coo()
        if row_perm is not None:
            row_perm = _as_index_array(row_perm)
            if row_perm.shape[0] != self.nrows:
                raise ValueError("row permutation has wrong length")
            inv = np.empty_like(row_perm)
            inv[row_perm] = np.arange(self.nrows, dtype=_INDEX_DTYPE)
            rows = inv[rows]
        if col_perm is not None:
            col_perm = _as_index_array(col_perm)
            if col_perm.shape[0] != self.ncols:
                raise ValueError("column permutation has wrong length")
            inv = np.empty_like(col_perm)
            inv[col_perm] = np.arange(self.ncols, dtype=_INDEX_DTYPE)
            cols = inv[cols]
        return CSCMatrix.from_coo(
            self.nrows, self.ncols, rows, cols, vals, sum_duplicates=False
        )

    def prune_explicit_zeros(self, tol: float = 0.0) -> "CSCMatrix":
        """Drop stored entries whose magnitude is <= ``tol``."""
        keep = np.abs(self.data) > tol
        if keep.all():
            return self.copy()
        cols = np.repeat(
            np.arange(self.ncols, dtype=_INDEX_DTYPE), np.diff(self.indptr)
        )
        indptr = np.zeros(self.ncols + 1, dtype=_INDEX_DTYPE)
        indptr[1:] = np.cumsum(np.bincount(cols[keep], minlength=self.ncols))
        return CSCMatrix(
            nrows=self.nrows,
            ncols=self.ncols,
            indptr=indptr,
            indices=self.indices[keep],
            data=self.data[keep],
        )

    # ------------------------------------------------------------------
    # Comparison helpers (used heavily by the tests)
    # ------------------------------------------------------------------
    def allclose(self, other: "CSCMatrix", rtol: float = 1e-9, atol: float = 1e-12) -> bool:
        """Numerically compare two sparse matrices independent of stored-zero pattern."""
        if self.shape != other.shape:
            return False
        return np.allclose(self.to_dense(), other.to_dense(), rtol=rtol, atol=atol)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CSCMatrix(shape={self.shape}, nnz={self.nnz}, "
            f"nzc={self.nzc()}, dtype={self.data.dtype})"
        )


def build_csc_unchecked(nrows, ncols, indptr, indices, data) -> CSCMatrix:
    """Construct a :class:`CSCMatrix` without running validation.

    Internal fast path for kernels whose outputs satisfy the CSC invariants
    by construction (sorted, in-range, consistent indptr) — the per-call
    validation in ``__post_init__`` is measurable when a driver assembles
    tens of thousands of tiny blocks per run.  Callers outside this package
    should use the ordinary constructors.
    """
    m = object.__new__(CSCMatrix)
    m.nrows = int(nrows)
    m.ncols = int(ncols)
    m.indptr = indptr
    m.indices = indices
    m.data = data
    return m

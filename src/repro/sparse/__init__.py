"""Local sparse-matrix substrate: CSC/DCSC containers, kernels, and helpers.

This subpackage is the single-process foundation the distributed algorithms
are built on.  Everything here is deterministic, numpy-backed, and oblivious
to the runtime/distribution layers.
"""

from .csc import CSCMatrix
from .dcsc import DCSCMatrix
from .conversion import as_csc, as_dcsc, csc_from_scipy, dcsc_from_scipy, to_scipy
from .flops import (
    estimate_output_nnz_upper_bound,
    per_column_flops,
    spgemm_flops,
)
from .kernels import (
    KERNEL_VARIANTS,
    kernel_variant,
    numba_available,
    requested_kernel_variant,
    resolve_kernel_variant,
    set_kernel_variant,
)
from .local_spgemm import (
    KERNELS,
    SpGEMMKernelStats,
    local_spgemm,
    spgemm_dense_accumulator,
    spgemm_hash,
    spgemm_heap,
    spgemm_hybrid,
)
from .merge import add_matrices, kway_merge_columns, stack_columns
from . import ops

__all__ = [
    "CSCMatrix",
    "DCSCMatrix",
    "as_csc",
    "as_dcsc",
    "csc_from_scipy",
    "dcsc_from_scipy",
    "to_scipy",
    "per_column_flops",
    "spgemm_flops",
    "estimate_output_nnz_upper_bound",
    "SpGEMMKernelStats",
    "local_spgemm",
    "spgemm_heap",
    "spgemm_hash",
    "spgemm_dense_accumulator",
    "spgemm_hybrid",
    "KERNELS",
    "KERNEL_VARIANTS",
    "kernel_variant",
    "numba_available",
    "requested_kernel_variant",
    "resolve_kernel_variant",
    "set_kernel_variant",
    "add_matrices",
    "kway_merge_columns",
    "stack_columns",
    "ops",
]

"""Structural and elementwise operations on local sparse matrices.

These are the supporting operations the applications need around SpGEMM:
transpose (for ``RᵀA``), row/column extraction (for 1D slicing and frontier
selection in betweenness centrality), elementwise products/masks (for the BC
backward sweep), diagonal extraction and scaling, and symmetrisation (for
feeding the graph partitioner).
"""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

from .csc import CSCMatrix
from .conversion import as_csc
from .kernels import resolve_kernel_variant

__all__ = [
    "transpose",
    "extract_rows",
    "extract_columns",
    "elementwise_multiply",
    "elementwise_mask",
    "scale_columns",
    "scale_rows",
    "diagonal",
    "symmetrize_pattern",
    "spmv",
    "spmm_dense",
    "column_blocks",
    "row_blocks",
]

_INDEX_DTYPE = np.int64


def transpose(A) -> CSCMatrix:
    """Return Aᵀ as a new CSC matrix."""
    return as_csc(A).transpose()


def extract_columns(A, columns: Iterable[int]) -> CSCMatrix:
    """Columns of ``A`` selected by ``columns`` (renumbered, order preserved)."""
    return as_csc(A).extract_columns(columns)


def extract_rows(A, rows: Iterable[int]) -> CSCMatrix:
    """Rows of ``A`` selected by ``rows`` (renumbered, order preserved)."""
    A = as_csc(A)
    rows = np.asarray(list(rows), dtype=_INDEX_DTYPE)
    if rows.size and (rows.min() < 0 or rows.max() >= A.nrows):
        raise IndexError("row index out of range")
    # Map old row id -> new row id (or -1 if dropped).
    mapping = np.full(A.nrows, -1, dtype=_INDEX_DTYPE)
    mapping[rows] = np.arange(rows.size, dtype=_INDEX_DTYPE)
    r, c, v = A.to_coo()
    keep = mapping[r] >= 0
    return CSCMatrix.from_coo(
        int(rows.size), A.ncols, mapping[r[keep]], c[keep], v[keep], sum_duplicates=False
    )


def _entry_columns(M: CSCMatrix) -> np.ndarray:
    """Column id of every stored entry, in storage (column-major) order."""
    return np.repeat(np.arange(M.ncols, dtype=_INDEX_DTYPE), np.diff(M.indptr))


def _keys_fit_int64(M: CSCMatrix) -> bool:
    """Can ``col * nrows + row`` address every entry without overflowing int64?"""
    return M.nrows == 0 or M.ncols <= (2**62) // max(M.nrows, 1)


def _indptr_from_entry_columns(ncols: int, cols: np.ndarray) -> np.ndarray:
    indptr = np.zeros(ncols + 1, dtype=_INDEX_DTYPE)
    indptr[1:] = np.cumsum(np.bincount(cols, minlength=ncols))
    return indptr


def _elementwise_multiply_python(A: CSCMatrix, B: CSCMatrix) -> CSCMatrix:
    """Per-column reference: sorted-row intersection via np.intersect1d."""
    rows_out = []
    cols_out = []
    vals_out = []
    for j in range(A.ncols):
        ar, av = A.column(j)
        br, bv = B.column(j)
        if ar.size == 0 or br.size == 0:
            continue
        common, ai, bi = np.intersect1d(ar, br, assume_unique=False, return_indices=True)
        if common.size == 0:
            continue
        rows_out.append(common)
        cols_out.append(np.full(common.size, j, dtype=_INDEX_DTYPE))
        vals_out.append(av[ai] * bv[bi])
    if not rows_out:
        return CSCMatrix.empty(A.nrows, A.ncols, dtype=np.result_type(A.dtype, B.dtype))
    return CSCMatrix.from_coo(
        A.nrows,
        A.ncols,
        np.concatenate(rows_out),
        np.concatenate(cols_out),
        np.concatenate(vals_out),
        sum_duplicates=False,
    )


def elementwise_multiply(A, B) -> CSCMatrix:
    """Hadamard (elementwise) product of two same-shaped sparse matrices.

    The fast path intersects the two patterns in one pass over linearised
    ``(col, row)`` keys; the per-column reference loop is kept as the
    ``REPRO_KERNEL=python`` oracle and both produce bit-identical results
    (same first-occurrence semantics on duplicate entries, same ordering).
    """
    A = as_csc(A)
    B = as_csc(B)
    if A.shape != B.shape:
        raise ValueError(f"shape mismatch: {A.shape} vs {B.shape}")
    if resolve_kernel_variant() == "python" or not _keys_fit_int64(A):
        return _elementwise_multiply_python(A, B)
    keys_a = _entry_columns(A) * A.nrows + A.indices
    keys_b = _entry_columns(B) * B.nrows + B.indices
    common, ai, bi = np.intersect1d(
        keys_a, keys_b, assume_unique=False, return_indices=True
    )
    if common.size == 0:
        return CSCMatrix.empty(A.nrows, A.ncols, dtype=np.result_type(A.dtype, B.dtype))
    cols = common // A.nrows
    return CSCMatrix(
        nrows=A.nrows,
        ncols=A.ncols,
        indptr=_indptr_from_entry_columns(A.ncols, cols),
        indices=common - cols * A.nrows,
        data=A.data[ai] * B.data[bi],
    )


def _elementwise_mask_python(A: CSCMatrix, mask: CSCMatrix, complement: bool) -> CSCMatrix:
    """Per-column reference: membership test of A's rows in the mask column."""
    rows_out = []
    cols_out = []
    vals_out = []
    for j in range(A.ncols):
        ar, av = A.column(j)
        if ar.size == 0:
            continue
        mr, _ = mask.column(j)
        keep = np.isin(ar, mr, invert=complement)
        if not np.any(keep):
            continue
        rows_out.append(ar[keep])
        cols_out.append(np.full(int(keep.sum()), j, dtype=_INDEX_DTYPE))
        vals_out.append(av[keep])
    if not rows_out:
        return CSCMatrix.empty(A.nrows, A.ncols, dtype=A.dtype)
    return CSCMatrix.from_coo(
        A.nrows,
        A.ncols,
        np.concatenate(rows_out),
        np.concatenate(cols_out),
        np.concatenate(vals_out),
        sum_duplicates=False,
    )


def elementwise_mask(A, mask, *, complement: bool = False) -> CSCMatrix:
    """Keep entries of ``A`` where ``mask`` has (or, with ``complement``, lacks) an entry.

    This is the "masked" SpGEMM post-filter used by the betweenness
    centrality forward search: newly discovered vertices are those reached by
    the frontier expansion *and not yet visited*, i.e. masked by the
    complement of the visited pattern.  One global ``np.isin`` over
    linearised keys replaces the per-column loop, which is kept as the
    ``REPRO_KERNEL=python`` oracle.
    """
    A = as_csc(A)
    mask = as_csc(mask)
    if A.shape != mask.shape:
        raise ValueError(f"shape mismatch: {A.shape} vs {mask.shape}")
    if resolve_kernel_variant() == "python" or not _keys_fit_int64(A):
        return _elementwise_mask_python(A, mask, complement)
    cols_a = _entry_columns(A)
    keys_a = cols_a * A.nrows + A.indices
    keys_m = _entry_columns(mask) * mask.nrows + mask.indices
    keep = np.isin(keys_a, keys_m, invert=complement)
    if not np.any(keep):
        return CSCMatrix.empty(A.nrows, A.ncols, dtype=A.dtype)
    return CSCMatrix(
        nrows=A.nrows,
        ncols=A.ncols,
        indptr=_indptr_from_entry_columns(A.ncols, cols_a[keep]),
        indices=A.indices[keep],
        data=A.data[keep],
    )


def scale_columns(A, scales: np.ndarray) -> CSCMatrix:
    """Multiply column ``j`` of ``A`` by ``scales[j]``."""
    A = as_csc(A)
    scales = np.asarray(scales)
    if scales.shape[0] != A.ncols:
        raise ValueError("scales length must equal ncols")
    col_of_entry = np.repeat(np.arange(A.ncols, dtype=_INDEX_DTYPE), np.diff(A.indptr))
    return CSCMatrix(
        nrows=A.nrows,
        ncols=A.ncols,
        indptr=A.indptr.copy(),
        indices=A.indices.copy(),
        data=A.data * scales[col_of_entry],
    )


def scale_rows(A, scales: np.ndarray) -> CSCMatrix:
    """Multiply row ``i`` of ``A`` by ``scales[i]``."""
    A = as_csc(A)
    scales = np.asarray(scales)
    if scales.shape[0] != A.nrows:
        raise ValueError("scales length must equal nrows")
    return CSCMatrix(
        nrows=A.nrows,
        ncols=A.ncols,
        indptr=A.indptr.copy(),
        indices=A.indices.copy(),
        data=A.data * scales[A.indices],
    )


def diagonal(A) -> np.ndarray:
    """Main diagonal of ``A`` as a dense vector."""
    A = as_csc(A)
    n = min(A.nrows, A.ncols)
    out = np.zeros(n, dtype=A.dtype)
    for j in range(n):
        rows, vals = A.column(j)
        hit = np.searchsorted(rows, j)
        if hit < rows.shape[0] and rows[hit] == j:
            out[j] = vals[hit]
    return out


def symmetrize_pattern(A) -> CSCMatrix:
    """Return a matrix with the symmetric pattern ``A ∪ Aᵀ`` (values summed).

    METIS requires an undirected graph; unsymmetric inputs (hv15r, stokes)
    are symmetrised before partitioning, exactly as a METIS user would.
    """
    A = as_csc(A)
    if A.nrows != A.ncols:
        raise ValueError("symmetrize_pattern requires a square matrix")
    r, c, v = A.to_coo()
    rows = np.concatenate([r, c])
    cols = np.concatenate([c, r])
    vals = np.concatenate([v, v])
    sym = CSCMatrix.from_coo(A.nrows, A.ncols, rows, cols, vals, sum_duplicates=True)
    return sym


def spmv(A, x: np.ndarray) -> np.ndarray:
    """Sparse matrix–dense vector product ``A @ x`` (column-major accumulation)."""
    A = as_csc(A)
    x = np.asarray(x)
    if x.shape[0] != A.ncols:
        raise ValueError("vector length must equal ncols")
    out = np.zeros(A.nrows, dtype=np.result_type(A.dtype, x.dtype))
    col_of_entry = np.repeat(np.arange(A.ncols, dtype=_INDEX_DTYPE), np.diff(A.indptr))
    np.add.at(out, A.indices, A.data * x[col_of_entry])
    return out


def spmm_dense(A, X: np.ndarray) -> np.ndarray:
    """Sparse matrix–dense matrix product ``A @ X``."""
    A = as_csc(A)
    X = np.asarray(X)
    if X.ndim != 2 or X.shape[0] != A.ncols:
        raise ValueError("dense operand must be 2-D with matching inner dimension")
    out = np.zeros((A.nrows, X.shape[1]), dtype=np.result_type(A.dtype, X.dtype))
    col_of_entry = np.repeat(np.arange(A.ncols, dtype=_INDEX_DTYPE), np.diff(A.indptr))
    np.add.at(out, A.indices, A.data[:, None] * X[col_of_entry])
    return out


def column_blocks(ncols: int, nblocks: int) -> list[Tuple[int, int]]:
    """Split ``range(ncols)`` into ``nblocks`` contiguous ``[start, stop)`` ranges.

    Matches the block decomposition used both by the 1D column distribution
    and by the block-fetch strategy: the first ``ncols % nblocks`` blocks get
    one extra column.
    """
    if nblocks <= 0:
        raise ValueError("nblocks must be positive")
    base = ncols // nblocks
    extra = ncols % nblocks
    blocks = []
    start = 0
    for b in range(nblocks):
        width = base + (1 if b < extra else 0)
        blocks.append((start, start + width))
        start += width
    return blocks


def row_blocks(nrows: int, nblocks: int) -> list[Tuple[int, int]]:
    """Row-wise analogue of :func:`column_blocks`."""
    return column_blocks(nrows, nblocks)

"""Merging partial sparse results.

Two merge primitives are needed by the distributed algorithms:

* :func:`add_matrices` — elementwise sum of several same-shaped sparse
  matrices.  The outer-product 1D algorithm (Algorithm 3) and the 3D split
  algorithm both produce, on each process, *partial* results for the same
  output block that must be summed.
* :func:`kway_merge_columns` — merge column fragments (each covering a
  disjoint set of global columns) into one matrix.  Used when reassembling a
  1D-distributed output from per-process slices, and by the redistribution
  utilities.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

from .csc import CSCMatrix, build_csc_unchecked
from .conversion import as_csc
from .kernels import resolve_kernel_variant

__all__ = ["add_matrices", "kway_merge_columns", "stack_columns"]

_INDEX_DTYPE = np.int64


def _add_matrices_python(mats: List[CSCMatrix]) -> CSCMatrix:
    """Per-column reference merge (the ``REPRO_KERNEL=python`` oracle).

    Accumulates duplicates sequentially in matrix-list order within each
    row — exactly the order the stable lexsort + ``np.add.at`` stream of the
    fast path applies them in, so the two are bit-identical.
    """
    nrows, ncols = mats[0].shape
    rows_out: List[np.ndarray] = []
    cols_out: List[np.ndarray] = []
    vals_out: List[np.ndarray] = []
    for j in range(ncols):
        parts = [m.column(j) for m in mats]
        rs = np.concatenate([p[0] for p in parts])
        if rs.size == 0:
            continue
        vs = np.concatenate([p[1] for p in parts])
        order = np.argsort(rs, kind="stable")
        rs = rs[order]
        vs = vs[order]
        out_rows: List[int] = []
        out_vals: List = []
        for t in range(rs.shape[0]):
            if out_rows and out_rows[-1] == rs[t]:
                out_vals[-1] = out_vals[-1] + vs[t]
            else:
                out_rows.append(int(rs[t]))
                out_vals.append(vs[t])
        rows_out.append(np.asarray(out_rows, dtype=_INDEX_DTYPE))
        cols_out.append(np.full(len(out_rows), j, dtype=_INDEX_DTYPE))
        vals_out.append(np.asarray(out_vals, dtype=vs.dtype))
    if not rows_out:
        return CSCMatrix.empty(nrows, ncols, dtype=mats[0].dtype)
    return CSCMatrix.from_coo(
        nrows,
        ncols,
        np.concatenate(rows_out),
        np.concatenate(cols_out),
        np.concatenate(vals_out),
        sum_duplicates=False,
    )


def add_matrices(matrices: Iterable) -> CSCMatrix:
    """Elementwise sum of same-shaped sparse matrices.

    Duplicate entries across inputs are accumulated; the result keeps any
    explicit zeros produced by cancellation (CombBLAS semantics).  Operands
    are promoted to a common value dtype up front so the fast and
    ``REPRO_KERNEL=python`` paths perform identical arithmetic.
    """
    mats: List[CSCMatrix] = [as_csc(m) for m in matrices]
    if not mats:
        raise ValueError("add_matrices requires at least one matrix")
    shape = mats[0].shape
    for m in mats[1:]:
        if m.shape != shape:
            raise ValueError(f"shape mismatch in add_matrices: {m.shape} vs {shape}")
    if len(mats) == 1:
        return mats[0].copy()
    dt = np.result_type(*[m.dtype for m in mats])
    mats = [m if m.dtype == dt else m.astype(dt) for m in mats]
    if resolve_kernel_variant() == "python":
        return _add_matrices_python(mats)
    rows = np.concatenate([m.indices for m in mats])
    # One repeat over the tiled column ids builds every operand's column
    # vector at once (all operands share the same shape).
    counts = np.concatenate([m.indptr[1:] - m.indptr[:-1] for m in mats])
    cols = np.repeat(
        np.tile(np.arange(shape[1], dtype=_INDEX_DTYPE), len(mats)), counts
    )
    vals = np.concatenate([m.data for m in mats])
    if rows.size == 0:
        return CSCMatrix.empty(shape[0], shape[1], dtype=dt)
    # Inlined ``from_coo(..., sum_duplicates=True)`` assembly: the operands
    # are valid CSC matrices of a checked common shape, so the COO triplets
    # need no bounds validation and the result no invariant re-checks.
    order = np.lexsort((rows, cols))
    rows = rows[order]
    cols = cols[order]
    vals = vals[order]
    new_run = np.empty(rows.shape[0], dtype=bool)
    new_run[0] = True
    new_run[1:] = (rows[1:] != rows[:-1]) | (cols[1:] != cols[:-1])
    group_ids = np.cumsum(new_run) - 1
    unique_rows = rows[new_run]
    summed = np.zeros(unique_rows.shape[0], dtype=vals.dtype)
    np.add.at(summed, group_ids, vals)
    indptr = np.zeros(shape[1] + 1, dtype=_INDEX_DTYPE)
    counts = np.bincount(cols[new_run], minlength=shape[1])
    indptr[1:] = np.cumsum(counts)
    return build_csc_unchecked(shape[0], shape[1], indptr, unique_rows, summed)


def stack_columns(matrices: Sequence, *, nrows: int | None = None) -> CSCMatrix:
    """Horizontally concatenate matrices (same row dimension) in order.

    The inverse of slicing a 1D column-distributed matrix into per-process
    pieces: ``stack_columns([C_0, ..., C_{P-1}])`` rebuilds the global C.
    """
    mats: List[CSCMatrix] = [as_csc(m) for m in matrices]
    if not mats:
        raise ValueError("stack_columns requires at least one matrix")
    if nrows is None:
        nrows = mats[0].nrows
    for m in mats:
        if m.nrows != nrows:
            raise ValueError("all matrices must share the row dimension")
    total_cols = sum(m.ncols for m in mats)
    indptr = np.zeros(total_cols + 1, dtype=_INDEX_DTYPE)
    indices_parts: List[np.ndarray] = []
    data_parts: List[np.ndarray] = []
    col_offset = 0
    nnz_offset = 0
    for m in mats:
        indptr[col_offset + 1 : col_offset + m.ncols + 1] = m.indptr[1:] + nnz_offset
        indices_parts.append(m.indices)
        data_parts.append(m.data)
        col_offset += m.ncols
        nnz_offset += m.nnz
    indices = (
        np.concatenate(indices_parts) if indices_parts else np.zeros(0, dtype=_INDEX_DTYPE)
    )
    data = (
        np.concatenate(data_parts) if data_parts else np.zeros(0, dtype=np.float64)
    )
    return CSCMatrix(
        nrows=nrows, ncols=total_cols, indptr=indptr, indices=indices, data=data
    )


def kway_merge_columns(
    fragments: Sequence[Tuple[np.ndarray, CSCMatrix]],
    nrows: int,
    ncols: int,
) -> CSCMatrix:
    """Merge column fragments into an ``nrows × ncols`` matrix.

    Each fragment is ``(global_column_ids, matrix)`` where ``matrix`` has one
    column per listed global column.  Overlapping columns are summed (needed
    when partial outer-product results for the same column arrive from
    several processes).
    """
    rows_parts: List[np.ndarray] = []
    cols_parts: List[np.ndarray] = []
    vals_parts: List[np.ndarray] = []
    for global_cols, mat in fragments:
        mat = as_csc(mat)
        global_cols = np.asarray(global_cols, dtype=_INDEX_DTYPE)
        if global_cols.shape[0] != mat.ncols:
            raise ValueError("fragment column id list does not match matrix width")
        if mat.nrows != nrows:
            raise ValueError("fragment row dimension mismatch")
        if mat.nnz == 0:
            continue
        local_cols = np.repeat(
            np.arange(mat.ncols, dtype=_INDEX_DTYPE), np.diff(mat.indptr)
        )
        rows_parts.append(mat.indices)
        cols_parts.append(global_cols[local_cols])
        vals_parts.append(mat.data)
    if not rows_parts:
        return CSCMatrix.empty(nrows, ncols)
    return CSCMatrix.from_coo(
        nrows,
        ncols,
        np.concatenate(rows_parts),
        np.concatenate(cols_parts),
        np.concatenate(vals_parts),
        sum_duplicates=True,
    )

"""Optional numba-jitted local SpGEMM (the ``REPRO_KERNEL=numba`` fast path).

This module must stay importable without numba installed: the selector in
:mod:`repro.sparse.kernels` checks :data:`NUMBA_AVAILABLE` and never routes
work here when the import failed, and the decorator below degrades to a
no-op so the module body still parses.

Counter-invariance rule (see ``docs/kernels.md``): the jitted loop
accumulates the contributions to each output entry ``(i, j)`` in *segment
order* — the order of ``k`` within column ``B(:, j)`` — exactly like the
pure-python heap/hash/dense references and the numpy sort-and-reduce, so
floating-point results are bit-identical across variants.  Cancellation
zeros are stored, never pruned (CombBLAS pattern semantics).
"""

from __future__ import annotations

import numpy as np

from .csc import CSCMatrix

__all__ = ["NUMBA_AVAILABLE", "spgemm_numba"]

try:  # pragma: no cover - exercised only on hosts with the [fast] extra
    from numba import njit

    NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover - the default CI leg
    NUMBA_AVAILABLE = False

    def njit(*args, **kwargs):
        """Identity decorator so the jitted source still parses without numba."""
        if len(args) == 1 and callable(args[0]) and not kwargs:
            return args[0]

        def wrap(func):
            return func

        return wrap


@njit(cache=True)
def _spgemm_csc(
    a_indptr, a_indices, a_data, b_indptr, b_indices, b_data, nrows, ncols_out
):  # pragma: no cover - compiled; covered via the numba CI leg
    # Upper bound on output entries: Σ_j Σ_{k∈B(:,j)} nnz(A(:,k)).
    ub = 0
    for j in range(ncols_out):
        for t in range(b_indptr[j], b_indptr[j + 1]):
            k = b_indices[t]
            ub += a_indptr[k + 1] - a_indptr[k]
    out_indptr = np.zeros(ncols_out + 1, np.int64)
    out_indices = np.empty(ub, np.int64)
    out_data = np.empty(ub, a_data.dtype)
    # Column-stamped SPA: no O(nrows) clearing between columns.
    acc = np.zeros(nrows, a_data.dtype)
    stamp = np.full(nrows, -1, np.int64)
    touched = np.empty(nrows, np.int64)
    pos = 0
    for j in range(ncols_out):
        n_touched = 0
        for t in range(b_indptr[j], b_indptr[j + 1]):
            k = b_indices[t]
            bv = b_data[t]
            for s in range(a_indptr[k], a_indptr[k + 1]):
                i = a_indices[s]
                contrib = a_data[s] * bv
                if stamp[i] != j:
                    stamp[i] = j
                    acc[i] = contrib
                    touched[n_touched] = i
                    n_touched += 1
                else:
                    acc[i] += contrib
        ordered = np.sort(touched[:n_touched])
        for idx in range(n_touched):
            i = ordered[idx]
            out_indices[pos] = i
            out_data[pos] = acc[i]
            pos += 1
        out_indptr[j + 1] = pos
    return out_indptr, out_indices[:pos], out_data[:pos]


def spgemm_numba(A: CSCMatrix, B: CSCMatrix) -> CSCMatrix:
    """Jitted Gustavson SpGEMM; inputs must already share a value dtype."""
    indptr, indices, data = _spgemm_csc(
        A.indptr, A.indices, A.data, B.indptr, B.indices, B.data, A.nrows, B.ncols
    )
    return CSCMatrix(
        nrows=A.nrows, ncols=B.ncols, indptr=indptr, indices=indices, data=data
    )

"""Sparse-flop estimation for SpGEMM.

Using the outer-product view of ``C = A·B`` (paper §III-B, citing
[Buluç, Gilbert & Shah 2011, Thm 13.1] and [Akbudak & Aykanat 2014, Eq 3.5]),
the number of nontrivial scalar multiplications is the inner product of the
*column* nonzero counts of ``A`` with the *row* nonzero counts of ``B``:

    flops(A, B) = Σ_k  nnz(A(:, k)) · nnz(B(k, :))

For squaring a symmetric matrix this reduces to Σ_k nnz(A(:,k))², which is
exactly the per-vertex weight the paper feeds to METIS.

These counts drive three parts of the reproduction:

* vertex weights for the METIS-like partitioner (:mod:`repro.partition.weights`),
* the computation term of the cost model (:mod:`repro.runtime.costmodel`),
* symbolic estimation of the output size for memory accounting.
"""

from __future__ import annotations

import numpy as np

from .conversion import as_csc

__all__ = [
    "spgemm_flops",
    "per_column_flops",
    "per_output_column_flops",
    "estimate_output_nnz_upper_bound",
]


def per_column_flops(A, B) -> np.ndarray:
    """Sparse flops needed to form each column of ``C = A·B``.

    Column ``j`` of ``C`` costs Σ_{k : B[k,j] != 0} nnz(A(:,k)) multiplications.
    Returns an ``int64`` array of length ``ncols(B)``.
    """
    A = as_csc(A)
    B = as_csc(B)
    if A.ncols != B.nrows:
        raise ValueError(f"inner dimensions do not match: {A.shape} x {B.shape}")
    a_col_nnz = A.column_nnz()
    # For every stored entry of B at row k, charge nnz(A(:,k)) to its column.
    contributions = a_col_nnz[B.indices]
    out = np.zeros(B.ncols, dtype=np.int64)
    col_of_entry = np.repeat(np.arange(B.ncols, dtype=np.int64), np.diff(B.indptr))
    np.add.at(out, col_of_entry, contributions)
    return out


def spgemm_flops(A, B) -> int:
    """Total scalar multiplications of ``A·B`` (each multiply counted once)."""
    A = as_csc(A)
    B = as_csc(B)
    if A.ncols != B.nrows:
        raise ValueError(f"inner dimensions do not match: {A.shape} x {B.shape}")
    a_col_nnz = A.column_nnz().astype(np.int64)
    b_row_nnz = B.row_nnz().astype(np.int64)
    return int(np.dot(a_col_nnz, b_row_nnz))


def per_output_column_flops(A, B) -> np.ndarray:
    """Alias of :func:`per_column_flops` kept for API symmetry with the paper text."""
    return per_column_flops(A, B)


def estimate_output_nnz_upper_bound(A, B) -> int:
    """Upper bound on nnz(C): every multiplication could produce a distinct entry.

    The true nnz(C) is ≤ flops because of accumulation; this bound is what a
    symbolic phase would refine and is used for memory-pressure reporting
    (e.g. the 2D algorithm running out of memory in Fig 14).
    """
    return spgemm_flops(A, B)

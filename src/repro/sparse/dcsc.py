"""Double Compressed Sparse Column (DCSC) container.

DCSC (Buluç & Gilbert, "On the Representation and Multiplication of
Hypersparse Matrices", IPDPS 2008) stores only the *non-empty* columns of a
sparse matrix.  After a 1D or 2D decomposition the local submatrices become
hypersparse — ``nnz`` can be far smaller than the column dimension — and a
plain CSC ``indptr`` of length ``ncols + 1`` would dominate the memory
footprint.  The paper uses CombBLAS's DCSC for all local submatrices.

Layout
------
``jc``      — sorted array of the ``nzc`` non-empty column indices.
``cp``      — ``nzc + 1`` prefix-sum array; entries of the column ``jc[t]``
              occupy ``ir[cp[t]:cp[t+1]]`` / ``num[cp[t]:cp[t+1]]``.
``ir``      — row indices, sorted within each column.
``num``     — numeric values.

The original DCSC also carries an ``aux`` array accelerating column lookup;
here :meth:`DCSCMatrix.column_lookup` performs a binary search over ``jc``
which has the same asymptotic role and is adequate at our scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple

import numpy as np

from .csc import CSCMatrix

__all__ = ["DCSCMatrix"]

_INDEX_DTYPE = np.int64


@dataclass
class DCSCMatrix:
    """A double-compressed sparse column matrix (stores only non-empty columns)."""

    nrows: int
    ncols: int
    jc: np.ndarray
    cp: np.ndarray
    ir: np.ndarray
    num: np.ndarray

    def __post_init__(self) -> None:
        self.nrows = int(self.nrows)
        self.ncols = int(self.ncols)
        self.jc = np.asarray(self.jc, dtype=_INDEX_DTYPE)
        self.cp = np.asarray(self.cp, dtype=_INDEX_DTYPE)
        self.ir = np.asarray(self.ir, dtype=_INDEX_DTYPE)
        self.num = np.asarray(self.num)
        if self.cp.shape[0] != self.jc.shape[0] + 1:
            raise ValueError("cp must have length nzc + 1")
        if self.ir.shape[0] != self.num.shape[0]:
            raise ValueError("ir and num must have equal length")
        if self.cp.size and (self.cp[0] != 0 or self.cp[-1] != self.ir.shape[0]):
            raise ValueError("cp must start at 0 and end at nnz")
        if self.jc.size:
            if np.any(np.diff(self.jc) <= 0):
                raise ValueError("jc must be strictly increasing")
            if self.jc[0] < 0 or self.jc[-1] >= self.ncols:
                raise ValueError("column index out of range")
            if np.any(np.diff(self.cp) <= 0):
                raise ValueError("every column listed in jc must be non-empty")
        if self.ir.size and (self.ir.min() < 0 or self.ir.max() >= self.nrows):
            raise ValueError("row index out of range")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, nrows: int, ncols: int, dtype=np.float64) -> "DCSCMatrix":
        return cls(
            nrows=nrows,
            ncols=ncols,
            jc=np.zeros(0, dtype=_INDEX_DTYPE),
            cp=np.zeros(1, dtype=_INDEX_DTYPE),
            ir=np.zeros(0, dtype=_INDEX_DTYPE),
            num=np.zeros(0, dtype=dtype),
        )

    @classmethod
    def from_csc(cls, csc: CSCMatrix) -> "DCSCMatrix":
        """Compress a CSC matrix by dropping its empty columns from the index."""
        col_counts = np.diff(csc.indptr)
        jc = np.nonzero(col_counts > 0)[0].astype(_INDEX_DTYPE)
        cp = np.zeros(jc.shape[0] + 1, dtype=_INDEX_DTYPE)
        cp[1:] = np.cumsum(col_counts[jc])
        return cls(
            nrows=csc.nrows,
            ncols=csc.ncols,
            jc=jc,
            cp=cp,
            ir=csc.indices.copy(),
            num=csc.data.copy(),
        )

    @classmethod
    def from_coo(cls, nrows: int, ncols: int, rows: Iterable[int],
                 cols: Iterable[int], vals: Iterable[float]) -> "DCSCMatrix":
        return cls.from_csc(CSCMatrix.from_coo(nrows, ncols, rows, cols, vals))

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        return (self.nrows, self.ncols)

    @property
    def nnz(self) -> int:
        return int(self.ir.shape[0])

    @property
    def nzc(self) -> int:
        """Number of non-empty columns (the defining quantity of DCSC)."""
        return int(self.jc.shape[0])

    @property
    def dtype(self):
        return self.num.dtype

    def memory_bytes(self) -> int:
        """Memory footprint — note the absence of an O(ncols) array."""
        return int(self.jc.nbytes + self.cp.nbytes + self.ir.nbytes + self.num.nbytes)

    def column_nnz_compressed(self) -> np.ndarray:
        """Entry counts for the non-empty columns only (aligned with ``jc``)."""
        return np.diff(self.cp)

    def nonzero_rows_mask(self) -> np.ndarray:
        mask = np.zeros(self.nrows, dtype=bool)
        mask[self.ir] = True
        return mask

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def column_lookup(self, j: int) -> int:
        """Return the position of column ``j`` in ``jc`` or -1 if it is empty."""
        pos = int(np.searchsorted(self.jc, j))
        if pos < self.jc.shape[0] and self.jc[pos] == j:
            return pos
        return -1

    def column(self, j: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(row_indices, values)`` of logical column ``j`` (may be empty)."""
        if not 0 <= j < self.ncols:
            raise IndexError(f"column index {j} out of range for {self.shape}")
        pos = self.column_lookup(j)
        if pos < 0:
            return (np.zeros(0, dtype=_INDEX_DTYPE), np.zeros(0, dtype=self.num.dtype))
        lo, hi = self.cp[pos], self.cp[pos + 1]
        return self.ir[lo:hi], self.num[lo:hi]

    def to_csc(self) -> CSCMatrix:
        indptr = np.zeros(self.ncols + 1, dtype=_INDEX_DTYPE)
        counts = np.zeros(self.ncols, dtype=_INDEX_DTYPE)
        counts[self.jc] = np.diff(self.cp)
        indptr[1:] = np.cumsum(counts)
        return CSCMatrix(
            nrows=self.nrows,
            ncols=self.ncols,
            indptr=indptr,
            indices=self.ir.copy(),
            data=self.num.copy(),
        )

    def to_dense(self) -> np.ndarray:
        return self.to_csc().to_dense()

    def copy(self) -> "DCSCMatrix":
        return DCSCMatrix(
            nrows=self.nrows,
            ncols=self.ncols,
            jc=self.jc.copy(),
            cp=self.cp.copy(),
            ir=self.ir.copy(),
            num=self.num.copy(),
        )

    # ------------------------------------------------------------------
    # Structural transforms
    # ------------------------------------------------------------------
    def extract_columns(self, columns: Iterable[int]) -> "DCSCMatrix":
        """Extract a set of logical columns as a compacted DCSC matrix.

        Columns absent from ``jc`` simply contribute nothing; the result's
        column dimension equals ``len(columns)`` with columns renumbered in
        the requested order (mirrors :meth:`CSCMatrix.extract_columns`).
        """
        columns = np.asarray(list(columns), dtype=_INDEX_DTYPE)
        rows_out = []
        cols_out = []
        vals_out = []
        for new_j, j in enumerate(columns):
            ir, num = self.column(int(j))
            if ir.size:
                rows_out.append(ir)
                cols_out.append(np.full(ir.shape[0], new_j, dtype=_INDEX_DTYPE))
                vals_out.append(num)
        if not rows_out:
            return DCSCMatrix.empty(self.nrows, int(columns.size), dtype=self.num.dtype)
        return DCSCMatrix.from_coo(
            self.nrows,
            int(columns.size),
            np.concatenate(rows_out),
            np.concatenate(cols_out),
            np.concatenate(vals_out),
        )

    def allclose(self, other, rtol: float = 1e-9, atol: float = 1e-12) -> bool:
        other_dense = other.to_dense() if hasattr(other, "to_dense") else np.asarray(other)
        if self.shape != other_dense.shape:
            return False
        return np.allclose(self.to_dense(), other_dense, rtol=rtol, atol=atol)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DCSCMatrix(shape={self.shape}, nnz={self.nnz}, nzc={self.nzc}, "
            f"dtype={self.num.dtype})"
        )

"""The ``REPRO_KERNEL`` variant selector for the local kernels.

Every local kernel (SpGEMM, merge, elementwise) exists in up to three
implementations that produce **bit-identical** results:

``python``
    The literal per-column/per-entry reference implementations — the
    semantic oracle the property tests compare everything against.
``numpy``
    Vectorised sort-and-reduce / key-intersection formulations.  Always
    available; the default fast path.
``numba``
    Jitted Gustavson loops (see :mod:`repro.sparse._numba_kernels`),
    available only when :mod:`numba` is importable.  Install with the
    ``repro[fast]`` extra.

The selector value ``auto`` (the default) resolves to ``numba`` when the
import succeeds and to ``numpy`` otherwise.  Requesting ``numba`` on a
machine without it degrades to ``numpy`` with a single warning rather than
raising mid-sweep, so a grid launched with ``REPRO_KERNEL=numba`` still
completes (with identical results — the variants are interchangeable by
construction).

Selection is **process-global** and never part of a
:class:`~repro.experiments.config.RunConfig`: the variant changes how fast a
result is produced, never what the result (or any modelled counter) is, so
it must not perturb config hashes.  :func:`set_kernel_variant` also writes
``REPRO_KERNEL`` into ``os.environ`` so pool workers forked/spawned by the
experiment engine inherit the caller's choice.
"""

from __future__ import annotations

import os
import warnings
from contextlib import contextmanager
from typing import Iterator, Optional

__all__ = [
    "KERNEL_VARIANTS",
    "numba_available",
    "requested_kernel_variant",
    "resolve_kernel_variant",
    "set_kernel_variant",
    "kernel_variant",
]

#: accepted values of ``REPRO_KERNEL`` / ``--kernel``
KERNEL_VARIANTS = ("auto", "numpy", "numba", "python")

#: what ``resolve_kernel_variant`` can return (``auto`` always resolves)
RESOLVED_VARIANTS = ("numpy", "numba", "python")

_ENV_VAR = "REPRO_KERNEL"

#: process-wide override installed by :func:`set_kernel_variant`
_forced: Optional[str] = None
#: emit the numba-unavailable degradation warning only once per process
_warned_missing_numba = False


def numba_available() -> bool:
    """True iff the jitted kernels can actually run in this process."""
    from . import _numba_kernels

    return _numba_kernels.NUMBA_AVAILABLE


def _validate(name: str) -> str:
    name = name.strip().lower()
    if name not in KERNEL_VARIANTS:
        raise ValueError(
            f"unknown kernel variant {name!r}; expected one of {KERNEL_VARIANTS}"
        )
    return name


def requested_kernel_variant() -> str:
    """The variant currently asked for (before availability resolution)."""
    if _forced is not None:
        return _forced
    return os.environ.get(_ENV_VAR, "auto").strip().lower() or "auto"


def resolve_kernel_variant(name: Optional[str] = None) -> str:
    """Resolve ``name`` (or the process-wide request) to a runnable variant.

    ``auto`` becomes ``numba`` when importable, else ``numpy``; an explicit
    ``numba`` request without the package degrades to ``numpy`` with one
    warning per process (never an exception — see ISSUE 8 satellite: a sweep
    must not die halfway because a worker host lacks the extra).
    """
    global _warned_missing_numba
    requested = _validate(name if name is not None else requested_kernel_variant())
    if requested == "auto":
        return "numba" if numba_available() else "numpy"
    if requested == "numba" and not numba_available():
        if not _warned_missing_numba:
            warnings.warn(
                "REPRO_KERNEL=numba requested but numba is not importable; "
                "falling back to the numpy kernels (results are identical)",
                RuntimeWarning,
                stacklevel=2,
            )
            _warned_missing_numba = True
        return "numpy"
    return requested


def set_kernel_variant(name: str) -> str:
    """Install ``name`` as the process-wide variant; returns the resolved one.

    Also exported through ``os.environ`` so experiment-pool workers (fork or
    spawn) resolve the same variant as the parent process.
    """
    global _forced
    _forced = _validate(name)
    os.environ[_ENV_VAR] = _forced
    return resolve_kernel_variant()


@contextmanager
def kernel_variant(name: str) -> Iterator[str]:
    """Temporarily select a variant (tests and the contract suite use this)."""
    global _forced
    prev_forced = _forced
    prev_env = os.environ.get(_ENV_VAR)
    resolved = set_kernel_variant(name)
    try:
        yield resolved
    finally:
        _forced = prev_forced
        if prev_env is None:
            os.environ.pop(_ENV_VAR, None)
        else:
            os.environ[_ENV_VAR] = prev_env

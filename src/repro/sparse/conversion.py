"""Conversions between the local sparse containers and :mod:`scipy.sparse`.

scipy is used only at the edges of the library — for test oracles, for
reading/writing MatrixMarket files, and for users who already hold a scipy
matrix.  The distributed algorithms themselves operate on
:class:`~repro.sparse.csc.CSCMatrix` / :class:`~repro.sparse.dcsc.DCSCMatrix`
so that the communication layer controls exactly which index/value arrays
move.
"""

from __future__ import annotations

from typing import Union

import numpy as np
import scipy.sparse as sp

from .csc import CSCMatrix
from .dcsc import DCSCMatrix

__all__ = [
    "csc_from_scipy",
    "dcsc_from_scipy",
    "to_scipy",
    "as_csc",
    "as_dcsc",
]

LocalMatrix = Union[CSCMatrix, DCSCMatrix]


def csc_from_scipy(mat) -> CSCMatrix:
    """Convert any scipy sparse matrix (or dense array) to :class:`CSCMatrix`."""
    if isinstance(mat, np.ndarray):
        return CSCMatrix.from_dense(mat)
    scipy_csc = sp.csc_matrix(mat)
    scipy_csc.sort_indices()
    scipy_csc.sum_duplicates()
    return CSCMatrix(
        nrows=scipy_csc.shape[0],
        ncols=scipy_csc.shape[1],
        indptr=scipy_csc.indptr.astype(np.int64),
        indices=scipy_csc.indices.astype(np.int64),
        data=np.asarray(scipy_csc.data),
    )


def dcsc_from_scipy(mat) -> DCSCMatrix:
    """Convert any scipy sparse matrix (or dense array) to :class:`DCSCMatrix`."""
    return DCSCMatrix.from_csc(csc_from_scipy(mat))


def to_scipy(mat: LocalMatrix) -> sp.csc_matrix:
    """Convert a local matrix back to a ``scipy.sparse.csc_matrix``."""
    if isinstance(mat, DCSCMatrix):
        mat = mat.to_csc()
    if not isinstance(mat, CSCMatrix):
        raise TypeError(f"expected CSCMatrix or DCSCMatrix, got {type(mat)!r}")
    return sp.csc_matrix(
        (mat.data.copy(), mat.indices.copy(), mat.indptr.copy()),
        shape=mat.shape,
    )


def as_csc(mat) -> CSCMatrix:
    """Coerce CSC/DCSC/scipy/dense input to :class:`CSCMatrix` (no copy if already CSC)."""
    if isinstance(mat, CSCMatrix):
        return mat
    if isinstance(mat, DCSCMatrix):
        return mat.to_csc()
    return csc_from_scipy(mat)


def as_dcsc(mat) -> DCSCMatrix:
    """Coerce CSC/DCSC/scipy/dense input to :class:`DCSCMatrix` (no copy if already DCSC)."""
    if isinstance(mat, DCSCMatrix):
        return mat
    if isinstance(mat, CSCMatrix):
        return DCSCMatrix.from_csc(mat)
    return dcsc_from_scipy(mat)

"""Local (single-process) SpGEMM kernels.

The paper's local computation uses "a hybrid version of Heap-based SpGEMM
[Azad et al. 2016] and Hash-based SpGEMM [Nagasaka et al. 2019]" operating
column-by-column: column ``j`` of ``C`` is the linear combination of the
columns of ``A`` selected by the nonzero rows of ``B(:, j)``,

    C(:, j) = Σ_{k : B[k,j] != 0}  B[k, j] · A(:, k).

Four kernels are provided, all producing identical results:

``heap``
    A k-way merge of the participating columns of ``A`` using a binary heap,
    as in Azad et al. (2016).  Work is O(flops · log(k_j)) per column where
    ``k_j`` is the number of participating columns.  Output comes out sorted
    for free.  Best when rows of ``B`` columns are few ("tall-skinny" B, the
    AMG restriction case).

``hash``
    A per-column hash accumulator (open addressing over a power-of-two
    table), as in Nagasaka et al. (2019).  O(flops) expected work; output
    rows must be sorted afterwards.  Best for heavier columns.

``dense``
    A dense accumulator ("SPA") of length ``m`` reused across columns.
    O(flops + touched rows) per column, best when ``m`` is small relative to
    flops (the compacted-Ã local multiplies of Algorithm 1).

``hybrid`` (default)
    The paper's strategy: choose heap or hash per column from the column's
    flops and compression ratio (cheap columns → heap, heavy columns → hash),
    with the dense accumulator taking over when the estimated density of the
    output column is high.

Every kernel exists in up to three *variants* selected process-wide by
``REPRO_KERNEL`` (see :mod:`repro.sparse.kernels`): the literal pure-python
loops below (``python`` — the semantic oracle), a vectorised
sort-and-reduce (``numpy``), and a jitted Gustavson loop (``numba``,
optional).  All three accumulate the contributions to each output entry in
**segment order** (the order of ``k`` within ``B(:, j)``) so results are
bit-identical; cancellation zeros are always stored (CombBLAS pattern
semantics — which is also why scipy's matmul, which prunes them, is not
used here).  The kernel *name* decides only the routing counters recorded
in :class:`SpGEMMKernelStats`; those counters come from the same
:func:`per_column_flops` pass under every variant, keeping every modelled
counter variant-invariant.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from .csc import CSCMatrix, build_csc_unchecked
from .conversion import as_csc
from .flops import per_column_flops
from .kernels import resolve_kernel_variant

__all__ = [
    "SpGEMMKernelStats",
    "local_spgemm",
    "spgemm_heap",
    "spgemm_hash",
    "spgemm_dense_accumulator",
    "spgemm_hybrid",
    "KERNELS",
]

_INDEX_DTYPE = np.int64


@dataclass
class SpGEMMKernelStats:
    """Counters describing one local SpGEMM invocation.

    ``flops``             nontrivial scalar multiplications performed
    ``output_nnz``        stored entries of the result
    ``columns_heap``      columns processed by the heap accumulator
    ``columns_hash``      columns processed by the hash accumulator
    ``columns_dense``     columns processed by the dense accumulator
    ``compression_ratio`` flops / output_nnz (≥ 1; the paper's compression factor)

    The ``columns_*`` counters count only columns that perform work
    (``col_flops > 0``); columns of ``B`` that are empty, or whose
    participating columns of ``A`` are all empty, are routed to no
    accumulator.  The hybrid kernel and the literal kernels agree on this
    definition, so column-routing statistics are comparable across kernels
    even on very sparse inputs.
    """

    flops: int = 0
    output_nnz: int = 0
    columns_heap: int = 0
    columns_hash: int = 0
    columns_dense: int = 0

    @property
    def compression_ratio(self) -> float:
        if self.output_nnz == 0:
            return 1.0
        return self.flops / self.output_nnz

    def merge(self, other: "SpGEMMKernelStats") -> "SpGEMMKernelStats":
        return SpGEMMKernelStats(
            flops=self.flops + other.flops,
            output_nnz=self.output_nnz + other.output_nnz,
            columns_heap=self.columns_heap + other.columns_heap,
            columns_hash=self.columns_hash + other.columns_hash,
            columns_dense=self.columns_dense + other.columns_dense,
        )


# ----------------------------------------------------------------------
# Common helpers
# ----------------------------------------------------------------------

def _coerce_operands(A, B) -> Tuple[CSCMatrix, CSCMatrix]:
    """Validate shapes and promote both value arrays to the common dtype.

    Promoting up front (instead of inside the accumulators) keeps every
    variant's arithmetic in the same dtype, so e.g. float32×float64 products
    are bit-identical whether computed by the heap loop or the vectorised
    path.
    """
    A = as_csc(A)
    B = as_csc(B)
    if A.ncols != B.nrows:
        raise ValueError(f"inner dimensions do not match: {A.shape} x {B.shape}")
    dt = np.result_type(A.data.dtype, B.data.dtype)
    if A.data.dtype != dt:
        A = A.astype(dt)
    if B.data.dtype != dt:
        B = B.astype(dt)
    return A, B


def _gather_column_products(
    A: CSCMatrix, b_rows: np.ndarray, b_vals: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Expand Σ_k b_k · A(:, k) into (row_indices, values) triplet streams.

    Returns concatenated, *unmerged* contributions; the accumulator kernels
    differ only in how they merge duplicates.
    """
    if b_rows.size == 0:
        return (np.zeros(0, dtype=_INDEX_DTYPE), np.zeros(0, dtype=A.data.dtype))
    starts = A.indptr[b_rows]
    stops = A.indptr[b_rows + 1]
    lengths = (stops - starts).astype(_INDEX_DTYPE)
    total = int(lengths.sum())
    if total == 0:
        return (np.zeros(0, dtype=_INDEX_DTYPE), np.zeros(0, dtype=A.data.dtype))
    # Build a gather index covering all participating column segments at once.
    offsets = np.repeat(starts, lengths)
    within = np.arange(total, dtype=_INDEX_DTYPE)
    seg_start = np.repeat(np.cumsum(lengths) - lengths, lengths)
    gather = offsets + (within - seg_start)
    rows = A.indices[gather]
    scale = np.repeat(b_vals, lengths)
    vals = A.data[gather] * scale
    return rows, vals


def _assemble_columns(
    A: CSCMatrix,
    B: CSCMatrix,
    rows_per_col: List[np.ndarray],
    vals_per_col: List[np.ndarray],
    indptr: np.ndarray,
) -> CSCMatrix:
    indices = (
        np.concatenate(rows_per_col) if rows_per_col else np.zeros(0, dtype=_INDEX_DTYPE)
    )
    data = (
        np.concatenate(vals_per_col) if vals_per_col else np.zeros(0, dtype=A.data.dtype)
    )
    return CSCMatrix(
        nrows=A.nrows, ncols=B.ncols, indptr=indptr, indices=indices, data=data
    )


# ----------------------------------------------------------------------
# Pure-python reference accumulators (the semantic oracle)
# ----------------------------------------------------------------------

def _heap_merge_column(
    A: CSCMatrix, b_rows: np.ndarray, b_vals: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Merge the participating columns of A with an explicit binary heap.

    Each heap entry is ``(row, list_index, position)``; advancing an entry
    pushes the next element of that column.  This is the textbook k-way merge
    of the heap SpGEMM formulation and is kept deliberately literal — the
    vectorised/jitted kernels are the fast paths, this one is the reference.
    """
    heap: List[Tuple[int, int, int]] = []
    segments: List[Tuple[np.ndarray, np.ndarray, np.generic]] = []
    for t in range(b_rows.shape[0]):
        k = int(b_rows[t])
        lo, hi = int(A.indptr[k]), int(A.indptr[k + 1])
        if lo == hi:
            continue
        seg_rows = A.indices[lo:hi]
        seg_vals = A.data[lo:hi]
        # Keep the scale as a numpy scalar so the product stays in the
        # operands' common dtype (a python float would promote float32).
        segments.append((seg_rows, seg_vals, b_vals[t]))
        heapq.heappush(heap, (int(seg_rows[0]), len(segments) - 1, 0))

    out_rows: List[int] = []
    out_vals: List[np.generic] = []
    while heap:
        row, seg_id, pos = heapq.heappop(heap)
        seg_rows, seg_vals, scale = segments[seg_id]
        contribution = seg_vals[pos] * scale
        if out_rows and out_rows[-1] == row:
            out_vals[-1] = out_vals[-1] + contribution
        else:
            out_rows.append(row)
            out_vals.append(contribution)
        if pos + 1 < seg_rows.shape[0]:
            heapq.heappush(heap, (int(seg_rows[pos + 1]), seg_id, pos + 1))
    return (
        np.asarray(out_rows, dtype=_INDEX_DTYPE),
        np.asarray(out_vals, dtype=A.data.dtype),
    )


def _hash_accumulate_column(
    rows: np.ndarray, vals: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Accumulate duplicate rows with an open-addressing hash table.

    Table size is the next power of two ≥ 2·len(rows); multiply-shift hash.
    Mirrors the per-column hash table of the hash SpGEMM kernel.  The probe
    loop is per-entry Python — this is reference-path code by construction.
    """
    n = rows.shape[0]
    if n == 0:
        return rows, vals
    size = 1
    while size < 2 * n:
        size *= 2
    mask = size - 1
    table_rows = np.full(size, -1, dtype=_INDEX_DTYPE)
    table_vals = np.zeros(size, dtype=vals.dtype)
    for i in range(n):
        r = int(rows[i])
        v = vals[i]
        slot = (r * 2654435761) & mask
        while True:
            if table_rows[slot] == -1:
                table_rows[slot] = r
                table_vals[slot] = v
                break
            if table_rows[slot] == r:
                table_vals[slot] += v
                break
            slot = (slot + 1) & mask
    filled = table_rows != -1
    out_rows = table_rows[filled]
    out_vals = table_vals[filled]
    order = np.argsort(out_rows, kind="stable")
    return out_rows[order], out_vals[order]


def _dense_accumulate_column(
    accumulator: np.ndarray, rows: np.ndarray, vals: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """One column through the dense SPA; resets only the touched rows."""
    np.add.at(accumulator, rows, vals)
    touched = np.unique(rows)
    out_vals = accumulator[touched].copy()
    accumulator[touched] = 0
    return touched, out_vals


def _python_columns(
    A: CSCMatrix,
    B: CSCMatrix,
    accumulate: Callable[[int, np.ndarray, np.ndarray], Tuple[np.ndarray, np.ndarray]],
) -> CSCMatrix:
    """Drive a per-column reference accumulator over every column of B."""
    indptr = np.zeros(B.ncols + 1, dtype=_INDEX_DTYPE)
    rows_per_col: List[np.ndarray] = []
    vals_per_col: List[np.ndarray] = []
    for j in range(B.ncols):
        b_rows, b_vals = B.column(j)
        out_rows, out_vals = accumulate(j, b_rows, b_vals)
        rows_per_col.append(out_rows)
        vals_per_col.append(out_vals)
        indptr[j + 1] = indptr[j] + out_rows.shape[0]
    return _assemble_columns(A, B, rows_per_col, vals_per_col, indptr)


def _spgemm_python_heap(A: CSCMatrix, B: CSCMatrix) -> CSCMatrix:
    return _python_columns(A, B, lambda j, br, bv: _heap_merge_column(A, br, bv))


def _spgemm_python_hash(A: CSCMatrix, B: CSCMatrix) -> CSCMatrix:
    return _python_columns(
        A, B, lambda j, br, bv: _hash_accumulate_column(*_gather_column_products(A, br, bv))
    )


def _spgemm_python_dense(A: CSCMatrix, B: CSCMatrix) -> CSCMatrix:
    accumulator = np.zeros(A.nrows, dtype=A.data.dtype)

    def _one(j: int, b_rows: np.ndarray, b_vals: np.ndarray):
        rows, vals = _gather_column_products(A, b_rows, b_vals)
        if rows.size == 0:
            return rows, vals
        return _dense_accumulate_column(accumulator, rows, vals)

    return _python_columns(A, B, _one)


def _spgemm_python_hybrid(
    A: CSCMatrix,
    B: CSCMatrix,
    col_flops: np.ndarray,
    heap_flops_threshold: int,
    dense_density_threshold: float,
) -> CSCMatrix:
    """Literal hybrid: route each column to its chosen reference accumulator.

    The routing rule is exactly the one the stats pass records, and every
    accumulator produces bit-identical column results, so this oracle equals
    the fast paths entry-for-entry.
    """
    accumulator = np.zeros(A.nrows, dtype=A.data.dtype)
    nrows = max(1, A.nrows)

    def _one(j: int, b_rows: np.ndarray, b_vals: np.ndarray):
        flops = int(col_flops[j])
        if flops == 0:
            return (
                np.zeros(0, dtype=_INDEX_DTYPE),
                np.zeros(0, dtype=A.data.dtype),
            )
        if flops < heap_flops_threshold:
            return _heap_merge_column(A, b_rows, b_vals)
        rows, vals = _gather_column_products(A, b_rows, b_vals)
        if flops / nrows > dense_density_threshold:
            return _dense_accumulate_column(accumulator, rows, vals)
        return _hash_accumulate_column(rows, vals)

    return _python_columns(A, B, _one)


# ----------------------------------------------------------------------
# Fast paths: vectorised sort-and-reduce (numpy) and jitted SPA (numba)
# ----------------------------------------------------------------------

def _vectorised_spgemm(A: CSCMatrix, B: CSCMatrix) -> CSCMatrix:
    """Sort-and-reduce SpGEMM over all columns at once (the numpy variant).

    The stable lexsort + in-order reduction accumulates each output entry's
    contributions in segment order, hence bit-identical results to the
    per-column references.
    """
    if B.nnz == 0 or A.nnz == 0:
        return CSCMatrix.empty(A.nrows, B.ncols, dtype=np.result_type(A.dtype, B.dtype))
    b_cols = np.repeat(np.arange(B.ncols, dtype=_INDEX_DTYPE), np.diff(B.indptr))
    b_rows = B.indices
    b_vals = B.data
    starts = A.indptr[b_rows]
    stops = A.indptr[b_rows + 1]
    lengths = (stops - starts).astype(_INDEX_DTYPE)
    total = int(lengths.sum())
    if total == 0:
        return CSCMatrix.empty(A.nrows, B.ncols, dtype=np.result_type(A.dtype, B.dtype))
    offsets = np.repeat(starts, lengths)
    within = np.arange(total, dtype=_INDEX_DTYPE)
    seg_start = np.repeat(np.cumsum(lengths) - lengths, lengths)
    gather = offsets + (within - seg_start)
    out_rows = A.indices[gather]
    out_cols = np.repeat(b_cols, lengths)
    out_vals = A.data[gather] * np.repeat(b_vals, lengths)
    # Inlined from_coo(sum_duplicates=True): same stable lexsort, same
    # in-order np.add.at accumulation, minus the validation passes — the
    # result is bit-identical but the per-call overhead matters when a 2D/3D
    # driver multiplies tens of thousands of tiny blocks.
    order = np.lexsort((out_rows, out_cols))
    rows = out_rows[order]
    cols = out_cols[order]
    vals = out_vals[order]
    new_run = np.empty(rows.shape[0], dtype=bool)
    new_run[0] = True
    new_run[1:] = (rows[1:] != rows[:-1]) | (cols[1:] != cols[:-1])
    group_ids = np.cumsum(new_run) - 1
    unique_rows = rows[new_run]
    summed = np.zeros(unique_rows.shape[0], dtype=vals.dtype)
    np.add.at(summed, group_ids, vals)
    indptr = np.zeros(B.ncols + 1, dtype=_INDEX_DTYPE)
    indptr[1:] = np.cumsum(np.bincount(cols[new_run], minlength=B.ncols))
    return build_csc_unchecked(A.nrows, B.ncols, indptr, unique_rows, summed)


def _spgemm_fast(A: CSCMatrix, B: CSCMatrix, variant: str) -> CSCMatrix:
    if variant == "numba":
        from ._numba_kernels import spgemm_numba

        return spgemm_numba(A, B)
    return _vectorised_spgemm(A, B)


# ----------------------------------------------------------------------
# Public kernels: name = routing counters, variant = execution strategy
# ----------------------------------------------------------------------

def _account(
    stats: Optional[SpGEMMKernelStats],
    A: CSCMatrix,
    B: CSCMatrix,
    result: CSCMatrix,
    which: str,
) -> None:
    if stats is None:
        # The flops pass is pure counter bookkeeping — only pay for it when
        # someone is actually collecting stats.
        return
    col_flops = per_column_flops(A, B)
    stats.flops += int(col_flops.sum())
    stats.output_nnz += result.nnz
    active = int(np.count_nonzero(col_flops > 0))
    if which == "heap":
        stats.columns_heap += active
    elif which == "hash":
        stats.columns_hash += active
    else:
        stats.columns_dense += active


def spgemm_heap(
    A, B, *, stats: Optional[SpGEMMKernelStats] = None, variant: Optional[str] = None
) -> CSCMatrix:
    """Heap-based (k-way merge) local SpGEMM: exact column-by-column merge."""
    A, B = _coerce_operands(A, B)
    v = resolve_kernel_variant(variant)
    result = _spgemm_python_heap(A, B) if v == "python" else _spgemm_fast(A, B, v)
    _account(stats, A, B, result, "heap")
    return result


def spgemm_hash(
    A, B, *, stats: Optional[SpGEMMKernelStats] = None, variant: Optional[str] = None
) -> CSCMatrix:
    """Hash-based local SpGEMM: per-column open-addressing accumulation."""
    A, B = _coerce_operands(A, B)
    v = resolve_kernel_variant(variant)
    result = _spgemm_python_hash(A, B) if v == "python" else _spgemm_fast(A, B, v)
    _account(stats, A, B, result, "hash")
    return result


def spgemm_dense_accumulator(
    A, B, *, stats: Optional[SpGEMMKernelStats] = None, variant: Optional[str] = None
) -> CSCMatrix:
    """Dense-accumulator local SpGEMM (classical Gustavson SPA, column form)."""
    A, B = _coerce_operands(A, B)
    v = resolve_kernel_variant(variant)
    result = _spgemm_python_dense(A, B) if v == "python" else _spgemm_fast(A, B, v)
    _account(stats, A, B, result, "dense")
    return result


def spgemm_hybrid(
    A,
    B,
    *,
    stats: Optional[SpGEMMKernelStats] = None,
    heap_flops_threshold: int = 64,
    dense_density_threshold: float = 0.25,
    reference_columns: int = 0,
    variant: Optional[str] = None,
) -> CSCMatrix:
    """Hybrid local SpGEMM: per-column accumulator selection.

    Columns whose flops are below ``heap_flops_threshold`` are routed to the
    heap accumulator, columns whose estimated output density exceeds
    ``dense_density_threshold`` to the dense accumulator, and the rest to the
    hash accumulator — the same decision structure as the CombBLAS hybrid
    kernel the paper uses.  Under the ``python`` variant each column really
    runs through its chosen literal accumulator; the fast variants perform
    the numeric work in one algebraically identical pass (the routing then
    only feeds the stats counters, which are identical either way).  The
    first ``reference_columns`` columns can additionally be cross-checked
    against the literal heap kernel (used by tests to pin the equivalence).
    """
    A, B = _coerce_operands(A, B)
    v = resolve_kernel_variant(variant)
    col_flops = (
        per_column_flops(A, B) if (stats is not None or v == "python") else None
    )

    if stats is not None:
        # Route only columns that do work (col_flops > 0) so the hybrid
        # routing statistics agree with the literal kernels on sparse inputs.
        active = int(np.count_nonzero(col_flops > 0))
        heap_cols = int(np.count_nonzero((col_flops > 0) & (col_flops < heap_flops_threshold)))
        est_density = col_flops / max(1, A.nrows)
        dense_cols = int(
            np.count_nonzero(
                (col_flops >= heap_flops_threshold)
                & (est_density > dense_density_threshold)
            )
        )
        hash_cols = active - heap_cols - dense_cols
        stats.columns_heap += heap_cols
        stats.columns_dense += dense_cols
        stats.columns_hash += hash_cols
        stats.flops += int(col_flops.sum())

    if v == "python":
        result = _spgemm_python_hybrid(
            A, B, col_flops, heap_flops_threshold, dense_density_threshold
        )
    else:
        result = _spgemm_fast(A, B, v)
        if reference_columns > 0:
            # Cross-check path: run the literal kernels on a prefix of columns.
            ref = min(reference_columns, B.ncols)
            ref_result = _spgemm_python_heap(A, B.extract_column_range(0, ref))
            if not np.allclose(
                ref_result.to_dense(), result.to_dense()[:, :ref], rtol=1e-9, atol=1e-12
            ):  # pragma: no cover - defensive, exercised in tests via public API
                raise AssertionError("hybrid fast path diverged from reference heap kernel")

    if stats is not None:
        stats.output_nnz += result.nnz
    return result


KERNELS: Dict[str, Callable[..., CSCMatrix]] = {
    "heap": spgemm_heap,
    "hash": spgemm_hash,
    "dense": spgemm_dense_accumulator,
    "hybrid": spgemm_hybrid,
}


def local_spgemm(
    A,
    B,
    *,
    kernel: str = "hybrid",
    stats: Optional[SpGEMMKernelStats] = None,
    **kwargs,
) -> CSCMatrix:
    """Multiply two local sparse matrices with the selected kernel.

    Parameters
    ----------
    A, B:
        CSC/DCSC/scipy/dense inputs with compatible inner dimensions.
    kernel:
        One of ``"heap"``, ``"hash"``, ``"dense"``, ``"hybrid"`` (default).
    stats:
        Optional :class:`SpGEMMKernelStats` accumulated in place.
    kwargs:
        Forwarded to the kernel; every kernel accepts ``variant`` to
        override the process-wide ``REPRO_KERNEL`` selection for one call.
    """
    if kernel not in KERNELS:
        raise ValueError(f"unknown kernel {kernel!r}; expected one of {sorted(KERNELS)}")
    return KERNELS[kernel](A, B, stats=stats, **kwargs)

"""Local (single-process) SpGEMM kernels.

The paper's local computation uses "a hybrid version of Heap-based SpGEMM
[Azad et al. 2016] and Hash-based SpGEMM [Nagasaka et al. 2019]" operating
column-by-column: column ``j`` of ``C`` is the linear combination of the
columns of ``A`` selected by the nonzero rows of ``B(:, j)``,

    C(:, j) = Σ_{k : B[k,j] != 0}  B[k, j] · A(:, k).

Four kernels are provided, all producing identical results:

``heap``
    A k-way merge of the participating columns of ``A`` using a binary heap,
    as in Azad et al. (2016).  Work is O(flops · log(k_j)) per column where
    ``k_j`` is the number of participating columns.  Output comes out sorted
    for free.  Best when rows of ``B`` columns are few ("tall-skinny" B, the
    AMG restriction case).

``hash``
    A per-column hash accumulator (open addressing over a power-of-two
    table), as in Nagasaka et al. (2019).  O(flops) expected work; output
    rows must be sorted afterwards.  Best for heavier columns.

``dense``
    A dense accumulator ("SPA") of length ``m`` reused across columns.
    O(flops + touched rows) per column, best when ``m`` is small relative to
    flops (the compacted-Ã local multiplies of Algorithm 1).

``hybrid`` (default)
    The paper's strategy: choose heap or hash per column from the column's
    flops and compression ratio (cheap columns → heap, heavy columns → hash),
    with the dense accumulator taking over when the estimated density of the
    output column is high.

All kernels are implemented with numpy-vectorised inner loops where that does
not change the algorithmic structure being reproduced (guides in
``/opt/skills/guides/python/hpc-parallel`` — vectorise the inner loops, avoid
needless copies).  The *semantics* (which column does how many flops, which
accumulator is selected) match the cited algorithms.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from .csc import CSCMatrix
from .conversion import as_csc
from .flops import per_column_flops

__all__ = [
    "SpGEMMKernelStats",
    "local_spgemm",
    "spgemm_heap",
    "spgemm_hash",
    "spgemm_dense_accumulator",
    "spgemm_hybrid",
    "KERNELS",
]

_INDEX_DTYPE = np.int64


@dataclass
class SpGEMMKernelStats:
    """Counters describing one local SpGEMM invocation.

    ``flops``             nontrivial scalar multiplications performed
    ``output_nnz``        stored entries of the result
    ``columns_heap``      columns processed by the heap accumulator
    ``columns_hash``      columns processed by the hash accumulator
    ``columns_dense``     columns processed by the dense accumulator
    ``compression_ratio`` flops / output_nnz (≥ 1; the paper's compression factor)

    The ``columns_*`` counters count only columns that perform work
    (``col_flops > 0``); columns of ``B`` that are empty, or whose
    participating columns of ``A`` are all empty, are routed to no
    accumulator.  The hybrid kernel and the literal kernels agree on this
    definition, so column-routing statistics are comparable across kernels
    even on very sparse inputs.
    """

    flops: int = 0
    output_nnz: int = 0
    columns_heap: int = 0
    columns_hash: int = 0
    columns_dense: int = 0

    @property
    def compression_ratio(self) -> float:
        if self.output_nnz == 0:
            return 1.0
        return self.flops / self.output_nnz

    def merge(self, other: "SpGEMMKernelStats") -> "SpGEMMKernelStats":
        return SpGEMMKernelStats(
            flops=self.flops + other.flops,
            output_nnz=self.output_nnz + other.output_nnz,
            columns_heap=self.columns_heap + other.columns_heap,
            columns_hash=self.columns_hash + other.columns_hash,
            columns_dense=self.columns_dense + other.columns_dense,
        )


# ----------------------------------------------------------------------
# Column gather common to all kernels
# ----------------------------------------------------------------------

def _gather_column_products(
    A: CSCMatrix, b_rows: np.ndarray, b_vals: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Expand Σ_k b_k · A(:, k) into (row_indices, values) triplet streams.

    Returns concatenated, *unmerged* contributions; the accumulator kernels
    differ only in how they merge duplicates.
    """
    if b_rows.size == 0:
        return (np.zeros(0, dtype=_INDEX_DTYPE), np.zeros(0, dtype=A.data.dtype))
    starts = A.indptr[b_rows]
    stops = A.indptr[b_rows + 1]
    lengths = (stops - starts).astype(_INDEX_DTYPE)
    total = int(lengths.sum())
    if total == 0:
        return (np.zeros(0, dtype=_INDEX_DTYPE), np.zeros(0, dtype=A.data.dtype))
    # Build a gather index covering all participating column segments at once.
    offsets = np.repeat(starts, lengths)
    within = np.arange(total, dtype=_INDEX_DTYPE)
    seg_start = np.repeat(np.cumsum(lengths) - lengths, lengths)
    gather = offsets + (within - seg_start)
    rows = A.indices[gather]
    scale = np.repeat(b_vals, lengths)
    vals = A.data[gather] * scale
    return rows, vals


# ----------------------------------------------------------------------
# Heap-based accumulator (Azad et al. 2016)
# ----------------------------------------------------------------------

def _heap_merge_column(
    A: CSCMatrix, b_rows: np.ndarray, b_vals: np.ndarray
) -> Tuple[List[int], List[float]]:
    """Merge the participating columns of A with an explicit binary heap.

    Each heap entry is ``(row, list_index, position)``; advancing an entry
    pushes the next element of that column.  This is the textbook k-way merge
    of the heap SpGEMM formulation and is kept deliberately literal — the
    vectorised kernels are the fast path, this one is the reference path.
    """
    heap: List[Tuple[int, int, int]] = []
    segments: List[Tuple[np.ndarray, np.ndarray, float]] = []
    for t in range(b_rows.shape[0]):
        k = int(b_rows[t])
        lo, hi = int(A.indptr[k]), int(A.indptr[k + 1])
        if lo == hi:
            continue
        seg_rows = A.indices[lo:hi]
        seg_vals = A.data[lo:hi]
        segments.append((seg_rows, seg_vals, float(b_vals[t])))
        heapq.heappush(heap, (int(seg_rows[0]), len(segments) - 1, 0))

    out_rows: List[int] = []
    out_vals: List[float] = []
    while heap:
        row, seg_id, pos = heapq.heappop(heap)
        seg_rows, seg_vals, scale = segments[seg_id]
        contribution = seg_vals[pos] * scale
        if out_rows and out_rows[-1] == row:
            out_vals[-1] += contribution
        else:
            out_rows.append(row)
            out_vals.append(contribution)
        if pos + 1 < seg_rows.shape[0]:
            heapq.heappush(heap, (int(seg_rows[pos + 1]), seg_id, pos + 1))
    return out_rows, out_vals


def spgemm_heap(A, B, *, stats: Optional[SpGEMMKernelStats] = None) -> CSCMatrix:
    """Heap-based (k-way merge) local SpGEMM: exact column-by-column merge."""
    A = as_csc(A)
    B = as_csc(B)
    if A.ncols != B.nrows:
        raise ValueError(f"inner dimensions do not match: {A.shape} x {B.shape}")
    indptr = np.zeros(B.ncols + 1, dtype=_INDEX_DTYPE)
    rows_per_col: List[np.ndarray] = []
    vals_per_col: List[np.ndarray] = []
    for j in range(B.ncols):
        b_rows, b_vals = B.column(j)
        out_rows, out_vals = _heap_merge_column(A, b_rows, b_vals)
        rows_per_col.append(np.asarray(out_rows, dtype=_INDEX_DTYPE))
        vals_per_col.append(np.asarray(out_vals, dtype=A.data.dtype))
        indptr[j + 1] = indptr[j] + len(out_rows)
    indices = (
        np.concatenate(rows_per_col) if rows_per_col else np.zeros(0, dtype=_INDEX_DTYPE)
    )
    data = (
        np.concatenate(vals_per_col) if vals_per_col else np.zeros(0, dtype=A.data.dtype)
    )
    result = CSCMatrix(nrows=A.nrows, ncols=B.ncols, indptr=indptr, indices=indices, data=data)
    if stats is not None:
        # The flops pass is pure counter bookkeeping on this path — only pay
        # for it when someone is actually collecting stats.
        col_flops = per_column_flops(A, B)
        stats.flops += int(col_flops.sum())
        stats.output_nnz += result.nnz
        stats.columns_heap += int(np.count_nonzero(col_flops > 0))
    return result


# ----------------------------------------------------------------------
# Hash-based accumulator (Nagasaka et al. 2019)
# ----------------------------------------------------------------------

def _hash_accumulate_column(
    rows: np.ndarray, vals: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Accumulate duplicate rows with an open-addressing hash table.

    Table size is the next power of two ≥ 2·len(rows); multiply-shift hash.
    Mirrors the per-column hash table of the hash SpGEMM kernel.  The probe
    loop is per-entry Python, so this path is the reference implementation;
    the vectorised equivalent used by the fast paths is a sort+reduce.
    """
    n = rows.shape[0]
    if n == 0:
        return rows, vals
    size = 1
    while size < 2 * n:
        size *= 2
    mask = size - 1
    table_rows = np.full(size, -1, dtype=_INDEX_DTYPE)
    table_vals = np.zeros(size, dtype=vals.dtype)
    for i in range(n):
        r = int(rows[i])
        v = vals[i]
        slot = (r * 2654435761) & mask
        while True:
            if table_rows[slot] == -1:
                table_rows[slot] = r
                table_vals[slot] = v
                break
            if table_rows[slot] == r:
                table_vals[slot] += v
                break
            slot = (slot + 1) & mask
    filled = table_rows != -1
    out_rows = table_rows[filled]
    out_vals = table_vals[filled]
    order = np.argsort(out_rows, kind="stable")
    return out_rows[order], out_vals[order]


def spgemm_hash(A, B, *, stats: Optional[SpGEMMKernelStats] = None) -> CSCMatrix:
    """Hash-based local SpGEMM: per-column open-addressing accumulation."""
    A = as_csc(A)
    B = as_csc(B)
    if A.ncols != B.nrows:
        raise ValueError(f"inner dimensions do not match: {A.shape} x {B.shape}")
    indptr = np.zeros(B.ncols + 1, dtype=_INDEX_DTYPE)
    rows_per_col: List[np.ndarray] = []
    vals_per_col: List[np.ndarray] = []
    for j in range(B.ncols):
        b_rows, b_vals = B.column(j)
        rows, vals = _gather_column_products(A, b_rows, b_vals)
        out_rows, out_vals = _hash_accumulate_column(rows, vals)
        rows_per_col.append(out_rows)
        vals_per_col.append(out_vals)
        indptr[j + 1] = indptr[j] + out_rows.shape[0]
    indices = (
        np.concatenate(rows_per_col) if rows_per_col else np.zeros(0, dtype=_INDEX_DTYPE)
    )
    data = (
        np.concatenate(vals_per_col) if vals_per_col else np.zeros(0, dtype=A.data.dtype)
    )
    result = CSCMatrix(nrows=A.nrows, ncols=B.ncols, indptr=indptr, indices=indices, data=data)
    if stats is not None:
        # Lazy flops pass: only counter bookkeeping needs it on this path.
        col_flops = per_column_flops(A, B)
        stats.flops += int(col_flops.sum())
        stats.output_nnz += result.nnz
        stats.columns_hash += int(np.count_nonzero(col_flops > 0))
    return result


# ----------------------------------------------------------------------
# Dense accumulator (SPA)
# ----------------------------------------------------------------------

def spgemm_dense_accumulator(
    A, B, *, stats: Optional[SpGEMMKernelStats] = None
) -> CSCMatrix:
    """Dense-accumulator local SpGEMM (classical Gustavson SPA, column form)."""
    A = as_csc(A)
    B = as_csc(B)
    if A.ncols != B.nrows:
        raise ValueError(f"inner dimensions do not match: {A.shape} x {B.shape}")
    accumulator = np.zeros(A.nrows, dtype=np.result_type(A.data.dtype, B.data.dtype))
    indptr = np.zeros(B.ncols + 1, dtype=_INDEX_DTYPE)
    rows_per_col: List[np.ndarray] = []
    vals_per_col: List[np.ndarray] = []
    for j in range(B.ncols):
        b_rows, b_vals = B.column(j)
        rows, vals = _gather_column_products(A, b_rows, b_vals)
        if rows.size == 0:
            rows_per_col.append(np.zeros(0, dtype=_INDEX_DTYPE))
            vals_per_col.append(np.zeros(0, dtype=accumulator.dtype))
            indptr[j + 1] = indptr[j]
            continue
        np.add.at(accumulator, rows, vals)
        touched = np.unique(rows)
        out_vals = accumulator[touched]
        accumulator[touched] = 0  # reset only touched rows, not the whole SPA
        rows_per_col.append(touched)
        vals_per_col.append(out_vals.copy())
        indptr[j + 1] = indptr[j] + touched.shape[0]
    indices = (
        np.concatenate(rows_per_col) if rows_per_col else np.zeros(0, dtype=_INDEX_DTYPE)
    )
    data = (
        np.concatenate(vals_per_col)
        if vals_per_col
        else np.zeros(0, dtype=accumulator.dtype)
    )
    result = CSCMatrix(nrows=A.nrows, ncols=B.ncols, indptr=indptr, indices=indices, data=data)
    if stats is not None:
        # Lazy flops pass: only counter bookkeeping needs it on this path.
        col_flops = per_column_flops(A, B)
        stats.flops += int(col_flops.sum())
        stats.output_nnz += result.nnz
        stats.columns_dense += int(np.count_nonzero(col_flops > 0))
    return result


# ----------------------------------------------------------------------
# Hybrid kernel (the paper's default) and the fast vectorised path
# ----------------------------------------------------------------------

def _vectorised_spgemm(A: CSCMatrix, B: CSCMatrix) -> CSCMatrix:
    """Sort-and-reduce SpGEMM over all columns at once (the fast path).

    Produces exactly the same result as the per-column kernels; used by the
    hybrid kernel for the bulk of the columns so that laptop-scale benchmark
    runs finish in seconds.
    """
    if B.nnz == 0 or A.nnz == 0:
        return CSCMatrix.empty(A.nrows, B.ncols, dtype=np.result_type(A.dtype, B.dtype))
    b_cols = np.repeat(np.arange(B.ncols, dtype=_INDEX_DTYPE), np.diff(B.indptr))
    b_rows = B.indices
    b_vals = B.data
    starts = A.indptr[b_rows]
    stops = A.indptr[b_rows + 1]
    lengths = (stops - starts).astype(_INDEX_DTYPE)
    total = int(lengths.sum())
    if total == 0:
        return CSCMatrix.empty(A.nrows, B.ncols, dtype=np.result_type(A.dtype, B.dtype))
    offsets = np.repeat(starts, lengths)
    within = np.arange(total, dtype=_INDEX_DTYPE)
    seg_start = np.repeat(np.cumsum(lengths) - lengths, lengths)
    gather = offsets + (within - seg_start)
    out_rows = A.indices[gather]
    out_cols = np.repeat(b_cols, lengths)
    out_vals = A.data[gather] * np.repeat(b_vals, lengths)
    return CSCMatrix.from_coo(
        A.nrows, B.ncols, out_rows, out_cols, out_vals, sum_duplicates=True
    )


def spgemm_hybrid(
    A,
    B,
    *,
    stats: Optional[SpGEMMKernelStats] = None,
    heap_flops_threshold: int = 64,
    dense_density_threshold: float = 0.25,
    reference_columns: int = 0,
) -> CSCMatrix:
    """Hybrid local SpGEMM: per-column accumulator selection.

    Columns whose flops are below ``heap_flops_threshold`` are (logically)
    routed to the heap accumulator, columns whose estimated output density
    exceeds ``dense_density_threshold`` to the dense accumulator, and the rest
    to the hash accumulator — the same decision structure as the CombBLAS
    hybrid kernel the paper uses.  For speed the numeric work is performed by
    a vectorised sort-and-reduce which is algebraically identical; the first
    ``reference_columns`` columns can be forced through the literal
    accumulator implementations (used by tests to pin the equivalence).
    """
    A = as_csc(A)
    B = as_csc(B)
    if A.ncols != B.nrows:
        raise ValueError(f"inner dimensions do not match: {A.shape} x {B.shape}")
    col_flops = per_column_flops(A, B)

    if stats is not None:
        # Route only columns that do work (col_flops > 0) so the hybrid
        # routing statistics agree with the literal kernels on sparse inputs.
        active = int(np.count_nonzero(col_flops > 0))
        heap_cols = int(np.count_nonzero((col_flops > 0) & (col_flops < heap_flops_threshold)))
        est_density = col_flops / max(1, A.nrows)
        dense_cols = int(
            np.count_nonzero(
                (col_flops >= heap_flops_threshold)
                & (est_density > dense_density_threshold)
            )
        )
        hash_cols = active - heap_cols - dense_cols
        stats.columns_heap += heap_cols
        stats.columns_dense += dense_cols
        stats.columns_hash += hash_cols
        stats.flops += int(col_flops.sum())

    if reference_columns > 0:
        # Cross-check path: run the literal kernels on a prefix of columns.
        ref = min(reference_columns, B.ncols)
        ref_result = spgemm_heap(A, B.extract_column_range(0, ref))
        fast_result = _vectorised_spgemm(A, B)
        if not np.allclose(
            ref_result.to_dense(), fast_result.to_dense()[:, :ref], rtol=1e-9, atol=1e-12
        ):  # pragma: no cover - defensive, exercised in tests via public API
            raise AssertionError("hybrid fast path diverged from reference heap kernel")
        result = fast_result
    else:
        result = _vectorised_spgemm(A, B)

    if stats is not None:
        stats.output_nnz += result.nnz
    return result


KERNELS: Dict[str, Callable[..., CSCMatrix]] = {
    "heap": spgemm_heap,
    "hash": spgemm_hash,
    "dense": spgemm_dense_accumulator,
    "hybrid": spgemm_hybrid,
}


def local_spgemm(
    A,
    B,
    *,
    kernel: str = "hybrid",
    stats: Optional[SpGEMMKernelStats] = None,
    **kwargs,
) -> CSCMatrix:
    """Multiply two local sparse matrices with the selected kernel.

    Parameters
    ----------
    A, B:
        CSC/DCSC/scipy/dense inputs with compatible inner dimensions.
    kernel:
        One of ``"heap"``, ``"hash"``, ``"dense"``, ``"hybrid"`` (default).
    stats:
        Optional :class:`SpGEMMKernelStats` accumulated in place.
    """
    if kernel not in KERNELS:
        raise ValueError(f"unknown kernel {kernel!r}; expected one of {sorted(KERNELS)}")
    return KERNELS[kernel](A, B, stats=stats, **kwargs)

"""Deterministic fault injection for the crash-safety harness.

Crash recovery is only testable if crashes happen at *chosen, repeatable*
points.  This module defines a small set of **named fault points** wired
into the scheduler, the pool workers, the job journal and the shm dataset
transport — harness code, not test-only: the CI chaos job, the recovery
test suite and the chaos bench all drive the same machinery.

A :class:`FaultPlan` maps fault points to the hit number(s) on which they
fire.  Plans come from the ``REPRO_FAULT_PLAN`` environment variable
(comma-separated ``point:N`` terms, see :meth:`FaultPlan.from_string`) or
are installed programmatically with :func:`install_fault_plan`.  Hit
counting is per-process by default; pointing ``REPRO_FAULT_STATE`` at a
file makes the counters **shared and persistent** — forked pool workers
and restarted services then agree on the global hit sequence, so a fault
that fired before a crash does not fire again during recovery.  That
persistence is what makes "crash exactly once, then recover" expressible.

Fault points and their actions:

``kill-before-dispatch``
    ``os._exit`` the scheduler process just before a task is handed to a
    lane (the closest in-process analogue of ``kill -9``: no ``atexit``
    handlers, no finalizers, no flushes).
``kill-after-execute-before-persist``
    ``os._exit`` the scheduler process after a task executed but before
    its record is appended to the store.
``hang-in-kernel``
    Sleep for the spec's ``seconds`` at the top of config execution,
    standing in for a hung local kernel (drives the worker timeout/retry
    policy).
``torn-journal-write``
    Truncate a journal append to half its bytes, then ``os._exit`` — a
    crash mid-``write(2)``.  Exercises the journal's truncate-and-replay.
``publish-failure``
    Raise :class:`FaultInjected` inside the shm dataset transport's
    ``publish`` (the scheduler must degrade to the disk-cache path).

Every helper below is a no-op (one dict lookup) when no plan is active,
so production paths pay nothing.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

__all__ = [
    "FAULT_PLAN_ENV",
    "FAULT_STATE_ENV",
    "FAULT_POINTS",
    "CRASH_EXIT_CODE",
    "FaultInjected",
    "FaultSpec",
    "FaultPlan",
    "active_fault_plan",
    "install_fault_plan",
    "reset_fault_plan",
    "fault_point",
    "crash_point",
    "hang_point",
    "raise_point",
    "torn_write_point",
]

#: comma-separated fault terms, e.g. ``kill-before-dispatch:2,hang-in-kernel:1@5``
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"
#: optional JSON file sharing hit counters across processes and restarts
FAULT_STATE_ENV = "REPRO_FAULT_STATE"

#: the named fault points and the action each one implies
FAULT_POINTS: Dict[str, str] = {
    "kill-before-dispatch": "crash",
    "kill-after-execute-before-persist": "crash",
    "hang-in-kernel": "hang",
    "torn-journal-write": "torn-write",
    "publish-failure": "raise",
}

#: exit code of an injected crash (distinguishable from real failures)
CRASH_EXIT_CODE = 70

#: hang duration when a spec does not name one (long enough that any
#: sensible task timeout trips first)
DEFAULT_HANG_SECONDS = 30.0


class FaultInjected(RuntimeError):
    """An injected fault fired at ``point`` (the ``raise`` action)."""

    def __init__(self, point: str):
        super().__init__(f"injected fault at {point!r}")
        self.point = point


@dataclass(frozen=True)
class FaultSpec:
    """One fault term: fire at ``point`` on hits ``first..last`` inclusive."""

    point: str
    first: int = 1
    last: int = 1
    #: hang duration (``hang`` action only)
    seconds: float = DEFAULT_HANG_SECONDS

    def covers(self, hit: int) -> bool:
        return self.first <= hit <= self.last

    @classmethod
    def parse(cls, term: str) -> "FaultSpec":
        """Parse one term: ``point``, ``point:N``, ``point:N-M``, with an
        optional ``@SECONDS`` suffix (hang duration)."""
        term = term.strip()
        seconds = DEFAULT_HANG_SECONDS
        if "@" in term:
            term, _, raw = term.partition("@")
            seconds = float(raw)
        point, _, hits = term.partition(":")
        point = point.strip()
        if point not in FAULT_POINTS:
            raise ValueError(
                f"unknown fault point {point!r}; valid points: "
                f"{', '.join(sorted(FAULT_POINTS))}"
            )
        first = last = 1
        hits = hits.strip()
        if hits:
            if "-" in hits:
                lo, _, hi = hits.partition("-")
                first, last = int(lo), int(hi)
            else:
                first = last = int(hits)
        if first < 1 or last < first:
            raise ValueError(f"bad hit range {hits!r} in fault term {term!r}")
        return cls(point=point, first=first, last=last, seconds=seconds)


class FaultPlan:
    """A set of :class:`FaultSpec` terms plus deterministic hit counters.

    ``state_file`` (or ``REPRO_FAULT_STATE``) makes the counters shared:
    every increment is a read-modify-write under an ``fcntl`` lock on the
    file, so forked workers and restarted processes observe one global
    hit sequence.  Without it, counters are private to the process.
    """

    def __init__(self, specs, state_file: Optional[Union[str, Path]] = None):
        self._specs: Dict[str, FaultSpec] = {}
        for spec in specs:
            if spec.point in self._specs:
                raise ValueError(f"duplicate fault term for {spec.point!r}")
            self._specs[spec.point] = spec
        self.state_file = Path(state_file) if state_file is not None else None
        self._lock = threading.Lock()
        self._local_counts: Dict[str, int] = {}

    @classmethod
    def from_string(
        cls, text: str, state_file: Optional[Union[str, Path]] = None
    ) -> "FaultPlan":
        terms = [t for t in text.split(",") if t.strip()]
        return cls([FaultSpec.parse(t) for t in terms], state_file=state_file)

    @classmethod
    def from_env(cls) -> Optional["FaultPlan"]:
        text = os.environ.get(FAULT_PLAN_ENV, "").strip()
        if not text:
            return None
        return cls.from_string(text, state_file=os.environ.get(FAULT_STATE_ENV) or None)

    def spec(self, point: str) -> Optional[FaultSpec]:
        return self._specs.get(point)

    def hit(self, point: str) -> Optional[FaultSpec]:
        """Record one hit of ``point``; return the spec iff it fires now."""
        spec = self._specs.get(point)
        if spec is None:
            return None
        count = self._increment(point)
        return spec if spec.covers(count) else None

    def counts(self) -> Dict[str, int]:
        """Current hit counters (shared ones read from the state file)."""
        if self.state_file is not None:
            return self._read_state()
        with self._lock:
            return dict(self._local_counts)

    # ------------------------------------------------------------------
    def _increment(self, point: str) -> int:
        if self.state_file is None:
            with self._lock:
                self._local_counts[point] = self._local_counts.get(point, 0) + 1
                return self._local_counts[point]
        return self._increment_shared(point)

    def _increment_shared(self, point: str) -> int:
        import fcntl

        self.state_file.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(str(self.state_file), os.O_RDWR | os.O_CREAT, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            raw = os.read(fd, 1 << 20)
            try:
                counts = json.loads(raw) if raw.strip() else {}
            except ValueError:
                counts = {}
            counts[point] = int(counts.get(point, 0)) + 1
            payload = json.dumps(counts, sort_keys=True).encode("utf-8")
            os.lseek(fd, 0, os.SEEK_SET)
            os.truncate(fd, 0)
            os.write(fd, payload)
            os.fsync(fd)
            return counts[point]
        finally:
            os.close(fd)        # releases the flock

    def _read_state(self) -> Dict[str, int]:
        try:
            raw = self.state_file.read_text(encoding="utf-8")
        except OSError:
            return {}
        try:
            return {k: int(v) for k, v in json.loads(raw).items()}
        except ValueError:
            return {}


# ----------------------------------------------------------------------
# Process-wide active plan
# ----------------------------------------------------------------------

_UNRESOLVED = object()
_active_plan = _UNRESOLVED


def active_fault_plan() -> Optional[FaultPlan]:
    """The installed plan, resolved lazily from the environment once.

    Fork workers inherit the parent's resolved plan (and, with a state
    file, its shared counters) by memory copy.
    """
    global _active_plan
    if _active_plan is _UNRESOLVED:
        _active_plan = FaultPlan.from_env()
    return _active_plan


def install_fault_plan(plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
    """Install ``plan`` process-wide; returns the previously active plan."""
    global _active_plan
    previous = _active_plan
    _active_plan = plan
    return None if previous is _UNRESOLVED else previous


def reset_fault_plan() -> None:
    """Forget the resolved plan so the next use re-reads the environment."""
    global _active_plan
    _active_plan = _UNRESOLVED


# ----------------------------------------------------------------------
# Site helpers (all no-ops without an active plan)
# ----------------------------------------------------------------------

def fault_point(name: str) -> Optional[FaultSpec]:
    """Record a hit of fault point ``name``; the fired spec, or ``None``."""
    plan = active_fault_plan()
    if plan is None:
        return None
    return plan.hit(name)


def _crash() -> None:  # monkeypatch seam for in-process tests
    os._exit(CRASH_EXIT_CODE)


def crash_point(name: str) -> None:
    """``os._exit`` the process if ``name`` fires (simulated ``kill -9``)."""
    if fault_point(name) is not None:
        _crash()


def hang_point(name: str) -> None:
    """Sleep for the spec's duration if ``name`` fires (simulated hang)."""
    spec = fault_point(name)
    if spec is not None:
        time.sleep(spec.seconds)


def raise_point(name: str) -> None:
    """Raise :class:`FaultInjected` if ``name`` fires."""
    if fault_point(name) is not None:
        raise FaultInjected(name)


def torn_write_point(name: str, payload: bytes) -> Tuple[bytes, bool]:
    """Return ``(payload, fired)``; when fired, the payload is truncated to
    half its bytes and the caller must crash after writing it (a torn
    write only exists because the writer died mid-append)."""
    if fault_point(name) is None:
        return payload, False
    return payload[: max(1, len(payload) // 2)], True

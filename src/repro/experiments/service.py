"""The long-lived experiment service behind ``repro serve``.

A sweep through :func:`~repro.experiments.run_grid` pays its fixed costs on
every invocation: a fresh process, a fresh worker pool, and a cold operand
cache — every dataset is regenerated or re-read from disk, every
distribution rebuilt.  :class:`ExperimentService` keeps one
:class:`~repro.experiments.scheduler.Scheduler` alive behind a socket so a
sequence of experiment requests shares the pool, the store-backed result
cache, the in-flight dedup table, *and* a process-wide
:class:`~repro.core.pipeline.OperandCache` holding recently used datasets
and distribution layouts resident between requests (host-side state only —
modelled counters are invariant under caching, so records stay
byte-identical to batch runs).

Protocol — one JSON object per line, over a unix socket or localhost TCP::

    → {"op": "submit", "configs": [{...RunConfig dict...}, ...],
       "grid": {...ExperimentGrid kwargs...},          # either or both
       "priority": 0, "budget": null, "force": false,
       "stream": false}
    ← {"ok": true, "job_id": "job-1", "counters": {...}}
      # with "stream": true, progress/terminal event lines follow the ack:
    ← {"event": "progress", "job_id": ..., "state": ..., "counters": {...}}
    ← {"event": "done", ...}                           # terminal

    → {"op": "status",  "job_id": "job-1"}
    ← {"ok": true, "job_id": ..., "state": ..., "counters": {...}}

    → {"op": "results", "job_id": "job-1", "wait": true}
    ← {"ok": true, "job_id": ..., "records": [{...RunRecord dict...}]}

    → {"op": "cancel",  "job_id": "job-1"}
    → {"op": "stats"}        # scheduler + operand cache + store counters
    → {"op": "ping"}
    → {"op": "shutdown"}     # ack, then the server stops

Admission-control rejections come back as
``{"ok": false, "rejected": true, "error": "<reason>"}`` — the job had no
side effects (see :class:`~repro.experiments.scheduler.JobRejected`).
Errors in a request never kill the connection; they come back as
``{"ok": false, "error": ...}``.

:class:`ServiceClient` is the matching synchronous client (plain sockets,
no asyncio) used by the CLI smoke tests and CI.
"""

from __future__ import annotations

import asyncio
import json
import socket
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from ..core.pipeline import OperandCache, install_operand_cache
from .config import ExperimentGrid, RunConfig
from .journal import Journal
from .scheduler import JobHandle, JobRejected, Scheduler
from .store import ResultStore

__all__ = [
    "DEFAULT_OPERAND_CACHE_MB",
    "ExperimentService",
    "ServiceClient",
]

#: default operand-cache budget (MiB) when ``repro serve`` does not override
DEFAULT_OPERAND_CACHE_MB = 256

#: events that end a ``"stream": true`` submit response
_TERMINAL_EVENTS = frozenset({"done", "failed", "cancelled"})


def _json_line(payload: Dict[str, object]) -> bytes:
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")


def parse_submit_configs(message: Dict[str, object]) -> List[RunConfig]:
    """Decode a submit payload's ``configs`` + ``grid`` into RunConfigs."""
    configs: List[RunConfig] = []
    for entry in message.get("configs") or []:
        if not isinstance(entry, dict):
            raise ValueError(f"config entries must be objects, got {entry!r}")
        configs.append(RunConfig.from_dict(entry))
    grid = message.get("grid")
    if grid is not None:
        if not isinstance(grid, dict):
            raise ValueError(f"'grid' must be an object, got {grid!r}")
        configs.extend(ExperimentGrid(**grid).expand())
    if not configs:
        raise ValueError("submit needs 'configs' and/or 'grid'")
    return configs


class ExperimentService:
    """A scheduler wrapped in an asyncio JSON-line server.

    Construction is cheap; :meth:`run` (or :meth:`start` / :meth:`stop`)
    owns the lifecycle: it installs the process-wide operand cache, serves
    until a ``shutdown`` request (or :meth:`stop`), then shuts the
    scheduler down and restores the previously installed cache.
    """

    def __init__(
        self,
        *,
        workers: int = 0,
        store: Optional[Union[ResultStore, str, Path]] = None,
        max_inflight_jobs: Optional[int] = None,
        max_inflight_configs: Optional[int] = None,
        operand_cache_mb: int = DEFAULT_OPERAND_CACHE_MB,
        worker_cache_mb: Optional[int] = None,
        journal: Optional[Union[Journal, str, Path]] = None,
        task_timeout: Optional[float] = None,
        max_retries: Optional[int] = None,
    ):
        # The serial lane shares the service's process-wide operand cache;
        # pool workers each hold their own resident cache, budgeted by
        # ``worker_cache_mb`` (defaults to the service cache budget).
        # ``journal`` makes the service crash-safe: accepted jobs are
        # write-ahead logged and re-adopted by ``start()`` after a crash.
        self.scheduler = Scheduler(
            workers=workers,
            store=store,
            max_inflight_jobs=max_inflight_jobs,
            max_inflight_configs=max_inflight_configs,
            worker_cache_mb=(
                operand_cache_mb if worker_cache_mb is None else worker_cache_mb
            ),
            journal=journal,
            task_timeout=task_timeout,
            max_retries=max_retries,
        )
        self.operand_cache = (
            OperandCache(max_bytes=operand_cache_mb * 1024 * 1024)
            if operand_cache_mb > 0
            else None
        )
        self._previous_cache: Optional[OperandCache] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._stop = asyncio.Event()
        self.address: Optional[str] = None
        #: job ids re-adopted from the journal at the last ``start()``
        self.adopted_jobs: List[str] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(
        self,
        *,
        socket_path: Optional[Union[str, Path]] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> str:
        """Bind and start serving; returns the printable address.

        ``socket_path`` selects a unix socket; otherwise localhost TCP on
        ``host:port`` (``port=0`` picks a free one — read the returned
        address).

        With a journal configured, interrupted jobs from a crashed
        predecessor are re-adopted *before* the socket binds, so clients
        that reconnect can immediately query them by their old job ids.
        """
        self._previous_cache = install_operand_cache(self.operand_cache)
        if self.scheduler.journal is not None:
            adopted = await asyncio.to_thread(self.scheduler.adopt)
            self.adopted_jobs = [h.job_id for h in adopted]
        if socket_path is not None:
            path = Path(socket_path)
            if path.exists():
                path.unlink()
            self._server = await asyncio.start_unix_server(
                self._handle_client, path=str(path)
            )
            self.address = f"unix:{path}"
        else:
            self._server = await asyncio.start_server(
                self._handle_client, host=host, port=port
            )
            bound = self._server.sockets[0].getsockname()
            self.address = f"tcp:{bound[0]}:{bound[1]}"
        return self.address

    async def serve_until_stopped(self) -> None:
        """Block until :meth:`stop` (or a ``shutdown`` request)."""
        try:
            await self._stop.wait()
        finally:
            await self._close()

    async def run(
        self,
        *,
        socket_path: Optional[Union[str, Path]] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        ready=None,
    ) -> None:
        """Start, announce via ``ready(address)``, serve until stopped."""
        address = await self.start(socket_path=socket_path, host=host, port=port)
        if ready is not None:
            ready(address)
        await self.serve_until_stopped()

    def stop(self) -> None:
        self._stop.set()

    async def _close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await asyncio.to_thread(self.scheduler.shutdown)
        install_operand_cache(self._previous_cache)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while not self._stop.is_set():
                line = await reader.readline()
                if not line:
                    break
                try:
                    message = json.loads(line)
                    if not isinstance(message, dict):
                        raise ValueError("request must be a JSON object")
                except ValueError as exc:
                    writer.write(
                        _json_line({"ok": False, "error": f"invalid request: {exc}"})
                    )
                    await writer.drain()
                    continue
                stop_after = await self._dispatch(message, writer)
                await writer.drain()
                if stop_after:
                    self.stop()
                    break
        except (ConnectionResetError, BrokenPipeError):  # client went away
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _dispatch(
        self, message: Dict[str, object], writer: asyncio.StreamWriter
    ) -> bool:
        """Handle one request; returns True when the server should stop."""
        op = message.get("op")
        if op == "submit":
            await self._op_submit(message, writer)
        elif op == "status":
            writer.write(_json_line(self._op_status(message)))
        elif op == "results":
            writer.write(_json_line(await self._op_results(message)))
        elif op == "cancel":
            writer.write(_json_line(self._op_cancel(message)))
        elif op == "stats":
            writer.write(_json_line(self._op_stats()))
        elif op == "ping":
            writer.write(_json_line({"ok": True, "pong": True}))
        elif op == "shutdown":
            writer.write(_json_line({"ok": True, "stopping": True}))
            return True
        else:
            writer.write(
                _json_line(
                    {
                        "ok": False,
                        "error": (
                            f"unknown op {op!r}; valid ops: submit, status, "
                            "results, cancel, stats, ping, shutdown"
                        ),
                    }
                )
            )
        return False

    # ------------------------------------------------------------------
    # Ops
    # ------------------------------------------------------------------
    async def _op_submit(
        self, message: Dict[str, object], writer: asyncio.StreamWriter
    ) -> None:
        try:
            configs = parse_submit_configs(message)
            priority = int(message.get("priority") or 0)
            budget = message.get("budget")
            budget = None if budget is None else int(budget)
            force = bool(message.get("force", False))
        except (ValueError, TypeError) as exc:
            writer.write(_json_line({"ok": False, "error": str(exc)}))
            return

        loop = asyncio.get_running_loop()
        events: "asyncio.Queue[Dict[str, object]]" = asyncio.Queue()
        stream = bool(message.get("stream", False))
        try:
            # submit() plans synchronously (store load, prewarm): off-loop.
            handle = await asyncio.to_thread(
                self.scheduler.submit,
                configs,
                priority=priority,
                budget=budget,
                force=force,
            )
        except JobRejected as exc:
            writer.write(
                _json_line(
                    {"ok": False, "rejected": True, "error": exc.reason}
                )
            )
            return
        except Exception as exc:
            writer.write(_json_line({"ok": False, "error": str(exc)}))
            return

        writer.write(
            _json_line(
                {
                    "ok": True,
                    "job_id": handle.job_id,
                    "counters": handle.counters.snapshot(),
                }
            )
        )
        if not stream:
            return
        await writer.drain()

        # Scheduler threads emit events; bridge them onto the loop.  The
        # subscription replays current state + any terminal event, so a
        # stream opened after the job finished still terminates cleanly.
        def forward(event: Dict[str, object]) -> None:
            loop.call_soon_threadsafe(events.put_nowait, event)

        handle.subscribe(forward)
        while True:
            event = await events.get()
            writer.write(_json_line(event))
            await writer.drain()
            if event.get("event") in _TERMINAL_EVENTS:
                break

    def _handle_or_error(
        self, message: Dict[str, object]
    ) -> Union[JobHandle, Dict[str, object]]:
        job_id = message.get("job_id")
        if not isinstance(job_id, str):
            return {"ok": False, "error": "missing 'job_id'"}
        handle = self.scheduler.job(job_id)
        if handle is None:
            return {"ok": False, "error": f"unknown job {job_id!r}"}
        return handle

    def _op_status(self, message: Dict[str, object]) -> Dict[str, object]:
        handle = self._handle_or_error(message)
        if isinstance(handle, dict):
            return handle
        status: Dict[str, object] = {
            "ok": True,
            "job_id": handle.job_id,
            "state": handle.state,
            "counters": handle.counters.snapshot(),
        }
        if handle.error is not None:
            status["error"] = str(handle.error)
        return status

    async def _op_results(self, message: Dict[str, object]) -> Dict[str, object]:
        handle = self._handle_or_error(message)
        if isinstance(handle, dict):
            return handle
        if message.get("wait"):
            try:
                timeout = message.get("timeout")
                await asyncio.to_thread(
                    handle.finished.wait,
                    None if timeout is None else float(timeout),
                )
            except (ValueError, TypeError) as exc:
                return {"ok": False, "error": str(exc)}
        if not handle.is_finished:
            return {
                "ok": False,
                "job_id": handle.job_id,
                "state": handle.state,
                "error": "job still running; pass \"wait\": true to block",
            }
        reply: Dict[str, object] = {
            "ok": handle.state != "failed",
            "job_id": handle.job_id,
            "state": handle.state,
            "records": [r.to_dict() for r in handle.records()],
        }
        if handle.error is not None:
            reply["error"] = str(handle.error)
        return reply

    def _op_cancel(self, message: Dict[str, object]) -> Dict[str, object]:
        handle = self._handle_or_error(message)
        if isinstance(handle, dict):
            return handle
        handle.cancel()
        return {"ok": True, "job_id": handle.job_id, "state": handle.state}

    def _op_stats(self) -> Dict[str, object]:
        scheduler_stats = self.scheduler.stats()
        stats: Dict[str, object] = {"ok": True, "scheduler": scheduler_stats}
        # Operand-plane counters, surfaced top-level for dashboards: worker
        # residency hits/misses/evictions, affinity steals, disk-cache
        # hits/misses and shm-transport publication totals.
        stats["residency"] = scheduler_stats.get("residency", {})
        # Worker fault policy counters (retries/reassigned/timeouts/
        # respawns), plus which jobs the last start() re-adopted.
        stats["faults"] = self.scheduler.fault_stats()
        stats["adopted_jobs"] = list(self.adopted_jobs)
        if self.operand_cache is not None:
            stats["operand_cache"] = self.operand_cache.stats()
        if self.scheduler.store is not None:
            stats["store"] = self.scheduler.store.stats()
        return stats


class ServiceClient:
    """Synchronous JSON-line client for :class:`ExperimentService`.

    One client holds one connection; requests are strictly sequential on
    it (run concurrent jobs from separate clients).  Usable as a context
    manager.
    """

    def __init__(
        self,
        *,
        socket_path: Optional[Union[str, Path]] = None,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        timeout: Optional[float] = 300.0,
    ):
        if socket_path is not None:
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout)
            self._sock.connect(str(socket_path))
        elif port is not None:
            self._sock = socket.create_connection((host, port), timeout=timeout)
        else:
            raise ValueError("need socket_path or port")
        self._fh = self._sock.makefile("rwb")

    # ------------------------------------------------------------------
    def close(self) -> None:
        try:
            self._fh.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _send(self, payload: Dict[str, object]) -> None:
        self._fh.write(_json_line(payload))
        self._fh.flush()

    def _recv(self) -> Dict[str, object]:
        line = self._fh.readline()
        if not line:
            raise ConnectionError("service closed the connection")
        return json.loads(line)

    def request(self, payload: Dict[str, object]) -> Dict[str, object]:
        """One request, one reply (do not use for streaming submits)."""
        self._send(payload)
        return self._recv()

    # ------------------------------------------------------------------
    def ping(self) -> Dict[str, object]:
        return self.request({"op": "ping"})

    def submit(
        self,
        *,
        configs: Optional[List[Dict[str, object]]] = None,
        grid: Optional[Dict[str, object]] = None,
        priority: int = 0,
        budget: Optional[int] = None,
        force: bool = False,
        stream: bool = False,
    ) -> Dict[str, object]:
        """Submit; returns the ack.  With ``stream=True``, follow with
        :meth:`events` to drain the progress stream."""
        payload: Dict[str, object] = {"op": "submit", "stream": stream}
        if configs is not None:
            payload["configs"] = configs
        if grid is not None:
            payload["grid"] = grid
        if priority:
            payload["priority"] = priority
        if budget is not None:
            payload["budget"] = budget
        if force:
            payload["force"] = force
        return self.request(payload)

    def events(self) -> Iterator[Dict[str, object]]:
        """Progress events of the last ``stream=True`` submit, up to and
        including the terminal event."""
        while True:
            event = self._recv()
            yield event
            if event.get("event") in _TERMINAL_EVENTS:
                return

    def submit_and_wait(self, **kwargs) -> Dict[str, object]:
        """Streamed submit, drain events, fetch results.  Returns the
        ``results`` reply (``records`` key holds the record dicts)."""
        ack = self.submit(stream=True, **kwargs)
        if not ack.get("ok"):
            return ack
        for _event in self.events():
            pass
        return self.results(ack["job_id"], wait=True)

    def status(self, job_id: str) -> Dict[str, object]:
        return self.request({"op": "status", "job_id": job_id})

    def results(self, job_id: str, *, wait: bool = False) -> Dict[str, object]:
        return self.request({"op": "results", "job_id": job_id, "wait": wait})

    def cancel(self, job_id: str) -> Dict[str, object]:
        return self.request({"op": "cancel", "job_id": job_id})

    def stats(self) -> Dict[str, object]:
        return self.request({"op": "stats"})

    def shutdown(self) -> Dict[str, object]:
        return self.request({"op": "shutdown"})

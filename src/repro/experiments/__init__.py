"""Parallel experiment engine: declarative grids, cached deterministic sweeps.

The paper's figures are sweeps over (workload × dataset × algorithm ×
strategy × process count × block split × seed).  This package turns each
sweep point into a hashable :class:`RunConfig`, executes grids
fan-out-parallel with :func:`run_grid`, and persists deterministic
:class:`RunRecord` rows as JSONL keyed by config hash — so re-running a
figure is a cache lookup and an interrupted sweep resumes where it
stopped.  Six workloads cover the paper's evaluation surface and the
SpGEMM consumers grown on it: ``squaring`` (Figs 4–9), ``chained-squaring``
(iterated squaring ``A^(2^k)`` on the resident pipeline),
``amg-restriction`` (Table III, Figs 10–12), ``bc`` (Figs 13–14),
``triangles`` (masked-SpGEMM triangle counting) and ``mcl`` (full Markov
clustering); see :mod:`repro.experiments.workloads`.
"""

from .config import COST_MODELS, ExperimentGrid, RunConfig, resolve_cost_model
from .engine import SweepResult, SweepStats, execute_config, run_grid
from .faults import FaultInjected, FaultPlan, FaultSpec, install_fault_plan
from .journal import Journal, JournalCorrupt, JournalJob
from .scheduler import Job, JobCounters, JobHandle, JobRejected, Scheduler
from .service import ExperimentService, ServiceClient
from .records import (
    AMGStats,
    BCIterationStats,
    BCStats,
    ChainLevelStats,
    ChainStats,
    MCLIterationStats,
    MCLStats,
    MeasuredPhaseStats,
    MeasuredStats,
    RunRecord,
    TriangleStats,
)
from .store import ResultStore
from .trajectory import machine_tag, rollup_records, write_trajectory
from .workloads import WORKLOADS, execute_workload, workload_names

__all__ = [
    "COST_MODELS",
    "ExperimentGrid",
    "RunConfig",
    "resolve_cost_model",
    "AMGStats",
    "BCIterationStats",
    "BCStats",
    "ChainLevelStats",
    "ChainStats",
    "MCLIterationStats",
    "MCLStats",
    "MeasuredPhaseStats",
    "MeasuredStats",
    "TriangleStats",
    "RunRecord",
    "ResultStore",
    "SweepResult",
    "SweepStats",
    "FaultInjected",
    "FaultPlan",
    "FaultSpec",
    "install_fault_plan",
    "Journal",
    "JournalCorrupt",
    "JournalJob",
    "Job",
    "JobCounters",
    "JobHandle",
    "JobRejected",
    "Scheduler",
    "ExperimentService",
    "ServiceClient",
    "WORKLOADS",
    "execute_config",
    "execute_workload",
    "machine_tag",
    "rollup_records",
    "run_grid",
    "workload_names",
    "write_trajectory",
]

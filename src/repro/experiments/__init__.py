"""Parallel experiment engine: declarative grids, cached deterministic sweeps.

The paper's figures are sweeps over (dataset × algorithm × strategy ×
process count × block split × seed).  This package turns each sweep point
into a hashable :class:`RunConfig`, executes grids fan-out-parallel with
:func:`run_grid`, and persists deterministic :class:`RunRecord` rows as
JSONL keyed by config hash — so re-running a figure is a cache lookup and
an interrupted sweep resumes where it stopped.
"""

from .config import COST_MODELS, ExperimentGrid, RunConfig, resolve_cost_model
from .engine import SweepResult, SweepStats, execute_config, run_grid
from .records import RunRecord
from .store import ResultStore

__all__ = [
    "COST_MODELS",
    "ExperimentGrid",
    "RunConfig",
    "resolve_cost_model",
    "RunRecord",
    "ResultStore",
    "SweepResult",
    "SweepStats",
    "execute_config",
    "run_grid",
]
